"""Tests for the MiniC (Clight) footprint-instrumented semantics."""

from repro.common.freelist import FreeList
from repro.common.values import VInt
from repro.lang.messages import CallMsg, RetMsg, TAU
from repro.lang.steps import Step, StepAbort
from repro.langs.minic import MINIC, compile_unit, link_units

from tests.helpers import behaviours_of, done_traces, minic_program

FLIST = FreeList.for_thread(0)


def single_module(src):
    mods, genvs, _ = link_units([compile_unit(src)])
    return mods[0], genvs[0].memory()


def run_module(module, mem, entry, args=(), max_steps=500):
    """Run to RetMsg; returns (messages, retval, final mem)."""
    core = MINIC.init_core(module, entry, args)
    msgs = []
    for _ in range(max_steps):
        outs = MINIC.step(module, core, mem, FLIST)
        if not outs:
            break
        (out,) = outs
        if isinstance(out, StepAbort):
            return msgs, "abort", mem
        if out.msg is not TAU:
            msgs.append(out.msg)
        core, mem = out.core, out.mem
        if isinstance(out.msg, RetMsg):
            return msgs, out.msg.value, mem
    return msgs, None, mem


class TestEvaluation:
    def test_locals_are_memory_resident(self):
        module, mem = single_module(
            "void main() { int x = 5; print(x); }"
        )
        core = MINIC.init_core(module, "main")
        # The entry step allocates the local slots from the freelist.
        (out,) = MINIC.step(module, core, mem, FLIST)
        assert out.fp.ws, "entry must allocate stack slots"
        assert all(FLIST.contains(a) for a in out.fp.ws)

    def test_statement_footprints_include_local_reads(self):
        module, mem = single_module(
            "void main() { int x = 1; int y; y = x + 1; }"
        )
        core = MINIC.init_core(module, "main")
        fps = []
        for _ in range(10):
            outs = MINIC.step(module, core, mem, FLIST)
            if not outs or not isinstance(outs[0], Step):
                break
            fps.append(outs[0].fp)
            core, mem = outs[0].core, outs[0].mem
        # The assignment y = x + 1 reads x's slot and writes y's.
        assert any(fp.rs and fp.ws for fp in fps)

    def test_global_read_write(self):
        module, mem = single_module(
            "int g = 3; void main() { g = g * 2; print(g); }"
        )
        msgs, ret, _ = run_module(module, mem, "main")
        assert msgs[0].value == 6

    def test_uninitialized_local_use_aborts(self):
        module, mem = single_module(
            "void main() { int x; print(x + 1); }"
        )
        _, ret, _ = run_module(module, mem, "main")
        assert ret == "abort"

    def test_division_by_zero_aborts(self):
        module, mem = single_module(
            "int z = 0; void main() { print(1 / z); }"
        )
        _, ret, _ = run_module(module, mem, "main")
        assert ret == "abort"


class TestCalls:
    def test_internal_call_and_return(self):
        module, mem = single_module(
            "int sq(int n) { return n * n; } "
            "void main() { int r; r = sq(6); print(r); }"
        )
        msgs, _, _ = run_module(module, mem, "main")
        assert msgs[0].value == 36

    def test_recursion(self):
        module, mem = single_module(
            "int fib(int n) {"
            "  if (n < 2) { return n; }"
            "  int a; int b;"
            "  a = fib(n - 1); b = fib(n - 2);"
            "  return a + b;"
            "} "
            "void main() { int r; r = fib(7); print(r); }"
        )
        msgs, _, _ = run_module(module, mem, "main")
        assert msgs[0].value == 13

    def test_external_call_emits_callmsg(self):
        module, mem = single_module(
            "extern int ext(int); "
            "void main() { int r; r = ext(5); print(r); }"
        )
        core = MINIC.init_core(module, "main")
        call = None
        for _ in range(20):
            outs = MINIC.step(module, core, mem, FLIST)
            if not outs:
                break
            (out,) = outs
            core, mem = out.core, out.mem
            if isinstance(out.msg, CallMsg):
                call = out.msg
                break
        assert call == CallMsg("ext", (VInt(5),))
        # Resume with a result and observe it.
        core = MINIC.after_external(core, VInt(40))
        msgs = []
        for _ in range(20):
            outs = MINIC.step(module, core, mem, FLIST)
            if not outs:
                break
            (out,) = outs
            core, mem = out.core, out.mem
            if out.msg is not TAU:
                msgs.append(out.msg)
        assert msgs[0].value == 40

    def test_waiting_core_has_no_steps(self):
        module, mem = single_module(
            "extern void e(); void main() { e(); }"
        )
        core = MINIC.init_core(module, "main")
        while True:
            outs = MINIC.step(module, core, mem, FLIST)
            (out,) = outs
            core, mem = out.core, out.mem
            if isinstance(out.msg, CallMsg):
                break
        assert MINIC.step(module, core, mem, FLIST) == []

    def test_pointer_argument_within_module(self):
        module, mem = single_module(
            "void setp(int* p, int v) { *p = v; } "
            "void main() { int x = 0; setp(&x, 9); print(x); }"
        )
        msgs, _, _ = run_module(module, mem, "main")
        assert msgs[0].value == 9


class TestForbiddenRegion:
    def test_client_cannot_touch_object_data(self):
        mods, genvs, _ = link_units(
            [compile_unit("int g = 0; void main() { g = 1; }")]
        )
        addr = genvs[0].address_of("g")
        module = mods[0].with_forbidden({addr})
        _, ret, _ = run_module(module, genvs[0].memory(), "main")
        assert ret == "abort"


class TestWholeProgram:
    def test_multi_module_threads(self):
        prog, _, _, _ = minic_program(
            [
                "extern int g; void t1() { print(g); }",
                "int g = 7; void t2() { print(g + 1); }",
            ],
            ["t1", "t2"],
        )
        assert done_traces(behaviours_of(prog)) == {(7, 8), (8, 7)}
