"""Tests for the MiniC lexer, parser and typechecker."""

import pytest

from repro.common.errors import ParseError, TypeCheckError
from repro.langs.minic import ast, compile_unit, link_units, parse
from repro.langs.minic.lexer import tokenize
from repro.langs.minic.typecheck import typecheck


class TestLexer:
    def test_keywords_vs_identifiers(self):
        toks = tokenize("int intx")
        assert toks[0].kind == "kw"
        assert toks[1].kind == "id"

    def test_multi_char_operators(self):
        toks = tokenize("== != <= >= && || ++")
        assert [t.value for t in toks[:-1]] == [
            "==", "!=", "<=", ">=", "&&", "||", "++",
        ]

    def test_line_tracking(self):
        toks = tokenize("a\nb\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 3]

    def test_comments(self):
        toks = tokenize("a // comment\n/* block\ncomment */ b")
        values = [t.value for t in toks[:-1]]
        assert values == ["a", "b"]

    def test_bad_char(self):
        with pytest.raises(ParseError):
            tokenize("a @ b")


class TestParser:
    def test_globals(self):
        m = parse("int a; int b = 3; int c = -2;")
        inits = {
            d.name: d.init
            for d in m.decls
            if isinstance(d, ast.GlobalVar)
        }
        assert inits == {"a": 0, "b": 3, "c": -2}

    def test_extern_decls(self):
        m = parse("extern int g; extern void f(int, int*);")
        assert isinstance(m.decls[0], ast.ExternVar)
        fun = m.decls[1]
        assert isinstance(fun, ast.ExternFun)
        assert fun.params == (ast.INT, ast.PTR)

    def test_function_with_params(self):
        m = parse("int f(int a, int* p) { return a; }")
        func = m.decls[0]
        assert func.params == (("a", ast.INT), ("p", ast.PTR))

    def test_increment_sugar(self):
        m = parse("void f() { int x = 0; x ++; }")
        stmt = m.decls[0].body.stmts[1]
        assert isinstance(stmt, ast.SAssign)
        assert stmt.expr.op == "+"

    def test_deref_assign(self):
        m = parse("void f(int* p) { *p = 3; }")
        stmt = m.decls[0].body.stmts[0]
        assert isinstance(stmt.lhs, ast.LhsDeref)

    def test_addrof(self):
        m = parse("int g = 0; void f() { print(*&g); }")
        expr = m.decls[1].body.stmts[0].expr
        assert isinstance(expr, ast.Deref)
        assert isinstance(expr.arg, ast.AddrOf)

    def test_pointer_local_rejected(self):
        with pytest.raises(ParseError):
            parse("void f() { int *p; }")

    def test_for_loop_desugars(self):
        m = parse(
            "void f() { for (int i = 0; i < 3; i ++) { print(i); } }"
        )
        block = m.decls[0].body.stmts[0]
        assert isinstance(block, ast.SBlock)
        decl, loop = block.stmts
        assert isinstance(decl, ast.SDecl)
        assert isinstance(loop, ast.SWhile)
        # Step statement appended to the loop body.
        assert isinstance(loop.body.stmts[-1], ast.SAssign)

    def test_for_loop_empty_header_parts(self):
        m = parse("void f() { int i = 0; for (;;) { i = i + 1; } }")
        loop = m.decls[0].body.stmts[1]
        assert isinstance(loop, ast.SWhile)
        assert loop.cond.n == 1

    def test_for_loop_executes(self):
        from repro.lang.module import ModuleDecl, Program
        from repro.langs.minic import compile_unit, link_units
        from repro.langs.minic.semantics import MINIC
        from tests.helpers import behaviours_of, done_traces

        mods, genvs, _ = link_units([compile_unit(
            "void main() { int acc = 0; "
            "for (int i = 1; i <= 4; i ++) { acc = acc + i; } "
            "print(acc); }"
        )])
        prog = Program(
            [ModuleDecl(MINIC, genvs[0], mods[0])], ["main"]
        )
        assert done_traces(behaviours_of(prog)) == {(10,)}

    def test_call_statement_forms(self):
        m = parse(
            "extern int g(); void f() { int x; g(); x = g(); }"
        )
        stmts = m.decls[1].body.stmts
        assert isinstance(stmts[1], ast.SCallStmt)
        assert stmts[1].dst is None
        assert isinstance(stmts[2], ast.SCallStmt)
        assert stmts[2].dst is not None


class TestTypecheck:
    def _unit(self, src):
        return typecheck(parse(src))

    def test_scopes_resolved(self):
        unit = self._unit("int g = 0; void f() { int x = g; x = x; }")
        body = unit.functions["f"].body
        decl = body.stmts[0]
        assert decl.init.scope == "global"
        assign = body.stmts[1]
        assert assign.lhs.scope == "local"

    def test_locals_collected(self):
        unit = self._unit(
            "void f(int a) { int x; if (a) { int y; } }"
        )
        names = [n for n, _ in unit.functions["f"].locals_]
        assert names == ["a", "x", "y"]

    def test_undefined_variable(self):
        with pytest.raises(TypeCheckError):
            self._unit("void f() { x = 1; }")

    def test_duplicate_local(self):
        with pytest.raises(TypeCheckError):
            self._unit("void f() { int x; int x; }")

    def test_local_shadowing_global_rejected(self):
        with pytest.raises(TypeCheckError):
            self._unit("int g = 0; void f() { int g; }")

    def test_pointer_arith_rejected(self):
        with pytest.raises(TypeCheckError):
            self._unit("int g = 0; void f(int* p) { p = p + 1; }")

    def test_deref_non_pointer(self):
        with pytest.raises(TypeCheckError):
            self._unit("void f() { int x = 0; print(*x); }")

    def test_call_arity(self):
        with pytest.raises(TypeCheckError):
            self._unit("int g(int a) { return a; } void f() { g(); }")

    def test_call_arg_type(self):
        with pytest.raises(TypeCheckError):
            self._unit(
                "int g(int* p) { return *p; } "
                "void f() { int x = 0; g(x); }"
            )

    def test_nested_call_rejected(self):
        with pytest.raises(TypeCheckError):
            self._unit(
                "int g() { return 1; } void f() { print(g() + 1); }"
            )

    def test_void_result_used(self):
        with pytest.raises(TypeCheckError):
            self._unit(
                "extern void e(); void f() { int x; x = e(); }"
            )

    def test_return_type_mismatch(self):
        with pytest.raises(TypeCheckError):
            self._unit("void f() { return 1; }")
        with pytest.raises(TypeCheckError):
            self._unit("int f() { return; }")

    def test_stack_pointer_escape_rejected(self):
        # Footnote 6: &local may not flow to an external function.
        with pytest.raises(TypeCheckError):
            self._unit(
                "extern void e(int*); void f() { int x; e(&x); }"
            )

    def test_addr_of_local_to_internal_ok(self):
        unit = self._unit(
            "void g(int* p) { *p = 1; } "
            "void f() { int x; g(&x); print(x); }"
        )
        assert "f" in unit.functions

    def test_return_call_desugared(self):
        unit = self._unit(
            "int g(int a) { return a; } int f() { return g(3); }"
        )
        names = [n for n, _ in unit.functions["f"].locals_]
        assert "$ret" in names

    def test_undeclared_call(self):
        with pytest.raises(TypeCheckError):
            self._unit("void f() { nothere(); }")


class TestLinking:
    def test_extern_resolution(self):
        u1 = compile_unit("extern int shared; void f() { shared = 1; }")
        u2 = compile_unit("int shared = 0;")
        mods, genvs, symbols = link_units([u1, u2])
        assert mods[0].symbols["shared"] == symbols["shared"]
        assert genvs[1].address_of("shared") == symbols["shared"]

    def test_unresolved_extern(self):
        u = compile_unit("extern int nope; void f() { nope = 1; }")
        with pytest.raises(TypeCheckError):
            link_units([u])

    def test_duplicate_definition(self):
        u1 = compile_unit("int g = 1;")
        u2 = compile_unit("int g = 2;")
        with pytest.raises(TypeCheckError):
            link_units([u1, u2])

    def test_extra_symbols_reserved(self):
        u = compile_unit("int a = 0; int b = 0;")
        _, _, symbols = link_units([u], extra_symbols={"L": 16})
        assert symbols["L"] == 16
        assert 16 not in {symbols["a"], symbols["b"]}

    def test_object_symbol_collision(self):
        u = compile_unit("int L = 0;")
        with pytest.raises(TypeCheckError):
            link_units([u], extra_symbols={"L": 16})
