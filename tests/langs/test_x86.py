"""Tests for the mini-x86 SC machine."""

import pytest

from repro.common.errors import SemanticsError
from repro.common.freelist import FreeList
from repro.common.memory import Memory
from repro.common.values import VInt, VPtr
from repro.lang.messages import CallMsg, EventMsg, RetMsg, TAU
from repro.lang.steps import Step, StepAbort
from repro.langs.ir.base import IRModule
from repro.langs.x86 import X86SC, X86Function
from repro.langs.x86 import ast as x

FLIST = FreeList.for_thread(0)
G = 20


def module_of(*funcs, symbols=None, externs=None, **kw):
    return IRModule(
        {f.name: f for f in funcs}, symbols or {"g": G},
        externs=externs, **kw
    )


def run(module, entry, mem, args=(), max_steps=1000):
    core = X86SC.init_core(module, entry, args)
    events = []
    for _ in range(max_steps):
        outs = X86SC.step(module, core, mem, FLIST)
        if not outs:
            return None, events, mem
        (out,) = outs
        if isinstance(out, StepAbort):
            return "abort", events, mem
        if isinstance(out.msg, EventMsg):
            events.append(out.msg.value)
        core, mem = out.core, out.mem
        if isinstance(out.msg, RetMsg):
            return out.msg.value, events, mem
    raise AssertionError("did not terminate")


class TestMovesAndArith:
    def test_mov_and_add(self):
        f = X86Function("f", 0, [
            x.Pmov_ri("eax", 40),
            x.Pmov_ri("ebx", 2),
            x.Parith_rr("+", "eax", "ebx"),
            x.Pret(),
        ])
        value, _, _ = run(module_of(f), "f", Memory())
        assert value == VInt(42)

    def test_arith_immediate(self):
        f = X86Function("f", 0, [
            x.Pmov_ri("eax", 7),
            x.Parith_ri("*", "eax", 6),
            x.Pret(),
        ])
        value, _, _ = run(module_of(f), "f", Memory())
        assert value == VInt(42)

    def test_neg(self):
        f = X86Function("f", 0, [
            x.Pmov_ri("eax", 5),
            x.Pneg("eax"),
            x.Pret(),
        ])
        value, _, _ = run(module_of(f), "f", Memory())
        assert value == VInt(-5)

    def test_division_pseudo(self):
        f = X86Function("f", 0, [
            x.Pmov_ri("eax", 17),
            x.Pmov_ri("ebx", 5),
            x.Pdivs("eax", "ebx"),
            x.Pret(),
        ])
        value, _, _ = run(module_of(f), "f", Memory())
        assert value == VInt(3)

    def test_division_by_zero_aborts(self):
        f = X86Function("f", 0, [
            x.Pmov_ri("eax", 1),
            x.Pmov_ri("ebx", 0),
            x.Pdivs("eax", "ebx"),
            x.Pret(),
        ])
        value, _, _ = run(module_of(f), "f", Memory())
        assert value == "abort"

    def test_undefined_register_aborts(self):
        f = X86Function("f", 0, [
            x.Pmov_rr("eax", "ebx"),
            x.Pret(),
        ])
        value, _, _ = run(module_of(f), "f", Memory())
        assert value == "abort"


class TestMemoryAccess:
    def test_global_load_store(self):
        f = X86Function("f", 0, [
            x.Pmov_ri("ebx", 9),
            x.Pmov_mr(("global", "g"), "ebx"),
            x.Pmov_rm("eax", ("global", "g")),
            x.Pret(),
        ])
        value, _, mem = run(module_of(f), "f", Memory({G: VInt(0)}))
        assert value == VInt(9)
        assert mem.load(G) == VInt(9)

    def test_lea_and_based_addressing(self):
        f = X86Function("f", 0, [
            x.Plea("ecx", ("global", "g")),
            x.Pmov_ri("ebx", 4),
            x.Pmov_mr(("base", "ecx", 0), "ebx"),
            x.Pmov_rm("eax", ("base", "ecx", 0)),
            x.Pret(),
        ])
        value, _, _ = run(module_of(f), "f", Memory({G: VInt(0)}))
        assert value == VInt(4)

    def test_load_footprint(self):
        f = X86Function("f", 0, [
            x.Pmov_rm("eax", ("global", "g")),
            x.Pret(),
        ])
        module = module_of(f)
        core = X86SC.init_core(module, "f")
        (out,) = X86SC.step(module, core, Memory({G: VInt(1)}), FLIST)
        assert out.fp.rs == {G} and not out.fp.ws

    def test_forbidden_region(self):
        f = X86Function("f", 0, [
            x.Pmov_rm("eax", ("global", "g")),
            x.Pret(),
        ])
        module = module_of(f, forbidden={G})
        value, _, _ = run(module, "f", Memory({G: VInt(1)}))
        assert value == "abort"


class TestFlagsAndBranches:
    def test_cmp_je(self):
        f = X86Function("f", 0, [
            x.Pmov_ri("eax", 3),
            x.Pcmp_ri("eax", 3),
            x.Pjcc("e", "yes"),
            x.Pmov_ri("eax", 0),
            x.Pret(),
            x.Plabel("yes"),
            x.Pmov_ri("eax", 1),
            x.Pret(),
        ])
        value, _, _ = run(module_of(f), "f", Memory())
        assert value == VInt(1)

    def test_signed_conditions(self):
        for cond, expect in [("l", 1), ("le", 1), ("g", 0), ("ge", 0)]:
            f = X86Function("f", 0, [
                x.Pmov_ri("eax", -1),
                x.Pmov_ri("ebx", 2),
                x.Pcmp_rr("eax", "ebx"),
                x.Psetcc(cond, "eax"),
                x.Pret(),
            ])
            value, _, _ = run(module_of(f), "f", Memory())
            assert value == VInt(expect), cond

    def test_jcc_on_undefined_flags_aborts(self):
        f = X86Function("f", 0, [
            x.Pjcc("e", "x"),
            x.Plabel("x"),
            x.Pret(),
        ])
        value, _, _ = run(module_of(f), "f", Memory())
        assert value == "abort"

    def test_pointer_compare_eq_only(self):
        f = X86Function("f", 0, [
            x.Plea("eax", ("global", "g")),
            x.Plea("ebx", ("global", "g")),
            x.Pcmp_rr("eax", "ebx"),
            x.Psetcc("e", "eax"),
            x.Pret(),
        ])
        value, _, _ = run(module_of(f), "f", Memory({G: VInt(0)}))
        assert value == VInt(1)

        f2 = X86Function("f", 0, [
            x.Plea("eax", ("global", "g")),
            x.Plea("ebx", ("global", "g")),
            x.Pcmp_rr("eax", "ebx"),
            x.Pjcc("l", "x"),
            x.Plabel("x"),
            x.Pret(),
        ])
        value, _, _ = run(module_of(f2), "f", Memory({G: VInt(0)}))
        assert value == "abort"


class TestFramesAndCalls:
    def test_alloc_free_frame(self):
        f = X86Function("f", 0, [
            x.Pallocframe(3),
            x.Pmov_ri("ebx", 5),
            x.Pmov_mr(("base", "esp", 1), "ebx"),
            x.Pmov_rm("eax", ("base", "esp", 1)),
            x.Pfreeframe(3),
            x.Pret(),
        ])
        value, _, _ = run(module_of(f), "f", Memory())
        assert value == VInt(5)

    def test_nested_frames_restore_esp(self):
        inner = X86Function("inner", 0, [
            x.Pallocframe(2),
            x.Pmov_ri("ebx", 9),
            x.Pmov_mr(("base", "esp", 1), "ebx"),
            x.Pfreeframe(2),
            x.Pmov_ri("eax", 0),
            x.Pret(),
        ])
        outer = X86Function("f", 0, [
            x.Pallocframe(2),
            x.Pmov_ri("ebx", 1),
            x.Pmov_mr(("base", "esp", 1), "ebx"),
            x.Pcall("inner", 0, False),
            x.Pmov_rm("eax", ("base", "esp", 1)),
            x.Pfreeframe(2),
            x.Pret(),
        ])
        value, _, _ = run(module_of(outer, inner), "f", Memory())
        assert value == VInt(1)

    def test_zero_size_frame_rejected(self):
        f = X86Function("f", 0, [x.Pallocframe(0), x.Pret()])
        module = module_of(f)
        core = X86SC.init_core(module, "f")
        with pytest.raises(SemanticsError):
            X86SC.step(module, core, Memory(), FLIST)

    def test_external_call_protocol(self):
        f = X86Function("f", 1, [
            x.Pcall("ext", 1, True),
            x.Pret(),
        ])
        module = module_of(f, externs={"ext": 1})
        core = X86SC.init_core(module, "f", (VInt(3),))
        (out,) = X86SC.step(module, core, Memory(), FLIST)
        assert out.msg == CallMsg("ext", (VInt(3),))
        resumed = X86SC.after_external(out.core, VInt(77))
        mem = Memory()
        (out,) = X86SC.step(module, resumed, mem, FLIST)  # set-ret
        (out,) = X86SC.step(module, out.core, mem, FLIST)  # Pret
        assert out.msg == RetMsg(VInt(77))

    def test_call_unknown_internal_aborts(self):
        f = X86Function("f", 0, [x.Pcall("nope", 0, False)])
        value, _, _ = run(module_of(f), "f", Memory())
        assert value == "abort"

    def test_print_event(self):
        f = X86Function("f", 0, [
            x.Pmov_ri("ebx", 13),
            x.Pprint("ebx"),
            x.Pmov_ri("eax", 0),
            x.Pret(),
        ])
        _, events, _ = run(module_of(f), "f", Memory())
        assert events == [13]


class TestCmpxchgSC:
    def test_success_path(self):
        f = X86Function("f", 0, [
            x.Pmov_ri("eax", 1),
            x.Pmov_ri("edx", 0),
            x.Plock_cmpxchg(("global", "g"), "edx"),
            x.Psetcc("e", "eax"),
            x.Pret(),
        ])
        value, _, mem = run(module_of(f), "f", Memory({G: VInt(1)}))
        assert value == VInt(1)
        assert mem.load(G) == VInt(0)

    def test_failure_path_loads_current(self):
        f = X86Function("f", 0, [
            x.Pmov_ri("eax", 1),
            x.Pmov_ri("edx", 0),
            x.Plock_cmpxchg(("global", "g"), "edx"),
            x.Pret(),
        ])
        value, _, mem = run(module_of(f), "f", Memory({G: VInt(5)}))
        assert value == VInt(5), "eax must receive the observed value"
        assert mem.load(G) == VInt(5)
