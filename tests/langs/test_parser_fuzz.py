"""Parser robustness fuzzing: arbitrary input must either parse or
raise :class:`ParseError` / :class:`TypeCheckError` — never crash with
an arbitrary exception."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ParseError, TypeCheckError
from repro.langs.cimp.parser import parse_functions
from repro.langs.minic.parser import parse
from repro.langs.minic.typecheck import typecheck

_text = st.text(
    alphabet=st.sampled_from(
        list("abcxyz01 (){}[];,=<>+-*/%!&|:\n\"'@#")
    ),
    max_size=60,
)

_tokens = st.lists(
    st.sampled_from([
        "int", "void", "extern", "if", "else", "while", "return",
        "print", "spawn", "main", "x", "g", "f", "0", "1", "42",
        "(", ")", "{", "}", ";", ",", "=", "==", "+", "-", "*",
        "&", "&&", "||", "<", "++",
    ]),
    max_size=30,
).map(" ".join)


@settings(max_examples=200, deadline=None)
@given(_text)
def test_minic_parser_total_on_garbage(text):
    try:
        parse(text)
    except ParseError:
        pass


@settings(max_examples=200, deadline=None)
@given(_tokens)
def test_minic_parser_total_on_token_soup(text):
    try:
        module = parse(text)
        typecheck(module)
    except (ParseError, TypeCheckError):
        pass


@settings(max_examples=200, deadline=None)
@given(_text)
def test_cimp_parser_total_on_garbage(text):
    try:
        parse_functions(text)
    except ParseError:
        pass


_cimp_tokens = st.lists(
    st.sampled_from([
        "while", "if", "else", "assert", "return", "print", "skip",
        "spawn", "main", "x", "L", "0", "1", "(", ")", "{", "}",
        "[", "]", ";", ":=", "<", ">", "==", "+", "-",
    ]),
    max_size=30,
).map(" ".join)


@settings(max_examples=200, deadline=None)
@given(_cimp_tokens)
def test_cimp_parser_total_on_token_soup(text):
    try:
        parse_functions(text)
    except ParseError:
        pass
