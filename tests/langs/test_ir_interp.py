"""Direct unit tests of the IR interpreters on hand-built programs.

The pipeline integration tests exercise the interpreters on compiled
code; these tests pin down individual instruction semantics with
hand-assembled functions at each level.
"""

from repro.common.freelist import FreeList
from repro.common.memory import Memory
from repro.common.values import VInt, VPtr
from repro.lang.messages import RetMsg, TAU
from repro.lang.steps import Step, StepAbort
from repro.langs.ir import cminor as cm
from repro.langs.ir import csharpminor as csm
from repro.langs.ir import linear as ln
from repro.langs.ir import ltl
from repro.langs.ir import mach as mh
from repro.langs.ir import rtl
from repro.langs.ir import (
    CMINOR,
    CSHARPMINOR,
    LINEAR,
    LTL,
    MACH,
    RTL,
)
from repro.langs.ir.base import IRModule
from repro.langs.x86.regs import ARG_REGS, RET_REG

FLIST = FreeList.for_thread(0)
G = 20  # a global cell


def run(lang, module, entry, mem, args=(), max_steps=500):
    core = lang.init_core(module, entry, args)
    for _ in range(max_steps):
        outs = lang.step(module, core, mem, FLIST)
        if not outs:
            return None, mem
        (out,) = outs
        if isinstance(out, StepAbort):
            return "abort", mem
        core, mem = out.core, out.mem
        if isinstance(out.msg, RetMsg):
            return out.msg.value, mem
    raise AssertionError("did not terminate")


class TestCsharpminor:
    def _module(self, func):
        return IRModule({func.name: func}, {"g": G})

    def test_temps_have_no_footprint(self):
        func = csm.CshmFunction(
            "f", ("a",), (),
            csm.SSeq([
                csm.SSet("x", csm.EBinop("+", csm.ETemp("a"),
                                         csm.EConst(1))),
                csm.SReturn(csm.ETemp("x")),
            ]),
        )
        module = self._module(func)
        core = CSHARPMINOR.init_core(module, "f", (VInt(4),))
        mem = Memory({G: VInt(0)})
        (out,) = CSHARPMINOR.step(module, core, mem, FLIST)  # enter
        (out,) = CSHARPMINOR.step(module, out.core, out.mem, FLIST)
        assert out.fp.is_empty(), "temp assignment must not touch memory"

    def test_stack_local_allocated(self):
        func = csm.CshmFunction(
            "f", (), ("x",),
            csm.SSeq([
                csm.SStore(csm.EAddrLocal("x"), csm.EConst(5)),
                csm.SReturn(csm.ELoad(csm.EAddrLocal("x"))),
            ]),
        )
        value, _ = run(
            CSHARPMINOR, self._module(func), "f", Memory({G: VInt(0)})
        )
        assert value == VInt(5)

    def test_global_store(self):
        func = csm.CshmFunction(
            "f", (), (),
            csm.SStore(csm.EAddrGlobal("g"), csm.EConst(3)),
        )
        _, mem = run(
            CSHARPMINOR, self._module(func), "f", Memory({G: VInt(0)})
        )
        assert mem.load(G) == VInt(3)

    def test_undefined_temp_aborts(self):
        func = csm.CshmFunction(
            "f", (), (), csm.SReturn(csm.ETemp("nope"))
        )
        value, _ = run(
            CSHARPMINOR, self._module(func), "f", Memory()
        )
        assert value == "abort"


class TestCminor:
    def test_stack_block_addressing(self):
        func = cm.CmFunction(
            "f", 0, 2,
            cm.SSeq([
                cm.SStore(cm.EAddrStack(1), cm.EConst(9)),
                cm.SReturn(cm.ELoad(cm.EAddrStack(1))),
            ]),
        )
        module = IRModule({"f": func}, {})
        value, _ = run(CMINOR, module, "f", Memory())
        assert value == VInt(9)

    def test_numbered_params(self):
        func = cm.CmFunction(
            "f", 2, 0,
            cm.SReturn(cm.EBinop("-", cm.ETemp(0), cm.ETemp(1))),
        )
        module = IRModule({"f": func}, {})
        value, _ = run(
            CMINOR, module, "f", Memory(), (VInt(10), VInt(4))
        )
        assert value == VInt(6)


def rtl_module(code, params=(), stacksize=0, entry=0, symbols=None):
    func = rtl.RTLFunction("f", params, stacksize, entry, code)
    return IRModule({"f": func}, symbols or {"g": G})


class TestRTL:
    def test_const_op_return(self):
        module = rtl_module({
            0: rtl.Iconst(20, 1, 1),
            1: rtl.Iconst(22, 2, 2),
            2: rtl.Iop("+", (1, 2), 3, 3),
            3: rtl.Ireturn(3),
        })
        value, _ = run(RTL, module, "f", Memory())
        assert value == VInt(42)

    def test_load_store_global(self):
        module = rtl_module({
            0: rtl.Iaddrglobal("g", 1, 1),
            1: rtl.Iconst(5, 2, 2),
            2: rtl.Istore(1, 2, 3),
            3: rtl.Iload(1, 4, 4),
            4: rtl.Ireturn(4),
        })
        value, mem = run(RTL, module, "f", Memory({G: VInt(0)}))
        assert value == VInt(5)
        assert mem.load(G) == VInt(5)

    def test_cond_branches(self):
        module = rtl_module({
            0: rtl.Iconst(1, 1, 1),
            1: rtl.Iconst(2, 2, 2),
            2: rtl.Icond("<", (1, 2), 3, 4),
            3: rtl.Iconst(111, 3, 5),
            4: rtl.Iconst(222, 3, 5),
            5: rtl.Ireturn(3),
        })
        value, _ = run(RTL, module, "f", Memory())
        assert value == VInt(111)

    def test_stack_allocation(self):
        module = rtl_module({
            0: rtl.Iaddrstack(0, 1, 1),
            1: rtl.Iconst(7, 2, 2),
            2: rtl.Istore(1, 2, 3),
            3: rtl.Iload(1, 4, 4),
            4: rtl.Ireturn(4),
        }, stacksize=1)
        value, _ = run(RTL, module, "f", Memory())
        assert value == VInt(7)

    def test_internal_call(self):
        callee = rtl.RTLFunction(
            "sq", (0,), 0, 0,
            {0: rtl.Iop("*", (0, 0), 1, 1), 1: rtl.Ireturn(1)},
        )
        caller = rtl.RTLFunction(
            "f", (), 0, 0,
            {
                0: rtl.Iconst(6, 1, 1),
                1: rtl.Icall("sq", (1,), 2, 2, False),
                2: rtl.Ireturn(2),
            },
        )
        module = IRModule({"f": caller, "sq": callee}, {})
        value, _ = run(RTL, module, "f", Memory())
        assert value == VInt(36)

    def test_tailcall_replaces_frame(self):
        callee = rtl.RTLFunction(
            "k", (0,), 0, 0, {0: rtl.Ireturn(0)}
        )
        caller = rtl.RTLFunction(
            "f", (), 0, 0,
            {
                0: rtl.Iconst(5, 1, 1),
                1: rtl.Itailcall("k", (1,)),
            },
        )
        module = IRModule({"f": caller, "k": callee}, {})
        value, _ = run(RTL, module, "f", Memory())
        assert value == VInt(5)

    def test_undefined_register_aborts(self):
        module = rtl_module({0: rtl.Ireturn(9)})
        value, _ = run(RTL, module, "f", Memory())
        assert value == "abort"


class TestLTL:
    def test_regs_and_slots(self):
        func = ltl.LTLFunction(
            "f", 0, 0, 1, 0,
            {
                0: ltl.Lconst(11, "ebx", 1),
                1: ltl.Lop("move", ("ebx",), ("s", 0), 2),
                2: ltl.Lconst(0, "ebx", 3),
                3: ltl.Lop("move", (("s", 0),), RET_REG, 4),
                4: ltl.Lreturn(),
            },
        )
        module = IRModule({"f": func}, {})
        value, _ = run(LTL, module, "f", Memory())
        assert value == VInt(11)

    def test_args_arrive_in_arg_regs(self):
        func = ltl.LTLFunction(
            "f", 2, 0, 0, 0,
            {
                0: ltl.Lop("+", (ARG_REGS[0], ARG_REGS[1]), RET_REG, 1),
                1: ltl.Lreturn(),
            },
        )
        module = IRModule({"f": func}, {})
        value, _ = run(LTL, module, "f", Memory(), (VInt(4), VInt(5)))
        assert value == VInt(9)

    def test_slots_are_per_activation(self):
        inner = ltl.LTLFunction(
            "inner", 0, 0, 1, 0,
            {
                0: ltl.Lconst(99, "ebx", 1),
                1: ltl.Lop("move", ("ebx",), ("s", 0), 2),
                2: ltl.Lconst(0, RET_REG, 3),
                3: ltl.Lreturn(),
            },
        )
        outer = ltl.LTLFunction(
            "f", 0, 0, 1, 0,
            {
                0: ltl.Lconst(1, "ebx", 1),
                1: ltl.Lop("move", ("ebx",), ("s", 0), 2),
                2: ltl.Lcall("inner", 0, 3, False),
                3: ltl.Lop("move", (("s", 0),), RET_REG, 4),
                4: ltl.Lreturn(),
            },
        )
        module = IRModule({"f": outer, "inner": inner}, {})
        value, _ = run(LTL, module, "f", Memory())
        assert value == VInt(1), "inner's slot write leaked into outer"


class TestLinear:
    def test_labels_gotos_conds(self):
        func = ln.LinearFunction(
            "f", 1, 0, 0,
            [
                # Count the argument down to 1.
                ln.LinLabel("loop"),
                ln.LinConst(1, "ebx"),
                ln.LinCond("<=", (ARG_REGS[0], "ebx"), "end"),
                ln.LinOp("-", (ARG_REGS[0], "ebx"), ARG_REGS[0]),
                ln.LinGoto("loop"),
                ln.LinLabel("end"),
                ln.LinOp("move", (ARG_REGS[0],), RET_REG),
                ln.LinReturn(),
            ],
        )
        module = IRModule({"f": func}, {})
        value, _ = run(LINEAR, module, "f", Memory(), (VInt(3),))
        assert value == VInt(1)

    def test_fallthrough(self):
        func = ln.LinearFunction(
            "f", 0, 0, 0,
            [
                ln.LinConst(5, RET_REG),
                ln.LinLabel("skip"),
                ln.LinReturn(),
            ],
        )
        module = IRModule({"f": func}, {})
        value, _ = run(LINEAR, module, "f", Memory())
        assert value == VInt(5)

    def test_duplicate_label_rejected(self):
        import pytest
        from repro.common.errors import SemanticsError

        with pytest.raises(SemanticsError):
            ln.LinearFunction(
                "f", 0, 0, 0,
                [ln.LinLabel("a"), ln.LinLabel("a")],
            )


class TestMach:
    def test_spills_hit_frame_memory(self):
        func = mh.MachFunction(
            "f", 0, 2,
            [
                mh.MConst(7, "ebx"),
                mh.MSetstack("ebx", 0),
                mh.MConst(0, "ebx"),
                mh.MGetstack(0, RET_REG),
                mh.MReturn(),
            ],
        )
        module = IRModule({"f": func}, {})
        core = MACH.init_core(module, "f")
        mem = Memory()
        # enter allocates the frame
        (out,) = MACH.step(module, core, mem, FLIST)
        assert len(out.fp.ws) == 2
        # the setstack writes frame memory
        core, mem = out.core, out.mem
        (out,) = MACH.step(module, core, mem, FLIST)  # MConst
        core, mem = out.core, out.mem
        (out,) = MACH.step(module, core, mem, FLIST)  # MSetstack
        assert out.fp.ws and all(FLIST.contains(a) for a in out.fp.ws)

    def test_addrstack_offsets(self):
        func = mh.MachFunction(
            "f", 0, 3,
            [
                mh.MAddrStack(2, "ebx"),
                mh.MConst(4, "ecx"),
                mh.MStore("ebx", "ecx"),
                mh.MGetstack(2, RET_REG),
                mh.MReturn(),
            ],
        )
        module = IRModule({"f": func}, {})
        value, _ = run(MACH, module, "f", Memory())
        assert value == VInt(4)
