"""Tests for the CImp object language: parser and semantics."""

import pytest

from repro.common.errors import ParseError
from repro.common.freelist import FreeList
from repro.common.memory import Memory
from repro.common.values import VInt, VPtr
from repro.lang.messages import ENT_ATOM, EXT_ATOM, RetMsg
from repro.lang.steps import Step, StepAbort
from repro.langs.cimp import CIMP, parse_functions, parse_module
from repro.langs.cimp import ast

from tests.helpers import behaviours_of, cimp_program, done_traces

FLIST = FreeList.for_thread(0)


class TestParser:
    def test_fig10a_lock_spec_parses(self):
        funcs = parse_functions(
            "lock(){ r := 0; while(r == 0){ <r := [L]; [L] := 0;> } }"
            "unlock(){ < r := [L]; assert(r == 0); [L] := 1; > }"
        )
        names = {f.name for f in funcs}
        assert names == {"lock", "unlock"}

    def test_precedence(self):
        (f,) = parse_functions("f(){ x := 1 + 2 * 3; }")
        assign = f.body.stmts[0]
        assert isinstance(assign.expr, ast.Bin)
        assert assign.expr.op == "+"
        assert assign.expr.right.op == "*"

    def test_parenthesized(self):
        (f,) = parse_functions("f(){ x := (1 + 2) * 3; }")
        assert f.body.stmts[0].expr.op == "*"

    def test_unary(self):
        (f,) = parse_functions("f(){ x := -1; y := !x; }")
        assert isinstance(f.body.stmts[0].expr, ast.Const)
        assert isinstance(f.body.stmts[1].expr, ast.Un)

    def test_load_store_syntax(self):
        (f,) = parse_functions("f(){ x := [L]; [L] := x + 1; }")
        assert isinstance(f.body.stmts[0].expr, ast.Load)
        assert isinstance(f.body.stmts[1], ast.Store)

    def test_params(self):
        (f,) = parse_functions("f(a, b){ return a + b; }")
        assert f.params == ("a", "b")

    def test_if_else(self):
        (f,) = parse_functions(
            "f(){ if (1 < 2) { x := 1; } else { x := 2; } }"
        )
        assert isinstance(f.body.stmts[0], ast.If)

    def test_comments_skipped(self):
        (f,) = parse_functions("// header\nf(){ skip; // end\n }")
        assert f.name == "f"

    def test_error_has_line(self):
        with pytest.raises(ParseError) as err:
            parse_functions("f(){\n x := ; }")
        assert "line 2" in str(err.value)

    def test_unbalanced_atomic(self):
        with pytest.raises(ParseError):
            parse_functions("f(){ < skip; }")


class TestSemantics:
    def _run(self, src, mem, entry="main", args=()):
        module = parse_module(src, symbols={"C": 100, "D": 101})
        core = CIMP.init_core(module, entry, args)
        trace = []
        for _ in range(200):
            outs = CIMP.step(module, core, mem, FLIST)
            if not outs:
                break
            (out,) = outs
            if isinstance(out, StepAbort):
                return trace, "abort", mem
            trace.append(out.msg)
            core, mem = out.core, out.mem
            if isinstance(out.msg, RetMsg):
                return trace, out.msg.value, mem
        return trace, None, mem

    def test_arith_and_registers(self):
        trace, ret, _ = self._run(
            "main(){ x := 6 * 7; return x; }", Memory()
        )
        assert ret == VInt(42)

    def test_implicit_return_zero(self):
        _, ret, _ = self._run("main(){ skip; }", Memory())
        assert ret == VInt(0)

    def test_params_bound(self):
        module = parse_module("f(a){ return a + 1; }")
        core = CIMP.init_core(module, "f", (VInt(4),))
        (out,) = CIMP.step(module, core, Memory(), FLIST)
        assert out.msg == RetMsg(VInt(5))

    def test_arity_mismatch_aborts(self):
        module = parse_module("f(a){ return a; }")
        core = CIMP.init_core(module, "f", ())
        (out,) = CIMP.step(module, core, Memory(), FLIST)
        assert isinstance(out, StepAbort)

    def test_missing_entry_is_none(self):
        module = parse_module("f(){ skip; }")
        assert CIMP.init_core(module, "g") is None

    def test_symbol_resolves_to_pointer(self):
        mem = Memory({100: VInt(9)})
        _, ret, _ = self._run("main(){ x := [C]; return x; }", mem)
        assert ret == VInt(9)

    def test_store_updates_memory(self):
        mem = Memory({100: VInt(0)})
        _, _, out_mem = self._run("main(){ [C] := 8; }", mem)
        assert out_mem.load(100) == VInt(8)

    def test_atomic_emits_boundaries(self):
        mem = Memory({100: VInt(0)})
        trace, _, _ = self._run("main(){ <[C] := 1;> }", mem)
        assert ENT_ATOM in trace and EXT_ATOM in trace
        assert trace.index(ENT_ATOM) < trace.index(EXT_ATOM)

    def test_assert_true_passes(self):
        _, ret, _ = self._run("main(){ assert(1 == 1); }", Memory())
        assert ret == VInt(0)

    def test_assert_false_aborts(self):
        _, ret, _ = self._run("main(){ assert(1 == 2); }", Memory())
        assert ret == "abort"

    def test_unbound_identifier_aborts(self):
        _, ret, _ = self._run("main(){ x := nosuch; }", Memory())
        assert ret == "abort"

    def test_footprints_report_loads_and_stores(self):
        module = parse_module(
            "main(){ [C] := [D] + 1; }", symbols={"C": 100, "D": 101}
        )
        core = CIMP.init_core(module, "main")
        mem = Memory({100: VInt(0), 101: VInt(4)})
        (out,) = CIMP.step(module, core, mem, FLIST)
        assert out.fp.rs == {101}
        assert out.fp.ws == {100}

    def test_owned_restriction(self):
        module = parse_module(
            "main(){ [D] := 1; }",
            symbols={"C": 100, "D": 101},
            owned={100},
        )
        core = CIMP.init_core(module, "main")
        mem = Memory({100: VInt(0), 101: VInt(0)})
        (out,) = CIMP.step(module, core, mem, FLIST)
        assert isinstance(out, StepAbort)

    def test_deterministic(self):
        module = parse_module(
            "main(){ i := 0; while(i < 3){ i := i + 1; } }"
        )
        core = CIMP.init_core(module, "main")
        mem = Memory()
        while True:
            outs = CIMP.step(module, core, mem, FLIST)
            assert len(outs) <= 1
            if not outs or not isinstance(outs[0], Step):
                break
            core, mem = outs[0].core, outs[0].mem
            if isinstance(outs[0].msg, RetMsg):
                break


class TestWholePrograms:
    def test_div_mod(self):
        prog = cimp_program(
            "main(){ print(7 / 2); print(7 % 2); print(-7 / 2); }",
            ["main"],
        )
        assert done_traces(behaviours_of(prog)) == {(3, 1, -3)}

    def test_division_by_zero_aborts(self):
        prog = cimp_program(
            "main(){ x := [C]; print(1 / x); }", ["main"]
        )
        behs = behaviours_of(prog)
        assert {b.end for b in behs} == {"abort"}
