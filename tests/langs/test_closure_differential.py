"""Differential: the compiled step equals the interpreter, everywhere.

The closure-compilation contract (:mod:`repro.lang.closure`) is that a
staged module's ``step`` is extensionally identical to
``lang.step(module, ...)`` — same outcome lists in the same order, same
messages, footprints, successor cores/memories, and the same abort
*reasons* (``StepAbort.__eq__`` ignores the reason, so we compare it
explicitly here).

We check this by brute force: explore every reachable world of a
program and, at every reachable ``(core, mem, flist)`` configuration of
every thread, run both step functions and compare elementwise. The
MiniC suite compiled through the full pipeline covers all nine
pipeline languages (MiniC, C#minor, Cminor, CminorSel, RTL, LTL,
Linear, Mach, x86-SC); the same x86 module under TSO covers the
buffered dispatcher; CImp programs cover the tenth core plus spawn and
atomic blocks; the abort suite covers the undefined-behaviour paths
the compilers stage (division, wild loads/stores, access checks).
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.lang import closure
from repro.lang.module import ModuleDecl, Program
from repro.lang.steps import StepAbort
from repro.langs.minic import compile_unit, link_units
from repro.langs.x86 import X86TSO
from repro.semantics.engine import thread_expansion, switch_targets
from repro.semantics.world import GlobalContext
from repro.compiler import compile_minic

from tests.helpers import SUITE, cimp_program
from tests.integration.test_differential import (
    cimp_threads,
    minic_programs,
)


@pytest.fixture(autouse=True)
def _fresh_staging():
    """Force staging on (the differential needs the compiled path)."""
    closure.set_enabled(True)
    closure.clear_cache()
    yield
    closure.set_enabled(None)
    closure.clear_cache()


def assert_same_outcomes(lang, module, core, mem, flist, staged):
    """One configuration: interpreter vs compiled, elementwise."""
    want = lang.step(module, core, mem, flist)
    got = staged.step(core, mem, flist)
    assert len(got) == len(want), (lang.name, core, got, want)
    for g, w in zip(got, want):
        assert type(g) is type(w), (lang.name, core, g, w)
        assert g == w, (lang.name, core, g, w)
        if isinstance(w, StepAbort):
            # StepAbort.__eq__ ignores the reason; the compiled path
            # must reproduce the interpreter's diagnostics verbatim.
            assert g.reason == w.reason, (lang.name, core, g, w)
        else:
            assert g.msg == w.msg and g.fp == w.fp
            assert g.core == w.core and g.mem == w.mem
    return want


def explore_differential(program, max_worlds=60000, require_compiled=True):
    """BFS every reachable world, comparing each thread's local step.

    Returns ``(configs_compared, aborts_seen)``. The world successors
    come from the engine (which itself runs the staged path — the
    comparison against ``lang.step`` below is independent of how the
    frontier was produced).
    """
    ctx = GlobalContext(program)
    staged = {}
    for idx, decl in enumerate(ctx.modules):
        staged[idx] = closure.stage(decl.lang, decl.code)
        if require_compiled:
            assert staged[idx].compiled, decl.lang.name
            assert staged[idx].nodes_compiled > 0, decl.lang.name
    seen_worlds = set()
    seen_configs = set()
    frontier = list(ctx.load())
    compared = aborts = 0
    while frontier:
        world = frontier.pop()
        if world in seen_worlds:
            continue
        seen_worlds.add(world)
        assert len(seen_worlds) <= max_worlds, "state-space blow-up"
        for tid in world.live_threads():
            frame = world.threads[tid][-1]
            key = (frame.mod_idx, frame.core, frame.flist, world.mem)
            if key in seen_configs:
                continue
            seen_configs.add(key)
            decl = ctx.module(frame.mod_idx)
            assert_same_outcomes(
                decl.lang, decl.code, frame.core, world.mem,
                frame.flist, staged[frame.mod_idx],
            )
        for result in thread_expansion(ctx, world)[1] or []:
            nxt = getattr(result, "world", None)
            if nxt is None:
                aborts += 1
            else:
                frontier.append(nxt)
        for tid in switch_targets(world, include_self=False):
            frontier.append(world.with_current(tid))
        compared += 1
    return len(seen_configs), aborts


def _stage_program(stage, genv, entries=("main",)):
    return Program(
        [ModuleDecl(stage.lang, genv, stage.module)], list(entries)
    )


class TestPipelineStages:
    """Every suite program, every pipeline language."""

    @pytest.mark.parametrize("name", sorted(SUITE))
    def test_all_stages(self, name):
        mods, genvs, _ = link_units([compile_unit(SUITE[name])])
        result = compile_minic(mods[0])
        for stage in result.stages:
            configs, _ = explore_differential(
                _stage_program(stage, genvs[0])
            )
            assert configs > 0, stage.name

    def test_optimized_rtl(self):
        # ConstProp/CSE/Deadcode reshape the RTL graphs; the compiled
        # dispatch must agree on those shapes too.
        mods, genvs, _ = link_units([compile_unit(SUITE["loops"])])
        result = compile_minic(mods[0], optimize=True)
        for stage in result.stages:
            explore_differential(_stage_program(stage, genvs[0]))


class TestX86TSO:
    """The buffered dispatcher: same module, TSO memory model."""

    @pytest.mark.parametrize("name", ["globals", "pointers"])
    def test_tso_target(self, name):
        mods, genvs, _ = link_units([compile_unit(SUITE[name])])
        target = compile_minic(mods[0]).target
        program = Program(
            [ModuleDecl(X86TSO, genvs[0], target.module)], ["main"]
        )
        configs, _ = explore_differential(program)
        assert configs > 0


class TestCImp:
    """The object-language core: spawn, atomic blocks, asserts."""

    def test_interleavings(self):
        prog = cimp_program(
            "t1(){ x := [C]; [C] := x + 1; } t2(){ [C] := 7; }",
            ["t1", "t2"],
        )
        configs, _ = explore_differential(prog)
        assert configs > 0

    def test_atomic_and_assert(self):
        prog = cimp_program(
            "t1(){ <x := [C]; [C] := x + 1;> assert (x >= 0); }"
            " t2(){ <[C] := [C] + 1;> }",
            ["t1", "t2"],
        )
        explore_differential(prog)

    def test_spawn(self):
        prog = cimp_program(
            "main(){ spawn worker; print(1); } worker(){ [C] := 2; }",
            ["main"],
        )
        explore_differential(prog)

    def test_failed_assert_reason(self):
        prog = cimp_program("main(){ assert (0 == 1); }", ["main"])
        _, aborts = explore_differential(prog)
        assert aborts > 0


class TestHypothesisDifferential:
    """Random programs: the fixed suites pin known node shapes; the
    hypothesis generators (shared with the end-to-end differential in
    ``tests/integration/test_differential.py``) search for shapes the
    per-core compilers mis-stage."""

    # The autouse staging fixture is function-scoped; each example
    # re-enables staging itself, so sharing it across examples is fine.
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    @given(minic_programs())
    def test_random_minic_through_pipeline(self, source):
        closure.set_enabled(True)
        mods, genvs, _ = link_units([compile_unit(source)])
        result = compile_minic(mods[0], optimize=True)
        for stage in result.stages:
            configs, _ = explore_differential(
                _stage_program(stage, genvs[0])
            )
            assert configs > 0, stage.name

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    @given(cimp_threads())
    def test_random_cimp_interleavings(self, source):
        closure.set_enabled(True)
        prog = cimp_program(source, ["t1", "t2"])
        configs, _ = explore_differential(prog)
        assert configs > 0


#: Undefined behaviour the compilers stage: each program aborts on at
#: least one path, and the differential asserts the staged abort reason
#: matches the interpreter's at every stage of the pipeline.
ABORT_SUITE = {
    "div_zero": """
        void main() {
          int z = 0;
          print(10 / z);
        }
    """,
    "mod_zero": """
        void main() {
          int z = 0;
          print(10 % z);
        }
    """,
}


class TestAbortReasons:
    @pytest.mark.parametrize("name", sorted(ABORT_SUITE))
    def test_all_stages_abort_identically(self, name):
        mods, genvs, _ = link_units([compile_unit(ABORT_SUITE[name])])
        result = compile_minic(mods[0])
        for stage in result.stages:
            _, aborts = explore_differential(
                _stage_program(stage, genvs[0])
            )
            assert aborts > 0, stage.name

    def test_forbidden_global_access(self):
        # A module storing to an address it does not own: the staged
        # access check (resolved at compile time when the forbidden set
        # is non-empty) must reproduce the interpreter's exact abort
        # reason at every stage.
        mods, genvs, _ = link_units(
            [compile_unit("int g = 0; void main() { g = 1; }")]
        )
        addr = genvs[0].address_of("g")
        result = compile_minic(mods[0].with_forbidden(frozenset({addr})))
        for stage in result.stages:
            _, aborts = explore_differential(
                _stage_program(stage, genvs[0])
            )
            assert aborts > 0, stage.name
