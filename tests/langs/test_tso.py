"""Tests for the x86-TSO machine: store buffering, flushes, fences,
and the classic store-buffer (SB / Dekker) litmus test."""

from repro.common.freelist import FreeList
from repro.common.memory import Memory
from repro.common.values import VInt
from repro.lang.module import GlobalEnv, ModuleDecl, Program
from repro.lang.steps import Step
from repro.lang.messages import is_silent
from repro.langs.ir.base import IRModule
from repro.langs.x86 import X86TSO, X86SC, X86Function
from repro.langs.x86 import ast as x

from tests.helpers import behaviours_of, done_traces

FLIST = FreeList.for_thread(0)
A, B = 30, 31


def module_of(*funcs, symbols=None):
    return IRModule(
        {f.name: f for f in funcs}, symbols or {"a": A, "b": B}
    )


class TestBuffering:
    def test_store_goes_to_buffer(self):
        f = X86Function("f", 0, [
            x.Pmov_ri("ebx", 1),
            x.Pmov_mr(("global", "a"), "ebx"),
            x.Pret(),
        ])
        module = module_of(f)
        mem = Memory({A: VInt(0)})
        core = X86TSO.init_core(module, "f")
        (out,) = X86TSO.step(module, core, mem, FLIST)  # mov_ri
        core, mem = out.core, out.mem
        outs = X86TSO.step(module, core, mem, FLIST)  # the store
        store = [o for o in outs if isinstance(o, Step)][0]
        assert store.core.buffer == ((A, VInt(1)),)
        assert store.mem.load(A) == VInt(0), "store must be buffered"
        assert store.fp.is_empty()

    def test_flush_is_nondeterministic_outcome(self):
        f = X86Function("f", 0, [
            x.Pmov_ri("ebx", 1),
            x.Pmov_mr(("global", "a"), "ebx"),
            x.Pmov_ri("ecx", 2),
            x.Pret(),
        ])
        module = module_of(f)
        mem = Memory({A: VInt(0)})
        core = X86TSO.init_core(module, "f")
        for _ in range(2):  # mov_ri; store
            outs = X86TSO.step(module, core, mem, FLIST)
            step = [o for o in outs if isinstance(o, Step)][0]
            core, mem = step.core, step.mem
        outs = X86TSO.step(module, core, mem, FLIST)
        # Instruction outcome + flush outcome.
        assert len(outs) == 2
        flush = [
            o for o in outs if isinstance(o, Step) and o.fp.ws
        ]
        assert flush and flush[0].mem.load(A) == VInt(1)

    def test_own_store_forwarded_to_load(self):
        f = X86Function("f", 0, [
            x.Pmov_ri("ebx", 1),
            x.Pmov_mr(("global", "a"), "ebx"),
            x.Pmov_rm("eax", ("global", "a")),
            x.Pret(),
        ])
        module = module_of(f)
        mem = Memory({A: VInt(0)})
        core = X86TSO.init_core(module, "f")
        # Drive only instruction outcomes (never flush).
        for _ in range(2):
            outs = X86TSO.step(module, core, mem, FLIST)
            step = [o for o in outs if isinstance(o, Step)][0]
            core, mem = step.core, step.mem
        outs = X86TSO.step(module, core, mem, FLIST)
        load = [
            o
            for o in outs
            if isinstance(o, Step) and not o.fp.ws
        ][0]
        assert load.core.regs["eax"] == VInt(1)
        assert load.fp.is_empty(), "buffer forwarding reads no memory"

    def test_newest_buffered_write_wins(self):
        f = X86Function("f", 0, [
            x.Pmov_ri("ebx", 1),
            x.Pmov_mr(("global", "a"), "ebx"),
            x.Pmov_ri("ebx", 2),
            x.Pmov_mr(("global", "a"), "ebx"),
            x.Pmov_rm("eax", ("global", "a")),
            x.Pret(),
        ])
        module = module_of(f)
        mem = Memory({A: VInt(0)})
        core = X86TSO.init_core(module, "f")
        for _ in range(4):
            outs = X86TSO.step(module, core, mem, FLIST)
            step = [
                o for o in outs if isinstance(o, Step) and not o.fp.ws
            ][0]
            core, mem = step.core, step.mem
        outs = X86TSO.step(module, core, mem, FLIST)
        load = [
            o for o in outs if isinstance(o, Step) and not o.fp.ws
        ][0]
        assert load.core.regs["eax"] == VInt(2)

    def test_ret_blocks_until_drained(self):
        f = X86Function("f", 0, [
            x.Pmov_ri("eax", 0),
            x.Pmov_ri("ebx", 1),
            x.Pmov_mr(("global", "a"), "ebx"),
            x.Pret(),
        ])
        module = module_of(f)
        mem = Memory({A: VInt(0)})
        core = X86TSO.init_core(module, "f")
        for _ in range(3):
            outs = X86TSO.step(module, core, mem, FLIST)
            step = [
                o for o in outs if isinstance(o, Step) and not o.fp.ws
            ][0]
            core, mem = step.core, step.mem
        # At Pret with a non-empty buffer: only the flush is offered.
        outs = X86TSO.step(module, core, mem, FLIST)
        assert len(outs) == 1
        assert outs[0].fp.ws == frozenset({A})

    def test_mfence_blocks_until_drained(self):
        f = X86Function("f", 0, [
            x.Pmov_ri("ebx", 1),
            x.Pmov_mr(("global", "a"), "ebx"),
            x.Pmfence(),
            x.Pmov_ri("eax", 0),
            x.Pret(),
        ])
        module = module_of(f)
        mem = Memory({A: VInt(0)})
        core = X86TSO.init_core(module, "f")
        for _ in range(2):
            outs = X86TSO.step(module, core, mem, FLIST)
            step = [
                o for o in outs if isinstance(o, Step) and not o.fp.ws
            ][0]
            core, mem = step.core, step.mem
        outs = X86TSO.step(module, core, mem, FLIST)
        assert len(outs) == 1 and outs[0].fp.ws == frozenset({A})


def _sb_thread(name, mine, other):
    """SB litmus thread: mine := 1; r := other; print(r)."""
    return X86Function(name, 0, [
        x.Pmov_ri("ebx", 1),
        x.Pmov_mr(("global", mine), "ebx"),
        x.Pmov_rm("ecx", ("global", other)),
        x.Pprint("ecx"),
        x.Pmov_ri("eax", 0),
        x.Pret(),
    ])


def _sb_program(lang):
    t1 = _sb_thread("t1", "a", "b")
    t2 = _sb_thread("t2", "b", "a")
    module = IRModule({"t1": t1, "t2": t2}, {"a": A, "b": B})
    ge = GlobalEnv({"a": A, "b": B}, {A: VInt(0), B: VInt(0)})
    return Program([ModuleDecl(lang, ge, module)], ["t1", "t2"])


class TestSBLitmus:
    """The store-buffer litmus test: ``r1 = r2 = 0`` is observable
    under TSO but impossible under SC — the canonical non-SC
    behaviour of x86."""

    def test_sc_forbids_zero_zero(self):
        traces = done_traces(behaviours_of(_sb_program(X86SC)))
        assert (0, 0) not in traces
        assert traces <= {(0, 1), (1, 0), (1, 1)}

    def test_tso_allows_zero_zero(self):
        traces = done_traces(
            behaviours_of(_sb_program(X86TSO), max_states=400000)
        )
        assert (0, 0) in traces, "TSO must exhibit the relaxed outcome"
        # And everything SC can do, TSO can do as well.
        assert {(0, 1), (1, 0), (1, 1)} <= traces
