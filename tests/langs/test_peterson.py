"""Peterson's mutual-exclusion algorithm on the x86 machines.

The canonical demonstration that TSO is weaker than SC *in a way that
breaks real algorithms*: Peterson's lock is correct under SC, but under
TSO the entry-protocol store (``flag[i] := 1``) can still sit in the
store buffer when the other thread reads ``flag[i]`` — both threads
enter the critical section. An ``mfence`` between the store and the
first read restores correctness.

Together with the SB litmus this pins the TSO machine to the standard
x86-TSO model: relaxed enough to break unfenced Peterson, strong
enough that one fence repairs it.
"""

import pytest

from repro.common.values import VInt
from repro.lang.module import GlobalEnv, ModuleDecl, Program
from repro.langs.ir.base import IRModule
from repro.langs.x86 import X86SC, X86TSO, X86Function
from repro.langs.x86 import ast as x

from tests.helpers import behaviours_of, done_traces

FLAG0, FLAG1, TURN, CNT = 40, 41, 42, 43
SYMBOLS = {"flag0": FLAG0, "flag1": FLAG1, "turn": TURN, "cnt": CNT}


def _peterson_thread(name, mine, other, my_id, other_id, fenced):
    code = [
        # flag[i] := 1
        x.Pmov_ri("ebx", 1),
        x.Pmov_mr(("global", mine), "ebx"),
        # turn := j
        x.Pmov_ri("ebx", other_id),
        x.Pmov_mr(("global", "turn"), "ebx"),
    ]
    if fenced:
        code.append(x.Pmfence())
    code += [
        x.Plabel("wait"),
        # while (flag[j] && turn == j) spin
        x.Pmov_rm("eax", ("global", other)),
        x.Pcmp_ri("eax", 0),
        x.Pjcc("e", "enter"),
        x.Pmov_rm("eax", ("global", "turn")),
        x.Pcmp_ri("eax", other_id),
        x.Pjcc("e", "wait"),
        x.Plabel("enter"),
        # critical section: read counter, print, increment
        x.Pmov_rm("eax", ("global", "cnt")),
        x.Pprint("eax"),
        x.Parith_ri("+", "eax", 1),
        x.Pmov_mr(("global", "cnt"), "eax"),
        # flag[i] := 0
        x.Pmov_ri("ebx", 0),
        x.Pmov_mr(("global", mine), "ebx"),
        x.Pmov_ri("eax", 0),
        x.Pret(),
    ]
    return X86Function(name, 0, code)


def peterson_program(lang, fenced):
    t0 = _peterson_thread("t0", "flag0", "flag1", 0, 1, fenced)
    t1 = _peterson_thread("t1", "flag1", "flag0", 1, 0, fenced)
    module = IRModule({"t0": t0, "t1": t1}, SYMBOLS)
    ge = GlobalEnv(
        SYMBOLS,
        {FLAG0: VInt(0), FLAG1: VInt(0), TURN: VInt(0), CNT: VInt(0)},
    )
    return Program([ModuleDecl(lang, ge, module)], ["t0", "t1"])


class TestPetersonSC:
    def test_mutual_exclusion_without_fence(self):
        # The prints are *counter values*: mutual exclusion means the
        # counter is read as 0 then 1, never twice as 0.
        prog = peterson_program(X86SC, fenced=False)
        traces = done_traces(behaviours_of(prog, max_states=800000))
        assert traces == {(0, 1)}, (
            "Peterson is correct under SC even without fences"
        )

    def test_mutual_exclusion_with_fence(self):
        prog = peterson_program(X86SC, fenced=True)
        traces = done_traces(behaviours_of(prog, max_states=800000))
        assert traces == {(0, 1)}


class TestPetersonTSO:
    def test_unfenced_peterson_broken(self):
        prog = peterson_program(X86TSO, fenced=False)
        traces = done_traces(
            behaviours_of(prog, max_states=3000000)
        )
        assert (0, 0) in traces, (
            "under TSO the buffered flag store lets both threads "
            "enter the critical section"
        )

    def test_fence_restores_mutual_exclusion(self):
        prog = peterson_program(X86TSO, fenced=True)
        traces = done_traces(
            behaviours_of(prog, max_states=3000000)
        )
        assert traces == {(0, 1)}, traces
