"""The generic cross-process metrics merge (PR 6).

The parallel explorer's forked workers ship their *entire* registry
dump back to the coordinator, which absorbs it generically: counters
add, gauges max, histograms merge their raw reservoirs. These tests
pin the merge algebra directly on the registry, plus the properties
the wire path depends on: dumps are plain JSON-serializable data, and
merging preserves exact aggregates even through reservoir decimation.
"""

import json
import random

from repro import obs
from repro.obs.metrics import RESERVOIR_CAP, MetricsRegistry


def test_counters_add_across_merge():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.counter("x").inc(3)
    b.counter("x").inc(4)
    b.counter("only_b").inc(1)
    a.merge(b.dump())
    snap = a.snapshot()
    assert snap["counters"]["x"] == 7
    assert snap["counters"]["only_b"] == 1


def test_gauges_take_max_across_merge():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.gauge("depth").set(10)
    b.gauge("depth").set(3)
    b.gauge("other").set(5)
    a.merge(b.dump())
    snap = a.snapshot()
    assert snap["gauges"]["depth"] == 10
    assert snap["gauges"]["other"] == 5


def test_histograms_merge_exact_aggregates():
    a = MetricsRegistry()
    b = MetricsRegistry()
    for v in (1.0, 2.0, 3.0):
        a.histogram("h").observe(v)
    for v in (10.0, 20.0):
        b.histogram("h").observe(v)
    a.merge(b.dump())
    summ = a.snapshot()["histograms"]["h"]
    assert summ["count"] == 5
    assert summ["min"] == 1.0
    assert summ["max"] == 20.0
    assert abs(summ["mean"] - 36.0 / 5) < 1e-9


def test_merge_is_commutative_on_aggregates():
    rng = random.Random(7)
    dumps = []
    for _ in range(3):
        reg = MetricsRegistry()
        for _ in range(100):
            reg.histogram("h").observe(rng.random())
        reg.counter("c").inc(rng.randrange(100))
        dumps.append(reg.dump())
    fwd = MetricsRegistry()
    rev = MetricsRegistry()
    for d in dumps:
        fwd.merge(d)
    for d in reversed(dumps):
        rev.merge(d)
    sf, sr = fwd.snapshot(), rev.snapshot()
    assert sf["counters"] == sr["counters"]
    hf, hr = sf["histograms"]["h"], sr["histograms"]["h"]
    for key in ("count", "min", "max"):
        assert hf[key] == hr[key]
    assert abs(hf["mean"] - hr["mean"]) < 1e-9


def test_merge_through_reservoir_decimation():
    """Merging past the reservoir cap keeps exact count/total/min/max
    and re-decimates the sample instead of growing without bound."""
    a = MetricsRegistry()
    b = MetricsRegistry()
    n = RESERVOIR_CAP // 2 + 10
    for i in range(n):
        a.histogram("h").observe(float(i))
        b.histogram("h").observe(float(i))
    a.merge(b.dump())
    hist = a.histograms["h"]
    assert hist.count == 2 * n
    assert len(hist.values) < RESERVOIR_CAP
    summ = a.snapshot()["histograms"]["h"]
    assert summ["min"] == 0.0
    assert summ["max"] == float(n - 1)


def test_dump_is_json_round_trippable():
    """Worker dumps cross the process boundary: plain data only."""
    reg = MetricsRegistry()
    reg.counter("c").inc(2)
    reg.gauge("g").set(1.5)
    reg.histogram("h").observe(0.25)
    wire = json.loads(json.dumps(reg.dump()))
    other = MetricsRegistry()
    other.merge(wire)
    snap = other.snapshot()
    assert snap["counters"]["c"] == 2
    assert snap["gauges"]["g"] == 1.5
    assert snap["histograms"]["h"]["count"] == 1


def test_module_level_merge_dump_helpers():
    """``obs.dump``/``obs.merge_dump`` are no-ops when metrics are off
    and absorb a worker dump when on (the coordinator-side path)."""
    assert obs.dump() is None
    obs.merge_dump({"counters": {"x": 1}})  # silently ignored
    obs.configure(metrics=True)
    obs.inc("x", 1)
    obs.observe("lat", 0.5)
    worker = MetricsRegistry()
    worker.counter("x").inc(2)
    worker.histogram("lat").observe(1.5)
    obs.merge_dump(worker.dump())
    obs.merge_dump(None)  # tolerated: a worker that ran unmetered
    assert obs.counter_value("x") == 3
    summ = obs.snapshot()["histograms"]["lat"]
    assert summ["count"] == 2
    assert summ["max"] == 1.5
