"""The witness workflow through the CLI: drf --witness-out, replay,
inspect — smoke-tested on a deliberately racy MiniC program."""

import json

import pytest

from repro.cli import main

RACY = """
int x = 0;
void t1() { x = 1; }
void t2() { x = 2; }
"""

SAFE = """
int g = 0;
void main() { g = 1; print(g); }
"""


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.c"
    path.write_text(RACY)
    return str(path)


@pytest.fixture
def safe_file(tmp_path):
    path = tmp_path / "safe.c"
    path.write_text(SAFE)
    return str(path)


class TestDrfWitnessOut:
    def test_witness_written_on_race(
        self, racy_file, tmp_path, capsys
    ):
        out = tmp_path / "w.json"
        assert main(
            ["drf", racy_file, "--threads", "t1,t2",
             "--witness-out", str(out)]
        ) == 1
        stdout = capsys.readouterr().out
        assert "DRF: False" in stdout
        assert "witness:" in stdout
        record = json.loads(out.read_text())
        assert record["type"] == "witness"
        assert record["verdict"] == "race"
        assert record["program"]["threads"] == "t1,t2"

    def test_no_witness_when_drf(self, safe_file, tmp_path, capsys):
        out = tmp_path / "w.json"
        assert main(
            ["drf", safe_file, "--witness-out", str(out)]
        ) == 0
        assert "DRF: True" in capsys.readouterr().out
        assert not out.exists()

    def test_minimize_flag(self, racy_file, tmp_path, capsys):
        plain = tmp_path / "plain.json"
        small = tmp_path / "small.json"
        main(["drf", racy_file, "--threads", "t1,t2",
              "--witness-out", str(plain)])
        main(["drf", racy_file, "--threads", "t1,t2",
              "--witness-out", str(small), "--minimize"])
        rec_plain = json.loads(plain.read_text())
        rec_small = json.loads(small.read_text())
        assert rec_small["minimized"] is True
        assert len(rec_small["schedule"]["steps"]) <= len(
            rec_plain["schedule"]["steps"]
        )


class TestReplayCommand:
    def _witness(self, racy_file, tmp_path):
        out = tmp_path / "w.json"
        main(["drf", racy_file, "--threads", "t1,t2",
              "--witness-out", str(out)])
        return str(out)

    def test_replay_verifies(self, racy_file, tmp_path, capsys):
        witness = self._witness(racy_file, tmp_path)
        # --threads comes from the witness's recorded program info.
        assert main(
            ["replay", racy_file, "--witness", witness]
        ) == 0
        assert "replay: OK" in capsys.readouterr().out

    def test_replay_divergence_exits_nonzero(
        self, racy_file, tmp_path, capsys
    ):
        witness = self._witness(racy_file, tmp_path)
        rec = json.loads(open(witness).read())
        rec["race"]["ws1"] = [424242]
        with open(witness, "w") as handle:
            json.dump(rec, handle)
        assert main(
            ["replay", racy_file, "--witness", witness]
        ) == 1
        assert "DIVERGED" in capsys.readouterr().out

    def test_replay_minimize_and_resave(
        self, racy_file, tmp_path, capsys
    ):
        witness = self._witness(racy_file, tmp_path)
        out = tmp_path / "min.json"
        assert main(
            ["replay", racy_file, "--witness", witness,
             "--minimize", "--witness-out", str(out)]
        ) == 0
        rec = json.loads(out.read_text())
        assert rec["minimized"] is True
        # The minimized artifact replays too.
        assert main(
            ["replay", racy_file, "--witness", str(out)]
        ) == 0


class TestReplayTristateFlags:
    """Replay merges --lock/-O with the witness's program info as a
    tri-state: explicit CLI wins (including the negative forms), an
    omitted flag defers to the witness. The old truthy-or merge made a
    ``lock: true`` witness impossible to replay unlocked."""

    def _locked_witness(self, racy_file, tmp_path):
        out = tmp_path / "w.json"
        main(["drf", racy_file, "--threads", "t1,t2", "--lock",
              "--witness-out", str(out)])
        return str(out)

    def test_replay_flags_default_to_none(self):
        from repro.cli import make_parser

        args = make_parser().parse_args(["replay", "f.c", "--witness", "w"])
        assert args.lock is None and args.optimize is None
        args = make_parser().parse_args(
            ["replay", "f.c", "--witness", "w", "--no-lock",
             "--no-optimize"]
        )
        assert args.lock is False and args.optimize is False
        args = make_parser().parse_args(
            ["replay", "f.c", "--witness", "w", "--lock", "-O"]
        )
        assert args.lock is True and args.optimize is True
        # Other subcommands keep the plain flags: omitted means off.
        args = make_parser().parse_args(["drf", "f.c"])
        assert args.lock is False and args.optimize is False

    def test_locked_witness_replays_without_flags(
        self, racy_file, tmp_path, capsys
    ):
        witness = self._locked_witness(racy_file, tmp_path)
        record = json.loads(open(witness).read())
        assert record["program"]["lock"] is True
        assert main(["replay", racy_file, "--witness", witness]) == 0
        assert "replay: OK" in capsys.readouterr().out

    def test_explicit_no_lock_overrides_the_witness(
        self, racy_file, tmp_path, monkeypatch
    ):
        """--no-lock must actually build the unlocked program even
        when the witness says ``lock: true``."""
        from repro import cli

        witness = self._locked_witness(racy_file, tmp_path)
        seen = {}
        real_build = cli._build

        def spy(path, use_lock):
            seen["lock"] = use_lock
            return real_build(path, use_lock)

        monkeypatch.setattr(cli, "_build", spy)
        main(["replay", racy_file, "--witness", witness, "--no-lock"])
        assert seen["lock"] is False
        main(["replay", racy_file, "--witness", witness])
        assert seen["lock"] is True


class TestInspectCommand:
    def test_inspect_witness(self, racy_file, tmp_path, capsys):
        out = tmp_path / "w.json"
        main(["drf", racy_file, "--threads", "t1,t2",
              "--witness-out", str(out)])
        capsys.readouterr()
        assert main(["inspect", str(out)]) == 0
        text = capsys.readouterr().out
        assert "verdict=race" in text
        assert "t0" in text and "t1" in text

    def test_inspect_trace(self, racy_file, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        main(["drf", racy_file, "--threads", "t1,t2",
              "--trace", str(trace)])
        capsys.readouterr()
        assert main(["inspect", str(trace)]) == 0
        text = capsys.readouterr().out
        assert "trace:" in text
        assert "race.find" in text
