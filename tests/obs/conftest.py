"""Observability tests share process-global state: reset around each."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _reset_obs():
    obs.reset()
    yield
    obs.reset()
