"""Prometheus text exposition of metrics snapshots (PR 6)."""

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import (
    bucket_bounds,
    render_prometheus,
    sanitize_name,
)


def test_sanitize_name():
    assert sanitize_name("explore.states_visited") == (
        "repro_explore_states_visited"
    )
    assert sanitize_name("a-b c/d") == "repro_a_b_c_d"
    # Colons are legal in the exposition grammar.
    assert sanitize_name("a:b") == "repro_a:b"
    # A leading digit gains a guard (relevant without a namespace).
    assert sanitize_name("9lives", namespace="") == "_9lives"


def test_counter_exposition():
    text = render_prometheus({"counters": {"explore.states": 42}})
    assert "# HELP repro_explore_states_total" in text
    assert "# TYPE repro_explore_states_total counter" in text
    assert "\nrepro_explore_states_total 42\n" in text


def test_gauge_exposition():
    text = render_prometheus(
        {"gauges": {"parallel.idle_seconds": 0.25}}
    )
    assert "# TYPE repro_parallel_idle_seconds gauge" in text
    assert "repro_parallel_idle_seconds 0.25" in text


def test_bucket_bounds_deterministic_125_ladder():
    bounds = bucket_bounds(0.003, 0.7)
    assert bounds == sorted(bounds)
    # 1-2-5 mantissas only.
    for b in bounds:
        mant = b
        while mant < 1.0 - 1e-12:
            mant *= 10.0
        while mant >= 10.0 - 1e-9:
            mant /= 10.0
        assert min(
            abs(mant - m) for m in (1.0, 2.0, 5.0)
        ) < 1e-9, bounds
    assert bounds[0] <= 0.003
    assert bounds[-1] >= 0.7
    # Same range -> same ladder, every time.
    assert bounds == bucket_bounds(0.003, 0.7)


def test_histogram_exposition_from_dump():
    reg = MetricsRegistry()
    for v in (0.001, 0.002, 0.004, 0.1, 0.5):
        reg.histogram("lat.seconds").observe(v)
    text = render_prometheus(reg.dump())
    assert "# TYPE repro_lat_seconds histogram" in text
    lines = [
        l for l in text.splitlines()
        if l.startswith("repro_lat_seconds_bucket")
    ]
    assert lines[-1] == 'repro_lat_seconds_bucket{le="+Inf"} 5'
    # Cumulative counts are monotone non-decreasing.
    counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
    assert counts == sorted(counts)
    assert "repro_lat_seconds_count 5" in text
    assert "repro_lat_seconds_sum 0.607" in text


def test_histogram_exposition_degrades_from_summary():
    """A summary-only snapshot still exposes honest buckets: p50, p95
    and max are the only cut points a summary supports."""
    snap = {
        "histograms": {
            "h": {
                "count": 100,
                "min": 1.0,
                "max": 9.0,
                "mean": 4.0,
                "p50": 3.0,
                "p95": 8.0,
            }
        }
    }
    text = render_prometheus(snap)
    assert 'repro_h_bucket{le="3"} 50' in text
    assert 'repro_h_bucket{le="8"} 95' in text
    assert 'repro_h_bucket{le="9"} 100' in text
    assert 'repro_h_bucket{le="+Inf"} 100' in text
    assert "repro_h_sum 400" in text


def test_render_prom_via_obs():
    obs.configure(metrics=True)
    obs.inc("c", 3)
    obs.observe("h", 1.0)
    text = obs.render_prom()
    assert "repro_c_total 3" in text
    assert "repro_h_count 1" in text


def test_empty_snapshot_renders_empty():
    assert render_prometheus({}) == ""


def test_help_lines_describe_known_families():
    snap = {
        "counters": {"intern.table.world.hits": 5},
        "gauges": {
            "heap.graph.sharing_factor": 50.2,
            "some.unknown.metric": 1,
        },
        "histograms": {
            "span.explore.seconds": {
                "count": 1, "min": 0.1, "max": 0.1, "mean": 0.1,
                "p50": 0.1, "p95": 0.1,
            }
        },
    }
    text = render_prometheus(snap)
    assert (
        "# HELP repro_intern_table_world_hits_total "
        "per-intern-table census (hash-consing) "
        "(intern.table.world.hits)" in text
    )
    assert "sharing-aware state-graph deep-size census" in text
    assert "wall-clock span timing (span.explore.seconds)" in text
    # Unknown names keep the generic fallback.
    assert (
        "# HELP repro_some_unknown_metric repro gauge "
        "some.unknown.metric" in text
    )
