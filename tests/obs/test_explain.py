"""The interleaving inspector: witness timelines and trace summaries."""

import io
import json

from repro import obs
from repro.obs.explain import (
    inspect_path,
    racy_addrs,
    render_trace_summary,
    render_witness,
    sniff_artifact,
)
from repro.semantics import (
    GlobalContext,
    PreemptiveSemantics,
    explore,
    find_race,
)
from repro.semantics.witness import (
    capture_abort_schedule,
    record_abort,
    record_race,
    save_witness,
)

from tests.helpers import cimp_program

GUARDED = (
    "t1(){ x := 0; while(x < 2){ x := x + 1; } [C] := 1; }"
    " t2(){ [C] := 2; }"
)


def _race_record():
    ctx = GlobalContext(cimp_program(GUARDED, ["t1", "t2"]))
    witness = find_race(ctx, PreemptiveSemantics())
    return record_race(
        witness, program={"threads": "t1,t2"},
        meta={"max_atomic_steps": 64},
    )


class TestRacyAddrs:
    def test_conflicting_write_starred(self):
        race = {"rs1": [], "ws1": [100], "rs2": [], "ws2": [100]}
        assert racy_addrs(race) == {100}

    def test_read_write_conflict(self):
        race = {"rs1": [100], "ws1": [], "rs2": [], "ws2": [100]}
        assert racy_addrs(race) == {100}

    def test_disjoint_footprints_empty(self):
        race = {"rs1": [1], "ws1": [2], "rs2": [3], "ws2": [4]}
        assert racy_addrs(race) == frozenset()

    def test_no_race_dict(self):
        assert racy_addrs(None) == frozenset()


class TestRenderWitness:
    def test_timeline_has_thread_columns(self):
        text = render_witness(_race_record())
        assert "t0" in text and "t1" in text
        assert "Step" in text and "Footprint" in text
        assert "verdict=race" in text
        assert "semantics=preemptive" in text

    def test_conflict_addresses_starred(self):
        record = _race_record()
        text = render_witness(record)
        hot = racy_addrs(record.race)
        assert hot  # the guarded program really races
        addr = next(iter(hot))
        assert "{}*".format(addr) in text
        assert "conflicting address(es):" in text

    def test_program_info_shown(self):
        text = render_witness(_race_record())
        assert "threads=t1,t2" in text

    def test_empty_schedule_notice(self):
        ctx = GlobalContext(
            cimp_program(
                "t1(){ [C] := 1; } t2(){ [C] := 2; }", ["t1", "t2"]
            )
        )
        record = record_race(find_race(ctx, PreemptiveSemantics()))
        text = render_witness(record)
        assert "empty schedule" in text

    def test_abort_witness_rendered(self):
        ctx = GlobalContext(
            cimp_program(
                "t1(){ [D] := 1; } t2(){ skip; }", ["t1", "t2"],
                symbols={"D": 999}, init={},
            )
        )
        sem = PreemptiveSemantics()
        graph = explore(ctx, sem, 10000)
        record = record_abort(capture_abort_schedule(ctx, sem, graph))
        text = render_witness(record)
        assert "verdict=abort" in text
        assert "ABORT" in text


class TestRenderTraceSummary:
    def _trace_records(self):
        buf = io.StringIO()
        obs.configure(metrics=True, trace=buf)
        with obs.span("explore"):
            obs.inc("explore.states_visited", 5)
        with obs.span("explore"):
            pass
        obs.event("witness.captured", steps=3)
        obs.warn("something odd")
        obs.shutdown()
        return obs.read_trace(io.StringIO(buf.getvalue()))

    def test_span_aggregates(self):
        text = render_trace_summary(self._trace_records())
        assert "explore" in text
        assert "Span" in text and "Count" in text
        assert "schema v1" in text

    def test_events_and_warnings_tallied(self):
        text = render_trace_summary(self._trace_records())
        assert "witness.captured" in text
        assert "something odd" in text

    def test_final_metrics_shown(self):
        text = render_trace_summary(self._trace_records())
        assert "final metrics:" in text
        assert "explore.states_visited" in text

    def test_empty_trace(self):
        assert "0 record(s)" in render_trace_summary([])


class TestSniffAndInspect:
    def test_sniff_witness(self, tmp_path):
        path = tmp_path / "w.json"
        save_witness(str(path), _race_record())
        assert sniff_artifact(str(path)) == "witness"
        assert "verdict=race" in inspect_path(str(path))

    def test_sniff_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        records = [
            {"type": "meta", "version": 1, "clock": "monotonic"},
            {"type": "span", "name": "explore", "sid": 1,
             "parent": None, "ts": 0.0, "dur": 0.25},
        ]
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        assert sniff_artifact(str(path)) == "trace"
        assert "explore" in inspect_path(str(path))

    def test_sniff_and_render_run_manifest(self, tmp_path):
        path = tmp_path / "run.json"
        path.write_text(json.dumps({
            "type": "run-manifest", "version": 1, "command": "drf",
            "argv": ["drf", "p.c"], "started_at": "t0",
            "finished_at": "t1", "wall_seconds": 1.5,
            "exit_status": 0, "verdict": "drf",
            "content_hash": "abc123", "fingerprint": "feedbeef",
            "states": 5028, "states_per_second": 1778.9,
            "config": {"por": True, "jobs": 2},
            "phases": {"explore": 1.2, "closure_compile": 0.1},
        }))
        assert sniff_artifact(str(path)) == "run-manifest"
        text = inspect_path(str(path))
        assert "command=drf" in text and "verdict=drf" in text
        assert "content hash: abc123" in text
        assert "behaviour fingerprint: feedbeef" in text
        assert "5,028" in text and "1,778.9 states/s" in text
        assert "por" in text and "explore" in text

    def test_sniff_and_render_heartbeat(self, tmp_path):
        path = tmp_path / "st.json"
        path.write_text(json.dumps({
            "type": "heartbeat", "version": 1, "pid": 7,
            "time": 0.0, "uptime_seconds": 2.0,
            "interval_seconds": 1.0, "beats": 3, "states": 99,
            "frontier": 4, "rolling_states_per_second": 50.0,
            "overall_states_per_second": 49.5, "phase": "done",
        }))
        assert sniff_artifact(str(path)) == "heartbeat"
        text = inspect_path(str(path))
        assert "phase=done" in text
        assert "99 state(s)" in text

    def test_sniff_and_render_fuzz_findings(self, tmp_path):
        path = tmp_path / "findings.json"
        path.write_text(json.dumps({
            "type": "fuzz-findings", "version": 1,
            "campaign": {"seed": 3, "count": 10},
            "findings": [
                {
                    "kind": "race", "expected": True,
                    "detail": "injected race detected",
                    "input": {"kind": "minic-lock-broken",
                              "index": 2, "seed": 99,
                              "hash": "ab" * 32},
                    "schedule_steps": 17,
                    "witness": "corpus/witnesses/abab.json",
                },
                {
                    "kind": "crash", "expected": False,
                    "detail": "Traceback...\nBoomError: bad",
                    "input": {"kind": "minic-seq", "index": 5,
                              "seed": 7, "hash": "cd" * 32},
                },
            ],
        }))
        assert sniff_artifact(str(path)) == "fuzz-findings"
        text = inspect_path(str(path))
        assert "fuzz findings: 2 total, 1 unexpected" in text
        assert "minic-lock-broken" in text
        assert "NO" in text  # the unexpected row stands out
        assert "BoomError: bad" in text  # last detail line surfaces

    def test_render_empty_findings_log(self, tmp_path):
        path = tmp_path / "findings.json"
        path.write_text(json.dumps({
            "type": "fuzz-findings", "version": 1,
            "campaign": {"seed": 1}, "findings": [],
        }))
        text = inspect_path(str(path))
        assert "fuzz findings: 0 total, 0 unexpected" in text
        assert "seed=1" in text

    def test_sniff_and_render_fuzz_checkpoint(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        path.write_text(json.dumps({
            "type": "fuzz-checkpoint", "version": 1,
            "payload": {
                "generator_version": 1, "seed": 4, "count": 5,
                "kinds": ["minic-seq", "cimp-pair"],
                "done": {"0": "aa", "2": "bb"},
            },
        }))
        assert sniff_artifact(str(path)) == "fuzz-checkpoint"
        text = inspect_path(str(path))
        assert "fuzz checkpoint: 2/5 input(s) finished" in text
        assert "seed=4" in text
        assert "pending index(es): 1, 3, 4" in text

    def test_complete_checkpoint_says_so(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        path.write_text(json.dumps({
            "type": "fuzz-checkpoint", "version": 1,
            "payload": {
                "generator_version": 1, "seed": 0, "count": 1,
                "kinds": ["minic-seq"], "done": {"0": "aa"},
            },
        }))
        assert "campaign complete" in inspect_path(str(path))
