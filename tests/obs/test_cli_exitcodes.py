"""CLI contract tests for PR 5: documented exit codes (0 = ok/DRF,
1 = finding, 2 = usage/internal error), ``--threads`` hygiene,
``--jobs`` plumbing and the witness-metadata ``max_atomic_steps``
bugfix."""

import json

import pytest

from repro.cli import main

RACY = """
int x = 0;
void t1() { x = 1; }
void t2() { x = 2; }
"""

SAFE = """
int g = 0;
void main() { g = 1; print(g); }
"""


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.c"
    path.write_text(RACY)
    return str(path)


@pytest.fixture
def safe_file(tmp_path):
    path = tmp_path / "safe.c"
    path.write_text(SAFE)
    return str(path)


class TestThreadsParsing:
    def test_whitespace_around_entries_accepted(self, racy_file,
                                                capsys):
        assert main(["drf", racy_file, "--threads", "t1, t2"]) == 1
        assert "DRF: False" in capsys.readouterr().out

    @pytest.mark.parametrize("spec", ["t1,t2,", ",t1", "t1,,t2", " ,"])
    def test_empty_entries_rejected(self, racy_file, spec, capsys):
        assert main(["drf", racy_file, "--threads", spec]) == 2
        err = capsys.readouterr().err
        assert "repro: error" in err and "--threads" in err

    def test_unknown_entry_rejected_with_candidates(self, racy_file,
                                                    capsys):
        assert main(["drf", racy_file, "--threads", "t1,bogus"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err
        # A clean argparse-style message listing the known entries,
        # not a raw traceback from deep inside thread creation.
        assert "known entries" in err and "t1" in err

    def test_run_checks_threads_too(self, racy_file, capsys):
        assert main(["run", racy_file, "--threads", "t1,"]) == 2
        assert main(["run", racy_file, "--threads", "nope"]) == 2
        err = capsys.readouterr().err
        assert "nope" in err

    def test_replay_checks_threads_too(self, racy_file, tmp_path,
                                       capsys):
        out = tmp_path / "w.json"
        assert main(["drf", racy_file, "--threads", "t1,t2",
                     "--witness-out", str(out)]) == 1
        assert main(["replay", racy_file, "--witness", str(out),
                     "--threads", "t1,t2,"]) == 2
        capsys.readouterr()


class TestExitCodes:
    def test_zero_on_drf(self, safe_file, capsys):
        assert main(["drf", safe_file]) == 0
        assert "DRF: True" in capsys.readouterr().out

    def test_one_on_race(self, racy_file, capsys):
        assert main(["drf", racy_file, "--threads", "t1,t2"]) == 1
        capsys.readouterr()

    def test_zero_on_run(self, safe_file, capsys):
        assert main(["run", safe_file]) == 0
        capsys.readouterr()

    def test_two_on_internal_error(self, tmp_path, capsys):
        missing = str(tmp_path / "does-not-exist.c")
        assert main(["drf", missing]) == 2
        assert "repro: internal error" in capsys.readouterr().err

    def test_two_on_bad_witness_file(self, racy_file, tmp_path,
                                     capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["replay", racy_file, "--witness",
                     str(bad)]) == 2
        assert "repro: internal error" in capsys.readouterr().err

    def test_usage_errors_exit_two_via_argparse(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["no-such-command"])
        assert exc.value.code == 2
        capsys.readouterr()


class TestJobsFlag:
    def test_drf_jobs_verdicts_match(self, racy_file, safe_file,
                                     capsys):
        assert main(["drf", racy_file, "--threads", "t1,t2",
                     "--jobs", "2"]) == 1
        assert main(["drf", safe_file, "--jobs", "2"]) == 0
        capsys.readouterr()

    def test_run_jobs_output_matches_sequential(self, racy_file,
                                                capsys):
        assert main(["run", racy_file, "--threads", "t1,t2"]) == 0
        seq = capsys.readouterr().out
        assert main(["run", racy_file, "--threads", "t1,t2",
                     "--jobs", "2"]) == 0
        par = capsys.readouterr().out
        assert seq == par

    def test_parallel_witness_replays(self, racy_file, tmp_path,
                                      capsys):
        out = tmp_path / "w.json"
        assert main(["drf", racy_file, "--threads", "t1,t2",
                     "--jobs", "2", "--witness-out", str(out)]) == 1
        assert main(["replay", racy_file, "--witness",
                     str(out)]) == 0
        assert "replay: OK" in capsys.readouterr().out

    def test_env_default(self, racy_file, capsys, monkeypatch):
        from repro.cli import make_parser

        monkeypatch.setenv("REPRO_JOBS", "3")
        args = make_parser().parse_args(
            ["drf", racy_file, "--threads", "t1,t2"]
        )
        assert args.jobs == 3


class TestWitnessMeta:
    def test_meta_records_actual_bound(self, racy_file, tmp_path,
                                       capsys):
        out = tmp_path / "w.json"
        assert main(["drf", racy_file, "--threads", "t1,t2",
                     "--max-atomic-steps", "16",
                     "--witness-out", str(out)]) == 1
        record = json.loads(out.read_text())
        # The bugfix: previously hardcoded to 64 regardless of the
        # semantics' configured horizon.
        assert record["meta"]["max_atomic_steps"] == 16
        assert main(["replay", racy_file, "--witness",
                     str(out)]) == 0
        capsys.readouterr()


class TestNpdrfCommand:
    def test_zero_when_npdrf(self, safe_file, capsys):
        assert main(["npdrf", safe_file]) == 0
        assert "NPDRF: True" in capsys.readouterr().out

    def test_one_on_nonpreemptive_race(self, racy_file, capsys):
        assert main(["npdrf", racy_file, "--threads", "t1,t2"]) == 1
        assert "NPDRF: False" in capsys.readouterr().out

    def test_ledger_records_npdrf_verdict(self, safe_file, tmp_path,
                                          capsys):
        out = tmp_path / "run.json"
        assert main(["npdrf", safe_file, "--ledger", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["command"] == "npdrf"
        assert doc["verdict"] == "npdrf"
        assert doc["config"]["max_atomic_steps"] == 64
