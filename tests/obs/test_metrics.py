"""Metrics registry: counters, gauges, histogram aggregation."""

from repro.obs.metrics import (
    RESERVOIR_CAP,
    Histogram,
    MetricsRegistry,
)


class TestCounters:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        assert reg.counter("a").value == 5

    def test_counters_independent(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("b", 2)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 1, "b": 2}


class TestGauges:
    def test_set_overwrites(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 10)
        reg.set_gauge("g", 3)
        assert reg.gauge("g").value == 3

    def test_set_max_keeps_high_water(self):
        reg = MetricsRegistry()
        reg.gauge_max("hwm", 10)
        reg.gauge_max("hwm", 3)
        reg.gauge_max("hwm", 12)
        assert reg.gauge("hwm").value == 12


class TestHistograms:
    def test_summary_exact_small(self):
        h = Histogram()
        for v in [1, 2, 3, 4, 100]:
            h.observe(v)
        s = h.summary()
        assert s["count"] == 5
        assert s["min"] == 1
        assert s["max"] == 100
        assert s["mean"] == 22.0
        assert s["p50"] == 3

    def test_p95_upper_tail(self):
        h = Histogram()
        for v in range(101):  # 0..100
            h.observe(v)
        s = h.summary()
        assert s["p50"] == 50
        assert s["p95"] == 95

    def test_empty_summary(self):
        s = Histogram().summary()
        assert s["count"] == 0
        assert s["min"] is None and s["p95"] is None

    def test_reservoir_caps_retained_samples(self):
        h = Histogram()
        n = RESERVOIR_CAP * 2 + 7
        for v in range(n):
            h.observe(v)
        assert h.count == n
        assert len(h.values) < RESERVOIR_CAP
        # Exact stats survive decimation.
        s = h.summary()
        assert s["min"] == 0 and s["max"] == n - 1
        # Percentiles stay approximately right under decimation.
        assert abs(s["p50"] - n / 2) < n * 0.02

    def test_registry_observe(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        reg.observe("h", 3.0)
        assert reg.snapshot()["histograms"]["h"]["mean"] == 2.0


class TestSnapshotReset:
    def test_snapshot_sorted_and_plain(self):
        reg = MetricsRegistry()
        reg.inc("z")
        reg.inc("a")
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.set_gauge("g", 1)
        reg.observe("h", 1)
        reg.reset()
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}
