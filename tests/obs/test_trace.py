"""Tracer: JSON-lines round-trip, span nesting, disabled fast path."""

import io
import json

from repro import obs
from repro.obs.trace import NULL_SPAN, Tracer, read_trace


def _records(buf):
    return [json.loads(line) for line in buf.getvalue().splitlines()]


class TestDisabledFastPath:
    def test_disabled_by_default(self):
        assert obs.enabled is False
        assert not obs.metrics_enabled()
        assert not obs.trace_enabled()

    def test_span_is_shared_null_singleton(self):
        # The disabled path must not allocate: every span() call
        # returns the same no-op object.
        assert obs.span("explore") is NULL_SPAN
        assert obs.span("other", attr=1) is NULL_SPAN

    def test_null_span_protocol(self):
        with obs.span("x") as sp:
            assert sp.set(anything=1) is sp

    def test_recording_helpers_are_noops(self):
        obs.inc("c")
        obs.set_gauge("g", 1)
        obs.gauge_max("g", 2)
        obs.observe("h", 3)
        obs.event("e")
        assert obs.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_counter_value_default(self):
        assert obs.counter_value("missing") == 0
        assert obs.counter_value("missing", default=-1) == -1


class TestTracer:
    def test_meta_header_first(self):
        buf = io.StringIO()
        Tracer(buf)
        rec = _records(buf)[0]
        assert rec["type"] == "meta"
        assert rec["clock"] == "monotonic"

    def test_span_nesting_parent_ids(self):
        buf = io.StringIO()
        tracer = Tracer(buf)
        with tracer.start("outer") as outer:
            with tracer.start("inner") as inner:
                assert inner.parent == outer.sid
            with tracer.start("inner2") as inner2:
                assert inner2.parent == outer.sid
        assert outer.parent is None
        spans = [r for r in _records(buf) if r["type"] == "span"]
        # Inner spans close (and are written) before the outer one.
        assert [s["name"] for s in spans] == ["inner", "inner2", "outer"]
        by_name = {s["name"]: s for s in spans}
        assert by_name["inner"]["parent"] == by_name["outer"]["sid"]
        assert by_name["outer"]["parent"] is None

    def test_monotonic_timestamps_and_durations(self):
        buf = io.StringIO()
        tracer = Tracer(buf)
        with tracer.start("a"):
            pass
        with tracer.start("b"):
            pass
        spans = [r for r in _records(buf) if r["type"] == "span"]
        assert spans[0]["ts"] <= spans[1]["ts"]
        assert all(s["dur"] >= 0 for s in spans)

    def test_event_nested_under_current_span(self):
        buf = io.StringIO()
        tracer = Tracer(buf)
        with tracer.start("outer") as outer:
            tracer.event("tick", {"n": 1})
        recs = _records(buf)
        ev = next(r for r in recs if r["type"] == "event")
        assert ev["parent"] == outer.sid
        assert ev["attrs"] == {"n": 1}

    def test_round_trip_via_read_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.configure(trace=str(path))
        with obs.span("phase", kind="test") as sp:
            sp.set(extra=2)
            obs.event("marker")
        obs.shutdown()
        recs = read_trace(str(path))
        assert recs[0]["type"] == "meta"
        span = next(r for r in recs if r["type"] == "span")
        assert span["name"] == "phase"
        assert span["attrs"] == {"kind": "test", "extra": 2}

    def test_error_spans_marked(self):
        buf = io.StringIO()
        tracer = Tracer(buf)
        try:
            with tracer.start("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        span = next(
            r for r in _records(buf) if r["type"] == "span"
        )
        assert span["error"] == "ValueError"


class TestFacade:
    def test_metrics_only_span_records_duration(self):
        obs.configure(metrics=True)
        with obs.span("phase"):
            pass
        snap = obs.snapshot()
        assert snap["histograms"]["span.phase.seconds"]["count"] == 1

    def test_traced_span_also_feeds_metrics(self):
        buf = io.StringIO()
        obs.configure(metrics=True, trace=buf)
        with obs.span("phase"):
            pass
        assert (
            obs.snapshot()["histograms"]["span.phase.seconds"]["count"]
            == 1
        )
        assert any(
            r["type"] == "span" and r["name"] == "phase"
            for r in _records(buf)
        )

    def test_shutdown_appends_metrics_snapshot(self):
        buf = io.StringIO()
        obs.configure(metrics=True, trace=buf)
        obs.inc("c", 3)
        obs.shutdown()
        tail = _records(buf)[-1]
        assert tail["type"] == "metrics"
        assert tail["data"]["counters"]["c"] == 3
        assert obs.enabled is False

    def test_configure_from_env(self, tmp_path):
        path = tmp_path / "env.jsonl"
        obs.configure_from_env(
            {"REPRO_METRICS": "1", "REPRO_TRACE": str(path)}
        )
        assert obs.metrics_enabled() and obs.trace_enabled()
        obs.shutdown()
        assert read_trace(str(path))[0]["type"] == "meta"

    def test_env_falsy_values_ignored(self):
        obs.configure_from_env({"REPRO_METRICS": "0"})
        assert not obs.enabled

    def test_warn_always_prints(self, capsys):
        obs.warn("something happened")
        assert (
            "repro: warning: something happened"
            in capsys.readouterr().err
        )

    def test_warn_counted_when_enabled(self, capsys):
        obs.configure(metrics=True)
        obs.warn("again")
        assert obs.counter_value("warnings") == 1


class TestWarnRateLimit:
    def test_identical_messages_print_once(self, capsys):
        for _ in range(5):
            obs.warn("same thing")
        err = capsys.readouterr().err
        assert err.count("repro: warning: same thing") == 1

    def test_distinct_messages_all_print(self, capsys):
        obs.warn("first")
        obs.warn("second")
        err = capsys.readouterr().err
        assert "first" in err and "second" in err

    def test_every_occurrence_still_counted(self):
        obs.configure(metrics=True)
        for _ in range(4):
            obs.warn("noisy")
        assert obs.counter_value("warnings") == 4
        assert obs.counter_value("warnings.suppressed") == 3

    def test_every_occurrence_still_traced(self):
        buf = io.StringIO()
        obs.configure(trace=buf)
        for _ in range(3):
            obs.warn("traced")
        events = [
            r for r in _records(buf)
            if r["type"] == "event" and r["name"] == "warning"
        ]
        assert len(events) == 3

    def test_shutdown_prints_suppressed_summary(self, capsys):
        for _ in range(4):
            obs.warn("hot loop")
        obs.shutdown()
        err = capsys.readouterr().err
        assert "suppressed 3 repeat(s)" in err
        assert "hot loop" in err

    def test_shutdown_silent_without_repeats(self, capsys):
        obs.warn("once")
        obs.shutdown()
        err = capsys.readouterr().err
        assert "suppressed" not in err

    def test_reset_clears_dedup(self, capsys):
        obs.warn("resettable")
        obs.reset()
        obs.warn("resettable")
        err = capsys.readouterr().err
        assert err.count("repro: warning: resettable") == 2


class TestMetricsOut:
    def test_snapshot_written_on_shutdown(self, tmp_path):
        path = tmp_path / "metrics.json"
        obs.configure(metrics_out_path=str(path))
        assert obs.metrics_enabled()  # metrics_out implies the registry
        obs.inc("c", 7)
        obs.shutdown()
        snap = json.loads(path.read_text())
        assert snap["counters"]["c"] == 7
        assert set(snap) == {"counters", "gauges", "histograms"}

    def test_file_object_sink(self):
        buf = io.StringIO()
        obs.configure(metrics_out_path=buf)
        obs.inc("k")
        obs.shutdown()
        assert json.loads(buf.getvalue())["counters"]["k"] == 1

    def test_env_var(self, tmp_path):
        path = tmp_path / "env-metrics.json"
        obs.configure_from_env({"REPRO_METRICS_OUT": str(path)})
        assert obs.metrics_enabled()
        obs.inc("from_env", 2)
        obs.shutdown()
        assert (
            json.loads(path.read_text())["counters"]["from_env"] == 2
        )

    def test_not_written_without_configure(self, tmp_path):
        obs.configure(metrics=True)
        obs.inc("c")
        obs.shutdown()  # no metrics_out: nothing to write, no error


class TestReadTraceHardening:
    def _write(self, tmp_path, lines):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_corrupt_lines_skipped(self, tmp_path):
        path = self._write(
            tmp_path,
            [
                '{"type": "meta", "version": 1}',
                "not json at all {{{",
                '{"type": "span", "name": "x"}',
                '{"torn": "lin',
            ],
        )
        records = read_trace(path)
        assert [r["type"] for r in records] == ["meta", "span"]

    def test_skip_count_and_warning(self, tmp_path, capsys):
        obs.configure(metrics=True)
        path = self._write(
            tmp_path, ['{"ok": 1}', "garbage", "more garbage"]
        )
        records = read_trace(path)
        assert len(records) == 1
        assert obs.counter_value("trace.read.skipped_lines") == 2
        assert "corrupt line(s)" in capsys.readouterr().err

    def test_strict_mode_raises(self, tmp_path):
        import pytest

        path = self._write(tmp_path, ['{"ok": 1}', "garbage"])
        with pytest.raises(ValueError):
            read_trace(path, strict=True)

    def test_clean_trace_untouched(self, tmp_path):
        obs.configure(metrics=True)
        path = self._write(
            tmp_path, ['{"a": 1}', "", '{"b": 2}']
        )
        assert len(read_trace(path)) == 2
        assert obs.counter_value("trace.read.skipped_lines") == 0

    def test_file_object_input(self):
        buf = io.StringIO('{"a": 1}\nbroken\n')
        assert len(read_trace(buf)) == 1
