"""The ``repro profile`` report (PR 6).

Unit tests build synthetic trace files (deterministic timings), so the
assertions can be exact; the CLI integration test drives a real
``drf --jobs 2`` run end-to-end and only asserts structure.
"""

import json

import pytest

from repro.cli import main
from repro.obs import profile as prof

RACY = "int x = 0;\nvoid t1() { x = 1; }\nvoid t2() { x = 2; }\n"


def _write_jsonl(path, records):
    with open(str(path), "w") as handle:
        for rec in records:
            handle.write(json.dumps(rec) + "\n")


@pytest.fixture
def synthetic(tmp_path):
    """A main trace + two worker traces + a metrics snapshot."""
    trace = tmp_path / "t.jsonl"
    metrics = {
        "counters": {
            "parallel.wire.bytes_out": 1000,
            "parallel.wire.bytes_in": 900,
            "parallel.wire.memo_hits": 3,
            "parallel.wire.memo_sends": 7,
        },
        "gauges": {"parallel.merge_seconds": 0.05},
        "histograms": {
            "parallel.wire.batch_worlds": {
                "count": 4, "min": 1, "max": 10, "mean": 5.0,
                "p50": 4, "p95": 9,
            }
        },
    }
    _write_jsonl(
        trace,
        [
            {"type": "meta", "version": 1},
            {
                "type": "span", "name": "parallel.find_race",
                "sid": 1, "parent": None, "ts": 0.0, "dur": 1.0,
            },
            {"type": "metrics", "data": metrics},
        ],
    )
    for wid in (0, 1):
        _write_jsonl(
            str(trace) + ".w{}".format(wid),
            [
                {"type": "meta", "version": 1, "attrs": {"wid": wid}},
                # One idle span in the middle half of the run.
                {
                    "type": "span", "name": "parallel.worker.idle",
                    "sid": 2, "parent": 1, "ts": 0.25, "dur": 0.5,
                    "attrs": {"wid": wid},
                },
                {
                    "type": "span", "name": "parallel.worker.run",
                    "sid": 1, "parent": None, "ts": 0.0, "dur": 1.0,
                    "attrs": {"wid": wid},
                },
                {
                    "type": "event", "name": "parallel.worker.phases",
                    "sid": 3, "parent": None, "ts": 1.0,
                    "attrs": {
                        "wid": wid,
                        "wall_seconds": 1.0,
                        "expand_seconds": 0.4,
                        "encode_seconds": 0.05,
                        "decode_seconds": 0.05,
                        "idle_seconds": 0.5,
                    },
                },
            ],
        )
    return trace


def test_load_profile_finds_workers_and_metrics(synthetic):
    profile = prof.load_profile(str(synthetic))
    assert sorted(profile["workers"]) == [0, 1]
    assert profile["metrics"]["counters"]["parallel.wire.bytes_out"] == 1000


def test_phase_rows_and_coverage(synthetic):
    profile = prof.load_profile(str(synthetic))
    rows, totals = prof.phase_rows(profile)
    assert [r["wid"] for r in rows] == [0, 1]
    for r in rows:
        assert r["coverage"] == pytest.approx(1.0)
    assert totals["wall"] == pytest.approx(2.0)
    assert totals["idle"] == pytest.approx(1.0)


def test_self_time_subtracts_children(synthetic):
    profile = prof.load_profile(str(synthetic))
    agg = prof.self_times(profile)
    count, self_s, total_s = agg["parallel.worker.run"]
    assert count == 2
    # Each run span (1.0s) contains one 0.5s idle child.
    assert self_s == pytest.approx(1.0)
    assert total_s == pytest.approx(2.0)


def test_utilization_marks_idle_middle(synthetic):
    profile = prof.load_profile(str(synthetic))
    bars = prof.utilization(profile, width=4)
    assert len(bars) == 2
    for _wid, bar, busy in bars:
        # Busy at the edges, idle in the middle.
        assert bar[0] == "█" and bar[-1] == "█"
        assert bar[1] == "·" and bar[2] == "·"
        assert busy == pytest.approx(0.5)


def test_render_profile_sections(synthetic):
    text = prof.render_profile(prof.load_profile(str(synthetic)))
    assert "per-shard phase breakdown" in text
    assert "per-shard utilization" in text
    assert "top spans by self-time" in text
    assert "wire cost" in text
    assert "parallel.wire.memo_hit_rate" in text
    assert "30.0% (3/10)" in text
    assert "verdict:" in text


def test_metrics_in_overrides_embedded(synthetic, tmp_path):
    override = tmp_path / "m.json"
    override.write_text(json.dumps({"counters": {"only.me": 1}}))
    profile = prof.load_profile(str(synthetic), str(override))
    assert profile["metrics"] == {"counters": {"only.me": 1}}


def test_worker_trace_path_ordering(tmp_path):
    trace = tmp_path / "t.jsonl"
    trace.write_text("")
    for wid in (10, 2, 0):
        (tmp_path / "t.jsonl.w{}".format(wid)).write_text("")
    (tmp_path / "t.jsonl.wx").write_text("")  # not a worker file
    paths = prof.worker_trace_paths(str(trace))
    assert [p.rsplit(".w", 1)[-1] for p in paths] == ["0", "2", "10"]


class TestProfileCLI:
    def test_profile_of_real_parallel_run(self, tmp_path, capsys):
        src = tmp_path / "racy.c"
        src.write_text(RACY)
        trace = tmp_path / "run.jsonl"
        mpath = tmp_path / "m.json"
        assert main(
            [
                "drf", str(src), "--threads", "t1,t2", "--jobs", "2",
                "--trace", str(trace), "--metrics-out", str(mpath),
            ]
        ) == 1  # racy: the finding exit code
        capsys.readouterr()
        assert main(["profile", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "per-shard phase breakdown" in out
        assert "wire cost" in out
        # Reading the inputs must not clobber them (the profile
        # subcommand's positional is not an output trace).
        assert trace.stat().st_size > 0
        assert main(
            ["profile", str(trace), "--metrics-in", str(mpath)]
        ) == 0

    def test_compile_phase_and_closure_counters(
        self, tmp_path, capsys, monkeypatch
    ):
        """Closure compilation surfaces as its own phase column and
        its counters flow through the worker metrics merge."""
        # Pin staging on: this test meters the compile phase, so it
        # must compile even on the REPRO_CLOSURE=0 CI leg.
        monkeypatch.setenv("REPRO_CLOSURE", "1")
        src = tmp_path / "racy.c"
        src.write_text(RACY)
        trace = tmp_path / "run.jsonl"
        mpath = tmp_path / "m.json"
        main(
            [
                "drf", str(src), "--threads", "t1,t2", "--jobs", "2",
                "--trace", str(trace), "--metrics-out", str(mpath),
            ]
        )
        capsys.readouterr()
        assert main(["profile", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Compile" in out
        counters = json.loads(mpath.read_text())["counters"]
        assert counters.get("closure.modules_staged", 0) > 0
        assert counters.get("closure.nodes_compiled", 0) > 0

    def test_profile_prom_output(self, tmp_path, capsys):
        src = tmp_path / "racy.c"
        src.write_text(RACY)
        trace = tmp_path / "run.jsonl"
        main(
            [
                "drf", str(src), "--threads", "t1,t2", "--jobs", "2",
                "--trace", str(trace), "--metrics-out",
                str(tmp_path / "m.json"),
            ]
        )
        capsys.readouterr()
        assert main(
            ["profile", str(trace), "--metrics-format", "prom"]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_parallel_shards_total counter" in out
        assert "repro_parallel_shards_total 2" in out

    def test_worker_traces_are_fork_safe_and_wid_stamped(
        self, tmp_path
    ):
        """Every record of every trace file parses (strict mode: the
        pre-fork flush prevented duplicate buffered lines) and every
        worker span/event carries its shard's ``wid``."""
        from repro.obs import profile as prof_mod
        from repro.obs.trace import read_trace

        src = tmp_path / "racy.c"
        src.write_text(RACY)
        trace = tmp_path / "run.jsonl"
        main(
            [
                "drf", str(src), "--threads", "t1,t2", "--jobs", "2",
                "--trace", str(trace),
            ]
        )
        workers = prof_mod.worker_trace_paths(str(trace))
        assert len(workers) == 2
        read_trace(str(trace), strict=True)
        for wid, path in enumerate(workers):
            records = read_trace(path, strict=True)
            assert records[0]["type"] == "meta"
            for rec in records:
                if rec.get("type") in ("span", "event"):
                    assert rec["attrs"]["wid"] == wid, rec

    def test_profile_missing_trace_is_usage_error(self, tmp_path):
        assert main(["profile", str(tmp_path / "nope.jsonl")]) == 2

    def test_profile_prom_without_metrics_is_usage_error(
        self, tmp_path, capsys
    ):
        trace = tmp_path / "t.jsonl"
        _write_jsonl(trace, [{"type": "meta", "version": 1}])
        assert main(
            ["profile", str(trace), "--metrics-format", "prom"]
        ) == 2


class TestHeapSection:
    METRICS = {
        "counters": {
            "intern.table.world.hits": 90,
            "intern.table.world.misses": 10,
        },
        "gauges": {
            "heap.graph.worlds": 5028,
            "heap.graph.objects": 40000,
            "heap.graph.bytes_unique": 1144000,
            "heap.graph.bytes_if_copied": 57400000,
            "heap.graph.sharing_factor": 50.17,
            "heap.graph.bytes_per_world_unique": 227.6,
            "heap.graph.bytes_per_world_copied": 11418.0,
            "heap.type.World.bytes": 300000,
            "heap.type.World.count": 5028,
            "intern.table.world.size": 6330,
            "intern.table.world.peak_size": 6330,
            "intern.table.world.clears": 0,
            "intern.table.world.hit_rate": 0.9,
            "intern.table.world.collisions_estimate": 12,
            "intern.table.world.table_bytes": 295000,
            "heap.tracemalloc.total.peak_bytes": 9000000,
        },
        "histograms": {},
    }

    def _profile(self, tmp_path, metrics):
        trace = tmp_path / "t.jsonl"
        _write_jsonl(trace, [
            {"type": "meta", "version": 1},
            {"type": "span", "name": "explore", "sid": 1,
             "parent": None, "ts": 0.0, "dur": 1.0},
            {"type": "metrics", "data": metrics},
        ])
        return prof.load_profile(str(trace))

    def test_heap_rows_groups_gauges_and_counters(self):
        graph, per_type, tables, tm = prof.heap_rows(self.METRICS)
        assert graph["sharing_factor"] == 50.17
        assert per_type["World"]["bytes"] == 300000
        # Counters (hits/misses) merge into the gauge-backed rows.
        assert tables["world"]["size"] == 6330
        assert tables["world"]["hits"] == 90
        assert tm["total.peak_bytes"] == 9000000

    def test_heap_section_renders(self, tmp_path):
        profile = self._profile(tmp_path, self.METRICS)
        text = prof.render_profile(profile)
        assert "heap (interning census" in text
        assert "sharing factor 50.17x" in text
        assert "World" in text
        assert "Intern table" in text
        assert "90.0%" in text

    def test_heap_section_omitted_without_census(self, tmp_path):
        profile = self._profile(
            tmp_path, {"counters": {}, "gauges": {}, "histograms": {}}
        )
        assert "heap (" not in prof.render_profile(profile)
