"""Heartbeat status: writer gating, atomicity, merging, rendering."""

import json
import os
import threading

import pytest

from repro.cli import main
from repro.obs import status
from repro.obs.status import StatusWriter, write_atomic


@pytest.fixture(autouse=True)
def _reset_status():
    status.reset()
    yield
    status.reset()


class FakeClock:
    """An injectable monotonic clock the tests advance by hand."""

    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _read(path):
    with open(str(path)) as handle:
        return json.load(handle)


class TestStatusWriter:
    def test_first_beat_is_immediate(self, tmp_path):
        clock = FakeClock()
        hb = StatusWriter(tmp_path / "st.json", interval=1.0,
                          clock=clock)
        assert hb.beat(states=1, frontier=1) is True
        doc = _read(tmp_path / "st.json")
        assert doc["type"] == "heartbeat"
        assert doc["states"] == 1
        assert doc["beats"] == 1

    def test_beat_gates_on_interval(self, tmp_path):
        clock = FakeClock()
        hb = StatusWriter(tmp_path / "st.json", interval=1.0,
                          clock=clock)
        assert hb.beat(states=1) is True
        clock.advance(0.5)
        assert hb.due() is False
        assert hb.beat(states=2) is False
        clock.advance(0.6)
        assert hb.due() is True
        assert hb.beat(states=3) is True
        doc = _read(tmp_path / "st.json")
        assert doc["states"] == 3
        assert doc["beats"] == 2

    def test_force_ignores_the_gate(self, tmp_path):
        clock = FakeClock()
        hb = StatusWriter(tmp_path / "st.json", interval=10.0,
                          clock=clock)
        hb.force(states=1)
        hb.force(states=2, phase="done")
        doc = _read(tmp_path / "st.json")
        assert doc["states"] == 2
        assert doc["phase"] == "done"
        assert doc["beats"] == 2

    def test_sticky_fields_ride_every_beat(self, tmp_path):
        clock = FakeClock()
        hb = StatusWriter(tmp_path / "st.json", interval=0.0,
                          clock=clock)
        hb.update(phase="explore", semantics="preemptive")
        clock.advance(1.0)
        hb.beat(states=5)
        doc = _read(tmp_path / "st.json")
        assert doc["phase"] == "explore"
        assert doc["semantics"] == "preemptive"

    def test_rolling_rate_uses_the_window(self, tmp_path):
        clock = FakeClock()
        hb = StatusWriter(tmp_path / "st.json", interval=1.0,
                          clock=clock)
        hb.beat(states=0)
        for states in (100, 200, 300):
            clock.advance(1.0)
            assert hb.beat(states=states)
        doc = _read(tmp_path / "st.json")
        assert doc["rolling_states_per_second"] == pytest.approx(100.0)
        assert doc["overall_states_per_second"] == pytest.approx(100.0)

    def test_budget_used_and_eta(self, tmp_path):
        clock = FakeClock()
        hb = StatusWriter(tmp_path / "st.json", interval=1.0,
                          clock=clock)
        hb.update(budget=1000)
        hb.beat(states=0)
        clock.advance(1.0)
        hb.beat(states=100)
        doc = _read(tmp_path / "st.json")
        assert doc["budget_used"] == pytest.approx(0.1)
        # 900 remaining at 100 states/s rolling.
        assert doc["eta_budget_seconds"] == pytest.approx(9.0)

    def test_states_and_frontier_are_sticky_when_omitted(
        self, tmp_path
    ):
        clock = FakeClock()
        hb = StatusWriter(tmp_path / "st.json", interval=0.0,
                          clock=clock)
        hb.beat(states=7, frontier=3)
        clock.advance(1.0)
        hb.force(phase="done")
        doc = _read(tmp_path / "st.json")
        assert doc["states"] == 7
        assert doc["frontier"] == 3

    def test_wid_appears_in_shard_documents(self, tmp_path):
        hb = StatusWriter(tmp_path / "st.json.w2", interval=0.0, wid=2)
        hb.beat(states=1)
        assert _read(tmp_path / "st.json.w2")["wid"] == 2

    def test_intern_census_is_sampled(self, tmp_path):
        hb = StatusWriter(tmp_path / "st.json", interval=0.0)
        hb.beat(states=1)
        doc = _read(tmp_path / "st.json")
        assert "world" in doc["intern"]


class TestWriteAtomic:
    def test_no_tmp_left_behind(self, tmp_path):
        target = tmp_path / "doc.json"
        write_atomic(str(target), {"a": 1})
        assert _read(target) == {"a": 1}
        assert os.listdir(str(tmp_path)) == ["doc.json"]

    def test_rewrite_never_tears(self, tmp_path):
        """A concurrent reader must always parse a complete document."""
        target = tmp_path / "doc.json"
        payload = {"filler": "x" * 4096, "n": 0}
        write_atomic(str(target), payload)
        stop = threading.Event()
        failures = []
        reads = [0]

        def poll():
            while not stop.is_set():
                try:
                    doc = _read(target)
                except ValueError:
                    failures.append("torn")
                    continue
                reads[0] += 1
                if len(doc.get("filler", "")) != 4096:
                    failures.append("truncated")

        thread = threading.Thread(target=poll)
        thread.start()
        try:
            for n in range(300):
                payload["n"] = n
                write_atomic(str(target), payload)
        finally:
            stop.set()
            thread.join()
        assert failures == []
        assert reads[0] > 0


class TestSingleton:
    def test_configure_and_reset(self, tmp_path):
        hb = status.configure(tmp_path / "st.json", interval=0.25)
        assert status.writer is hb
        assert hb.interval == 0.25
        status.reset()
        assert status.writer is None

    def test_configure_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(status.ENV_STATUS,
                           str(tmp_path / "env.json"))
        monkeypatch.setenv(status.ENV_STATUS_INTERVAL, "0.5")
        hb = status.configure_from_env()
        assert hb is status.writer
        assert hb.interval == 0.5

    def test_env_absent_is_noop(self, monkeypatch):
        monkeypatch.delenv(status.ENV_STATUS, raising=False)
        assert status.configure_from_env() is None

    def test_interval_from_env_bad_value(self, monkeypatch):
        monkeypatch.setenv(status.ENV_STATUS_INTERVAL, "not-a-float")
        assert status.interval_from_env() == status.DEFAULT_INTERVAL

    def test_finalize_stamps_done_and_drops_writer(self, tmp_path):
        status.configure(tmp_path / "st.json", interval=10.0)
        status.writer.beat(states=5)
        status.finalize(exit_status=1)
        doc = _read(tmp_path / "st.json")
        assert doc["phase"] == "done"
        assert doc["exit_status"] == 1
        assert status.writer is None

    def test_finalize_without_writer_is_noop(self):
        status.reset()
        status.finalize(exit_status=0)


class TestCleanupArtifacts:
    """The stale-artifact sweep on main-writer init (regression for
    leaked ``FILE.<pid>.tmp`` temps and phantom ``FILE.w<wid>`` shard
    heartbeats surviving into the next run's merge)."""

    def _litter(self, tmp_path):
        st = tmp_path / "st.json"
        stale = [
            tmp_path / "st.json.1234.tmp",      # orphaned temp write
            tmp_path / "st.json.w0",            # old shard heartbeat
            tmp_path / "st.json.w7",
            tmp_path / "st.json.w7.5678.tmp",   # a shard's own temp
        ]
        for path in stale:
            path.write_text("{}")
        keep = [
            tmp_path / "st.json.bak",           # not ours: keep
            tmp_path / "other.json.w0",         # different heartbeat
        ]
        for path in keep:
            path.write_text("{}")
        return st, stale, keep

    def test_sweep_removes_only_our_artifacts(self, tmp_path):
        st, stale, keep = self._litter(tmp_path)
        removed = status.cleanup_artifacts(st)
        assert sorted(removed) == sorted(str(p) for p in stale)
        for path in stale:
            assert not path.exists()
        for path in keep:
            assert path.exists()

    def test_main_configure_sweeps(self, tmp_path):
        st, stale, _keep = self._litter(tmp_path)
        status.configure(st, interval=0.0)
        for path in stale:
            assert not path.exists()

    def test_shard_configure_does_not_sweep(self, tmp_path):
        """By the time a worker configures its own shard file the
        parent already swept; a worker sweeping again would race its
        siblings' live shard documents."""
        st, stale, _keep = self._litter(tmp_path)
        status.configure(status.shard_path(st, 3), interval=0.0,
                         wid=3)
        for path in stale:
            assert path.exists()

    def test_phantom_shards_do_not_haunt_the_merge(self, tmp_path):
        # A previous --jobs 4 run left shards w0..w3; the next run is
        # --jobs 1. Without the sweep, merge_shards(jobs=1) still only
        # reads w0, but a watcher globbing FILE.w* would see ghosts —
        # and a *wider* merge would read stale state counts.
        st = tmp_path / "st.json"
        for wid in range(4):
            old = StatusWriter(status.shard_path(st, wid),
                               interval=0.0, wid=wid)
            old.beat(states=100)
        hb = status.configure(st, interval=0.0)
        shard = StatusWriter(status.shard_path(st, 0), interval=0.0,
                             wid=0)
        shard.beat(states=7)
        status.merge_shards(hb, jobs=2)
        doc = _read(st)
        assert doc["states"] == 7
        rows = {row["wid"]: row for row in doc["shards"]}
        # w1 exists as a never-beaten row, not the stale 100-state one.
        assert rows[1]["beats"] == 0

    def test_missing_directory_is_harmless(self, tmp_path):
        assert status.cleanup_artifacts(
            tmp_path / "nowhere" / "st.json"
        ) == []


class TestMergeShards:
    def test_totals_and_rows(self, tmp_path):
        clock = FakeClock()
        hb = StatusWriter(tmp_path / "st.json", interval=0.0,
                          clock=clock)
        for wid, states in ((0, 10), (1, 32)):
            shard = StatusWriter(
                status.shard_path(hb.path, wid), interval=0.0, wid=wid
            )
            shard.update(phase="expand")
            shard.beat(states=states, frontier=wid)
        status.merge_shards(hb, jobs=3, alive={0: True, 1: True,
                                               2: False})
        doc = _read(tmp_path / "st.json")
        assert doc["states"] == 42
        assert doc["frontier"] == 1
        assert doc["jobs"] == 3
        rows = {row["wid"]: row for row in doc["shards"]}
        assert rows[0]["states"] == 10 and rows[0]["alive"] is True
        assert rows[1]["phase"] == "expand"
        # The never-beaten shard appears rather than vanishing.
        assert rows[2]["beats"] == 0 and rows[2]["alive"] is False
        assert rows[2]["age_seconds"] is None

    def test_shard_rows_survive_finalize(self, tmp_path):
        hb = status.configure(tmp_path / "st.json", interval=0.0)
        shard = StatusWriter(status.shard_path(hb.path, 0),
                             interval=0.0, wid=0)
        shard.beat(states=9)
        status.merge_shards(hb, jobs=1, phase="merged")
        status.finalize(exit_status=0)
        doc = _read(tmp_path / "st.json")
        assert doc["phase"] == "done"
        assert doc["shards"][0]["states"] == 9


class TestRenderStatus:
    def _doc(self, **extra):
        doc = {
            "type": "heartbeat", "version": 1, "pid": 42,
            "time": 1000.0, "uptime_seconds": 3.5,
            "interval_seconds": 1.0, "beats": 4, "states": 5028,
            "frontier": 17, "rolling_states_per_second": 1500.0,
            "overall_states_per_second": 1436.6, "phase": "explore",
        }
        doc.update(extra)
        return doc

    def test_basic_render(self):
        out = status.render_status(self._doc(), now=1001.0)
        assert "phase=explore" in out
        assert "5,028 state(s)" in out
        assert "1,500.0 states/s rolling" in out
        assert "WARNING" not in out

    def test_stale_beat_warns(self):
        out = status.render_status(self._doc(), now=1100.0)
        assert "WARNING" in out and "100.0s old" in out

    def test_done_never_warns_stale(self):
        out = status.render_status(
            self._doc(phase="done", exit_status=0), now=1100.0
        )
        assert "WARNING" not in out
        assert "exit status: 0" in out

    def test_budget_and_eta_render(self):
        out = status.render_status(
            self._doc(budget=30000, budget_used=0.1676,
                      eta_budget_seconds=17.0),
            now=1001.0,
        )
        assert "budget 5,028/30,000 (16.8%)" in out
        assert "budget exhausted in ~17s" in out

    def test_shard_table_renders(self):
        doc = self._doc(jobs=2, shards=[
            {"wid": 0, "states": 10, "frontier": 1, "phase": "expand",
             "beats": 3, "age_seconds": 0.2, "alive": True},
            {"wid": 1, "states": 0, "frontier": 0, "phase": None,
             "beats": 0, "age_seconds": None, "alive": False},
        ])
        out = status.render_status(doc, now=1001.0)
        assert "Shard" in out and "Beat age" in out
        assert "w0" in out and "yes" in out
        assert "w1" in out and "NO" in out

    def test_intern_tables_line(self):
        out = status.render_status(
            self._doc(intern={"world": 6330, "frame": 90}), now=1001.0
        )
        assert "intern tables:" in out
        assert "world=6,330" in out


QUICKSTART = """
int g = 0;
void main() {
  int i = 0;
  while (i < 5) { g = g + i; i = i + 1; }
  print(g);
}
"""


class TestCliStatus:
    def test_run_writes_heartbeat_under_poller(
        self, tmp_path, capsys, monkeypatch
    ):
        """jobs=1 run with a tiny interval plus a concurrent poller:
        every successful read parses; the final doc says done."""
        monkeypatch.setenv(status.ENV_STATUS_INTERVAL, "0.01")
        src = tmp_path / "p.c"
        src.write_text(QUICKSTART)
        st = tmp_path / "st.json"
        stop = threading.Event()
        failures = []
        reads = [0]

        def poll():
            while not stop.is_set():
                try:
                    with open(str(st)) as handle:
                        json.load(handle)
                except OSError:
                    continue
                except ValueError:
                    failures.append("torn")
                    continue
                reads[0] += 1

        thread = threading.Thread(target=poll)
        thread.start()
        try:
            code = main(["run", str(src), "--status", str(st)])
        finally:
            stop.set()
            thread.join()
        assert code == 0
        assert failures == []
        doc = _read(st)
        assert doc["phase"] == "done"
        assert doc["exit_status"] == 0
        assert doc["states"] > 0

    def test_status_command_renders(self, tmp_path, capsys):
        st = tmp_path / "st.json"
        write_atomic(str(st), {
            "type": "heartbeat", "version": 1, "pid": 1,
            "time": 0.0, "uptime_seconds": 1.0,
            "interval_seconds": 1.0, "beats": 2, "states": 10,
            "frontier": 0, "rolling_states_per_second": None,
            "overall_states_per_second": 10.0, "phase": "done",
            "exit_status": 0,
        })
        assert main(["status", str(st)]) == 0
        out = capsys.readouterr().out
        assert "phase=done" in out

    def test_status_command_watch_exits_on_done(
        self, tmp_path, capsys
    ):
        st = tmp_path / "st.json"
        write_atomic(str(st), {
            "type": "heartbeat", "version": 1, "pid": 1,
            "time": 0.0, "uptime_seconds": 1.0,
            "interval_seconds": 1.0, "beats": 2, "states": 10,
            "frontier": 0, "rolling_states_per_second": None,
            "overall_states_per_second": 10.0, "phase": "done",
        })
        assert main(["status", str(st), "--watch",
                     "--interval", "0.01"]) == 0

    def test_status_command_missing_file_is_usage_error(
        self, tmp_path, capsys
    ):
        assert main(["status", str(tmp_path / "nope.json")]) == 2
        assert "cannot read status file" in capsys.readouterr().err


class TestCliStatusEnv:
    def test_env_var_configures_status(self, tmp_path, monkeypatch,
                                       capsys):
        src = tmp_path / "p.c"
        src.write_text(QUICKSTART)
        st = tmp_path / "st.json"
        monkeypatch.setenv(status.ENV_STATUS, str(st))
        monkeypatch.setenv(status.ENV_STATUS_INTERVAL, "0.01")
        assert main(["run", str(src)]) == 0
        doc = _read(st)
        assert doc["phase"] == "done"
        assert doc["states"] > 0
