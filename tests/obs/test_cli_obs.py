"""CLI observability: --metrics / --trace flags, env-var toggles,
failure capping — smoke-tested on the quickstart program."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.simulation.validate import PassValidation
from repro.simulation.local import SimulationReport

#: The program from examples/quickstart.py.
QUICKSTART = """
int g = 5;
int add(int a, int b) { return a + b; }
void main() {
  int x = 2;
  int y;
  y = add(x, g);
  print(y);
  g = y * 2;
  print(g);
  int i = 0;
  while (i < 3) { print(i); i = i + 1; }
}
"""


@pytest.fixture
def quickstart_file(tmp_path):
    path = tmp_path / "quickstart.c"
    path.write_text(QUICKSTART)
    return str(path)


class TestMetricsFlag:
    def test_run_metrics_prints_explorer_counters(
        self, quickstart_file, capsys
    ):
        assert main(["run", quickstart_file, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "Metric" in out and "Value" in out
        assert "explore.states_visited" in out
        assert "explore.edges.event" in out
        assert "compile.passes" in out
        assert "span.explore.seconds" in out

    def test_validate_metrics_prints_obligations(
        self, quickstart_file, capsys
    ):
        assert main(["validate", quickstart_file, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "validate.obligations.fpmatch" in out
        assert "span.validate.pass.seconds" in out

    def test_metrics_off_no_table(self, quickstart_file, capsys):
        assert main(["run", quickstart_file]) == 0
        out = capsys.readouterr().out
        assert "Metric" not in out
        assert obs.enabled is False

    def test_env_var_toggle(self, quickstart_file, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "1")
        assert main(["run", quickstart_file]) == 0
        assert "explore.states_visited" in capsys.readouterr().out


class TestTraceFlag:
    def test_run_trace_covers_compile_and_explore(
        self, quickstart_file, tmp_path, capsys
    ):
        trace = tmp_path / "run.jsonl"
        assert main(
            ["run", quickstart_file, "--trace", str(trace)]
        ) == 0
        records = [
            json.loads(line)
            for line in trace.read_text().splitlines()
        ]
        assert records[0]["type"] == "meta"
        names = {
            r["name"] for r in records if r["type"] == "span"
        }
        assert {"compile", "compile.pass", "explore", "behaviours"} <= names

    def test_validate_trace_covers_validation(
        self, quickstart_file, tmp_path, capsys
    ):
        trace = tmp_path / "validate.jsonl"
        assert main(
            ["validate", quickstart_file, "--trace", str(trace)]
        ) == 0
        records = [
            json.loads(line)
            for line in trace.read_text().splitlines()
        ]
        names = {
            r["name"] for r in records if r["type"] == "span"
        }
        assert {"compile", "validate", "validate.pass",
                "simulate.entry"} <= names
        # Per-pass spans nest under the validate span.
        spans = [r for r in records if r["type"] == "span"]
        validate_sid = next(
            s["sid"] for s in spans if s["name"] == "validate"
        )
        assert any(
            s["parent"] == validate_sid
            for s in spans
            if s["name"] == "validate.pass"
        )

    def test_trace_plus_metrics_appends_snapshot(
        self, quickstart_file, tmp_path, capsys
    ):
        trace = tmp_path / "both.jsonl"
        assert main(
            ["run", quickstart_file, "--metrics",
             "--trace", str(trace)]
        ) == 0
        records = [
            json.loads(line)
            for line in trace.read_text().splitlines()
        ]
        assert records[-1]["type"] == "metrics"
        assert (
            records[-1]["data"]["counters"]["explore.states_visited"]
            > 0
        )


class TestValidateFailureCap:
    def _fake_validations(self, nfailures):
        report = SimulationReport()
        for i in range(nfailures):
            report.fail("failure {}".format(i))
        return [PassValidation("Cshmgen", report, 0.01)]

    def test_more_suffix(self, quickstart_file, capsys, monkeypatch):
        monkeypatch.setattr(
            "repro.cli.validate_compilation",
            lambda *a, **k: self._fake_validations(7),
        )
        assert main(["validate", quickstart_file]) == 1
        out = capsys.readouterr().out
        assert out.count("failure") == 3
        assert "(+4 more)" in out

    def test_max_failures_flag(
        self, quickstart_file, capsys, monkeypatch
    ):
        monkeypatch.setattr(
            "repro.cli.validate_compilation",
            lambda *a, **k: self._fake_validations(7),
        )
        assert main(
            ["validate", quickstart_file, "--max-failures", "5"]
        ) == 1
        out = capsys.readouterr().out
        assert out.count("failure") == 5
        assert "(+2 more)" in out

    def test_no_suffix_when_under_cap(
        self, quickstart_file, capsys, monkeypatch
    ):
        monkeypatch.setattr(
            "repro.cli.validate_compilation",
            lambda *a, **k: self._fake_validations(2),
        )
        assert main(["validate", quickstart_file]) == 1
        out = capsys.readouterr().out
        assert out.count("failure") == 2
        assert "more)" not in out


class TestMetricsOutFlag:
    def test_snapshot_file_written(self, quickstart_file, tmp_path):
        out = tmp_path / "metrics.json"
        assert main(
            ["run", quickstart_file, "--metrics-out", str(out)]
        ) == 0
        snap = json.loads(out.read_text())
        assert snap["counters"]["explore.states_visited"] > 0

    def test_no_stdout_table_without_metrics_flag(
        self, quickstart_file, tmp_path, capsys
    ):
        out = tmp_path / "metrics.json"
        assert main(
            ["run", quickstart_file, "--metrics-out", str(out)]
        ) == 0
        assert "Metric" not in capsys.readouterr().out

    def test_combines_with_metrics_flag(
        self, quickstart_file, tmp_path, capsys
    ):
        out = tmp_path / "metrics.json"
        assert main(
            ["run", quickstart_file, "--metrics",
             "--metrics-out", str(out)]
        ) == 0
        assert "explore.states_visited" in capsys.readouterr().out
        assert out.exists()

    def test_env_var(self, quickstart_file, tmp_path, monkeypatch):
        out = tmp_path / "env.json"
        monkeypatch.setenv("REPRO_METRICS_OUT", str(out))
        assert main(["run", quickstart_file]) == 0
        assert "counters" in json.loads(out.read_text())
