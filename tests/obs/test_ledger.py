"""Run ledger: manifests, content hashing, deltas, `repro compare`."""

import copy
import json

import pytest

from repro.cli import main
from repro.obs import ledger, status
from repro.obs.ledger import (
    compare_manifests,
    content_hash,
    fingerprint_behaviours,
    load_manifest,
    phase_seconds,
    ratio_delta,
)


@pytest.fixture(autouse=True)
def _reset_ledger():
    ledger.reset()
    status.reset()
    yield
    ledger.reset()
    status.reset()


class TestRatioDelta:
    def test_zero_endpoints(self):
        assert ratio_delta(0.0, 0.0) == 0.0
        assert ratio_delta(5.0, 0.0) == -1.0
        assert ratio_delta(0.0, 5.0, True) == 1.0
        assert ratio_delta(0.0, 5.0, False) == -1.0

    def test_higher_is_better_math(self):
        assert ratio_delta(100.0, 150.0, True) == pytest.approx(0.5)
        assert ratio_delta(100.0, 50.0, True) == pytest.approx(-0.5)

    def test_lower_is_better_is_ratio_symmetric(self):
        # A 1.5x slowdown in seconds reads the same as a 1.5x
        # throughput loss: -(1/3), measured against the new value.
        assert ratio_delta(1.0, 1.5, False) == pytest.approx(-1 / 3)
        assert ratio_delta(1.5, 1.0, False) == pytest.approx(0.5)


class TestFingerprint:
    def test_order_independent_and_stable(self):
        a = fingerprint_behaviours(["b1", "b2", "b3"])
        b = fingerprint_behaviours(["b3", "b1", "b2"])
        assert a == b
        assert len(a) == 16

    def test_sensitive_to_content(self):
        assert fingerprint_behaviours(["x"]) != fingerprint_behaviours(
            ["y"]
        )


class TestContentHash:
    def test_stable_for_same_input(self, tmp_path):
        src = tmp_path / "p.c"
        src.write_text("int g;\n")
        pipeline = ("ConstProp", "CSE")
        assert content_hash(str(src), pipeline) == content_hash(
            str(src), pipeline
        )

    def test_sensitive_to_content_pipeline_and_gates(self, tmp_path):
        src = tmp_path / "p.c"
        src.write_text("int g;\n")
        base = content_hash(str(src), ("A",), ("g1",))
        src.write_text("int h;\n")
        assert content_hash(str(src), ("A",), ("g1",)) != base
        src.write_text("int g;\n")
        assert content_hash(str(src), ("B",), ("g1",)) != base
        assert content_hash(str(src), ("A",), ("g2",)) != base

    def test_missing_file_hashes_the_path(self, tmp_path):
        # A vanished input must not crash manifest writing.
        h = content_hash(str(tmp_path / "gone.c"))
        assert len(h) == 64


class TestPhaseSeconds:
    def test_extracts_span_totals(self):
        snapshot = {
            "histograms": {
                "span.explore.seconds": {
                    "count": 2, "min": 0.1, "max": 0.4, "total": 0.5,
                    "values": [0.1, 0.4],
                },
                "span.compile.pass.seconds": {
                    "count": 0, "min": None, "max": None, "total": 0.0,
                    "values": [],
                },
                "wire.bytes": {"count": 3, "total": 99.0,
                               "min": 1.0, "max": 50.0, "values": []},
            }
        }
        assert phase_seconds(snapshot) == {"explore": 0.5}


QUICKSTART = """
int g = 0;
void main() {
  int i = 0;
  while (i < 4) { g = g + i; i = i + 1; }
  print(g);
}
"""


@pytest.fixture
def manifest(tmp_path):
    """A real manifest from a real CLI run."""
    src = tmp_path / "p.c"
    src.write_text(QUICKSTART)
    out = tmp_path / "run.json"
    assert main(["run", str(src), "--ledger", str(out)]) == 0
    return str(out)


class TestManifestWriting:
    def test_manifest_facts(self, manifest, capsys):
        doc = load_manifest(manifest)
        assert doc["type"] == "run-manifest"
        assert doc["version"] == ledger.VERSION
        assert doc["command"] == "run"
        assert doc["exit_status"] == 0
        assert doc["states"] > 0
        assert doc["config"]["por"] in (True, False)
        assert "closure_compile" in doc["config"]
        assert len(doc["content_hash"]) == 64
        assert doc["wall_seconds"] > 0
        assert "explore" in doc["phases"]
        assert doc["states_per_second"] > 0
        assert doc["seeds"]["python"]

    def test_env_var_configures_ledger(self, tmp_path, monkeypatch,
                                       capsys):
        src = tmp_path / "p.c"
        src.write_text(QUICKSTART)
        out = tmp_path / "env-run.json"
        monkeypatch.setenv(ledger.ENV_LEDGER, str(out))
        assert main(["run", str(src)]) == 0
        assert load_manifest(str(out))["command"] == "run"

    def test_load_manifest_rejects_other_json(self, tmp_path):
        other = tmp_path / "not.json"
        other.write_text(json.dumps({"type": "heartbeat"}))
        with pytest.raises(ValueError):
            load_manifest(str(other))

    def test_drf_manifest_records_verdict(self, tmp_path, capsys):
        src = tmp_path / "p.c"
        src.write_text(QUICKSTART)
        out = tmp_path / "drf.json"
        assert main(
            ["drf", str(src), "--ledger", str(out)]
        ) == 0
        assert load_manifest(str(out))["verdict"] == "drf"


class TestCompareManifests:
    def test_self_compare_has_no_regressions(self, manifest):
        doc = load_manifest(manifest)
        report, regressions = compare_manifests(doc, doc)
        assert regressions == []
        assert "content hash: identical" in report
        assert "no regression" in report

    def test_throughput_cliff_gates(self, manifest):
        a = load_manifest(manifest)
        b = copy.deepcopy(a)
        b["states_per_second"] = a["states_per_second"] / 2.0
        report, regressions = compare_manifests(a, b, tolerance=0.4)
        assert ("states_per_second", pytest.approx(-0.5)) in [
            (m, d) for m, d in regressions
        ]
        assert "regressions beyond tolerance" in report

    def test_cliff_within_tolerance_passes(self, manifest):
        a = load_manifest(manifest)
        b = copy.deepcopy(a)
        b["states_per_second"] = a["states_per_second"] * 0.8
        _report, regressions = compare_manifests(a, b, tolerance=0.4)
        assert regressions == []

    def test_fingerprint_mismatch_gates_only_on_same_input(self):
        a = {
            "type": "run-manifest", "content_hash": "abc",
            "fingerprint": "f1",
        }
        b = dict(a, fingerprint="f2")
        _report, regressions = compare_manifests(a, b)
        assert ("fingerprint", -1.0) in regressions
        # Different inputs are allowed different behaviours.
        c = dict(b, content_hash="xyz")
        _report, regressions = compare_manifests(a, c)
        assert regressions == []

    def test_config_diff_renders(self, manifest):
        a = load_manifest(manifest)
        b = copy.deepcopy(a)
        b["config"]["por"] = not a["config"]["por"]
        report, _ = compare_manifests(a, b)
        assert "config differences:" in report
        assert "por" in report


class TestCliCompare:
    def test_self_compare_exits_zero(self, manifest, capsys):
        assert main(["compare", manifest, manifest]) == 0
        assert "no regression" in capsys.readouterr().out

    def test_regression_without_flag_still_zero(
        self, manifest, tmp_path, capsys
    ):
        doctored = self._doctor(manifest, tmp_path)
        assert main(["compare", manifest, doctored]) == 0

    def test_fail_on_regression_exits_one(
        self, manifest, tmp_path, capsys
    ):
        doctored = self._doctor(manifest, tmp_path)
        assert main(
            ["compare", manifest, doctored, "--fail-on-regression"]
        ) == 1
        assert "states_per_second" in capsys.readouterr().out

    def test_unreadable_manifest_is_usage_error(
        self, manifest, tmp_path, capsys
    ):
        assert main(
            ["compare", manifest, str(tmp_path / "missing.json")]
        ) == 2
        assert "cannot load run manifest" in capsys.readouterr().err

    @staticmethod
    def _doctor(manifest, tmp_path):
        doc = load_manifest(manifest)
        doc["states_per_second"] = doc["states_per_second"] / 2.0
        out = tmp_path / "doctored.json"
        out.write_text(json.dumps(doc))
        return str(out)
