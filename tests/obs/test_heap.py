"""Heap/interning telemetry: censuses, gauges, the CLI gate."""

import pytest

from repro import obs
from repro.cli import main
from repro.common.intern import InternTable
from repro.obs import heap
from repro.obs.prom import render_prometheus
from repro.semantics import GlobalContext, PreemptiveSemantics, explore

from tests.helpers import LOCK_CLIENT, minic_program


@pytest.fixture(autouse=True)
def _reset_heap_flag():
    heap.set_enabled(None)
    yield
    heap.set_enabled(None)


@pytest.fixture(scope="module")
def lock_graph():
    """A real explored graph with genuine cross-world sharing."""
    program, _modules, _genvs, _symbols = minic_program(
        [LOCK_CLIENT], ["inc", "inc"]
    )
    return explore(
        GlobalContext(program), PreemptiveSemantics(),
        max_states=100000, strict=True,
    )


class TestEnabledGate:
    def test_defaults_off(self, monkeypatch):
        monkeypatch.delenv(heap.ENV_HEAP_PROFILE, raising=False)
        assert heap.enabled() is False

    def test_env_var_turns_on(self, monkeypatch):
        monkeypatch.setenv(heap.ENV_HEAP_PROFILE, "1")
        assert heap.enabled() is True

    def test_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv(heap.ENV_HEAP_PROFILE, "1")
        heap.set_enabled(False)
        assert heap.enabled() is False
        heap.set_enabled(None)
        assert heap.enabled() is True


class TestInternCensus:
    def test_census_reports_activity(self):
        t = InternTable("heap-census-t1", max_size=4)
        for i in range(10):
            t.intern((i,))
        t.intern((9,))
        entry = heap.intern_census()["heap-census-t1"]
        assert entry["size"] == len(t.table)
        assert entry["hits"] == 1
        assert entry["misses"] == 10
        assert 0.0 < entry["hit_rate"] < 1.0
        assert entry["clears"] >= 1
        assert entry["peak_size"] == 4
        assert entry["capacity_estimate"] >= entry["size"]
        assert entry["table_bytes"] > 0

    def test_publish_needs_metrics(self):
        # Without the registry this must be a silent no-op.
        heap.publish_intern_census()
        obs.configure(metrics=True)
        InternTable("heap-census-t2").intern((1,))
        heap.publish_intern_census()
        gauges = obs.dump()["gauges"]
        assert gauges["intern.table.heap-census-t2.size"] == 1

    def test_collision_estimate_bounds(self):
        t = InternTable("heap-census-t3")
        for i in range(100):
            t.intern((i,))
        est = heap._collision_estimate(t.table)
        assert 0 <= est <= len(t.table)


class TestDictCapacity:
    def test_growth_policy(self):
        assert heap._dict_capacity(0) == 8
        assert heap._dict_capacity(4) == 8
        # The 2/3-full threshold (integer floor: 5 of 8) forces a
        # resize.
        assert heap._dict_capacity(5) > 8
        assert heap._dict_capacity(1000) >= 1500


class TestGraphCensus:
    def test_sharing_factor_on_real_graph(self, lock_graph):
        census = heap.graph_census(lock_graph)
        assert census["worlds"] == lock_graph.state_count()
        assert census["objects"] > census["worlds"]
        assert census["bytes_unique"] > 0
        # Hash-consing means copies would cost strictly more.
        assert census["bytes_if_copied"] > census["bytes_unique"]
        assert census["sharing_factor"] > 1.0
        assert census["truncated"] is False
        assert census["per_type"]
        per_type_bytes = sum(
            e["bytes"] for e in census["per_type"].values()
        )
        assert per_type_bytes == census["bytes_unique"]
        assert "World" in census["per_type"]

    def test_publish_exports_gauges_and_prom(self, lock_graph):
        obs.configure(metrics=True)
        census = heap.graph_census(lock_graph)
        heap.publish_graph_census(census)
        heap.publish_intern_census()
        snapshot = obs.dump()
        gauges = snapshot["gauges"]
        assert gauges["heap.graph.sharing_factor"] > 1.0
        assert gauges["heap.graph.worlds"] == census["worlds"]
        assert any(
            name.startswith("heap.type.") for name in gauges
        )
        text = render_prometheus(snapshot)
        assert "repro_heap_graph_sharing_factor" in text
        assert "sharing-aware state-graph deep-size census" in text

    def test_collect_publishes_and_spans(self, lock_graph):
        obs.configure(metrics=True)
        census = heap.collect(lock_graph)
        snapshot = obs.dump()
        assert census["sharing_factor"] > 1.0
        assert "span.heap.census.seconds" in snapshot["histograms"]


class TestTracemalloc:
    def test_phase_snapshot_noop_when_not_tracing(self):
        import tracemalloc

        obs.configure(metrics=True)
        if tracemalloc.is_tracing():  # pragma: no cover
            tracemalloc.stop()
        heap.phase_snapshot("idle")
        assert not any(
            name.startswith("heap.tracemalloc.")
            for name in obs.dump()["gauges"]
        )

    def test_snapshot_records_gauges(self):
        import tracemalloc

        obs.configure(metrics=True)
        heap.start_tracemalloc()
        try:
            _ballast = ["x"] * 1000
            heap.phase_snapshot("test")
            gauges = obs.dump()["gauges"]
            assert gauges["heap.tracemalloc.test.current_bytes"] > 0
            assert gauges["heap.tracemalloc.test.peak_bytes"] > 0
        finally:
            tracemalloc.stop()


QUICKSTART = """
int g = 0;
void main() {
  int i = 0;
  while (i < 4) { g = g + i; i = i + 1; }
  print(g);
}
"""


class TestCliHeapProfile:
    def test_heap_profile_flag_populates_metrics(
        self, tmp_path, capsys
    ):
        import tracemalloc

        src = tmp_path / "p.c"
        src.write_text(QUICKSTART)
        out = tmp_path / "run.json"
        try:
            assert main(
                ["run", str(src), "--heap-profile",
                 "--ledger", str(out)]
            ) == 0
        finally:
            if tracemalloc.is_tracing():
                tracemalloc.stop()
        import json

        doc = json.loads(out.read_text())
        gauges = doc["metrics"]["gauges"]
        assert gauges["heap.graph.sharing_factor"] >= 1.0
        assert gauges["heap.graph.worlds"] > 0
        assert gauges["heap.tracemalloc.total.peak_bytes"] > 0
        assert heap.enabled() is False  # the CLI resets the flag
