"""Instrumentation of the hot layers: explorer counters, validator
obligations, compiler pass spans, per-pass timing."""

import io
import json

from repro import obs
from repro.compiler import compile_minic
from repro.lang.module import ModuleDecl, Program
from repro.langs.minic import compile_unit, link_units
from repro.semantics import (
    GlobalContext,
    PreemptiveSemantics,
    drf,
    explore,
    program_behaviours,
)
from repro.simulation.validate import validate_compilation

SEQ = """
int g = 5;
void main() { g = g * 2; print(g); }
"""

RACY = """
int x = 0;
void t1() { x = 1; }
void t2() { x = 2; }
"""


def _build(source):
    modules, genvs, _ = link_units([compile_unit(source)])
    return modules[0], genvs[0]


def _source_program(source, entries=("main",)):
    module, genv = _build(source)
    result = compile_minic(module)
    decls = [ModuleDecl(result.source.lang, genv, result.source.module)]
    return Program(decls, list(entries))


class TestExploreMetrics:
    def test_state_and_edge_counters(self):
        obs.configure(metrics=True)
        prog = _source_program(SEQ)
        program_behaviours(
            GlobalContext(prog), PreemptiveSemantics(), max_states=1000
        )
        assert obs.counter_value("explore.states_visited") > 0
        assert obs.counter_value("explore.edges.event") >= 1
        assert obs.counter_value("explore.edges.silent") >= 1
        assert obs.counter_value("explore.done_states") == 1
        assert obs.counter_value("behaviours.traces") == 1
        assert obs.snapshot()["gauges"]["explore.frontier_hwm"] >= 1

    def test_truncation_counter_and_warning(self, capsys):
        obs.configure(metrics=True)
        prog = _source_program(SEQ)
        explore(
            GlobalContext(prog), PreemptiveSemantics(), max_states=2
        )
        assert obs.counter_value("explore.truncated_states") >= 1
        err = capsys.readouterr().err
        assert "exploration truncated at 2 states" in err

    def test_truncation_warning_without_metrics(self, capsys):
        # Diagnosable from the CLI even with observability off.
        prog = _source_program(SEQ)
        explore(
            GlobalContext(prog), PreemptiveSemantics(), max_states=2
        )
        assert "truncated" in capsys.readouterr().err

    def test_no_truncation_no_warning(self, capsys):
        prog = _source_program(SEQ)
        explore(
            GlobalContext(prog), PreemptiveSemantics(), max_states=1000
        )
        assert capsys.readouterr().err == ""


class TestRaceMetrics:
    def test_race_counters(self):
        obs.configure(metrics=True)
        prog = _source_program(RACY, entries=("t1", "t2"))
        assert not drf(prog)
        assert obs.counter_value("race.worlds_checked") > 0
        assert obs.counter_value("race.pairs_checked") > 0
        assert obs.counter_value("race.witnesses") == 1

    def test_verdict_independent_of_tracking(self):
        # pair accounting is guarded by the obs flag (the <1% disabled
        # overhead contract); the verdict must not depend on it.
        prog = _source_program(RACY, entries=("t1", "t2"))
        disabled = drf(prog)
        obs.configure(metrics=True)
        enabled = drf(prog)
        assert disabled == enabled is False


class TestHotPathMetrics:
    def test_intern_and_memory_counters_published(self):
        # explore() publishes per-run deltas of the intern-table and
        # memory-sharing plain counters.
        obs.configure(metrics=True)
        prog = _source_program(SEQ)
        explore(
            GlobalContext(prog), PreemptiveSemantics(), max_states=1000
        )
        snap = obs.snapshot()["counters"]
        assert "intern.hits" in snap
        assert "intern.misses" in snap
        # Tables are process-wide: a warm run can be all hits, a cold
        # one mostly misses — but exploring touches them either way.
        assert snap["intern.hits"] + snap["intern.misses"] > 0
        assert "memory.nodes_reused" in snap

    def test_resolve_cache_hits_counted(self):
        obs.configure(metrics=True)
        prog = _source_program(SEQ)
        ctx = GlobalContext(prog)
        ctx.resolve("main")
        ctx.resolve("main")
        assert obs.counter_value("resolve.cache_hits") >= 1


class TestValidationMetrics:
    def test_obligation_counters_per_kind(self):
        obs.configure(metrics=True)
        module, genv = _build(SEQ)
        result = compile_minic(module)
        mem = genv.memory()
        vals = validate_compilation(result, mem, mem.domain())
        assert all(v.ok for v in vals)
        for kind in ("fpmatch", "scope", "lg", "messages"):
            assert (
                obs.counter_value(
                    "validate.obligations.{}".format(kind)
                )
                > 0
            )
        assert obs.counter_value("validate.co_exec_steps") > 0
        assert obs.counter_value("validate.passes") == len(vals)

    def test_per_pass_seconds_recorded(self):
        # The satellite fix: PassValidation carries real elapsed time,
        # not an even share of the total.
        module, genv = _build(SEQ)
        result = compile_minic(module)
        mem = genv.memory()
        vals = validate_compilation(result, mem, mem.domain())
        assert all(v.seconds > 0 for v in vals)
        # Real measurements essentially never come out identical.
        assert len({v.seconds for v in vals}) > 1

    def test_per_pass_table_uses_real_times(self):
        from repro.framework.build import ClientSystem
        from repro.framework.report import per_pass_table

        system = ClientSystem([SEQ], ["main"])
        rows = per_pass_table(system)
        assert all(row.seconds > 0 for row in rows)
        assert len({row.seconds for row in rows}) > 1


class TestCompileSpans:
    def test_pass_spans_carry_node_counts(self):
        buf = io.StringIO()
        obs.configure(trace=buf)
        module, _ = _build(SEQ)
        compile_minic(module)
        recs = [
            json.loads(line)
            for line in buf.getvalue().splitlines()
        ]
        passes = [
            r for r in recs
            if r["type"] == "span" and r["name"] == "compile.pass"
        ]
        assert len(passes) == 12
        for span in passes:
            assert span["attrs"]["nodes_in"] > 0
            assert span["attrs"]["nodes_out"] > 0
        compile_span = next(
            r for r in recs
            if r["type"] == "span" and r["name"] == "compile"
        )
        assert all(
            p["parent"] == compile_span["sid"] for p in passes
        )

    def test_optimize_adds_pass_spans(self):
        obs.configure(metrics=True)
        module, _ = _build(SEQ)
        compile_minic(module, optimize=True)
        assert obs.counter_value("compile.passes") == 15


class TestDisabledPathIntegrity:
    def test_results_identical_with_and_without_obs(self):
        prog = _source_program(SEQ)
        baseline = program_behaviours(
            GlobalContext(prog), PreemptiveSemantics()
        )
        obs.configure(metrics=True, trace=io.StringIO())
        instrumented = program_behaviours(
            GlobalContext(prog), PreemptiveSemantics()
        )
        assert baseline == instrumented
