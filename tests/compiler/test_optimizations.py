"""Tests for the extension optimization passes (ConstProp, CSE,
Deadcode) — the paper's future-work passes, validated by the same
footprint-preserving criterion."""

import pytest

from repro.langs.ir import rtl
from repro.langs.ir.base import IRModule
from repro.langs.minic import compile_unit, link_units
from repro.compiler import compile_minic
from repro.compiler.constprop import constprop, transf_function as cp_fn
from repro.compiler.cse import cse, transf_function as cse_fn
from repro.compiler.deadcode import deadcode, transf_function as dc_fn
from repro.simulation.validate import validate_compilation

from tests.helpers import SUITE


def rtl_func(code, params=(), stacksize=0, entry=0):
    return rtl.RTLFunction("f", params, stacksize, entry, code)


class TestConstProp:
    def test_folds_constant_chain(self):
        func = rtl_func({
            0: rtl.Iconst(4, 1, 1),
            1: rtl.Iconst(5, 2, 2),
            2: rtl.Iop("+", (1, 2), 3, 3),
            3: rtl.Ireturn(3),
        })
        out = cp_fn(func)
        assert out.code[2] == rtl.Iconst(9, 3, 3)

    def test_resolves_known_condition(self):
        func = rtl_func({
            0: rtl.Iconst(1, 1, 1),
            1: rtl.Iconst(2, 2, 2),
            2: rtl.Icond("<", (1, 2), 3, 4),
            3: rtl.Ireturn(1),
            4: rtl.Ireturn(2),
        })
        out = cp_fn(func)
        assert out.code[2] == rtl.Inop(3)

    def test_join_loses_divergent_values(self):
        # r1 is 1 on one path and 2 on the other: unknown at the join.
        func = rtl_func({
            0: rtl.Iconst(0, 9, 1),
            1: rtl.Icond("==", (9, 9), 2, 3),
            2: rtl.Iconst(1, 1, 4),
            3: rtl.Iconst(2, 1, 4),
            4: rtl.Iop("+", (1, 1), 5, 5),
            5: rtl.Ireturn(5),
        })
        out = cp_fn(func)
        assert isinstance(out.code[4], rtl.Iop), (
            "must not fold across a join with conflicting constants"
        )

    def test_undefined_division_not_folded(self):
        func = rtl_func({
            0: rtl.Iconst(1, 1, 1),
            1: rtl.Iconst(0, 2, 2),
            2: rtl.Iop("/", (1, 2), 3, 3),
            3: rtl.Ireturn(3),
        })
        out = cp_fn(func)
        assert isinstance(out.code[2], rtl.Iop), (
            "folding 1/0 would erase the abort"
        )

    def test_call_result_unknown(self):
        callee = rtl.RTLFunction("k", (), 0, 0, {0: rtl.Ireturn(None)})
        func = rtl_func({
            0: rtl.Icall("k", (), 1, 1, False),
            1: rtl.Iop("+", (1, 1), 2, 2),
            2: rtl.Ireturn(2),
        })
        module = IRModule({"f": func, "k": callee}, {})
        out = constprop(module)
        assert isinstance(out.functions["f"].code[1], rtl.Iop)


class TestCSE:
    def test_repeated_op_becomes_move(self):
        func = rtl_func({
            0: rtl.Iconst(3, 1, 1),
            1: rtl.Iconst(4, 2, 2),
            2: rtl.Iop("+", (1, 2), 3, 3),
            3: rtl.Iop("+", (1, 2), 4, 4),
            4: rtl.Ireturn(4),
        })
        out = cse_fn(func)
        assert out.code[3] == rtl.Iop("move", (3,), 4, 4)

    def test_redefined_operand_blocks_reuse(self):
        func = rtl_func({
            0: rtl.Iconst(3, 1, 1),
            1: rtl.Iop("+", (1, 1), 2, 2),
            2: rtl.Iconst(9, 1, 3),   # r1 redefined
            3: rtl.Iop("+", (1, 1), 4, 4),
            4: rtl.Ireturn(4),
        })
        out = cse_fn(func)
        assert isinstance(out.code[3], rtl.Iop)
        assert out.code[3].op == "+"

    def test_repeated_load_eliminated(self):
        func = rtl_func({
            0: rtl.Iaddrglobal("g", 1, 1),
            1: rtl.Iload(1, 2, 2),
            2: rtl.Iload(1, 3, 3),
            3: rtl.Ireturn(3),
        })
        out = cse_fn(func)
        assert out.code[2] == rtl.Iop("move", (2,), 3, 3)

    def test_store_kills_loads(self):
        func = rtl_func({
            0: rtl.Iaddrglobal("g", 1, 1),
            1: rtl.Iload(1, 2, 2),
            2: rtl.Istore(1, 2, 3),
            3: rtl.Iload(1, 4, 4),
            4: rtl.Ireturn(4),
        })
        out = cse_fn(func)
        assert isinstance(out.code[3], rtl.Iload), (
            "a store must invalidate remembered loads"
        )

    def test_print_kills_loads(self):
        # Regression: an observable event is a switch point — the
        # environment may rewrite shared memory there. Caching a load
        # across it was a real miscompilation the footprint-preserving
        # validator caught (see EXPERIMENTS.md).
        func = rtl_func({
            0: rtl.Iaddrglobal("g", 1, 1),
            1: rtl.Iload(1, 2, 2),
            2: rtl.Iprint(2, 3),
            3: rtl.Iload(1, 4, 4),
            4: rtl.Ireturn(4),
        })
        out = cse_fn(func)
        assert isinstance(out.code[3], rtl.Iload), (
            "loads must not be cached across observable events"
        )

    def test_spawn_kills_loads(self):
        func = rtl_func({
            0: rtl.Iaddrglobal("g", 1, 1),
            1: rtl.Iload(1, 2, 2),
            2: rtl.Ispawn("w", 3),
            3: rtl.Iload(1, 4, 4),
            4: rtl.Ireturn(4),
        })
        out = cse_fn(func)
        assert isinstance(out.code[3], rtl.Iload)

    def test_call_kills_loads(self):
        func = rtl_func({
            0: rtl.Iaddrglobal("g", 1, 1),
            1: rtl.Iload(1, 2, 2),
            2: rtl.Icall("k", (), None, 3, True),
            3: rtl.Iload(1, 4, 4),
            4: rtl.Ireturn(4),
        })
        out = cse_fn(func)
        assert isinstance(out.code[3], rtl.Iload)

    def test_join_point_starts_fresh(self):
        # The expression is available on only one path into the join.
        func = rtl_func({
            0: rtl.Iconst(0, 9, 1),
            1: rtl.Icond("==", (9, 9), 2, 3),
            2: rtl.Iop("+", (9, 9), 1, 4),
            3: rtl.Inop(4),
            4: rtl.Iop("+", (9, 9), 2, 5),
            5: rtl.Ireturn(2),
        })
        out = cse_fn(func)
        assert out.code[4].op == "+", (
            "cross-block reuse without availability on all paths"
        )


class TestDeadcode:
    def test_dead_const_removed(self):
        func = rtl_func({
            0: rtl.Iconst(3, 1, 1),
            1: rtl.Iconst(4, 2, 2),
            2: rtl.Ireturn(2),
        })
        out = dc_fn(func)
        assert out.code[0] == rtl.Inop(1)
        assert out.code[1] == rtl.Iconst(4, 2, 2)

    def test_dead_load_removed(self):
        func = rtl_func({
            0: rtl.Iaddrglobal("g", 1, 1),
            1: rtl.Iload(1, 2, 2),
            2: rtl.Iconst(0, 3, 3),
            3: rtl.Ireturn(3),
        })
        out = dc_fn(func)
        assert out.code[1] == rtl.Inop(2), "dead load shrinks footprint"

    def test_store_never_removed(self):
        func = rtl_func({
            0: rtl.Iaddrglobal("g", 1, 1),
            1: rtl.Iconst(5, 2, 2),
            2: rtl.Istore(1, 2, 3),
            3: rtl.Iconst(0, 4, 4),
            4: rtl.Ireturn(4),
        })
        out = dc_fn(func)
        assert isinstance(out.code[2], rtl.Istore)

    def test_live_through_loop_kept(self):
        func = rtl_func({
            0: rtl.Iconst(0, 1, 1),
            1: rtl.Iconst(3, 2, 2),
            2: rtl.Icond("<", (1, 2), 3, 5),
            3: rtl.Iconst(1, 3, 4),
            4: rtl.Iop("+", (1, 3), 1, 1),
            5: rtl.Ireturn(1),
        })
        out = dc_fn(func)
        assert isinstance(out.code[4], rtl.Iop)


class TestOptimizedPipeline:
    @pytest.mark.parametrize("name", sorted(SUITE))
    def test_suite_validates_with_optimizations(self, name):
        mods, genvs, _ = link_units([compile_unit(SUITE[name])])
        result = compile_minic(mods[0], optimize=True)
        names = [s.name for s in result.stages]
        assert names[7:10] == ["ConstProp", "CSE", "Deadcode"]
        mem = genvs[0].memory()
        vals = validate_compilation(result, mem, mem.domain())
        bad = [
            (v.pass_name, v.report.failures[:2])
            for v in vals
            if not v.ok
        ]
        assert not bad, bad

    def test_optimizations_shrink_code(self):
        src = """
        int g = 2;
        void main() {
          int a = 3;
          int b;
          b = a * 4;        // constant-foldable
          int c;
          c = g + g;        // uses a repeated load
          int d;
          d = g + g;        // CSE candidate
          int unused;
          unused = 99;      // dead
          print(b + c + d);
        }
        """
        mods, genvs, _ = link_units([compile_unit(src)])
        plain = compile_minic(mods[0]).stage("Renumber").module
        opt_result = compile_minic(mods[0], optimize=True)
        opt = opt_result.stage("Deadcode").module

        def loads(module):
            return sum(
                isinstance(i, rtl.Iload)
                for f in module.functions.values()
                for i in f.code.values()
            )

        assert loads(opt) < loads(plain), (
            "CSE/Deadcode must remove shared-memory reads"
        )
