"""Integration: behaviour preservation across all stages, on the suite."""

import pytest

from repro.lang.module import ModuleDecl, Program
from repro.langs.minic import compile_unit, link_units
from repro.semantics import equivalent
from repro.compiler import PASSES, compile_minic

from tests.helpers import (
    SUITE,
    SUITE_EXPECTED,
    behaviours_of,
    done_traces,
)


def stage_program(stage, genv, entries=("main",)):
    return Program(
        [ModuleDecl(stage.lang, genv, stage.module)], list(entries)
    )


class TestPassTable:
    def test_twelve_passes(self):
        assert len(PASSES) == 12
        assert [p[0] for p in PASSES] == [
            "Cshmgen", "Cminorgen", "Selection", "RTLgen", "Tailcall",
            "Renumber", "Allocation", "Tunneling", "Linearize",
            "CleanupLabels", "Stacking", "Asmgen",
        ]

    def test_upto(self):
        mods, genvs, _ = link_units([compile_unit(SUITE["arith"])])
        result = compile_minic(mods[0], upto="RTLgen")
        assert result.stages[-1].name == "RTLgen"


@pytest.mark.parametrize("name", sorted(SUITE))
class TestSuitePreservation:
    def test_expected_output(self, name):
        mods, genvs, _ = link_units([compile_unit(SUITE[name])])
        result = compile_minic(mods[0])
        src_prog = stage_program(result.source, genvs[0])
        traces = done_traces(behaviours_of(src_prog, max_states=500000))
        assert traces == {SUITE_EXPECTED[name]}

    def test_every_stage_equivalent(self, name):
        mods, genvs, _ = link_units([compile_unit(SUITE[name])])
        result = compile_minic(mods[0])
        reference = behaviours_of(
            stage_program(result.source, genvs[0]), max_states=500000
        )
        for stage in result.stages[1:]:
            behs = behaviours_of(
                stage_program(stage, genvs[0]), max_states=500000
            )
            assert bool(equivalent(reference, behs)), (
                name,
                stage.name,
                sorted(map(repr, behs)),
            )


class TestCrossModule:
    def test_example_2_1_compiled(self):
        m1 = """
        extern void g(int*);
        int gb = 0;
        int f() {
          int a = 0;
          g(&gb);
          return a + gb;
        }
        void main() { int r; r = f(); print(r); }
        """
        m2 = """
        extern int gb;
        void g(int *x) { *x = 3; }
        """
        units = [compile_unit(m1), compile_unit(m2)]
        mods, genvs, _ = link_units(units)
        results = [compile_minic(m) for m in mods]

        def program(stages):
            return Program(
                [
                    ModuleDecl(s.lang, ge, s.module)
                    for s, ge in zip(stages, genvs)
                ],
                ["main"],
            )

        src = behaviours_of(program([r.source for r in results]))
        tgt = behaviours_of(
            program([r.target for r in results]), max_states=500000
        )
        assert done_traces(src) == {(3,)}
        assert bool(equivalent(src, tgt))

    def test_mixed_stage_linking(self):
        # Separate compilation: module 1 fully compiled, module 2 still
        # source — they must still link and agree, because module
        # interaction is at the interaction-semantics level.
        m1 = "extern int getg(); void main() { int r; r = getg(); print(r); }"
        m2 = "int g = 11; int getg() { return g; }"
        units = [compile_unit(m1), compile_unit(m2)]
        mods, genvs, _ = link_units(units)
        r1 = compile_minic(mods[0])
        r2 = compile_minic(mods[1])
        prog = Program(
            [
                ModuleDecl(r1.target.lang, genvs[0], r1.target.module),
                ModuleDecl(r2.source.lang, genvs[1], r2.source.module),
            ],
            ["main"],
        )
        assert done_traces(behaviours_of(prog)) == {(11,)}
