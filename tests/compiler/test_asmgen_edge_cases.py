"""Edge cases of the Asmgen two-address lowering and the pretty-printer."""

import pytest

from repro.common.freelist import FreeList
from repro.common.memory import Memory
from repro.common.values import VInt
from repro.lang.messages import RetMsg
from repro.lang.steps import Step, StepAbort
from repro.langs.ir import mach as mh
from repro.langs.ir.base import IRModule
from repro.langs.x86 import X86SC
from repro.langs.x86 import ast as x86
from repro.compiler.asmgen import ASM_SCRATCH, _transf_op, transf_function
from repro.compiler.pprint import pp_module

FLIST = FreeList.for_thread(0)


def run_x86(module, entry, mem, args=()):
    core = X86SC.init_core(module, entry, args)
    for _ in range(500):
        outs = X86SC.step(module, core, mem, FLIST)
        if not outs:
            return None
        (out,) = outs
        if isinstance(out, StepAbort):
            return "abort"
        core, mem = out.core, out.mem
        if isinstance(out.msg, RetMsg):
            return out.msg.value
    raise AssertionError("did not terminate")


def exec_op(op, args, dst, values, expect):
    """Lower one MOp and execute it with the given register values."""
    seq = _transf_op(mh.MOp(op, args, dst))
    code = []
    for reg, value in values.items():
        code.append(x86.Pmov_ri(reg, value))
    code.extend(seq)
    if dst != "eax":
        code.append(x86.Pmov_rr("eax", dst))
    code.append(x86.Pret())
    func = x86.X86Function("f", 0, code)
    module = IRModule({"f": func}, {})
    result = run_x86(module, "f", Memory())
    assert result == VInt(expect), (op, args, dst, result)


class TestTwoAddressLowering:
    def test_dst_equals_first_operand(self):
        exec_op("-", ("ebx", "ecx"), "ebx",
                {"ebx": 10, "ecx": 3}, 7)

    def test_dst_equals_second_operand_commutative(self):
        exec_op("+", ("ebx", "ecx"), "ecx",
                {"ebx": 10, "ecx": 3}, 13)
        exec_op("*", ("ebx", "ecx"), "ecx",
                {"ebx": 4, "ecx": 3}, 12)

    def test_dst_equals_second_operand_noncommutative(self):
        # Requires the ebp assembler scratch.
        seq = _transf_op(mh.MOp("-", ("ebx", "ecx"), "ecx"))
        assert any(
            getattr(i, "dst", None) == ASM_SCRATCH
            or getattr(i, "src", None) == ASM_SCRATCH
            for i in seq
        )
        exec_op("-", ("ebx", "ecx"), "ecx",
                {"ebx": 10, "ecx": 3}, 7)

    def test_dst_distinct(self):
        exec_op("-", ("ebx", "ecx"), "edx",
                {"ebx": 10, "ecx": 3}, 7)

    def test_dst_equals_both_operands(self):
        exec_op("+", ("ebx", "ebx"), "ebx", {"ebx": 21}, 42)
        exec_op("-", ("ebx", "ebx"), "ebx", {"ebx": 21}, 0)

    def test_shifts(self):
        exec_op("<<", ("ebx", "ecx"), "ecx",
                {"ebx": 3, "ecx": 2}, 12)
        exec_op(">>", ("ebx", "ecx"), "ebx",
                {"ebx": 12, "ecx": 2}, 3)

    def test_division_collisions(self):
        exec_op("/", ("ebx", "ecx"), "ecx",
                {"ebx": 14, "ecx": 4}, 3)
        exec_op("%", ("ebx", "ecx"), "ecx",
                {"ebx": 14, "ecx": 4}, 2)

    def test_comparison_into_operand(self):
        exec_op("<", ("ebx", "ecx"), "ebx",
                {"ebx": 1, "ecx": 2}, 1)
        exec_op(">=", ("ebx", "ecx"), "ecx",
                {"ebx": 1, "ecx": 2}, 0)

    def test_not_into_same_reg(self):
        exec_op("!", ("ebx",), "ebx", {"ebx": 0}, 1)
        exec_op("!", ("ebx",), "ebx", {"ebx": 5}, 0)

    def test_unary_neg_collision(self):
        exec_op("-", ("ebx",), "ebx", {"ebx": 5}, -5)
        exec_op("-", ("ebx",), "ecx", {"ebx": 5, "ecx": 0}, -5)


class TestPrettyPrinter:
    def test_every_stage_printable(self):
        from repro.langs.minic import compile_unit, link_units
        from repro.compiler import compile_minic

        src = """
        int g = 1;
        void worker() { print(g); }
        int addg(int a) { return a + g; }
        void main() {
          int r;
          r = addg(2);
          if (r > 1) { g = r; } else { g = 0; }
          spawn worker;
          print(r);
        }
        """
        mods, genvs, _ = link_units([compile_unit(src)])
        result = compile_minic(mods[0], optimize=True)
        for stage in result.stages:
            lines = pp_module(stage.module)
            assert lines, stage.name
            text = "\n".join(lines)
            assert "main" in text
