"""Per-pass unit tests: structural properties of each transformation."""

import pytest

from repro.common.errors import TypeCheckError
from repro.langs.ir import cminor as cm
from repro.langs.ir import csharpminor as csm
from repro.langs.ir import linear as ln
from repro.langs.ir import ltl
from repro.langs.ir import mach as mh
from repro.langs.ir import rtl
from repro.langs.minic import compile_unit, link_units
from repro.langs.x86 import ast as x86
from repro.langs.x86.regs import is_reg, is_slot
from repro.compiler import compile_minic
from repro.compiler.selection import select_expr
from repro.compiler.cleanuplabels import referenced_labels


def chain(src):
    mods, genvs, _ = link_units([compile_unit(src)])
    return compile_minic(mods[0])


SRC = """
int g = 2;
int addg(int a) { return a + g; }
void main() {
  int x = 3;
  int y;
  y = addg(x);
  g = y * 8;
  print(g);
}
"""


class TestCshmgen:
    def test_plain_locals_promoted_to_temps(self):
        result = chain(SRC)
        func = result.stage("Cshmgen").module.functions["main"]
        assert func.stack_locals == ()
        assert "x" in func.params or True  # x is a local temp, not param

    def test_address_taken_local_stays_in_memory(self):
        result = chain(
            "void use(int* p) { *p = 1; } "
            "void main() { int x = 0; use(&x); print(x); }"
        )
        func = result.stage("Cshmgen").module.functions["main"]
        assert "x" in func.stack_locals

    def test_address_taken_param_copied_in(self):
        result = chain(
            "int deref(int* q) { return *q; } "
            "int f(int a) { int r; r = deref(&a); return r; } "
            "void main() { int r; r = f(5); print(r); }"
        )
        func = result.stage("Cshmgen").module.functions["f"]
        assert "a" in func.stack_locals
        assert "$p_a" in func.params

    def test_boolean_operators_lowered(self):
        result = chain(
            "void main() { int a = 1; int b = 0; print(a && b); "
            "print(a || b); }"
        )
        module = result.stage("Cshmgen").module

        def find_bool(node):
            if isinstance(node, csm.EBinop) and node.op in ("&&", "||"):
                return True
            for f in getattr(node, "_fields", ()):
                v = getattr(node, f)
                vs = v if isinstance(v, tuple) else (v,)
                for item in vs:
                    if isinstance(item, csm.Node) and find_bool(item):
                        return True
            return False

        assert not find_bool(module.functions["main"].body)


class TestCminorgen:
    def test_params_numbered_first(self):
        result = chain(SRC)
        func = result.stage("Cminorgen").module.functions["addg"]
        assert func.nparams == 1

    def test_stacksize_counts_stack_locals(self):
        result = chain(
            "void use(int* p) { *p = 1; } "
            "void main() { int x = 0; use(&x); print(x); }"
        )
        func = result.stage("Cminorgen").module.functions["main"]
        assert func.stacksize == 1


class TestSelection:
    def test_constant_folding(self):
        e = cm.EBinop("+", cm.EConst(2), cm.EConst(3))
        assert select_expr(e) == cm.EConst(5)

    def test_division_by_zero_not_folded(self):
        e = cm.EBinop("/", cm.EConst(1), cm.EConst(0))
        assert select_expr(e) == e

    def test_defined_division_folded(self):
        e = cm.EBinop("/", cm.EConst(7), cm.EConst(2))
        assert select_expr(e) == cm.EConst(3)

    def test_neutral_elements(self):
        t = cm.ETemp(0)
        assert select_expr(cm.EBinop("+", t, cm.EConst(0))) == t
        assert select_expr(cm.EBinop("+", cm.EConst(0), t)) == t
        assert select_expr(cm.EBinop("-", t, cm.EConst(0))) == t
        assert select_expr(cm.EBinop("*", t, cm.EConst(1))) == t

    def test_strength_reduction(self):
        t = cm.ETemp(0)
        out = select_expr(cm.EBinop("*", t, cm.EConst(8)))
        assert out == cm.EBinop("<<", t, cm.EConst(3))
        out = select_expr(cm.EBinop("*", cm.EConst(4), t))
        assert out == cm.EBinop("<<", t, cm.EConst(2))

    def test_non_power_not_reduced(self):
        t = cm.ETemp(0)
        out = select_expr(cm.EBinop("*", t, cm.EConst(6)))
        assert out.op == "*"

    def test_loads_preserved(self):
        e = cm.EBinop(
            "*", cm.ELoad(cm.EAddrGlobal("g")), cm.EConst(1)
        )
        out = select_expr(e)
        assert out == cm.ELoad(cm.EAddrGlobal("g")), (
            "x*1 must simplify but keep the load"
        )

    def test_shift_appears_in_pipeline(self):
        result = chain(SRC)  # contains y * 8
        module = result.stage("Selection").module

        def find_shift(node):
            if isinstance(node, cm.EBinop) and node.op == "<<":
                return True
            for f in getattr(node, "_fields", ()):
                v = getattr(node, f)
                vs = v if isinstance(v, tuple) else (v,)
                for item in vs:
                    if isinstance(item, cm.Node) and find_shift(item):
                        return True
            return False

        assert any(
            find_shift(fn.body) for fn in module.functions.values()
        )


class TestRTLgen:
    def test_cfg_well_formed(self):
        result = chain(SRC)
        for func in result.stage("RTLgen").module.functions.values():
            assert func.entry in func.code
            for instr in func.code.values():
                for field in ("next", "iftrue", "iffalse"):
                    succ = getattr(instr, field, None)
                    if succ is not None:
                        assert succ in func.code

    def test_comparison_conditions_direct(self):
        result = chain(
            "void main() { int a = 1; if (a < 2) { print(1); } }"
        )
        func = result.stage("RTLgen").module.functions["main"]
        conds = [
            i for i in func.code.values() if isinstance(i, rtl.Icond)
        ]
        assert any(c.op == "<" for c in conds)


class TestTailcall:
    def test_tailcall_recognized(self):
        result = chain(
            "int id2(int n) { return n; } "
            "int wrap(int n) { return id2(n); } "
            "void main() { int r; r = wrap(3); print(r); }"
        )
        func = result.stage("Tailcall").module.functions["wrap"]
        assert any(
            isinstance(i, rtl.Itailcall) for i in func.code.values()
        )

    def test_non_tail_call_untouched(self):
        result = chain(
            "int id2(int n) { return n; } "
            "int wrap(int n) { int r; r = id2(n); return r + 1; } "
            "void main() { int r; r = wrap(3); print(r); }"
        )
        func = result.stage("Tailcall").module.functions["wrap"]
        assert not any(
            isinstance(i, rtl.Itailcall) for i in func.code.values()
        )

    def test_stackful_function_not_tailcalled(self):
        result = chain(
            "int deref(int* p) { return *p; } "
            "int wrap(int n) { int x = n; return deref(&x); } "
            "void main() { int r; r = wrap(3); print(r); }"
        )
        func = result.stage("Tailcall").module.functions["wrap"]
        assert not any(
            isinstance(i, rtl.Itailcall) for i in func.code.values()
        )


class TestRenumber:
    def test_contiguous_numbering(self):
        result = chain(SRC)
        for func in result.stage("Renumber").module.functions.values():
            assert sorted(func.code) == list(range(len(func.code)))
            assert func.entry == 0

    def test_unreachable_dropped(self):
        before = chain(SRC).stage("Tailcall").module
        after = chain(SRC).stage("Renumber").module
        for name in before.functions:
            assert len(after.functions[name].code) <= len(
                before.functions[name].code
            )


class TestAllocation:
    def test_computing_ops_use_registers_only(self):
        result = chain(SRC)
        for func in result.stage("Allocation").module.functions.values():
            for instr in func.code.values():
                if isinstance(instr, ltl.Lop) and instr.op != "move":
                    assert all(is_reg(a) for a in instr.args)
                    assert is_reg(instr.dst)
                if isinstance(instr, (ltl.Lconst, ltl.Laddrglobal,
                                      ltl.Laddrstack, ltl.Lload)):
                    assert is_reg(instr.dst)
                if isinstance(instr, ltl.Lstore):
                    assert is_reg(instr.addr) and is_reg(instr.src)
                if isinstance(instr, ltl.Lcond):
                    assert all(is_reg(a) for a in instr.args)

    def test_no_slot_to_slot_moves(self):
        result = chain(SRC)
        for func in result.stage("Allocation").module.functions.values():
            for instr in func.code.values():
                if isinstance(instr, ltl.Lop) and instr.op == "move":
                    assert not (
                        is_slot(instr.args[0]) and is_slot(instr.dst)
                    )

    def test_values_across_calls_spilled(self):
        result = chain(
            "int id2(int n) { return n; } "
            "void main() { int keep = 7; int r; r = id2(1); "
            "print(keep + r); }"
        )
        func = result.stage("Allocation").module.functions["main"]
        assert func.numslots >= 1, (
            "a value live across the call must live in a slot"
        )

    def test_too_many_params_rejected(self):
        from repro.common.errors import CompileError

        with pytest.raises(CompileError):
            chain(
                "int f(int a, int b, int c, int d) { return a; } "
                "void main() { int r; r = f(1,2,3,4); print(r); }"
            )


class TestTunneling:
    def test_nop_chains_collapsed(self):
        result = chain(
            "void main() { int i = 0; while (i < 2) { i = i + 1; } "
            "print(i); }"
        )
        before = result.stage("Allocation").module.functions["main"]
        after = result.stage("Tunneling").module.functions["main"]
        nops_before = sum(
            isinstance(i, ltl.Lnop) for i in before.code.values()
        )
        nops_after = sum(
            isinstance(i, ltl.Lnop) for i in after.code.values()
        )
        assert nops_before >= 1
        assert nops_after < nops_before


class TestLinearize:
    def test_every_branch_target_labelled(self):
        result = chain(SRC)
        for func in result.stage("Linearize").module.functions.values():
            labels = {
                i.lbl for i in func.code if isinstance(i, ln.LinLabel)
            }
            for instr in func.code:
                if isinstance(instr, (ln.LinGoto, ln.LinCond)):
                    assert instr.lbl in labels

    def test_entry_is_first(self):
        result = chain(SRC)
        func = result.stage("Linearize").module.functions["main"]
        assert isinstance(func.code[0], ln.LinLabel)


class TestCleanupLabels:
    def test_only_referenced_labels_survive(self):
        result = chain(SRC)
        func = result.stage("CleanupLabels").module.functions["main"]
        used = referenced_labels(func.code)
        for instr in func.code:
            if isinstance(instr, ln.LinLabel):
                assert instr.lbl in used

    def test_labels_removed(self):
        result = chain(SRC)
        before = result.stage("Linearize").module.functions["main"]
        after = result.stage("CleanupLabels").module.functions["main"]
        assert len(after.code) <= len(before.code)


class TestStacking:
    def test_slots_become_stack_accesses(self):
        result = chain(
            "int id2(int n) { return n; } "
            "void main() { int keep = 7; int r; r = id2(1); "
            "print(keep + r); }"
        )
        func = result.stage("Stacking").module.functions["main"]
        kinds = {type(i) for i in func.code}
        assert mh.MGetstack in kinds and mh.MSetstack in kinds

    def test_framesize_combines_slots_and_stackdata(self):
        result = chain(
            "void use(int* p) { *p = 1; } "
            "void main() { int x = 0; use(&x); print(x); }"
        )
        linear_fn = result.stage("CleanupLabels").module.functions["main"]
        mach_fn = result.stage("Stacking").module.functions["main"]
        assert mach_fn.framesize == (
            linear_fn.numslots + linear_fn.stacksize
        )


class TestAsmgen:
    def test_frame_instructions_present(self):
        result = chain(
            "int id2(int n) { return n; } "
            "void main() { int keep = 7; int r; r = id2(1); "
            "print(keep + r); }"
        )
        func = result.target.module.functions["main"]
        kinds = [type(i) for i in func.code]
        assert kinds[0] is x86.Pallocframe
        assert x86.Pfreeframe in kinds

    def test_comparisons_via_cmp_setcc(self):
        result = chain(
            "void main() { int a = 1; int b; b = a < 2; print(b); }"
        )
        func = result.target.module.functions["main"]
        kinds = {type(i) for i in func.code}
        assert x86.Pcmp_rr in kinds or x86.Pcmp_ri in kinds
        assert x86.Psetcc in kinds

    def test_frameless_function_has_no_allocframe(self):
        result = chain(
            "int addc(int a) { return a + 1; } "
            "void main() { int r; r = addc(1); print(r); }"
        )
        func = result.target.module.functions["addc"]
        kinds = {type(i) for i in func.code}
        if result.stage("Stacking").module.functions["addc"].framesize \
                == 0:
            assert x86.Pallocframe not in kinds
