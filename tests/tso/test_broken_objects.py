"""Negative tests: broken object implementations are rejected.

The object-refinement check (the observable content of ``≼ᵒ``) must
not only accept π_lock — it must *reject* implementations whose races
are not benign:

* a lock whose acquisition is a plain load+store (no ``lock cmpxchg``):
  two threads can both observe the lock free and both take it;
* an unlock that releases the wrong way (setting a non-zero garbage
  value that lets the spin loop exit twice).
"""

import pytest

from repro.common.values import VInt
from repro.lang.module import GlobalEnv, ModuleDecl, Program
from repro.langs.ir.base import IRModule
from repro.langs.minic import compile_unit, link_units
from repro.langs.x86 import X86TSO, X86Function
from repro.langs.x86 import ast as x
from repro.compiler import compile_minic
from repro.tso import (
    DEFAULT_LOCK_ADDR,
    check_object_refinement,
    lock_spec,
)

from tests.helpers import LOCK_CLIENT, behaviours_of, done_traces


def broken_lock_impl(lock_addr=DEFAULT_LOCK_ADDR):
    """A test-and-set lock *without* the atomic instruction: the read
    of the lock word and the store that claims it are separate steps —
    two threads can interleave between them and both acquire."""
    lock_fn = X86Function(
        "lock",
        0,
        [
            x.Plea("ecx", ("global", "L")),
            x.Plabel("spin"),
            x.Pmov_rm("eax", ("base", "ecx", 0)),
            x.Pcmp_ri("eax", 0),
            x.Pjcc("e", "spin"),
            # Claim it non-atomically.
            x.Pmov_ri("ebx", 0),
            x.Pmov_mr(("base", "ecx", 0), "ebx"),
            x.Pmov_ri("eax", 0),
            x.Pret(),
        ],
    )
    unlock_fn = X86Function(
        "unlock",
        0,
        [
            x.Plea("eax", ("global", "L")),
            x.Pmov_ri("ebx", 1),
            x.Pmov_mr(("base", "eax", 0), "ebx"),
            x.Pmov_ri("eax", 0),
            x.Pret(),
        ],
    )
    module = IRModule(
        {"lock": lock_fn, "unlock": unlock_fn},
        {"L": lock_addr},
        owned={lock_addr},
    )
    ge = GlobalEnv({"L": lock_addr}, {lock_addr: VInt(1)})
    return module, ge


def _client():
    units = [compile_unit(LOCK_CLIENT)]
    mods, genvs, _ = link_units(
        units, extra_symbols={"L": DEFAULT_LOCK_ADDR}
    )
    client = mods[0].with_forbidden({DEFAULT_LOCK_ADDR})
    return compile_minic(client), genvs[0]


class TestBrokenLockRejected:
    def test_mutual_exclusion_fails(self):
        result, genv = _client()
        impl_mod, impl_ge = broken_lock_impl()
        prog = Program(
            [
                ModuleDecl(X86TSO, genv, result.target.module),
                ModuleDecl(X86TSO, impl_ge, impl_mod),
            ],
            ["inc", "inc"],
        )
        traces = done_traces(behaviours_of(prog, max_states=2000000))
        assert (0, 0) in traces, (
            "the non-atomic TAS lock must lose an update"
        )

    def test_object_refinement_rejects(self):
        result, genv = _client()
        impl_mod, impl_ge = broken_lock_impl()
        spec_mod, spec_ge = lock_spec()
        verdict = check_object_refinement(
            [result.target], [genv], impl_mod, impl_ge,
            spec_mod, spec_ge, ["inc", "inc"], max_states=2000000,
        )
        assert not verdict.ok, (
            "≼ᵒ must reject a lock whose races are not benign"
        )
