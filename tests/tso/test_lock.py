"""Tests for the lock object: γ_lock semantics, π_lock under SC/TSO,
mutual exclusion, and the benign races of the TTAS implementation."""

from repro.common.values import VInt
from repro.lang.module import GlobalEnv, ModuleDecl, Program
from repro.langs.cimp.semantics import CIMP
from repro.langs.minic import compile_unit, link_units
from repro.langs.minic.semantics import MINIC
from repro.langs.x86.sc import X86SC
from repro.langs.x86.tso import X86TSO
from repro.semantics import drf
from repro.compiler import compile_minic
from repro.tso import (
    DEFAULT_LOCK_ADDR,
    lock_impl,
    lock_spec,
)

from tests.helpers import LOCK_CLIENT, behaviours_of, done_traces

LOCK = DEFAULT_LOCK_ADDR


def lock_system(nthreads=2, client_src=LOCK_CLIENT, entry="inc"):
    units = [compile_unit(client_src)]
    mods, genvs, _ = link_units(units, extra_symbols={"L": LOCK})
    client = mods[0].with_forbidden({LOCK})
    result = compile_minic(client)
    return result, genvs[0], [entry] * nthreads


def spec_program(result, genv, entries, stage=None):
    stage = stage or result.source
    spec_mod, spec_ge = lock_spec()
    return Program(
        [
            ModuleDecl(stage.lang, genv, stage.module),
            ModuleDecl(CIMP, spec_ge, spec_mod),
        ],
        entries,
    )


def impl_program(result, genv, entries, lang=X86TSO):
    impl_mod, impl_ge = lock_impl()
    return Program(
        [
            ModuleDecl(lang, genv, result.target.module),
            ModuleDecl(lang, impl_ge, impl_mod),
        ],
        entries,
    )


class TestLockSpec:
    def test_mutual_exclusion_source(self):
        result, genv, entries = lock_system(2)
        prog = spec_program(result, genv, entries)
        traces = done_traces(behaviours_of(prog, max_states=400000))
        # Every terminating execution sees both increments, in some
        # order, with no lost update.
        assert traces == {(0, 1), (1, 0)}

    def test_client_program_is_drf(self):
        result, genv, entries = lock_system(2)
        prog = spec_program(result, genv, entries)
        assert drf(prog, max_states=400000)

    def test_client_cannot_touch_lock_cell(self):
        hostile = """
        extern void lock();
        extern void unlock();
        extern int L;
        void inc() { L = 1; }
        """
        # "extern int L" resolves against the object's symbol; the
        # permission partition makes the access abort.
        units = [compile_unit(hostile)]
        mods, genvs, _ = link_units(units, extra_symbols={"L": LOCK})
        client = mods[0].with_forbidden({LOCK})
        spec_mod, spec_ge = lock_spec()
        prog = Program(
            [
                ModuleDecl(MINIC, genvs[0], client),
                ModuleDecl(CIMP, spec_ge, spec_mod),
            ],
            ["inc"],
        )
        behs = behaviours_of(prog)
        assert {b.end for b in behs} == {"abort"}

    def test_double_unlock_aborts(self):
        bad = """
        extern void lock();
        extern void unlock();
        void inc() { lock(); unlock(); unlock(); }
        """
        result, genv, entries = lock_system(1, bad, "inc")
        prog = spec_program(result, genv, entries)
        behs = behaviours_of(prog)
        assert any(b.end == "abort" for b in behs), (
            "the spec's assert must fire on double release"
        )


class TestLockImplSC:
    def test_mutual_exclusion_x86_sc(self):
        result, genv, entries = lock_system(2)
        impl_mod, impl_ge = lock_impl()
        prog = Program(
            [
                ModuleDecl(X86SC, genv, result.target.module),
                ModuleDecl(X86SC, impl_ge, impl_mod),
            ],
            entries,
        )
        traces = done_traces(behaviours_of(prog, max_states=800000))
        assert traces == {(0, 1), (1, 0)}


class TestLockImplTSO:
    def test_mutual_exclusion_x86_tso(self):
        result, genv, entries = lock_system(2)
        prog = impl_program(result, genv, entries)
        traces = done_traces(behaviours_of(prog, max_states=1500000))
        assert traces == {(0, 1), (1, 0)}

    def test_impl_program_has_benign_races(self):
        result, genv, entries = lock_system(2)
        prog = impl_program(result, genv, entries)
        assert not drf(prog, max_states=1500000), (
            "the TTAS spin read races with the release store — the "
            "benign race the paper confines"
        )

    def test_spec_program_races_confined_to_impl(self):
        # With the abstract object the same client is DRF: the races
        # live entirely inside π_lock.
        result, genv, entries = lock_system(2)
        assert drf(spec_program(result, genv, entries),
                   max_states=400000)
