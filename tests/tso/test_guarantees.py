"""Tests for the object simulation ``≼ᵒ`` and the strengthened
DRF-guarantee theorem (Lem. 16)."""

from repro.langs.minic import compile_unit, link_units
from repro.compiler import compile_minic
from repro.tso import (
    DEFAULT_LOCK_ADDR,
    check_object_refinement,
    check_plain_drf_guarantee,
    check_strengthened_drf_guarantee,
    lock_impl,
    lock_spec,
)

from tests.helpers import LOCK_CLIENT

LOCK = DEFAULT_LOCK_ADDR


def build(client_src=LOCK_CLIENT, nthreads=2, entry="inc"):
    units = [compile_unit(client_src)]
    mods, genvs, _ = link_units(units, extra_symbols={"L": LOCK})
    client = mods[0].with_forbidden({LOCK})
    result = compile_minic(client)
    spec_mod, spec_ge = lock_spec()
    impl_mod, impl_ge = lock_impl()
    return {
        "stages": [result.target],
        "genvs": [genvs[0]],
        "impl": (impl_mod, impl_ge),
        "spec": (spec_mod, spec_ge),
        "entries": [entry] * nthreads,
    }


class TestObjectRefinement:
    def test_lock_counter_context(self):
        s = build()
        result = check_object_refinement(
            s["stages"], s["genvs"], *s["impl"], *s["spec"],
            s["entries"], max_states=1500000,
        )
        assert result.ok, result.detail
        # The terminating traces coincide in this context.
        done_tso = {
            b for b in result.tso_behaviours if b.end == "done"
        }
        done_sc = {
            b for b in result.sc_behaviours if b.end == "done"
        }
        assert done_tso == done_sc

    def test_single_thread_context(self):
        s = build(nthreads=1)
        result = check_object_refinement(
            s["stages"], s["genvs"], *s["impl"], *s["spec"],
            s["entries"], max_states=400000,
        )
        assert result.ok


class TestStrengthenedGuarantee:
    def test_lemma16_holds(self):
        s = build()
        result = check_strengthened_drf_guarantee(
            s["stages"], s["genvs"], *s["impl"], *s["spec"],
            s["entries"], max_states=1500000,
        )
        assert result.ok, result.detail
        assert result.premises["safe_sc"]
        assert result.premises["drf_sc"]
        # The theorem is *strengthened*: the TSO side really races.
        assert result.premises["tso_has_races"]

    def test_vacuous_when_sc_program_races(self):
        racy = """
        extern void lock();
        extern void unlock();
        int x = 0;
        void inc() { x ++; print(x); }
        """
        s = build(racy)
        result = check_strengthened_drf_guarantee(
            s["stages"], s["genvs"], *s["impl"], *s["spec"],
            s["entries"], max_states=800000,
        )
        assert result.ok and "vacuous" in result.detail
        assert not result.premises["drf_sc"]


class TestPlainGuarantee:
    def test_drf_clients_sc_equals_tso(self):
        src = """
        int a = 0;
        void t1() { a = 1; print(a); }
        """
        units = [compile_unit(src)]
        mods, genvs, _ = link_units(units)
        result = compile_minic(mods[0])
        verdict = check_plain_drf_guarantee(
            [result.target], [genvs[0]], ["t1"]
        )
        assert verdict.ok

    def test_racy_clients_vacuous(self):
        # The SB litmus shape: racy, so the plain guarantee does not
        # apply (and indeed TSO shows non-SC behaviour — see
        # tests/langs/test_tso.py).
        src = """
        int a = 0;
        int b = 0;
        void t1() { a = 1; print(b); }
        void t2() { b = 1; print(a); }
        """
        units = [compile_unit(src)]
        mods, genvs, _ = link_units(units)
        result = compile_minic(mods[0])
        verdict = check_plain_drf_guarantee(
            [result.target], [genvs[0]], ["t1", "t2"],
            max_states=800000,
        )
        assert verdict.ok and "vacuous" in verdict.detail
