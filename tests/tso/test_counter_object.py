"""Tests for the fetch-and-increment counter object — the extended
framework applied to a non-lock object (Sec. 2.4's generalization)."""

import pytest

from repro.lang.module import ModuleDecl, Program
from repro.langs.cimp.semantics import CIMP
from repro.langs.minic import compile_unit, link_units
from repro.langs.x86.sc import X86SC
from repro.langs.x86.tso import X86TSO
from repro.semantics import drf
from repro.compiler import compile_minic
from repro.tso import (
    DEFAULT_COUNTER_ADDR,
    check_object_refinement,
    check_strengthened_drf_guarantee,
    counter_impl,
    counter_spec,
)

from tests.helpers import behaviours_of, done_traces

CLIENT = """
extern int fetch_inc();
void bump() {
  int old;
  old = fetch_inc();
  print(old);
}
"""


def build(nthreads=2):
    units = [compile_unit(CLIENT)]
    mods, genvs, _ = link_units(
        units, extra_symbols={"K": DEFAULT_COUNTER_ADDR}
    )
    client = mods[0].with_forbidden({DEFAULT_COUNTER_ADDR})
    result = compile_minic(client)
    return result, genvs[0], ["bump"] * nthreads


class TestSpec:
    def test_fetch_inc_returns_distinct_values(self):
        result, genv, entries = build(2)
        spec_mod, spec_ge = counter_spec()
        prog = Program(
            [
                ModuleDecl(result.source.lang, genv,
                           result.source.module),
                ModuleDecl(CIMP, spec_ge, spec_mod),
            ],
            entries,
        )
        traces = done_traces(behaviours_of(prog, max_states=400000))
        # Atomicity: the two threads never observe the same value.
        assert traces == {(0, 1), (1, 0)}

    def test_spec_program_is_drf(self):
        result, genv, entries = build(2)
        spec_mod, spec_ge = counter_spec()
        prog = Program(
            [
                ModuleDecl(result.source.lang, genv,
                           result.source.module),
                ModuleDecl(CIMP, spec_ge, spec_mod),
            ],
            entries,
        )
        assert drf(prog, max_states=400000)


class TestImpl:
    def _impl_program(self, lang=X86TSO, nthreads=2):
        result, genv, entries = build(nthreads)
        impl_mod, impl_ge = counter_impl()
        return Program(
            [
                ModuleDecl(lang, genv, result.target.module),
                ModuleDecl(lang, impl_ge, impl_mod),
            ],
            entries,
        )

    def test_atomicity_under_sc(self):
        prog = self._impl_program(X86SC)
        traces = done_traces(behaviours_of(prog, max_states=800000))
        assert traces == {(0, 1), (1, 0)}

    def test_atomicity_under_tso(self):
        prog = self._impl_program(X86TSO)
        traces = done_traces(behaviours_of(prog, max_states=1500000))
        assert traces == {(0, 1), (1, 0)}

    def test_impl_has_benign_races(self):
        prog = self._impl_program(X86TSO)
        assert not drf(prog, max_states=1500000), (
            "the optimistic read races with committed increments"
        )


class TestRefinement:
    def test_object_refinement(self):
        result, genv, entries = build(2)
        spec_mod, spec_ge = counter_spec()
        impl_mod, impl_ge = counter_impl()
        verdict = check_object_refinement(
            [result.target], [genv], impl_mod, impl_ge,
            spec_mod, spec_ge, entries, max_states=1500000,
        )
        assert verdict.ok, verdict.detail

    def test_strengthened_guarantee(self):
        result, genv, entries = build(2)
        spec_mod, spec_ge = counter_spec()
        impl_mod, impl_ge = counter_impl()
        verdict = check_strengthened_drf_guarantee(
            [result.target], [genv], impl_mod, impl_ge,
            spec_mod, spec_ge, entries, max_states=1500000,
        )
        assert verdict.ok, verdict.detail
        assert verdict.premises["tso_has_races"]
