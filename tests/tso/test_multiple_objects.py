"""Multiple objects linked into one program.

The paper lists this as an open limitation: "our extended framework
currently does not support multiple objects because it lacks a
mechanism to ensure the partition between objects' data" (Sec. 8,
pointing at LRG/CAP-style boundaries). The executable framework's
permission partition generalizes directly: each object owns a disjoint
region; every client is forbidden both regions; each object aborts
outside its own region. This test suite exercises a client linked with
*both* the TTAS lock and the fetch-and-increment counter at once.
"""

import pytest

from repro.lang.module import ModuleDecl, Program
from repro.langs.cimp.semantics import CIMP
from repro.langs.minic import compile_unit, link_units
from repro.langs.x86.sc import X86SC
from repro.langs.x86.tso import X86TSO
from repro.semantics import drf, refines
from repro.compiler import compile_minic
from repro.tso.counterobj import (
    DEFAULT_COUNTER_ADDR,
    counter_impl,
    counter_spec,
)
from repro.tso.lockimpl import lock_impl
from repro.tso.lockspec import DEFAULT_LOCK_ADDR, lock_spec

from tests.helpers import behaviours_of, done_traces

CLIENT = """
extern void lock();
extern void unlock();
extern int fetch_inc();
int x = 0;
void work() {
  int ticket;
  ticket = fetch_inc();
  lock();
  x = x + 1;
  unlock();
  print(ticket);
}
"""


def build(nthreads=2):
    units = [compile_unit(CLIENT)]
    forbidden = {DEFAULT_LOCK_ADDR, DEFAULT_COUNTER_ADDR}
    mods, genvs, _ = link_units(
        units,
        extra_symbols={
            "L": DEFAULT_LOCK_ADDR,
            "K": DEFAULT_COUNTER_ADDR,
        },
    )
    client = mods[0].with_forbidden(forbidden)
    result = compile_minic(client)
    return result, genvs[0], ["work"] * nthreads


def spec_program(result, genv, entries, stage=None):
    stage = stage or result.source
    lock_mod, lock_ge = lock_spec()
    ctr_mod, ctr_ge = counter_spec()
    return Program(
        [
            ModuleDecl(stage.lang, genv, stage.module),
            ModuleDecl(CIMP, lock_ge, lock_mod),
            ModuleDecl(CIMP, ctr_ge, ctr_mod),
        ],
        entries,
    )


def impl_program(result, genv, entries, lang=X86TSO):
    lock_mod, lock_ge = lock_impl()
    ctr_mod, ctr_ge = counter_impl()
    return Program(
        [
            ModuleDecl(lang, genv, result.target.module),
            ModuleDecl(lang, lock_ge, lock_mod),
            ModuleDecl(lang, ctr_ge, ctr_mod),
        ],
        entries,
    )


class TestTwoObjectsSpec:
    def test_source_behaviour(self):
        result, genv, entries = build(2)
        prog = spec_program(result, genv, entries)
        traces = done_traces(behaviours_of(prog, max_states=800000))
        # Tickets are unique (counter atomicity); order free.
        assert traces == {(0, 1), (1, 0)}

    def test_source_drf(self):
        result, genv, entries = build(2)
        assert drf(spec_program(result, genv, entries),
                   max_states=800000)

    def test_object_regions_disjoint(self):
        lock_mod, _ = lock_spec()
        ctr_mod, _ = counter_spec()
        assert not (lock_mod.owned & ctr_mod.owned)


class TestTwoObjectsImpl:
    def test_tso_refines_spec(self):
        result, genv, entries = build(2)
        spec_b = behaviours_of(
            spec_program(result, genv, entries), max_states=1000000
        )
        impl_b = behaviours_of(
            impl_program(result, genv, entries), max_states=4000000
        )
        verdict = refines(impl_b, spec_b, termination_sensitive=False)
        assert bool(verdict), verdict.counterexamples[:3]
        assert done_traces(impl_b) == done_traces(spec_b)

    def test_tso_impls_race_but_confined(self):
        result, genv, entries = build(2)
        impl = impl_program(result, genv, entries)
        assert not drf(impl, max_states=4000000), (
            "both objects carry benign races"
        )
        # With both abstractions the client program is race-free.
        assert drf(spec_program(result, genv, entries),
                   max_states=800000)

    def test_cross_object_access_aborts(self):
        # An object touching the *other* object's region aborts: build
        # a hostile "lock" whose symbols alias the counter cell.
        from repro.langs.cimp.parser import parse_module
        from repro.lang.module import GlobalEnv
        from repro.common.values import VInt

        hostile = parse_module(
            "lock(){ [K] := 0; } unlock(){ skip; }",
            symbols={"K": DEFAULT_COUNTER_ADDR},
            owned={DEFAULT_LOCK_ADDR},
        )
        ge = GlobalEnv(
            {"L": DEFAULT_LOCK_ADDR}, {DEFAULT_LOCK_ADDR: VInt(1)}
        )
        result, genv, entries = build(1)
        ctr_mod, ctr_ge = counter_spec()
        prog = Program(
            [
                ModuleDecl(result.source.lang, genv,
                           result.source.module),
                ModuleDecl(CIMP, ge, hostile),
                ModuleDecl(CIMP, ctr_ge, ctr_mod),
            ],
            entries,
        )
        behs = behaviours_of(prog, max_states=400000)
        assert {b.end for b in behs} == {"abort"}, (
            "the permission partition must stop cross-object access"
        )
