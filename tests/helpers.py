"""Shared builders for the test suite.

Collects the boilerplate of assembling programs: CImp one-module
programs, MiniC systems, compiled pipelines, and the canonical program
suite used by integration tests and benchmarks.
"""

from repro.common.values import VInt
from repro.lang.module import GlobalEnv, ModuleDecl, Program
from repro.langs.cimp import CIMP, parse_module as parse_cimp
from repro.langs.minic import compile_unit, link_units
from repro.langs.minic.semantics import MINIC
from repro.semantics import (
    GlobalContext,
    NonPreemptiveSemantics,
    PreemptiveSemantics,
    program_behaviours,
)

#: Address used for ad-hoc CImp globals in tests.
CELL = 100


def cimp_program(source, entries, symbols=None, init=None, owned=()):
    """A one-module CImp program with the given globals."""
    symbols = symbols if symbols is not None else {"C": CELL}
    init = init if init is not None else {CELL: VInt(0)}
    module = parse_cimp(source, symbols=symbols, owned=owned)
    ge = GlobalEnv(symbols, init)
    return Program([ModuleDecl(CIMP, ge, module)], entries)


def minic_program(sources, entries, extra_symbols=None, forbidden=()):
    """Linked MiniC modules as a source-level program.

    Returns ``(program, modules, genvs, symbols)``.
    """
    units = [compile_unit(src) for src in sources]
    modules, genvs, symbols = link_units(units, extra_symbols)
    if forbidden:
        modules = [m.with_forbidden(frozenset(forbidden)) for m in modules]
    decls = [
        ModuleDecl(MINIC, ge, mod) for mod, ge in zip(modules, genvs)
    ]
    return Program(decls, entries), modules, genvs, symbols


def behaviours_of(program, semantics=None, max_states=200000,
                  max_events=10):
    """Behaviour set shortcut."""
    semantics = semantics or PreemptiveSemantics()
    return program_behaviours(
        GlobalContext(program), semantics, max_states, max_events
    )


def np_behaviours_of(program, max_states=200000, max_events=10):
    return behaviours_of(
        program, NonPreemptiveSemantics(), max_states, max_events
    )


def events_of(behaviours):
    """The set of (event tuple, end) pairs, for compact assertions."""
    return {
        (
            tuple((e.kind, e.value) for e in b.events),
            b.end,
        )
        for b in behaviours
    }


def done_traces(behaviours):
    """Just the successfully terminated print traces."""
    return {
        tuple(e.value for e in b.events)
        for b in behaviours
        if b.end == "done"
    }


# ----- the canonical MiniC program suite -------------------------------------

SUITE = {
    "arith": """
        int g = 10;
        void main() {
          int a = 6;
          int b = 7;
          print(a * b);
          print(g / 3);
          print(g % 3);
          print(-a + b);
          print(a < b);
          print(a == b);
        }
    """,
    "calls": """
        int add(int a, int b) { return a + b; }
        int twice(int n) { return add(n, n); }
        void main() {
          int r;
          r = twice(21);
          print(r);
        }
    """,
    "loops": """
        void main() {
          int i = 0;
          int acc = 0;
          while (i < 5) {
            acc = acc + i;
            i = i + 1;
          }
          print(acc);
        }
    """,
    "globals": """
        int g = 1;
        void bump() { g = g * 2; }
        void main() {
          bump();
          bump();
          bump();
          print(g);
        }
    """,
    "pointers": """
        int cell = 5;
        void set(int *p, int v) { *p = v; }
        void main() {
          set(&cell, 42);
          print(cell);
        }
    """,
    "tailcall": """
        int fact_acc(int n, int acc) {
          if (n <= 1) { return acc; }
          return fact_acc(n - 1, acc * n);
        }
        void main() {
          int r;
          r = fact_acc(5, 1);
          print(r);
        }
    """,
    "branches": """
        int sign(int x) {
          if (x > 0) { return 1; }
          if (x < 0) { return 0 - 1; }
          return 0;
        }
        void main() {
          int r;
          r = sign(5);
          print(r);
          r = sign(0 - 7);
          print(r);
          r = sign(0);
          print(r);
        }
    """,
}

#: Expected print traces per suite program (single-threaded, so one
#: behaviour each).
SUITE_EXPECTED = {
    "arith": (42, 3, 1, 1, 1, 0),
    "calls": (42,),
    "loops": (10,),
    "globals": (8,),
    "pointers": (42,),
    "tailcall": (120,),
    "branches": (1, -1, 0),
}

LOCK_CLIENT = """
extern void lock();
extern void unlock();
int x = 0;
void inc() {
  int tmp;
  lock();
  tmp = x;
  x ++;
  unlock();
  print(tmp);
}
"""

EXAMPLE_2_2 = """
extern void lock();
extern void unlock();
int x = 0;
int y = 0;
void thread1() {
  int r1 = 1;
  r1 = r1 + 1;
  lock();
  x = 1;
  y = x + 1;
  unlock();
  print(r1);
}
void thread2() {
  int r2 = 2;
  r2 = r2 + 1;
  lock();
  x = 2;
  y = x + 1;
  unlock();
  print(r2);
}
"""
