"""Tests for the command-line interface (``python -m repro``)."""

import pytest

from repro.cli import main

CLIENT = """
extern void lock();
extern void unlock();
int x = 0;
void inc() {
  int tmp;
  lock();
  tmp = x;
  x ++;
  unlock();
  print(tmp);
}
"""

SEQ = """
int g = 5;
void main() { g = g * 2; print(g); }
"""

RACY = """
int x = 0;
void t1() { x = 1; }
void t2() { x = 2; }
"""


@pytest.fixture
def client_file(tmp_path):
    path = tmp_path / "client.c"
    path.write_text(CLIENT)
    return str(path)


@pytest.fixture
def seq_file(tmp_path):
    path = tmp_path / "seq.c"
    path.write_text(SEQ)
    return str(path)


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.c"
    path.write_text(RACY)
    return str(path)


class TestCompile:
    def test_lists_passes(self, seq_file, capsys):
        assert main(["compile", seq_file]) == 0
        out = capsys.readouterr().out
        assert "Cshmgen" in out and "Asmgen" in out

    def test_optimize_adds_passes(self, seq_file, capsys):
        assert main(["compile", seq_file, "-O"]) == 0
        out = capsys.readouterr().out
        assert "ConstProp" in out and "CSE" in out

    def test_dump_stage(self, seq_file, capsys):
        assert main(["compile", seq_file, "--dump", "RTLgen"]) == 0
        out = capsys.readouterr().out
        assert "RTLgen" in out and "Iconst" in out

    def test_dump_source(self, seq_file, capsys):
        assert main(["compile", seq_file, "--dump", "source"]) == 0
        out = capsys.readouterr().out
        assert "print" in out

    def test_dump_all(self, seq_file, capsys):
        assert main(["compile", seq_file, "--dump", "all"]) == 0
        out = capsys.readouterr().out
        assert "==== Asmgen" in out


class TestRun:
    def test_sequential(self, seq_file, capsys):
        assert main(["run", seq_file]) == 0
        out = capsys.readouterr().out
        assert "print:10" in out and "done" in out

    def test_lock_client_two_threads(self, client_file, capsys):
        assert main([
            "run", client_file, "--lock", "--threads", "inc,inc",
        ]) == 0
        out = capsys.readouterr().out
        assert "print:0,print:1" in out
        assert "print:1,print:0" in out

    def test_run_at_stage(self, seq_file, capsys):
        assert main(["run", seq_file, "--stage", "Asmgen"]) == 0
        out = capsys.readouterr().out
        assert "print:10" in out


class TestClosureFlag:
    def test_no_closure_compile_disables_staging(self, seq_file, capsys):
        from repro.lang import closure

        closure.set_enabled(None)
        closure.clear_cache()
        try:
            assert main(["run", seq_file, "--no-closure-compile"]) == 0
            assert not closure.enabled()
            assert not closure._cache
            off_out = capsys.readouterr().out
            assert main(["run", seq_file, "--closure-compile"]) == 0
            assert closure.enabled()
            assert closure._cache
            on_out = capsys.readouterr().out
            assert on_out == off_out
        finally:
            closure.set_enabled(None)
            closure.clear_cache()


class TestValidate:
    def test_all_passes_ok(self, client_file, capsys):
        assert main(["validate", client_file, "--lock"]) == 0
        out = capsys.readouterr().out
        assert out.count(" ok") >= 13


class TestDrf:
    def test_drf_program(self, client_file, capsys):
        assert main([
            "drf", client_file, "--lock", "--threads", "inc,inc",
        ]) == 0
        assert "DRF: True" in capsys.readouterr().out

    def test_racy_program_exit_code(self, racy_file, capsys):
        assert main(["drf", racy_file, "--threads", "t1,t2"]) == 1
        assert "DRF: False" in capsys.readouterr().out
