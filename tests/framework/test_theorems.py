"""End-to-end tests of the theorem pipelines (framework package)."""

import pytest

from repro.framework import (
    ClientSystem,
    check_correct,
    check_gcorrect,
    check_reachclose_all,
    check_theorem15,
    format_table,
    framework_steps,
    lock_counter_system,
    per_pass_table,
)


@pytest.fixture(scope="module")
def system():
    return lock_counter_system(2)


class TestBuild:
    def test_lock_system_structure(self, system):
        assert system.use_lock
        assert len(system.results) == 1
        assert system.entries == ("inc", "inc")
        assert system.lock_addr in system.shared()

    def test_programs_constructible(self, system):
        assert len(system.source_program().modules) == 2
        assert len(system.sc_program().modules) == 2
        assert len(system.tso_program().modules) == 2

    def test_stage_program(self, system):
        prog = system.stage_program("RTLgen")
        assert prog.modules[0].lang.name == "RTL"

    def test_no_lock_system(self):
        sys2 = ClientSystem(
            ["void main() { print(1); }"], ["main"]
        )
        assert len(sys2.source_program().modules) == 1


class TestCorrect(object):
    def test_all_passes_validate(self, system):
        ok, validations = check_correct(system)
        assert ok
        names = [v.pass_name for v in validations[0]]
        assert names[:3] == ["Cshmgen", "Cminorgen", "Selection"]
        assert names[-1] == "end-to-end"

    def test_reachclose(self, system):
        ok, reports = check_reachclose_all(system)
        assert ok
        assert "inc" in reports


class TestGCorrect:
    def test_theorem14(self, system):
        result = check_gcorrect(system, max_states=800000)
        assert result.ok, result.detail
        assert all(result.premises.values())

    def test_premise_failure_reported(self):
        racy = ClientSystem(
            [
                "int x = 0; void t1() { x = 1; } "
                "void t2() { x = 2; }"
            ],
            ["t1", "t2"],
        )
        result = check_gcorrect(racy)
        assert not result.ok
        assert not result.premises["drf"]
        assert "premise" in result.detail


class TestTheorem15:
    def test_extended_framework(self, system):
        result = check_theorem15(system, max_states=1500000)
        assert result.ok, result.detail


class TestOptimizedSystem:
    def test_theorems_hold_with_optimizing_pipeline(self):
        from tests.helpers import LOCK_CLIENT

        system = ClientSystem(
            [LOCK_CLIENT], ["inc", "inc"], use_lock=True,
            optimize=True,
        )
        names = [s.name for s in system.results[0].stages]
        assert "CSE" in names
        result = check_gcorrect(system, max_states=1500000)
        assert result.ok, (result.detail, result.premises)
        result15 = check_theorem15(system, max_states=2000000)
        assert result15.ok, result15.detail


class TestFrameworkSteps:
    def test_all_steps_hold(self, system):
        steps = framework_steps(system, max_states=800000)
        assert len(steps) == 6
        for name, result in steps:
            assert result.ok, (name, result.detail)


class TestReport:
    def test_per_pass_table_shape(self, system):
        rows = per_pass_table(system)
        assert [r.pass_name for r in rows] == [
            "Cshmgen", "Cminorgen", "Selection", "RTLgen", "Tailcall",
            "Renumber", "Allocation", "Tunneling", "Linearize",
            "CleanupLabels", "Stacking", "Asmgen",
        ]
        for row in rows:
            assert row.fp_obligations > row.baseline_obligations, (
                "footprint validation adds obligations over baseline"
            )
            assert row.seconds >= 0

    def test_format_table(self, system):
        rows = per_pass_table(system)
        text = format_table(rows)
        assert "Cshmgen" in text and "Asmgen" in text
        assert text.count("\n") >= 13
