"""Tests for the footprint-preserving simulation checker (Defs. 2, 3):
it must accept correct compilations — including legal reorderings — and
reject broken ones."""

from repro.common.freelist import FreeList
from repro.common.values import VInt
from repro.langs.cimp import CIMP, parse_module as parse_cimp
from repro.langs.minic import compile_unit, link_units
from repro.lang.module import GlobalEnv
from repro.compiler import compile_minic
from repro.simulation.local import LocalSimulationChecker
from repro.simulation.rg import Mu
from repro.simulation.validate import validate_compilation

FLIST = FreeList.for_thread(0)


def compiled(src):
    mods, genvs, _ = link_units([compile_unit(src)])
    result = compile_minic(mods[0])
    mem = genvs[0].memory()
    return result, mem, mem.domain()


class TestAcceptsCorrectCompilation:
    def test_suite_program(self):
        result, mem, shared = compiled(
            "int g = 4; "
            "int addg(int a) { return a + g; } "
            "void main() { int r; r = addg(1); g = r; print(r); }"
        )
        validations = validate_compilation(result, mem, shared)
        assert all(v.ok for v in validations), [
            (v.pass_name, v.report.failures[:2])
            for v in validations
            if not v.ok
        ]

    def test_stats_populated(self):
        result, mem, shared = compiled(
            "int g = 0; void main() { g = 1; print(g); }"
        )
        (first, *_rest) = validate_compilation(result, mem, shared)
        st = first.report.stats
        assert st.messages_matched > 0
        assert st.fpmatch_checks > 0
        assert st.rely_moves > 0


class TestReordering:
    """Example (2.2): the accumulated FPmatch admits swapped stores;
    the lockstep (ABL-FP) mode rejects them."""

    SRC_XY = """
    int x = 0;
    int y = 0;
    void body() {
      x = 1;
      y = 2;
      print(y);
    }
    """

    def _cimp_pair(self, reordered):
        # Source stores x then y; "target" is a CImp module too —
        # the checker is language-independent.
        src = parse_cimp(
            "body(){ [X] := 1; [Y] := 2; print(9); }",
            symbols={"X": 10, "Y": 11},
        )
        tgt_text = (
            "body(){ [Y] := 2; [X] := 1; print(9); }"
            if reordered
            else "body(){ [X] := 1; [Y] := 2; print(9); }"
        )
        tgt = parse_cimp(tgt_text, symbols={"X": 10, "Y": 11})
        ge = GlobalEnv(
            {"X": 10, "Y": 11}, {10: VInt(0), 11: VInt(0)}
        )
        return src, tgt, ge.memory()

    def test_swap_accepted_with_accumulation(self):
        src, tgt, mem = self._cimp_pair(reordered=True)
        checker = LocalSimulationChecker(
            CIMP, src, CIMP, tgt, Mu.identity(mem.domain())
        )
        report = checker.check_entry(
            "body", (), mem, mem, FLIST, FLIST
        )
        assert report.ok, report.failures

    def test_swap_rejected_in_lockstep_mode(self):
        src, tgt, mem = self._cimp_pair(reordered=True)
        checker = LocalSimulationChecker(
            CIMP, src, CIMP, tgt, Mu.identity(mem.domain()),
            lockstep=True,
        )
        report = checker.check_entry(
            "body", (), mem, mem, FLIST, FLIST
        )
        assert not report.ok

    def test_identical_accepted_in_lockstep_mode(self):
        src, tgt, mem = self._cimp_pair(reordered=False)
        checker = LocalSimulationChecker(
            CIMP, src, CIMP, tgt, Mu.identity(mem.domain()),
            lockstep=True,
        )
        report = checker.check_entry(
            "body", (), mem, mem, FLIST, FLIST
        )
        assert report.ok, report.failures


class TestRejectsBrokenCompilation:
    def _pair(self, src_text, tgt_text, symbols=None, init=None):
        symbols = symbols or {"G": 10}
        init = init or {10: VInt(0)}
        src = parse_cimp(src_text, symbols=symbols)
        tgt = parse_cimp(tgt_text, symbols=symbols)
        ge = GlobalEnv(symbols, init)
        mem = ge.memory()
        checker = LocalSimulationChecker(
            CIMP, src, CIMP, tgt, Mu.identity(mem.domain())
        )
        return checker.check_entry("f", (), mem, mem, FLIST, FLIST)

    def test_wrong_event_value(self):
        report = self._pair(
            "f(){ print(1); }", "f(){ print(2); }"
        )
        assert not report.ok
        assert any("mismatch" in f for f in report.failures)

    def test_wrong_return_value(self):
        report = self._pair(
            "f(){ return 1; }", "f(){ return 2; }"
        )
        assert not report.ok

    def test_extra_shared_write_rejected(self):
        # The "optimizer" invented a write to shared memory.
        report = self._pair(
            "f(){ print(0); }", "f(){ [G] := 5; print(0); }"
        )
        assert not report.ok
        assert any("FPmatch" in f for f in report.failures)

    def test_extra_shared_read_rejected(self):
        report = self._pair(
            "f(){ print(0); }", "f(){ x := [G]; print(0); }"
        )
        assert not report.ok

    def test_dropped_shared_write_accepted(self):
        # Removing a write shrinks the footprint: FPmatch allows it,
        # but LG's Inv check rejects it when the contents diverge.
        report = self._pair(
            "f(){ [G] := 5; print(0); }", "f(){ print(0); }"
        )
        assert not report.ok
        assert any("LG" in f for f in report.failures)

    def test_write_weakened_to_read_allowed(self):
        # Reading where the source wrote the same value back is a legal
        # footprint weakening *if* the memory still matches; storing
        # the existing value is equivalent to reading it.
        report = self._pair(
            "f(){ [G] := 0; print(0); }",
            "f(){ x := [G]; print(0); }",
        )
        # [G] already holds 0, so contents agree; FPmatch allows
        # ws→rs weakening.
        assert report.ok, report.failures

    def test_target_divergence_rejected(self):
        report = self._pair(
            "f(){ print(0); }",
            "f(){ while (1 == 1) { skip; } print(0); }",
        )
        assert not report.ok
        assert any("budget" in f or "segment" in f
                   for f in report.failures)

    def test_target_abort_rejected(self):
        report = self._pair(
            "f(){ print(0); }", "f(){ assert(0); }"
        )
        assert not report.ok

    def test_source_abort_vacuous(self):
        report = self._pair(
            "f(){ assert(0); }", "f(){ print(9); }"
        )
        assert report.ok
        assert report.stats.vacuous_aborts == 1


class TestRelyInterference:
    def test_env_sensitive_difference_caught(self):
        # Source re-reads G after the event; the broken target caches
        # the pre-event value. Only environment interference between
        # the two events distinguishes them.
        symbols = {"G": 10}
        init = {10: VInt(1)}
        src = parse_cimp(
            "f(){ x := [G]; print(x); y := [G]; print(y); }",
            symbols=symbols,
        )
        tgt = parse_cimp(
            "f(){ x := [G]; print(x); print(x); }", symbols=symbols
        )
        ge = GlobalEnv(symbols, init)
        mem = ge.memory()
        checker = LocalSimulationChecker(
            CIMP, src, CIMP, tgt, Mu.identity(mem.domain()),
            rely_limit=1,
        )
        report = checker.check_entry("f", (), mem, mem, FLIST, FLIST)
        assert not report.ok, (
            "caching a shared read across a switch point must be "
            "rejected under Rely"
        )
