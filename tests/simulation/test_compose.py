"""Tests for the whole-program lemma checkers (Lems. 6–9) and the
source-side obligations (ReachClose, determinism)."""

from repro.common.freelist import FreeList
from repro.common.values import VInt
from repro.langs.cimp import CIMP, parse_module as parse_cimp
from repro.langs.minic import MINIC, compile_unit, link_units
from repro.lang.module import GlobalEnv, ModuleDecl, Program
from repro.simulation.compose import (
    check_compositionality,
    check_drf_npdrf_equivalence,
    check_npdrf_preservation,
    check_semantics_equivalence,
)
from repro.simulation.determinism import check_determinism
from repro.simulation.reachclose import check_reach_close

from tests.helpers import cimp_program

FLIST = FreeList.for_thread(0)


class TestSemanticsEquivalence:
    def test_drf_program_holds(self):
        prog = cimp_program(
            "t1(){ <x := [C]; [C] := x + 1;> print(1); }"
            "t2(){ <x := [C]; [C] := x + 1;> print(2); }",
            ["t1", "t2"],
        )
        assert bool(check_semantics_equivalence(prog))

    def test_racy_program_vacuous(self):
        prog = cimp_program(
            "t1(){ [C] := 1; } t2(){ [C] := 2; }", ["t1", "t2"]
        )
        result = check_semantics_equivalence(prog)
        assert result.ok and "vacuous" in result.detail

    def test_racy_counterexample_without_premise(self):
        # Demonstrate the premise is necessary: for this racy program
        # the two semantics genuinely differ.
        from repro.semantics.refinement import equivalent
        from tests.helpers import behaviours_of, np_behaviours_of

        prog = cimp_program(
            "t1(){ [C] := 1; [C] := 2; }"
            "t2(){ x := [C]; print(x); }",
            ["t1", "t2"],
        )
        assert not bool(
            equivalent(behaviours_of(prog), np_behaviours_of(prog))
        )


class TestDrfNpdrfAgreement:
    def test_agreement_on_drf(self):
        prog = cimp_program(
            "t1(){ <[C] := 1;> } t2(){ <[C] := 2;> }", ["t1", "t2"]
        )
        assert bool(check_drf_npdrf_equivalence(prog))

    def test_agreement_on_racy(self):
        prog = cimp_program(
            "t1(){ [C] := 1; } t2(){ [C] := 2; }", ["t1", "t2"]
        )
        result = check_drf_npdrf_equivalence(prog)
        assert result.ok
        assert "DRF=False NPDRF=False" in result.detail


class TestNpdrfPreservation:
    def _programs(self, tgt_src):
        src = cimp_program(
            "t1(){ <[C] := 1;> } t2(){ <[C] := 2;> }", ["t1", "t2"]
        )
        tgt = cimp_program(tgt_src, ["t1", "t2"])
        return src, tgt

    def test_preserving_compilation(self):
        src, tgt = self._programs(
            "t1(){ <[C] := 1;> } t2(){ <[C] := 2;> }"
        )
        assert bool(check_npdrf_preservation(src, tgt))

    def test_race_introducing_compilation_caught(self):
        src, tgt = self._programs(
            "t1(){ [C] := 1; } t2(){ [C] := 2; }"
        )
        assert not bool(check_npdrf_preservation(src, tgt))

    def test_vacuous_when_source_racy(self):
        src = cimp_program(
            "t1(){ [C] := 1; } t2(){ [C] := 2; }", ["t1", "t2"]
        )
        result = check_npdrf_preservation(src, src)
        assert result.ok and "vacuous" in result.detail


class TestCompositionality:
    def test_identical_programs(self):
        prog = cimp_program(
            "t1(){ print(1); } t2(){ print(2); }", ["t1", "t2"]
        )
        assert bool(check_compositionality(prog, prog))

    def test_detects_new_behaviour(self):
        src = cimp_program("t1(){ print(1); }", ["t1"])
        tgt = cimp_program("t1(){ print(2); }", ["t1"])
        assert not bool(check_compositionality(src, tgt))


class TestReachClose:
    def _minic(self, src):
        mods, genvs, _ = link_units([compile_unit(src)])
        return mods[0], genvs[0].memory()

    def test_well_behaved_module(self):
        module, mem = self._minic(
            "int g = 0; void main() { g = g + 1; print(g); }"
        )
        report = check_reach_close(
            MINIC, module, "main", (), mem, mem.domain(), FLIST
        )
        assert report.ok
        assert report.steps_checked > 0
        assert report.rely_moves > 0

    def test_cimp_module(self):
        module = parse_cimp(
            "f(){ x := [G]; [G] := x + 1; print(x); }",
            symbols={"G": 10},
        )
        mem = GlobalEnv({"G": 10}, {10: VInt(0)}).memory()
        report = check_reach_close(
            CIMP, module, "f", (), mem, mem.domain(), FLIST
        )
        assert report.ok

    def test_out_of_scope_access_caught(self):
        # A module peeking at an address that is neither shared nor in
        # its freelist violates HG.
        module = parse_cimp(
            "f(){ x := [H]; }", symbols={"G": 10, "H": 99}
        )
        from repro.common.memory import Memory

        mem = Memory({10: VInt(0), 99: VInt(1)})
        report = check_reach_close(
            CIMP, module, "f", (), mem, {10}, FLIST
        )
        assert not report.ok


class TestDeterminism:
    def test_deterministic_languages(self):
        module = parse_cimp(
            "f(){ i := 0; while (i < 3) { i := i + 1; } print(i); }"
        )
        from repro.common.memory import Memory

        report = check_determinism(
            CIMP, module, "f", (), Memory(), FLIST
        )
        assert report.ok
        assert report.states_checked > 3

    def test_tso_is_not_deterministic(self):
        from repro.langs.ir.base import IRModule
        from repro.langs.x86 import X86TSO, X86Function
        from repro.langs.x86 import ast as x
        from repro.common.memory import Memory

        f = X86Function("f", 0, [
            x.Pmov_ri("ebx", 1),
            x.Pmov_mr(("global", "a"), "ebx"),
            x.Pmov_ri("ecx", 2),
            x.Pmov_ri("eax", 0),
            x.Pret(),
        ])
        module = IRModule({"f": f}, {"a": 30})
        report = check_determinism(
            X86TSO, module, "f", (), Memory({30: VInt(0)}), FLIST
        )
        assert not report.ok, "buffer flushes are nondeterministic"
