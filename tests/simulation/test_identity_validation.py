"""Property: the simulation checker accepts identity compilation.

``Correct(IdTrans)`` — the paper proves the identity transformation of
CImp object modules satisfies the simulation. The executable analogue:
for *randomly generated* CImp modules, co-executing a module against
itself discharges every obligation (the relation is the diagonal).
This doubles as a reflexivity check of the checker itself: any failure
here is a checker bug, not a compiler bug.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.freelist import FreeList
from repro.common.values import VInt
from repro.lang.module import GlobalEnv
from repro.langs.cimp import CIMP, parse_module
from repro.framework import check_idtrans, lock_counter_system
from repro.simulation.local import LocalSimulationChecker
from repro.simulation.rg import Mu

FLIST = FreeList.for_thread(0)
SYMBOLS = {"C": 100, "D": 101}


def _stmt():
    return st.sampled_from([
        "x := [C];",
        "[C] := x + 1;",
        "[D] := x;",
        "x := x * 2;",
        "print(x);",
        "<y := [C]; [C] := y + 1;>",
        "if (x == 0) { [C] := 1; } else { print(x); }",
        "i := 2; while (i > 0) { i := i - 1; }",
        "return x;",
    ])


@st.composite
def cimp_modules(draw):
    stmts = draw(st.lists(_stmt(), min_size=1, max_size=5))
    return "f(){ x := 0; " + " ".join(stmts) + " }"


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(cimp_modules())
def test_identity_validation_reflexive(source):
    module = parse_module(source, symbols=SYMBOLS)
    mem = GlobalEnv(SYMBOLS, {100: VInt(0), 101: VInt(0)}).memory()
    checker = LocalSimulationChecker(
        CIMP, module, CIMP, module, Mu.identity(mem.domain())
    )
    report = checker.check_entry("f", (), mem, mem, FLIST, FLIST)
    assert report.ok, (source, report.failures[:3])


def test_lock_object_idtrans():
    system = lock_counter_system(2)
    assert check_idtrans(system)
