"""Unit tests for µ, FPmatch and the rely/guarantee conditions (Fig. 8)."""

from repro.common.footprint import EMP, Footprint
from repro.common.memory import Memory
from repro.common.values import VInt, VPtr
from repro.simulation.rg import (
    Mu,
    fp_match,
    hg,
    inv,
    lg,
    rely,
    rely_one,
)

SHARED = {10, 11, 12}


def identity_mu():
    return Mu.identity(SHARED)


class TestMu:
    def test_identity_well_formed(self):
        assert identity_mu().well_formed()

    def test_shifted_mapping(self):
        mu = Mu({1, 2}, {101, 102}, {1: 101, 2: 102})
        assert mu.well_formed()
        assert mu.map_addr(1) == 101
        assert mu.map_region({1, 2}) == {101, 102}

    def test_non_injective_rejected(self):
        mu = Mu({1, 2}, {101}, {1: 101, 2: 101})
        assert not mu.well_formed()

    def test_partial_domain_rejected(self):
        mu = Mu({1, 2}, {101}, {1: 101})
        assert not mu.well_formed()

    def test_map_value(self):
        mu = Mu({1}, {101}, {1: 101})
        assert mu.map_value(VPtr(1)) == VPtr(101)
        assert mu.map_value(VInt(5)) == VInt(5)
        assert mu.map_value(VPtr(99)) is None


class TestFPmatch:
    def test_equal_footprints_match(self):
        mu = identity_mu()
        fp = Footprint({10}, {11})
        assert fp_match(mu, fp, fp)

    def test_smaller_target_matches(self):
        mu = identity_mu()
        assert fp_match(mu, Footprint({10, 11}, {12}), EMP)
        assert fp_match(
            mu, Footprint({10, 11}, {12}), Footprint({10}, ())
        )

    def test_extra_target_read_rejected(self):
        mu = identity_mu()
        assert not fp_match(
            mu, Footprint({10}, ()), Footprint({11}, ())
        )

    def test_write_weakened_to_read_allowed(self):
        # δ.rs may come from Δ.ws.
        mu = identity_mu()
        assert fp_match(
            mu, Footprint((), {10}), Footprint({10}, ())
        )

    def test_read_strengthened_to_write_rejected(self):
        mu = identity_mu()
        assert not fp_match(
            mu, Footprint({10}, ()), Footprint((), {10})
        )

    def test_local_addresses_unconstrained(self):
        # Footprints outside the shared region are invisible to µ.
        mu = identity_mu()
        local = 1 << 21
        assert fp_match(
            mu, EMP, Footprint({local}, {local})
        )

    def test_mapping_applied(self):
        mu = Mu({1}, {101}, {1: 101})
        assert fp_match(
            mu, Footprint((), {1}), Footprint((), {101})
        )
        # A target write at a shared address with no mapped source
        # counterpart must be rejected.
        assert not fp_match(
            mu, EMP, Footprint((), {101})
        )


class TestInv:
    def test_related_contents(self):
        mu = Mu({1}, {101}, {1: 101})
        src = Memory({1: VInt(5)})
        tgt = Memory({101: VInt(5)})
        assert inv(mu, src, tgt)

    def test_differing_contents_rejected(self):
        mu = Mu({1}, {101}, {1: 101})
        assert not inv(
            mu, Memory({1: VInt(5)}), Memory({101: VInt(6)})
        )

    def test_pointer_contents_mapped(self):
        mu = Mu({1, 2}, {101, 102}, {1: 101, 2: 102})
        src = Memory({1: VPtr(2), 2: VInt(0)})
        tgt = Memory({101: VPtr(102), 102: VInt(0)})
        assert inv(mu, src, tgt)
        tgt_bad = Memory({101: VPtr(101), 102: VInt(0)})
        assert not inv(mu, src, tgt_bad)

    def test_missing_target_address(self):
        mu = Mu({1}, {101}, {1: 101})
        assert not inv(mu, Memory({1: VInt(0)}), Memory())


class TestGuarantees:
    def test_hg_in_scope(self):
        mem = Memory({10: VInt(0), 11: VInt(0), 12: VInt(0)})
        assert hg(Footprint({10}, {11}), mem, frozenset(), SHARED)

    def test_hg_out_of_scope(self):
        mem = Memory({10: VInt(0)})
        assert not hg(Footprint({99}, ()), mem, frozenset(), SHARED)

    def test_hg_closedness(self):
        leaky = Memory(
            {10: VPtr(1 << 21), 11: VInt(0), 12: VInt(0)}
        )
        assert not hg(EMP, leaky, frozenset(), SHARED)

    def test_lg_bundles_all_conditions(self):
        mu = identity_mu()
        mem = Memory({10: VInt(0), 11: VInt(0), 12: VInt(0)})
        assert lg(mu, Footprint({10}, ()), mem, frozenset(),
                  Footprint({10}, ()), mem)
        # FPmatch failure propagates.
        assert not lg(mu, Footprint({11}, ()), mem, frozenset(),
                      Footprint({10}, ()), mem)


class TestRely:
    def test_local_memory_untouched(self):
        fl = frozenset({1000})
        a = Memory({10: VInt(0), 1000: VInt(5)})
        good = a.store(10, VInt(9))
        bad = a.store(1000, VInt(9))
        assert rely_one(a, good, fl, SHARED)
        assert not rely_one(a, bad, fl, SHARED)

    def test_closedness_required(self):
        a = Memory({10: VInt(0), 11: VInt(0), 12: VInt(0)})
        leaked = a.store(10, VPtr(1 << 21))
        assert not rely_one(a, leaked, frozenset(), SHARED)

    def test_forward_required(self):
        a = Memory({10: VInt(0), 11: VInt(0), 12: VInt(0)})
        shrunk = Memory({11: VInt(0), 12: VInt(0)})
        assert not rely_one(a, shrunk, frozenset(), {11, 12})

    def test_two_sided_rely(self):
        mu = Mu({1}, {101}, {1: 101})
        src = Memory({1: VInt(0)})
        tgt = Memory({101: VInt(0)})
        src2 = src.store(1, VInt(7))
        tgt2 = tgt.store(101, VInt(7))
        assert rely(mu, src, src2, frozenset(), tgt, tgt2, frozenset())
        tgt_bad = tgt.store(101, VInt(8))
        assert not rely(
            mu, src, src2, frozenset(), tgt, tgt_bad, frozenset()
        )
