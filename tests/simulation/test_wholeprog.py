"""Tests for the explicit whole-program simulation construction."""

import pytest

from repro.semantics import NonPreemptiveSemantics, PreemptiveSemantics
from repro.simulation.wholeprog import (
    check_simulation_and_flip,
    check_whole_program_simulation,
)
from repro.framework import ClientSystem, lock_counter_system

from tests.helpers import SUITE, cimp_program


class TestSequentialPrograms:
    @pytest.mark.parametrize("name", ["calls", "branches", "globals"])
    def test_simulation_both_directions(self, name):
        system = ClientSystem([SUITE[name]], ["main"])
        down, up = check_simulation_and_flip(
            system.source_program(),
            system.sc_program(),
            NonPreemptiveSemantics(),
        )
        assert down and up, (name, down, up)
        assert down.relation_size > 0


class TestConcurrentPrograms:
    def test_lock_counter_single_thread(self):
        system = lock_counter_system(1)
        down, up = check_simulation_and_flip(
            system.source_program(),
            system.sc_program(),
            NonPreemptiveSemantics(),
        )
        assert down and up

    def test_preemptive_semantics_too(self):
        system = lock_counter_system(1)
        down = check_whole_program_simulation(
            system.source_program(),
            system.sc_program(),
            PreemptiveSemantics(),
        )
        assert down

    def test_cimp_identity(self):
        prog = cimp_program(
            "t1(){ <x := [C]; [C] := x + 1;> print(1); }"
            "t2(){ print(2); }",
            ["t1", "t2"],
        )
        down = check_whole_program_simulation(
            prog, prog, NonPreemptiveSemantics()
        )
        assert down


class TestRejection:
    def test_wrong_event_no_simulation(self):
        src = cimp_program("t1(){ print(1); }", ["t1"])
        tgt = cimp_program("t1(){ print(2); }", ["t1"])
        down = check_whole_program_simulation(
            src, tgt, NonPreemptiveSemantics()
        )
        assert not down

    def test_missing_behaviour_no_simulation(self):
        # Source can print either branch (racy read); target only one.
        src = cimp_program(
            "t1(){ x := [C]; print(x); } t2(){ [C] := 1; }",
            ["t1", "t2"],
        )
        tgt = cimp_program(
            "t1(){ print(0); } t2(){ skip; }", ["t1", "t2"]
        )
        down = check_whole_program_simulation(
            src, tgt, PreemptiveSemantics()
        )
        assert not down

    def test_superset_target_simulates_but_not_flipped(self):
        # Target has strictly more behaviours: downward holds, the
        # flip fails — exactly why the paper needs determinism for ④.
        src = cimp_program("t1(){ print(0); }", ["t1"])
        tgt = cimp_program(
            "t1(){ x := [C]; print(x); } t2(){ [C] := 1; }",
            ["t1", "t2"],
        )
        down = check_whole_program_simulation(
            src, tgt, PreemptiveSemantics()
        )
        up = check_whole_program_simulation(
            tgt, src, PreemptiveSemantics()
        )
        assert down
        assert not up

    def test_abort_must_be_matched(self):
        src = cimp_program("t1(){ assert(0); }", ["t1"])
        tgt = cimp_program("t1(){ print(1); }", ["t1"])
        down = check_whole_program_simulation(
            src, tgt, NonPreemptiveSemantics()
        )
        assert not down
