"""Tests for roach-motel mode — the paper's future-work reordering
("support roach-motel reorderings by distinguishing EntAtom and
ExtAtom in the local simulation and recording the footprints that are
moved across EntAtom").

Supported direction: accesses moved forward *into* an atomic block
(across EntAtom — the acquire side). Motion *out* of a block (across
ExtAtom — which would expose protected accesses) remains rejected even
in roach-motel mode.
"""

import pytest

from repro.common.freelist import FreeList
from repro.common.values import VInt
from repro.lang.module import GlobalEnv
from repro.langs.cimp import CIMP, parse_module
from repro.simulation.local import LocalSimulationChecker
from repro.simulation.rg import Mu

FLIST = FreeList.for_thread(0)
SYMBOLS = {"X": 10, "Y": 11}


def run_checker(src_text, tgt_text, roach_motel):
    src = parse_module(src_text, symbols=SYMBOLS)
    tgt = parse_module(tgt_text, symbols=SYMBOLS)
    mem = GlobalEnv(SYMBOLS, {10: VInt(0), 11: VInt(0)}).memory()
    checker = LocalSimulationChecker(
        CIMP, src, CIMP, tgt, Mu.identity(mem.domain()),
        roach_motel=roach_motel,
    )
    return checker.check_entry("body", (), mem, mem, FLIST, FLIST)


INTO_BLOCK = (
    "body(){ [X] := 1; <[Y] := 2;> print(0); }",
    "body(){ <[X] := 1; [Y] := 2;> print(0); }",
)

OUT_OF_BLOCK = (
    "body(){ <[X] := 1; [Y] := 2;> print(0); }",
    "body(){ <[Y] := 2;> [X] := 1; print(0); }",
)


class TestRoachMotel:
    def test_into_block_rejected_by_default(self):
        report = run_checker(*INTO_BLOCK, roach_motel=False)
        assert not report.ok
        assert any("LG" in f for f in report.failures)

    def test_into_block_accepted_in_roach_mode(self):
        report = run_checker(*INTO_BLOCK, roach_motel=True)
        assert report.ok, report.failures

    def test_out_of_block_rejected_even_in_roach_mode(self):
        report = run_checker(*OUT_OF_BLOCK, roach_motel=True)
        assert not report.ok, (
            "release-side motion exposes protected accesses"
        )

    def test_identity_unaffected(self):
        src = "body(){ [X] := 1; <[Y] := 2;> print(0); }"
        report = run_checker(src, src, roach_motel=True)
        assert report.ok, report.failures

    def test_wrong_value_still_caught_in_roach_mode(self):
        report = run_checker(
            "body(){ [X] := 1; <[Y] := 2;> print(0); }",
            "body(){ <[X] := 9; [Y] := 2;> print(0); }",
            roach_motel=True,
        )
        assert not report.ok, (
            "deferred LG at the block exit must still compare contents"
        )

    def test_extra_access_still_caught_in_roach_mode(self):
        report = run_checker(
            "body(){ <[Y] := 2;> print(0); }",
            "body(){ <[X] := 1; [Y] := 2;> print(0); }",
            roach_motel=True,
        )
        assert not report.ok, (
            "an access the source never performs is not a reordering"
        )
