"""The perf-trajectory gate (PR 6): ``benchmarks/trajectory.py``.

Synthetic ``BENCH_pr*.json`` files in a tmp dir exercise discovery,
series extraction across the differing per-PR schemas, the
ratio-symmetric delta, gating and the exit-code contract; one test
runs the gate over the repo's real committed artifacts (the exact
invocation CI uses) and requires it to pass.
"""

import json
import os

import pytest

from benchmarks.trajectory import (
    build_trajectories,
    discover,
    extract_series,
    find_regressions,
    main,
    render_report,
)

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")


def _write(tmp_path, pr, data):
    path = tmp_path / "BENCH_pr{}.json".format(pr)
    path.write_text(json.dumps(data))
    return path


def _scale(sps, seconds=None):
    entry = {"workload": "wl", "states_per_second": sps}
    if seconds is not None:
        entry["seconds_best"] = seconds
    return {"scale": entry}


class TestExtraction:
    def test_discover_orders_by_pr_number(self, tmp_path):
        for pr in (10, 2, 5):
            _write(tmp_path, pr, {})
        (tmp_path / "BENCH_notes.json").write_text("{}")
        assert [pr for pr, _ in discover(str(tmp_path))] == [2, 5, 10]

    def test_extract_scale_and_fig13(self):
        series = extract_series(
            {
                "scale": {
                    "workload": "w", "states_per_second": 100.0,
                    "seconds_best": 2.0,
                },
                "fig13": {"workload": "v", "seconds_best": 0.5},
            }
        )
        assert series[("w", "states_per_second")] == 100.0
        assert series[("w", "seconds_best")] == 2.0
        assert series[("v", "seconds_best")] == 0.5

    def test_extract_scaling_rows_map_onto_shared_keys(self):
        """A jobs=1 full row continues the ``scale`` series; reduced
        and jobs>1 rows become suffixed series of their own."""
        series = extract_series(
            {
                "scaling": [
                    {
                        "workload": "w", "mode": "full",
                        "rows": [
                            {"jobs": 1, "states_per_second": 90.0},
                            {"jobs": 2, "states_per_second": 40.0},
                        ],
                    },
                    {
                        "workload": "w", "mode": "reduced",
                        "rows": [
                            {"jobs": 1, "states_per_second": 200.0}
                        ],
                    },
                ]
            }
        )
        assert series[("w", "states_per_second")] == 90.0
        assert series[("w [jobs=2]", "states_per_second")] == 40.0
        assert series[("w [reduced]", "states_per_second")] == 200.0


class TestGating:
    def test_improvement_passes(self, tmp_path):
        _write(tmp_path, 1, _scale(100.0))
        _write(tmp_path, 2, _scale(150.0))
        t = build_trajectories(str(tmp_path))
        assert find_regressions(t, tolerance=0.1) == []

    def test_regression_beyond_tolerance_fails(self, tmp_path):
        _write(tmp_path, 1, _scale(100.0))
        _write(tmp_path, 2, _scale(50.0))
        t = build_trajectories(str(tmp_path))
        regs = find_regressions(t, tolerance=0.4)
        assert len(regs) == 1
        workload, metric, pr_a, pr_b, delta = regs[0]
        assert (pr_a, pr_b) == (1, 2)
        assert delta == pytest.approx(-0.5)

    def test_regression_within_tolerance_passes(self, tmp_path):
        _write(tmp_path, 1, _scale(100.0))
        _write(tmp_path, 2, _scale(70.0))
        t = build_trajectories(str(tmp_path))
        assert find_regressions(t, tolerance=0.4) == []

    def test_delta_is_ratio_symmetric(self, tmp_path):
        """A 2x slowdown reads as -50% whether the series tracks
        seconds (lower-better) or throughput (higher-better)."""
        _write(tmp_path, 1, _scale(100.0, seconds=1.0))
        _write(tmp_path, 2, _scale(50.0, seconds=2.0))
        t = build_trajectories(str(tmp_path))
        regs = find_regressions(t, tolerance=0.45)
        assert {r[1] for r in regs} == {
            "states_per_second", "seconds_best",
        }
        for r in regs:
            assert r[4] == pytest.approx(-0.5)

    def test_only_newest_transition_gated_by_default(self, tmp_path):
        """An ancient gated regression must not fail today's PR."""
        _write(tmp_path, 1, _scale(100.0))
        _write(tmp_path, 2, _scale(30.0))  # old cliff
        _write(tmp_path, 3, _scale(31.0))  # newest: flat
        t = build_trajectories(str(tmp_path))
        assert find_regressions(t, tolerance=0.4) == []
        assert len(find_regressions(t, tolerance=0.4, check_all=True)) == 1

    def test_single_point_series_never_gate(self, tmp_path):
        _write(tmp_path, 1, _scale(100.0))
        t = build_trajectories(str(tmp_path))
        assert find_regressions(t, tolerance=0.0) == []

    def test_collapse_to_zero_gates(self, tmp_path):
        """A nonzero -> zero drop is a broken measurement, not a free
        pass: it must gate at the saturated -100% in both directions
        (the old formula returned 0.0 when a zero landed in the
        denominator)."""
        _write(tmp_path, 1, _scale(100.0, seconds=1.0))
        _write(tmp_path, 2, _scale(0.0, seconds=0.0))
        t = build_trajectories(str(tmp_path))
        regs = find_regressions(t, tolerance=0.4)
        assert {r[1] for r in regs} == {
            "states_per_second", "seconds_best",
        }
        for r in regs:
            assert r[4] == pytest.approx(-1.0)

    def test_zero_start_gates_only_against_direction(self, tmp_path):
        """Starting from 0 saturates in the series' own direction:
        0 -> 100 states/s is a +100% recovery, 0 -> 1 seconds a
        -100% slowdown; an all-zero series stays flat."""
        _write(tmp_path, 1, _scale(0.0, seconds=0.0))
        _write(tmp_path, 2, _scale(100.0, seconds=1.0))
        _write(tmp_path, 3, _scale(100.0, seconds=1.0))
        t = build_trajectories(str(tmp_path))
        regs = find_regressions(t, tolerance=0.4, check_all=True)
        assert [(r[1], r[2], r[3]) for r in regs] == [
            ("seconds_best", 1, 2)
        ]
        assert regs[0][4] == pytest.approx(-1.0)
        _write(tmp_path, 4, _scale(0.0))
        _write(tmp_path, 5, _scale(0.0))
        t = build_trajectories(str(tmp_path))
        flat = [
            r for r in find_regressions(t, tolerance=0.0, check_all=True)
            if r[2] == 4
        ]
        assert flat == []


class TestCLI:
    def test_exit_codes_and_report(self, tmp_path, capsys):
        _write(tmp_path, 1, _scale(100.0))
        _write(tmp_path, 2, _scale(10.0))
        report = tmp_path / "report.txt"
        jout = tmp_path / "traj.json"
        rc = main(
            [
                "--dir", str(tmp_path), "--report", str(report),
                "--json", str(jout),
            ]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "regressions beyond tolerance" in out
        assert report.read_text() == out.rstrip("\n") + "\n"
        payload = json.loads(jout.read_text())
        assert payload["regressions"][0]["delta"] == pytest.approx(-0.9)
        assert payload["series"][0]["points"][0]["pr"] == 1

    def test_empty_dir_is_usage_error(self, tmp_path):
        assert main(["--dir", str(tmp_path)]) == 2

    def test_all_mode_annotates_the_failing_transition(
        self, tmp_path, capsys
    ):
        """The issue's repro: pr 100 -> 10 -> 12 under ``--all``. The
        historical pr1 -> pr2 cliff fails the gate, but the newest
        transition *improved* — it must read ``ok (+20.0%)`` while the
        cliff is annotated on its own arrow in the path."""
        _write(tmp_path, 1, _scale(100.0))
        _write(tmp_path, 2, _scale(10.0))
        _write(tmp_path, 3, _scale(12.0))
        rc = main(["--dir", str(tmp_path), "--all"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "-[REGRESSED -90.0%]->" in out
        assert "ok (+20.0%)" in out
        # The newest transition is not stamped with the series status.
        status_line = next(
            line for line in out.splitlines() if "pr3:12" in line
        )
        assert not status_line.rstrip().endswith("REGRESSED")

    def test_newest_transition_regression_still_stamps(
        self, tmp_path, capsys
    ):
        _write(tmp_path, 1, _scale(100.0))
        _write(tmp_path, 2, _scale(10.0))
        assert main(["--dir", str(tmp_path), "--all"]) == 1
        out = capsys.readouterr().out
        status_line = next(
            line for line in out.splitlines() if "pr2:10" in line
        )
        assert status_line.rstrip().endswith("REGRESSED")

    def test_report_mentions_direction(self, tmp_path):
        _write(tmp_path, 1, _scale(100.0, seconds=1.0))
        t = build_trajectories(str(tmp_path))
        report = render_report(t, [], 0.4)
        assert "higher is better" in report
        assert "lower is better" in report
        assert "single point" in report

    def test_committed_history_passes_the_gate(self, capsys):
        """The invocation CI runs must pass on the repo as committed;
        otherwise the perf gate is red on arrival."""
        assert main(["--dir", REPO_ROOT]) == 0
        out = capsys.readouterr().out
        assert "no regression beyond tolerance." in out
