"""On-disk campaign state: dedup, findings schema, checkpoint safety."""

import json

import pytest

from repro.common.serialize import wrap_document
from repro.fuzz.corpus import (
    CHECKPOINT_KIND,
    FINDINGS_KIND,
    FINDINGS_VERSION,
    Corpus,
    CorpusError,
)
from repro.fuzz.generators import GENERATOR_VERSION, generate


@pytest.fixture
def corpus(tmp_path):
    return Corpus(tmp_path / "corpus")


class TestPrograms:
    def test_add_is_deduped_by_content_hash(self, corpus):
        inp = generate("minic-seq", 42)
        path, added = corpus.add_program(inp)
        assert added is True
        with open(path) as handle:
            assert handle.read() == inp.source
        again, added = corpus.add_program(inp)
        assert added is False
        assert again == path
        assert corpus.program_count() == 1

    def test_distinct_programs_coexist(self, corpus):
        _, a = corpus.add_program(generate("minic-seq", 1))
        _, b = corpus.add_program(generate("minic-seq", 2))
        assert a and b
        assert corpus.program_count() == 2

    def test_filenames_use_hash_prefix_and_extension(self, corpus):
        inp = generate("cimp-pair", 0)
        path, _ = corpus.add_program(inp)
        assert path.endswith(inp.content_hash[:16] + ".cimp")


class TestFindingsLog:
    def test_fresh_log_shape(self, corpus):
        doc = corpus.load_findings()
        assert doc["type"] == FINDINGS_KIND
        assert doc["version"] == FINDINGS_VERSION
        assert doc["findings"] == []

    def test_append_round_trips(self, corpus):
        campaign = {"seed": 1, "count": 2}
        assert corpus.append_finding(
            {"kind": "race", "expected": True}, campaign=campaign
        ) == 1
        assert corpus.append_finding({"kind": "crash"}) == 2
        doc = corpus.load_findings()
        assert doc["campaign"] == campaign
        assert [f["kind"] for f in doc["findings"]] == \
            ["race", "crash"]

    def test_header_written_even_when_clean(self, corpus):
        corpus.write_findings_header({"seed": 9})
        doc = json.loads(open(corpus.findings_path).read())
        assert doc["campaign"] == {"seed": 9}
        assert doc["findings"] == []

    def test_foreign_type_rejected(self, corpus, tmp_path):
        corpus.ensure_dirs()
        with open(corpus.findings_path, "w") as handle:
            json.dump({"type": "heartbeat"}, handle)
        with pytest.raises(CorpusError, match="not a findings log"):
            corpus.load_findings()

    def test_future_version_rejected(self, corpus):
        corpus.ensure_dirs()
        with open(corpus.findings_path, "w") as handle:
            json.dump(
                {"type": FINDINGS_KIND, "version": 999}, handle
            )
        with pytest.raises(CorpusError, match="version"):
            corpus.load_findings()

    def test_torn_json_rejected(self, corpus):
        corpus.ensure_dirs()
        with open(corpus.findings_path, "w") as handle:
            handle.write("{not json")
        with pytest.raises(CorpusError, match="not valid JSON"):
            corpus.load_findings()


class TestCheckpoint:
    STATE = {
        "generator_version": GENERATOR_VERSION,
        "seed": 5,
        "count": 10,
        "kinds": ["minic-seq"],
        "done": {"0": "abc"},
    }

    def test_round_trip(self, corpus):
        corpus.save_checkpoint(dict(self.STATE))
        assert corpus.load_checkpoint() == self.STATE

    def test_missing_is_none(self, corpus):
        assert corpus.load_checkpoint() is None

    def test_envelope_kind_enforced(self, corpus):
        corpus.ensure_dirs()
        with open(corpus.checkpoint_path, "w") as handle:
            json.dump(wrap_document("witness", dict(self.STATE)),
                      handle)
        with pytest.raises(CorpusError):
            corpus.load_checkpoint()

    def test_generator_version_mismatch_rejected(self, corpus):
        state = dict(self.STATE, generator_version=GENERATOR_VERSION + 1)
        corpus.save_checkpoint(state)
        with pytest.raises(CorpusError, match="generator version"):
            corpus.load_checkpoint()

    def test_torn_json_rejected(self, corpus):
        corpus.ensure_dirs()
        with open(corpus.checkpoint_path, "w") as handle:
            handle.write('{"type": "fuzz-checkpo')
        with pytest.raises(CorpusError, match="not valid JSON"):
            corpus.load_checkpoint()

    def test_envelope_type_on_disk(self, corpus):
        corpus.save_checkpoint(dict(self.STATE))
        doc = json.loads(open(corpus.checkpoint_path).read())
        assert doc["type"] == CHECKPOINT_KIND


class TestWitnesses:
    def test_save_witness_is_json(self, corpus):
        path = corpus.save_witness("ff" * 32, {"type": "witness"})
        assert json.loads(open(path).read()) == {"type": "witness"}
        assert path == corpus.witness_path("ff" * 32)
