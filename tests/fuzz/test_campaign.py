"""Campaign driver: clean runs, resume, crash robustness, injection.

The expensive end-to-end properties live here: a campaign killed with
``kill -9`` resumes past everything its checkpoint recorded, a forked
pool produces the byte-identical corpus a sequential run does, and an
injected broken lock client is detected, minimized and replayable.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.cli import main
from repro.fuzz import campaign as campaign_mod
from repro.fuzz.campaign import CampaignConfig, run_campaign
from repro.fuzz.corpus import Corpus, CorpusError
from repro.semantics.parallel import available as fork_available

_SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC
    return env


def _cfg(tmp_path, **kw):
    kw.setdefault("seed", 1)
    kw.setdefault("count", 6)
    kw.setdefault("out", str(tmp_path / "corpus"))
    return CampaignConfig(**kw)


class TestSequentialCampaign:
    def test_clean_run_and_resume(self, tmp_path):
        cfg = _cfg(tmp_path)
        stats = run_campaign(cfg)
        assert stats.executed == 6
        assert stats.skipped == 0
        assert stats.unexpected == 0
        assert stats.stopped == "done"

        corpus = Corpus(cfg.out)
        assert corpus.program_count() == stats.programs_added > 0
        state = corpus.load_checkpoint()
        assert len(state["done"]) == 6
        assert corpus.load_findings()["findings"] == []

        # The resume: everything in the checkpoint is skipped, nothing
        # re-executes.
        again = run_campaign(_cfg(tmp_path))
        assert again.executed == 0
        assert again.skipped == 6

    def test_resume_extends_a_grown_count(self, tmp_path):
        run_campaign(_cfg(tmp_path, count=4))
        stats = run_campaign(_cfg(tmp_path, count=8))
        assert stats.skipped == 4
        assert stats.executed == 4

    def test_foreign_checkpoint_rejected(self, tmp_path):
        run_campaign(_cfg(tmp_path, seed=1))
        with pytest.raises(CorpusError, match="--fresh"):
            run_campaign(_cfg(tmp_path, seed=2))
        # --fresh discards it and runs.
        stats = run_campaign(_cfg(tmp_path, seed=2, fresh=True))
        assert stats.executed == 6

    def test_duration_budget_stops_admission(self, tmp_path):
        stats = run_campaign(_cfg(tmp_path, duration=0.0))
        assert stats.stopped == "duration"
        assert stats.executed == 0
        # Nothing finished, so the next run still has all the work.
        resumed = run_campaign(_cfg(tmp_path))
        assert resumed.executed == 6

    def test_findings_log_schema(self, tmp_path):
        cfg = _cfg(tmp_path, count=2,
                   kinds=("minic-lock-broken",))
        run_campaign(cfg)
        doc = Corpus(cfg.out).load_findings()
        assert doc["type"] == "fuzz-findings"
        assert doc["campaign"]["seed"] == 1
        assert doc["campaign"]["kinds"] == ["minic-lock-broken"]
        for finding in doc["findings"]:
            assert finding["kind"] == "race"
            assert finding["expected"] is True
            assert set(finding["input"]) == \
                {"kind", "index", "seed", "hash"}
            assert os.path.exists(finding["witness"])


class TestInjectedDivergence:
    def test_broken_client_minimized_and_replayable(self, tmp_path):
        cfg = _cfg(tmp_path, count=2, kinds=("minic-lock-broken",))
        stats = run_campaign(cfg)
        assert stats.findings == 2
        assert stats.unexpected == 0  # expected: we injected them

        corpus = Corpus(cfg.out)
        for finding in corpus.load_findings()["findings"]:
            assert finding["schedule_steps"] <= \
                finding["original_steps"]
            witness = finding["witness"]
            program = corpus.program_path(
                finding["input"]["hash"], ".c"
            )
            record = json.loads(open(witness).read())
            assert record["program"]["file"] == program
            assert record["program"]["lock"] is True
            # The replay harness accepts the artifact end to end.
            assert main(["replay", program, "--witness",
                         witness]) == 0


class TestHarnessCrash:
    def test_crash_becomes_a_finding(self, tmp_path, monkeypatch):
        def boom(inp, cfg):
            raise RuntimeError("synthetic harness crash")

        monkeypatch.setattr(campaign_mod, "_check_minic_seq", boom)
        cfg = _cfg(tmp_path, count=2, kinds=("minic-seq",))
        stats = run_campaign(cfg)
        assert stats.executed == 2  # the campaign did not die
        assert stats.unexpected == 2
        findings = Corpus(cfg.out).load_findings()["findings"]
        assert all(f["kind"] == "crash" for f in findings)
        assert "synthetic harness crash" in findings[0]["detail"]

    def test_unexpected_divergence_reported(self, tmp_path,
                                            monkeypatch):
        def diverge(inp, cfg):
            return campaign_mod._finding(
                "divergence", inp, "synthetic divergence"
            )

        monkeypatch.setattr(campaign_mod, "_check_minic_seq", diverge)
        cfg = _cfg(tmp_path, count=1, kinds=("minic-seq",))
        stats = run_campaign(cfg)
        assert stats.unexpected == 1


@pytest.mark.skipif(not fork_available(),
                    reason="platform cannot fork workers")
class TestForkedPool:
    def test_parallel_corpus_matches_sequential(self, tmp_path):
        seq = _cfg(tmp_path, count=9, out=str(tmp_path / "seq"))
        par = _cfg(tmp_path, count=9, out=str(tmp_path / "par"),
                   jobs=2)
        a = run_campaign(seq)
        b = run_campaign(par)
        assert a.executed == b.executed == 9

        def snapshot(out):
            root = os.path.join(out, "programs")
            return {
                name: open(os.path.join(root, name)).read()
                for name in os.listdir(root)
            }

        assert snapshot(seq.out) == snapshot(par.out)
        assert Corpus(seq.out).load_checkpoint()["done"] == \
            Corpus(par.out).load_checkpoint()["done"]

    def test_kill9_then_resume_skips_finished_inputs(self, tmp_path):
        """The headline crash-robustness contract: SIGKILL mid-campaign
        loses at most in-flight inputs; the checkpoint survives and the
        resume never re-runs finished work."""
        out = str(tmp_path / "corpus")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "fuzz",
             "--out", out, "--seed", "3", "--count", "400",
             "--kinds", "minic-lock"],
            env=_env(), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        corpus = Corpus(out)
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    pytest.fail(
                        "campaign finished before it could be killed"
                    )
                try:
                    state = corpus.load_checkpoint()
                except CorpusError:
                    state = None  # mid-write is impossible (atomic
                    # rename), but a stale partial dir read is not
                if state and len(state["done"]) >= 2:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("campaign never checkpointed progress")
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        state = corpus.load_checkpoint()
        finished = len(state["done"])
        assert finished >= 2
        # Resume over a prefix of the original plan: every finished
        # index is skipped, only genuinely new work runs.
        target = finished + 2
        stats = run_campaign(CampaignConfig(
            seed=3, count=target, kinds=("minic-lock",), out=out,
        ))
        pending_before = [
            i for i in range(target) if str(i) not in state["done"]
        ]
        assert stats.skipped == target - len(pending_before)
        assert stats.executed == len(pending_before)
        after = corpus.load_checkpoint()["done"]
        assert all(str(i) in after for i in range(target))
        # Finished hashes were not recomputed differently.
        for key, value in state["done"].items():
            assert after[key] == value


class TestCliFuzz:
    def test_clean_run_exit_zero(self, tmp_path, capsys):
        out = str(tmp_path / "corpus")
        assert main(["fuzz", "--out", out, "--seed", "1",
                     "--count", "4"]) == 0
        text = capsys.readouterr().out
        assert "fuzz: 4 input(s) executed" in text
        assert "findings: 0" in text

    def test_resume_reported(self, tmp_path, capsys):
        out = str(tmp_path / "corpus")
        assert main(["fuzz", "--out", out, "--count", "3"]) == 0
        capsys.readouterr()
        assert main(["fuzz", "--out", out, "--count", "3"]) == 0
        assert "0 input(s) executed, 3 resumed" in \
            capsys.readouterr().out

    def test_expected_findings_keep_exit_zero(self, tmp_path, capsys):
        out = str(tmp_path / "corpus")
        assert main(["fuzz", "--out", out, "--count", "1",
                     "--kinds", "minic-lock-broken"]) == 0
        assert "findings: 1 (0 unexpected)" in \
            capsys.readouterr().out

    def test_unexpected_findings_exit_one(self, tmp_path, capsys,
                                          monkeypatch):
        monkeypatch.setattr(
            campaign_mod, "_check_minic_seq",
            lambda inp, cfg: campaign_mod._finding(
                "divergence", inp, "synthetic"
            ),
        )
        out = str(tmp_path / "corpus")
        assert main(["fuzz", "--out", out, "--count", "1",
                     "--kinds", "minic-seq"]) == 1
        assert "(1 unexpected)" in capsys.readouterr().out

    def test_bad_kind_is_usage_error(self, tmp_path, capsys):
        assert main(["fuzz", "--out", str(tmp_path / "c"),
                     "--kinds", "bogus"]) == 2
        assert "repro: error" in capsys.readouterr().err

    def test_checkpoint_mismatch_is_usage_error(self, tmp_path,
                                                capsys):
        out = str(tmp_path / "corpus")
        assert main(["fuzz", "--out", out, "--count", "2"]) == 0
        capsys.readouterr()
        assert main(["fuzz", "--out", out, "--count", "2",
                     "--seed", "9"]) == 2
        assert "--fresh" in capsys.readouterr().err
        assert main(["fuzz", "--out", out, "--count", "2",
                     "--seed", "9", "--fresh"]) == 0
        capsys.readouterr()

    def test_inspect_renders_fuzz_artifacts(self, tmp_path, capsys):
        out = str(tmp_path / "corpus")
        assert main(["fuzz", "--out", out, "--count", "1",
                     "--kinds", "minic-lock-broken"]) == 0
        capsys.readouterr()
        assert main(["inspect",
                     os.path.join(out, "findings.json")]) == 0
        text = capsys.readouterr().out
        assert "fuzz findings" in text
        assert main(["inspect",
                     os.path.join(out, "checkpoint.json")]) == 0
        assert "campaign complete" in capsys.readouterr().out

    def test_ledger_records_campaign(self, tmp_path, capsys):
        out = str(tmp_path / "corpus")
        ledger_path = tmp_path / "run.json"
        assert main(["fuzz", "--out", out, "--count", "2",
                     "--ledger", str(ledger_path)]) == 0
        capsys.readouterr()
        doc = json.loads(ledger_path.read_text())
        assert doc["command"] == "fuzz"
        assert doc["verdict"] == "fuzz-clean"
        assert doc["executed"] == 2
