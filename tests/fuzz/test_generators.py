"""Generator determinism: the property the whole campaign leans on.

Corpus dedup, checkpoint resume and cross-process work distribution
all assume that ``(kind, seed)`` names a byte-identical program in
every interpreter. These tests pin that contract, including the
sha256 seed derivation (which must not drift between releases — a
drift would orphan every existing checkpoint).
"""

import pytest

from repro.fuzz.generators import (
    DEFAULT_KINDS,
    KINDS,
    FuzzInput,
    GeneratorError,
    derive_seed,
    generate,
    plan,
)


class TestDeriveSeed:
    def test_pinned_values(self):
        # sha256-derived, so these are stable across processes and
        # PYTHONHASHSEED values. If this test fails, the derivation
        # changed and GENERATOR_VERSION must be bumped.
        assert derive_seed(0, 0) == 6081694589624403912
        assert derive_seed(7, 3) == 10732243232960665719

    def test_distinct_per_index(self):
        seeds = {derive_seed(0, i) for i in range(64)}
        assert len(seeds) == 64

    def test_distinct_per_campaign_seed(self):
        assert derive_seed(1, 0) != derive_seed(2, 0)


class TestGenerate:
    @pytest.mark.parametrize("kind", sorted(KINDS))
    def test_same_seed_same_bytes(self, kind):
        a = generate(kind, 12345)
        b = generate(kind, 12345)
        assert a.source == b.source
        assert a.content_hash == b.content_hash
        assert a.entries == b.entries

    @pytest.mark.parametrize("kind", sorted(KINDS))
    def test_different_seeds_vary(self, kind):
        sources = {generate(kind, s).source for s in range(20)}
        assert len(sources) > 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(GeneratorError, match="unknown generator"):
            generate("no-such-kind", 0)

    def test_broken_variant_drops_expectation_and_a_lock(self):
        clean = generate("minic-lock", 5)
        broken = generate("minic-lock-broken", 5)
        assert clean.expect_drf is True
        assert broken.expect_drf is False
        assert clean.source.count("  lock();") == 2
        assert broken.source.count("  lock();") == 1

    def test_broken_variant_races_by_construction(self):
        # Both threads must write x: a read-read pair would make the
        # injected "race" vanish and the campaign would (correctly,
        # but uselessly) report a missed-race finding.
        for seed in range(10):
            inp = generate("minic-lock-broken", seed)
            assert inp.source.count("x = x +") >= 2

    def test_language_and_extension(self):
        assert generate("cimp-pair", 0).language == "cimp"
        assert generate("cimp-pair", 0).extension == ".cimp"
        assert generate("minic-seq", 0).language == "minic"
        assert generate("minic-seq", 0).extension == ".c"

    def test_content_hash_covers_kind(self):
        # Same source text under a different kind must key differently
        # (the harness to run is part of the input's identity).
        a = FuzzInput("minic-lock", 0, 0, "src", ("t1",), True, False,
                      True)
        b = FuzzInput("minic-lock-broken", 0, 0, "src", ("t1",), True,
                      False, True)
        assert a.content_hash != b.content_hash


class TestPlan:
    def test_plan_is_reproducible(self):
        first = plan(7, 9)
        second = plan(7, 9)
        assert [i.source for i in first] == [i.source for i in second]
        assert [i.content_hash for i in first] == \
            [i.content_hash for i in second]

    def test_round_robin_over_kinds(self):
        kinds = ("minic-seq", "cimp-pair")
        inputs = plan(0, 6, kinds=kinds)
        assert [i.kind for i in inputs] == list(kinds) * 3
        assert [i.index for i in inputs] == list(range(6))

    def test_default_kinds_exclude_broken(self):
        assert "minic-lock-broken" not in DEFAULT_KINDS
        assert set(DEFAULT_KINDS) <= set(KINDS)

    def test_empty_kinds_rejected(self):
        with pytest.raises(GeneratorError, match="at least one"):
            plan(0, 4, kinds=())

    def test_unknown_kind_rejected(self):
        with pytest.raises(GeneratorError, match="unknown generator"):
            plan(0, 4, kinds=("minic-seq", "bogus"))

    def test_indices_carry_their_derived_seed(self):
        inputs = plan(3, 4, kinds=("minic-seq",))
        for i, inp in enumerate(inputs):
            assert inp.seed == derive_seed(3, i)
