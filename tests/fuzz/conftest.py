"""Campaign tests touch process-global obs/status/ledger state."""

import pytest

from repro import obs
from repro.obs import ledger, status


@pytest.fixture(autouse=True)
def _reset_globals():
    obs.reset()
    status.reset()
    ledger.reset()
    yield
    obs.reset()
    status.reset()
    ledger.reset()
