"""Tests for step messages and step outcomes."""

import pytest

from repro.common.footprint import EMP, Footprint
from repro.lang.messages import (
    ENT_ATOM,
    EXT_ATOM,
    TAU,
    CallMsg,
    EventMsg,
    RetMsg,
    is_observable,
    is_silent,
)
from repro.lang.steps import Step, StepAbort, has_abort, successful
from repro.common.values import VInt


class TestSingletons:
    def test_tau_singleton(self):
        from repro.lang.messages import _Tau

        assert _Tau() is TAU

    def test_atom_markers_distinct(self):
        assert ENT_ATOM != EXT_ATOM
        assert hash(ENT_ATOM) != hash(EXT_ATOM)

    def test_silence(self):
        assert is_silent(TAU)
        assert not is_silent(ENT_ATOM)
        assert not is_silent(EventMsg("print", 1))
        assert not is_silent(RetMsg(VInt(0)))

    def test_observability(self):
        assert is_observable(EventMsg("print", 1))
        assert not is_observable(TAU)
        assert not is_observable(RetMsg(VInt(0)))


class TestEventMsg:
    def test_equality(self):
        assert EventMsg("print", 1) == EventMsg("print", 1)
        assert EventMsg("print", 1) != EventMsg("print", 2)
        assert EventMsg("print", 1) != EventMsg("out", 1)

    def test_hashable(self):
        assert len({EventMsg("print", 1), EventMsg("print", 1)}) == 1

    def test_immutable(self):
        with pytest.raises(AttributeError):
            EventMsg("print", 1).value = 2


class TestRetAndCall:
    def test_ret_equality(self):
        assert RetMsg(VInt(1)) == RetMsg(VInt(1))
        assert RetMsg(VInt(1)) != RetMsg(VInt(2))

    def test_call_args_tuple(self):
        msg = CallMsg("f", [VInt(1), VInt(2)])
        assert msg.args == (VInt(1), VInt(2))

    def test_call_equality(self):
        assert CallMsg("f", [VInt(1)]) == CallMsg("f", (VInt(1),))
        assert CallMsg("f", []) != CallMsg("g", [])


class TestSteps:
    def test_step_fields(self):
        s = Step(TAU, EMP, "core", "mem")
        assert s.msg is TAU and s.fp is EMP

    def test_step_equality(self):
        assert Step(TAU, EMP, 1, 2) == Step(TAU, EMP, 1, 2)
        assert Step(TAU, EMP, 1, 2) != Step(TAU, EMP, 1, 3)

    def test_abort_equality_ignores_reason(self):
        assert StepAbort(reason="a") == StepAbort(reason="b")
        assert StepAbort(Footprint({1}, ())) != StepAbort()

    def test_successful_filter(self):
        outs = [Step(TAU, EMP, 1, 2), StepAbort()]
        assert len(successful(outs)) == 1
        assert has_abort(outs)
        assert not has_abort([Step(TAU, EMP, 1, 2)])
