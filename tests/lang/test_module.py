"""Tests for global environments, linking (GE(Π)) and programs."""

import pytest

from repro.common.errors import SemanticsError
from repro.common.values import VInt, VPtr
from repro.lang.module import GlobalEnv, ModuleDecl, Program
from repro.langs.cimp import CIMP, parse_module


class TestGlobalEnv:
    def test_address_of(self):
        ge = GlobalEnv({"x": 4}, {4: VInt(0)})
        assert ge.address_of("x") == 4
        assert ge.address_of("y") is None

    def test_memory(self):
        ge = GlobalEnv({"x": 4}, {4: VInt(9)})
        assert ge.memory().load(4) == VInt(9)

    def test_rejects_local_addresses(self):
        with pytest.raises(SemanticsError):
            GlobalEnv({"x": 1 << 30})

    def test_compatible_disjoint(self):
        a = GlobalEnv({"x": 1}, {1: VInt(0)})
        b = GlobalEnv({"y": 2}, {2: VInt(0)})
        assert a.compatible(b)
        u = a.union(b)
        assert u.symbols == {"x": 1, "y": 2}

    def test_compatible_agreeing_overlap(self):
        a = GlobalEnv({"x": 1}, {1: VInt(0)})
        b = GlobalEnv({"x": 1}, {1: VInt(0)})
        assert a.compatible(b)

    def test_incompatible_symbol_clash(self):
        a = GlobalEnv({"x": 1})
        b = GlobalEnv({"x": 2})
        assert not a.compatible(b)
        with pytest.raises(SemanticsError):
            a.union(b)

    def test_incompatible_address_collision(self):
        # Two different names at the same address.
        a = GlobalEnv({"x": 1})
        b = GlobalEnv({"y": 1})
        assert not a.compatible(b)

    def test_incompatible_init_values(self):
        a = GlobalEnv({"x": 1}, {1: VInt(0)})
        b = GlobalEnv({"x": 1}, {1: VInt(5)})
        assert not a.compatible(b)

    def test_rejects_same_module_address_collision(self):
        # Two symbols of ONE module sharing an address must be caught
        # at construction — compatible() only sees the cross-module
        # case, so such a module would otherwise link silently.
        with pytest.raises(SemanticsError):
            GlobalEnv({"x": 1, "y": 1}, {1: VInt(0)})

    def test_distinct_addresses_accepted(self):
        ge = GlobalEnv({"x": 1, "y": 2}, {1: VInt(0), 2: VInt(0)})
        assert ge.address_of("y") == 2


class TestProgram:
    def _decl(self, symbols, init):
        mod = parse_cimp_module("main(){ skip; }", symbols)
        return ModuleDecl(CIMP, GlobalEnv(symbols, init), mod)

    def test_requires_a_thread(self):
        with pytest.raises(SemanticsError):
            Program([], [])

    def test_initial_memory_is_linked_ge(self):
        mod = parse_module("main(){ skip; }", symbols={"x": 4})
        decl = ModuleDecl(CIMP, GlobalEnv({"x": 4}, {4: VInt(3)}), mod)
        prog = Program([decl], ["main"])
        assert prog.initial_memory().load(4) == VInt(3)
        assert prog.shared_addresses() == {4}

    def test_wild_pointer_rejected_at_load(self):
        mod = parse_module("main(){ skip; }", symbols={"x": 4})
        decl = ModuleDecl(
            CIMP, GlobalEnv({"x": 4}, {4: VPtr(999)}), mod
        )
        prog = Program([decl], ["main"])
        with pytest.raises(SemanticsError):
            prog.initial_memory()

    def test_internal_pointer_accepted(self):
        mod = parse_module("main(){ skip; }", symbols={"x": 4, "y": 5})
        ge = GlobalEnv({"x": 4, "y": 5}, {4: VPtr(5), 5: VInt(0)})
        prog = Program([ModuleDecl(CIMP, ge, mod)], ["main"])
        assert prog.initial_memory().load(4) == VPtr(5)


def parse_cimp_module(src, symbols):
    return parse_module(src, symbols=symbols)
