"""Well-definedness (Def. 1) of the x86-TSO machine.

The TSO machine is nondeterministic (buffer flushes), so this exercises
Def. 1 item (4): the *set* of outcomes must be insensitive to memory
outside the silent read sets. Buffered stores report empty footprints
(the memory effect belongs to the flush step), buffer-forwarded loads
report empty read sets — the checker verifies these claims are honest.
"""

from repro.common.freelist import FreeList
from repro.common.memory import Memory
from repro.common.values import VInt
from repro.lang.steps import Step
from repro.lang.wd import check_step_wd
from repro.lang.messages import is_silent
from repro.langs.ir.base import IRModule
from repro.langs.x86 import X86TSO, X86Function
from repro.langs.x86 import ast as x

FLIST = FreeList.for_thread(0)
A, B = 30, 31


def _module(*instrs):
    func = X86Function("f", 0, list(instrs) + [
        x.Pmov_ri("eax", 0), x.Pret(),
    ])
    return IRModule({"f": func}, {"a": A, "b": B})


def _drive(module, mem, picks):
    """Run, choosing outcome index ``picks[i]`` at each step."""
    core = X86TSO.init_core(module, "f")
    for pick in picks:
        outs = [
            o
            for o in X86TSO.step(module, core, mem, FLIST)
            if isinstance(o, Step)
        ]
        out = outs[min(pick, len(outs) - 1)]
        core, mem = out.core, out.mem
    return core, mem


class TestTSOWellDefined:
    def test_buffered_store_state(self):
        module = _module(
            x.Pmov_ri("ebx", 1),
            x.Pmov_mr(("global", "a"), "ebx"),
            x.Pmov_ri("ecx", 2),
        )
        mem = Memory({A: VInt(0), B: VInt(5)})
        # After mov_ri + buffered store: nondeterministic state.
        core, mem2 = _drive(module, mem, [0, 0])
        assert core.buffer
        violations = check_step_wd(X86TSO, module, core, mem2, FLIST)
        assert violations == [], violations

    def test_buffer_forwarded_load_state(self):
        module = _module(
            x.Pmov_ri("ebx", 1),
            x.Pmov_mr(("global", "a"), "ebx"),
            x.Pmov_rm("ecx", ("global", "a")),
        )
        mem = Memory({A: VInt(0), B: VInt(5)})
        core, mem2 = _drive(module, mem, [0, 0])
        violations = check_step_wd(X86TSO, module, core, mem2, FLIST)
        assert violations == [], violations

    def test_memory_load_state(self):
        module = _module(
            x.Pmov_rm("ecx", ("global", "b")),
        )
        mem = Memory({A: VInt(0), B: VInt(5)})
        core = X86TSO.init_core(module, "f")
        violations = check_step_wd(X86TSO, module, core, mem, FLIST)
        assert violations == [], violations

    def test_fence_blocked_state(self):
        module = _module(
            x.Pmov_ri("ebx", 1),
            x.Pmov_mr(("global", "a"), "ebx"),
            x.Pmfence(),
        )
        mem = Memory({A: VInt(0), B: VInt(5)})
        core, mem2 = _drive(module, mem, [0, 0])
        # Only the flush is enabled; the flush writes A.
        violations = check_step_wd(X86TSO, module, core, mem2, FLIST)
        assert violations == [], violations

    def test_execution_prefix_all_wd(self):
        module = _module(
            x.Pmov_ri("ebx", 7),
            x.Pmov_mr(("global", "a"), "ebx"),
            x.Pmov_rm("ecx", ("global", "b")),
            x.Pmov_mr(("global", "b"), "ecx"),
        )
        mem = Memory({A: VInt(0), B: VInt(5)})
        core = X86TSO.init_core(module, "f")
        for _ in range(12):
            violations = check_step_wd(
                X86TSO, module, core, mem, FLIST, limit=2
            )
            assert violations == [], violations
            outs = [
                o
                for o in X86TSO.step(module, core, mem, FLIST)
                if isinstance(o, Step) and is_silent(o.msg)
            ]
            if not outs:
                break
            core, mem = outs[0].core, outs[0].mem
