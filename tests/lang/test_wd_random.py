"""Property-based well-definedness: random CImp programs satisfy
Def. 1 along their executions."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.freelist import FreeList
from repro.common.memory import Memory
from repro.common.values import VInt
from repro.lang.wd import check_execution_wd
from repro.langs.cimp import CIMP, parse_module

FLIST = FreeList.for_thread(0)
CELLS = {"C": 100, "D": 101}


def _stmt():
    return st.sampled_from([
        "x := [C];",
        "x := [D];",
        "[C] := x + 1;",
        "[D] := x - 1;",
        "x := x * 2;",
        "print(x);",
        "skip;",
        "<y := [C]; [C] := y + 1;>",
        "if (x < 3) { [C] := 0; } else { [D] := 0; }",
        "i := 2; while (i > 0) { i := i - 1; x := [C]; }",
        "assert(x == x);",
    ])


@st.composite
def cimp_bodies(draw):
    stmts = draw(st.lists(_stmt(), min_size=1, max_size=6))
    return "main(){ x := 0; " + " ".join(stmts) + " }"


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(cimp_bodies())
def test_random_cimp_programs_are_wd(source):
    module = parse_module(source, symbols=CELLS)
    mem = Memory({100: VInt(0), 101: VInt(1), 102: VInt(9)})
    core = CIMP.init_core(module, "main")
    violations = check_execution_wd(
        CIMP, module, core, mem, FLIST, max_steps=80, limit=2
    )
    assert violations == [], (source, violations[:3])
