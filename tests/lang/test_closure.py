"""Unit tests for the closure-compilation framework itself.

The per-language compilers are covered extensionally by
``tests/langs/test_closure_differential.py``; this file pins down the
language-independent machinery: the ``REPRO_CLOSURE`` gate, the compile
cache and its keying, the interpreter fallback for languages without a
staging hook, the step-outcome memo, and ``prime``.
"""

import pytest

from repro.lang import closure
from repro.lang.steps import Step
from repro.lang.messages import TAU
from repro.common.footprint import EMP
from repro.semantics.world import GlobalContext

from tests.helpers import cimp_program


@pytest.fixture(autouse=True)
def _restore():
    closure.set_enabled(None)
    closure.clear_cache()
    yield
    closure.set_enabled(None)
    closure.clear_cache()


class FakeModule:
    pass


class InterpOnlyLang:
    """Duck-typed language without a staging hook."""

    name = "interp-only"

    def __init__(self):
        self.calls = 0

    def step(self, module, core, mem, flist):
        self.calls += 1
        return [Step(TAU, EMP, core, mem)]


class StagedLang(InterpOnlyLang):
    """Duck-typed language whose hook compiles a trivial step."""

    name = "staged"

    def __init__(self):
        super().__init__()
        self.staged_calls = 0

    def stage_module(self, module):
        def step(core, mem, flist):
            self.staged_calls += 1
            return [Step(TAU, EMP, core, mem)]

        return step, 7


class FakeDecl:
    def __init__(self, lang, code):
        self.lang = lang
        self.code = code


class TestGate:
    def test_default_on(self):
        assert closure.enabled(environ={})

    @pytest.mark.parametrize("value", ["0", "false", "off", "no", "",
                                       " 0 ", "FALSE", "Off"])
    def test_off_values(self, value):
        assert not closure.enabled(environ={closure.ENV_CLOSURE: value})

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes"])
    def test_on_values(self, value):
        assert closure.enabled(environ={closure.ENV_CLOSURE: value})

    def test_override_beats_env(self):
        closure.set_enabled(False)
        assert not closure.enabled(environ={closure.ENV_CLOSURE: "1"})
        closure.set_enabled(True)
        assert closure.enabled(environ={closure.ENV_CLOSURE: "0"})
        closure.set_enabled(None)
        assert closure.enabled(environ={})


class TestStageCache:
    def test_artifact_cached_per_lang_and_module(self):
        lang, module = StagedLang(), FakeModule()
        first = closure.stage(lang, module)
        assert first is closure.stage(lang, module)
        # Another language instance staging the same module gets its
        # own artifact (x86-SC vs x86-TSO stage the same x86 module
        # but bind different memory hooks).
        other = closure.stage(StagedLang(), module)
        assert other is not first
        # Another module under the first language too.
        assert closure.stage(lang, FakeModule()) is not first

    def test_compiled_artifact(self):
        staged = closure.stage(StagedLang(), FakeModule())
        assert staged.compiled
        assert staged.nodes_compiled == 7

    def test_interp_fallback(self):
        lang = InterpOnlyLang()
        staged = closure.stage(lang, FakeModule())
        assert not staged.compiled
        assert staged.nodes_compiled == 0
        staged.step("core", "mem", "flist")
        assert lang.calls == 1

    def test_cache_bound(self):
        lang = StagedLang()
        modules = [FakeModule() for _ in range(closure.CACHE_MAX + 10)]
        for module in modules:
            closure.stage(lang, module)
        assert len(closure._cache) <= closure.CACHE_MAX


class TestMemo:
    def test_outcomes_shared(self):
        lang = StagedLang()
        staged = closure.stage(lang, FakeModule())
        a = staged.outcomes("core", "mem", "flist")
        b = staged.outcomes("core", "mem", "flist")
        assert a is b
        assert lang.staged_calls == 1
        staged.outcomes("core2", "mem", "flist")
        assert lang.staged_calls == 2

    def test_memo_bound(self):
        lang = StagedLang()
        staged = closure.stage(lang, FakeModule())
        staged.memo = {i: [] for i in range(closure.MEMO_MAX)}
        staged.outcomes("core", "mem", "flist")
        assert len(staged.memo) == 1


class TestStepOutcomes:
    def test_disabled_routes_to_interpreter(self):
        closure.set_enabled(False)
        lang = StagedLang()
        decl = FakeDecl(lang, FakeModule())
        closure.step_outcomes(decl, "core", "mem", "flist")
        assert lang.calls == 1
        assert lang.staged_calls == 0
        assert not closure._cache

    def test_enabled_routes_to_staged(self):
        closure.set_enabled(True)
        lang = StagedLang()
        decl = FakeDecl(lang, FakeModule())
        closure.step_outcomes(decl, "core", "mem", "flist")
        closure.step_outcomes(decl, "core", "mem", "flist")
        assert lang.calls == 0
        assert lang.staged_calls == 1  # second hit memoized


class TestPrime:
    def test_prime_stages_every_module(self):
        closure.set_enabled(True)
        prog = cimp_program("main(){ [C] := 1; }", ["main"])
        ctx = GlobalContext(prog)
        closure.clear_cache()
        closure.prime(ctx)
        assert len(closure._cache) == len(ctx.modules)

    def test_prime_noop_when_disabled(self):
        closure.set_enabled(False)
        prog = cimp_program("main(){ [C] := 1; }", ["main"])
        ctx = GlobalContext(prog)
        closure.clear_cache()
        closure.prime(ctx)
        assert not closure._cache
