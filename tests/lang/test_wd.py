"""Well-definedness (Def. 1) dynamic checks for the concrete languages.

The paper proves ``wd`` for Clight, Cminor and x86 in Coq; we check the
four conditions on executions of representative modules in each of our
languages, via the perturbation-based checker.
"""

import pytest

from repro.common.freelist import FreeList
from repro.common.memory import Memory
from repro.common.values import VInt
from repro.lang.wd import (
    check_execution_wd,
    check_memory_invariance,
    check_step_wd,
    leq_pre_perturbations,
)
from repro.common.footprint import EMP, Footprint
from repro.langs.cimp import CIMP, parse_module
from repro.langs.minic import MINIC, compile_unit, link_units
from repro.compiler import compile_minic

FLIST = FreeList.for_thread(0)


def cimp_setup(src, symbols, init, entry="main"):
    module = parse_module(src, symbols=symbols)
    core = CIMP.init_core(module, entry)
    return CIMP, module, core, Memory(init)


def minic_chain(src, entry, args=()):
    units = [compile_unit(src)]
    mods, genvs, _ = link_units(units)
    result = compile_minic(mods[0])
    mem = genvs[0].memory()
    return result, mem


class TestPerturbationGenerator:
    def test_variants_satisfy_leq_pre(self):
        mem = Memory({1: VInt(1), 2: VInt(2), 3: VInt(3)})
        fp = Footprint({1}, {2})
        from repro.common.memory import leq_pre

        for variant in leq_pre_perturbations(mem, fp, frozenset()):
            assert leq_pre(mem, variant, fp, frozenset())

    def test_no_variant_touches_read_set_contents(self):
        mem = Memory({1: VInt(1), 2: VInt(2)})
        fp = Footprint({1, 2}, {1, 2})
        for variant in leq_pre_perturbations(mem, fp, frozenset()):
            assert variant.load(1) == VInt(1)
            assert variant.load(2) == VInt(2)


class TestCImpWD:
    def test_store_and_load_steps(self):
        lang, module, core, mem = cimp_setup(
            "main(){ x := [C]; [C] := x + 1; [D] := x; }",
            {"C": 100, "D": 101},
            {100: VInt(5), 101: VInt(0), 102: VInt(9)},
        )
        violations = check_execution_wd(lang, module, core, mem, FLIST)
        assert violations == []

    def test_atomic_block(self):
        lang, module, core, mem = cimp_setup(
            "main(){ <x := [C]; [C] := 0;> }",
            {"C": 100},
            {100: VInt(1), 101: VInt(2)},
        )
        violations = check_execution_wd(lang, module, core, mem, FLIST)
        assert violations == []

    def test_control_flow(self):
        lang, module, core, mem = cimp_setup(
            "main(){ i := 0; while(i < 3){ i := i + 1; } "
            "if (i == 3) { [C] := i; } }",
            {"C": 100},
            {100: VInt(0), 101: VInt(7)},
        )
        violations = check_execution_wd(lang, module, core, mem, FLIST)
        assert violations == []

    def test_memory_invariance(self):
        lang, module, core, mem = cimp_setup(
            "main(){ [C] := 7; }", {"C": 100},
            {100: VInt(0), 101: VInt(1)},
        )
        assert check_memory_invariance(
            lang, module, core, mem, FLIST
        ) == []


class _LyingLang:
    """A deliberately ill-defined language: it writes memory without
    reporting the location in its write set."""

    name = "liar"

    def init_core(self, module, entry, args=()):
        return "start"

    def step(self, module, core, mem, flist):
        from repro.lang.messages import TAU
        from repro.lang.steps import Step

        if core == "start":
            mem2 = mem.store(100, VInt(9))
            if mem2 is None:
                return []
            return [Step(TAU, EMP, "done2", mem2)]
        return []


class TestWDCatchesViolations:
    def test_hidden_write_detected(self):
        lang = _LyingLang()
        mem = Memory({100: VInt(0)})
        violations = check_step_wd(lang, None, "start", mem, FLIST)
        assert any("LEffect" in v for v in violations)

    def test_hidden_write_fails_invariance(self):
        lang = _LyingLang()
        mem = Memory({100: VInt(0)})
        assert check_memory_invariance(lang, None, "start", mem, FLIST)


class _SneakyReadLang:
    """Reads memory without reporting it in the read set: behaviour
    changes under LEqPre perturbation."""

    name = "sneaky"

    def init_core(self, module, entry, args=()):
        return "start"

    def step(self, module, core, mem, flist):
        from repro.lang.messages import TAU
        from repro.lang.steps import Step

        if core == "start":
            hidden = mem.load(100)
            nxt = "saw-{}".format(
                hidden.n if hidden is not None else "gone"
            )
            return [Step(TAU, EMP, nxt, mem)]
        return []


class TestWDCatchesHiddenReads:
    def test_hidden_read_detected(self):
        lang = _SneakyReadLang()
        mem = Memory({100: VInt(0)})
        violations = check_step_wd(lang, None, "start", mem, FLIST)
        assert violations, "unreported read must be flagged"


@pytest.mark.parametrize("stage_name", [
    "source", "Cshmgen", "Cminorgen", "RTLgen", "Allocation",
    "Linearize", "Stacking", "Asmgen",
])
class TestPipelineLanguagesWD:
    SRC = """
    int g = 3;
    int addg(int a) { return a + g; }
    void main() {
      int r;
      r = addg(4);
      g = r;
      print(r);
    }
    """

    def test_stage_wd(self, stage_name):
        result, mem = minic_chain(self.SRC, "main")
        stage = result.stage(stage_name) if stage_name != "source" \
            else result.source
        core = stage.lang.init_core(stage.module, "main")
        violations = check_execution_wd(
            stage.lang, stage.module, core, mem, FLIST, max_steps=100
        )
        assert violations == []
