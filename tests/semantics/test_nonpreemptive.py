"""Tests for the non-preemptive global semantics (Sec. 3.3)."""

from repro.semantics import (
    GlobalContext,
    NonPreemptiveSemantics,
    PreemptiveSemantics,
    equivalent,
    refines,
)

from tests.helpers import (
    behaviours_of,
    cimp_program,
    done_traces,
    np_behaviours_of,
)


class TestSwitchPoints:
    def test_no_switch_between_plain_statements(self):
        # Non-preemptively, t1's two stores are never interleaved with
        # t2's read-print, so t2 can only see 0 (before) or 2 (after),
        # never the intermediate 1.
        prog = cimp_program(
            "t1(){ [C] := 1; [C] := 2; }"
            "t2(){ x := [C]; print(x); }",
            ["t1", "t2"],
        )
        np_traces = done_traces(np_behaviours_of(prog))
        assert np_traces == {(0,), (2,)}
        # Preemptively the intermediate value is observable.
        p_traces = done_traces(behaviours_of(prog))
        assert (1,) in p_traces

    def test_switch_at_atomic_boundaries(self):
        # Each loop iteration passes through EntAtom/ExtAtom switch
        # points, so a spinning thread cannot starve the other.
        prog = cimp_program(
            "t1(){ r := 0; while(r == 0){ <r := [C];> } print(9); }"
            "t2(){ [C] := 1; }",
            ["t1", "t2"],
        )
        traces = done_traces(np_behaviours_of(prog))
        assert (9,) in traces

    def test_switch_at_events(self):
        # Print interleavings must be recoverable non-preemptively.
        prog = cimp_program(
            "t1(){ print(1); print(2); } t2(){ print(3); }",
            ["t1", "t2"],
        )
        np_traces = done_traces(np_behaviours_of(prog))
        assert np_traces == {
            (1, 2, 3), (1, 3, 2), (3, 1, 2),
        }

    def test_termination_switch(self):
        prog = cimp_program(
            "t1(){ skip; } t2(){ print(5); }", ["t1", "t2"]
        )
        assert done_traces(np_behaviours_of(prog)) == {(5,)}


class TestEquivalenceForDRF:
    def test_drf_program_same_behaviours(self):
        prog = cimp_program(
            "t1(){ <x := [C]; [C] := x + 1;> print(1); }"
            "t2(){ <x := [C]; [C] := x + 1;> print(2); }",
            ["t1", "t2"],
        )
        assert bool(
            equivalent(behaviours_of(prog), np_behaviours_of(prog))
        )

    def test_racy_program_np_refines_preemptive_only(self):
        # For racy programs the non-preemptive semantics is a strict
        # subset of the preemptive one.
        prog = cimp_program(
            "t1(){ [C] := 1; [C] := 2; }"
            "t2(){ x := [C]; print(x); }",
            ["t1", "t2"],
        )
        p = behaviours_of(prog)
        np = np_behaviours_of(prog)
        assert bool(refines(np, p))
        assert not bool(refines(p, np)), (
            "the racy intermediate observation exists only preemptively"
        )


class TestAtomicBitsMap:
    def test_thread_suspended_inside_atomic(self):
        # Non-preemptive EntAtnp switches right after entering the
        # block; the other thread then runs while 𝕕(t1)=1.
        prog = cimp_program(
            "t1(){ <[C] := 1;> } t2(){ print(7); }", ["t1", "t2"]
        )
        ctx = GlobalContext(prog)
        from repro.semantics.explore import explore

        graph = explore(ctx, NonPreemptiveSemantics())
        suspended = [
            w
            for w in graph.states
            if w.bits[0] == 1 and w.cur == 1
        ]
        assert suspended, "no world with t1 parked inside its block"
