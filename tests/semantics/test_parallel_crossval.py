"""Parallel-vs-sequential cross-validation (PR 5).

Every workload of the POR cross-validation suite
(:mod:`tests.semantics.test_por_crossval`) is explored at ``jobs ∈
{1, 2, 4}`` with POR on and off; behaviour *fingerprints* (the
BENCH-format sha256 over sorted behaviour reprs) and race verdicts
must be identical across the whole matrix — ``jobs=1`` doubles as the
sequential baseline, so this pins the parallel explorer to the
sequential one the same way the POR suite pins reduction to full
exploration.

The hypothesis property at the bottom checks the ISSUE's replayability
clause: the shard count never changes whether ``find_race``'s witness
replays — whatever witness a sharded search reports must re-execute to
its racy world under the plain semantics, and the verdict must match
the sequential search's.
"""

import hashlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.semantics import (
    GlobalContext,
    NonPreemptiveSemantics,
    PreemptiveSemantics,
    find_race,
    program_behaviours,
    replay_schedule,
)
from repro.semantics.parallel import available

from tests.helpers import cimp_program
from tests.semantics.test_por_crossval import (
    MAX_EVENTS,
    MAX_STATES,
    _WORKLOADS,
)

pytestmark = pytest.mark.skipif(
    not available(), reason="platform cannot fork workers"
)

_JOBS = (1, 2, 4)


def _fingerprint(behs):
    digest = hashlib.sha256()
    for line in sorted(repr(b) for b in behs):
        digest.update(line.encode())
        digest.update(b"\n")
    return digest.hexdigest()[:16]


@pytest.mark.parametrize("red", [False, True], ids=["full", "por"])
@pytest.mark.parametrize("name", sorted(_WORKLOADS))
def test_behaviour_fingerprints_identical_across_jobs(name, red):
    build = _WORKLOADS[name]
    prints = {
        _fingerprint(
            program_behaviours(
                GlobalContext(build()), PreemptiveSemantics(),
                MAX_STATES, MAX_EVENTS, reduce=red, jobs=jobs,
            )
        )
        for jobs in _JOBS
    }
    assert len(prints) == 1, prints


@pytest.mark.parametrize("red", [False, True], ids=["full", "por"])
@pytest.mark.parametrize("name", sorted(_WORKLOADS))
def test_race_verdicts_identical_across_jobs(name, red):
    build = _WORKLOADS[name]
    for sem_cls in (PreemptiveSemantics, NonPreemptiveSemantics):
        verdicts = {
            find_race(
                GlobalContext(build()), sem_cls(), MAX_STATES,
                reduce=red, jobs=jobs,
            )
            is None
            for jobs in _JOBS
        }
        assert len(verdicts) == 1, (sem_cls.name, verdicts)


# ----- witness replayability is shard-count independent ----------------------

_CIMP_POOL = [
    "[C] := x + 1;",
    "x := [C];",
    "<x := [C]; [C] := x + 1;>",
    "[D] := 3;",
    "y := [D];",
    "print(x);",
    "skip;",
]


@st.composite
def _two_thread_programs(draw):
    def body():
        stmts = draw(
            st.lists(st.sampled_from(_CIMP_POOL), min_size=1,
                     max_size=3)
        )
        return " ".join(stmts)

    return "t1(){{ {} }} t2(){{ {} }}".format(body(), body())


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(_two_thread_programs(), st.sampled_from([2, 3]))
def test_witness_replayability_is_jobs_independent(source, jobs):
    from repro.common.values import VInt

    prog = cimp_program(
        source,
        ["t1", "t2"],
        symbols={"C": 100, "D": 101},
        init={100: VInt(0), 101: VInt(0)},
    )
    ctx = GlobalContext(prog)
    seq = find_race(ctx, PreemptiveSemantics(), max_states=5000)
    par = find_race(
        ctx, PreemptiveSemantics(), max_states=5000, jobs=jobs
    )
    # Verdict is shard-count independent ...
    assert (seq is None) == (par is None), source
    # ... and so is replayability: any reported witness re-executes.
    for witness in (seq, par):
        if witness is None:
            continue
        assert witness.schedule is not None, source
        res = replay_schedule(ctx, witness.schedule)
        assert res.world == witness.world, source
