"""Tests for race prediction, DRF and NPDRF (Fig. 9, Sec. 5)."""

from repro.semantics import (
    GlobalContext,
    PreemptiveSemantics,
    drf,
    find_race,
    npdrf,
    predict,
)

from tests.helpers import cimp_program


class TestPredict:
    def _world(self, prog):
        return GlobalContext(prog), GlobalContext(prog).load()[0]

    def test_predict_silent_footprints(self):
        prog = cimp_program("t1(){ [C] := 1; } t2(){ skip; }",
                            ["t1", "t2"])
        ctx = GlobalContext(prog)
        world = ctx.load()[0]
        preds = predict(ctx, world, 0)
        assert any(100 in fp.ws and bit == 0 for fp, bit in preds)

    def test_predict_empty_for_terminated(self):
        prog = cimp_program("t1(){ skip; } t2(){ [C] := 1; }",
                            ["t1", "t2"])
        ctx = GlobalContext(prog)
        world = ctx.load()[0]
        # predict on a live thread works; a dead one yields nothing.
        assert predict(ctx, world, 1)

    def test_predict_inside_atomic_bit_set(self):
        prog = cimp_program(
            "t1(){ <x := [C]; [C] := x + 1;> } t2(){ skip; }",
            ["t1", "t2"],
        )
        ctx = GlobalContext(prog)
        world = ctx.load()[0]
        preds = predict(ctx, world, 0)
        assert preds, "atomic-block prediction missing"
        assert all(bit == 1 for _fp, bit in preds)


class TestDRF:
    def test_write_write_race(self):
        prog = cimp_program(
            "t1(){ [C] := 1; } t2(){ [C] := 2; }", ["t1", "t2"]
        )
        assert not drf(prog)

    def test_read_write_race(self):
        prog = cimp_program(
            "t1(){ x := [C]; } t2(){ [C] := 2; }", ["t1", "t2"]
        )
        assert not drf(prog)

    def test_read_read_not_a_race(self):
        prog = cimp_program(
            "t1(){ x := [C]; } t2(){ y := [C]; }", ["t1", "t2"]
        )
        assert drf(prog)

    def test_disjoint_addresses_not_a_race(self):
        from repro.common.values import VInt

        prog = cimp_program(
            "t1(){ [C] := 1; } t2(){ [D] := 2; }",
            ["t1", "t2"],
            symbols={"C": 100, "D": 101},
            init={100: VInt(0), 101: VInt(0)},
        )
        assert drf(prog)

    def test_atomic_blocks_not_racy(self):
        prog = cimp_program(
            "t1(){ <x := [C]; [C] := x + 1;> }"
            "t2(){ <y := [C]; [C] := y + 1;> }",
            ["t1", "t2"],
        )
        assert drf(prog)

    def test_atomic_vs_plain_is_a_race(self):
        prog = cimp_program(
            "t1(){ <x := [C]; [C] := x + 1;> } t2(){ [C] := 5; }",
            ["t1", "t2"],
        )
        assert not drf(prog)

    def test_race_reachable_only_later(self):
        # The conflict only materializes after t1 passes the guard.
        prog = cimp_program(
            "t1(){ x := 0; while(x < 2){ x := x + 1; } [C] := 1; }"
            "t2(){ [C] := 2; }",
            ["t1", "t2"],
        )
        assert not drf(prog)

    def test_single_thread_never_races(self):
        prog = cimp_program("t1(){ [C] := 1; x := [C]; }", ["t1"])
        assert drf(prog)

    def test_witness_contents(self):
        prog = cimp_program(
            "t1(){ [C] := 1; } t2(){ [C] := 2; }", ["t1", "t2"]
        )
        witness = find_race(
            GlobalContext(prog), PreemptiveSemantics()
        )
        assert witness is not None
        assert witness.tid1 != witness.tid2
        assert 100 in witness.fp1.ws and 100 in witness.fp2.ws


class TestNPDRFAgreement:
    """Steps ⑥⑧ of Fig. 2 — DRF ⇔ NPDRF, on representative programs."""

    PROGRAMS = [
        ("racy write-write",
         "t1(){ [C] := 1; } t2(){ [C] := 2; }", False),
        ("racy read-write",
         "t1(){ x := [C]; } t2(){ [C] := 2; }", False),
        ("atomic counter",
         "t1(){ <x := [C]; [C] := x + 1;> }"
         "t2(){ <x := [C]; [C] := x + 1;> }", True),
        ("read only",
         "t1(){ x := [C]; } t2(){ y := [C]; }", True),
        ("guarded race",
         "t1(){ x := 0; while(x < 2){ x := x + 1; } [C] := 1; }"
         "t2(){ [C] := 2; }", False),
    ]

    def test_agreement(self):
        for name, src, expected in self.PROGRAMS:
            prog = cimp_program(src, ["t1", "t2"])
            d = drf(prog)
            n = npdrf(prog)
            assert d == n == expected, (name, d, n, expected)
