"""Footprint-directed partial-order reduction (ample + sleep sets).

Unit-level coverage of :mod:`repro.semantics.por` and the reduced
exploration path: the privacy check, the ample decision (including the
one-step-disjointness counterexample from the module docstring), the
cycle proviso on spin loops, the reduction counters, and the on-the-fly
race-detection fusion. The systematic POR-on/POR-off agreement over
the whole example suite lives in ``test_por_crossval.py``.
"""

import pytest

from repro import obs
from repro.common.footprint import Footprint, disjoint
from repro.common.freelist import LOCAL_BASE
from repro.framework.build import lock_counter_system
from repro.semantics import (
    GlobalContext,
    NonPreemptiveSemantics,
    PreemptiveSemantics,
    explore,
    find_race,
    program_behaviours,
)
from repro.semantics.por import (
    THREAD_SPAN,
    AmpleReducer,
    default_reduce,
    thread_outcomes,
)

from tests.helpers import cimp_program

PRE = PreemptiveSemantics()


class TestDefaultReduce:
    def test_unset_is_on(self):
        assert default_reduce({}) is True

    @pytest.mark.parametrize("value", ["0", "false", "OFF", "no", ""])
    def test_off_values(self, value):
        assert default_reduce({"REPRO_POR": value}) is False

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes"])
    def test_on_values(self, value):
        assert default_reduce({"REPRO_POR": value}) is True


class TestFootprintPrivate:
    def test_empty_footprint_is_private(self):
        r = AmpleReducer()
        assert r.footprint_private(Footprint(), 0)
        assert r.footprint_private(Footprint(), 5)

    def test_own_freelist_range(self):
        r = AmpleReducer()
        t1_addr = LOCAL_BASE + THREAD_SPAN + 3
        fp = Footprint(rs=(t1_addr,), ws=(t1_addr,))
        assert r.footprint_private(fp, 1)
        assert not r.footprint_private(fp, 0)
        assert not r.footprint_private(fp, 2)

    def test_shared_address_never_private(self):
        # Globals live below LOCAL_BASE; no thread owns them.
        fp = Footprint(ws=(100,))
        r = AmpleReducer()
        assert not r.footprint_private(fp, 0)
        assert not r.footprint_private(fp, 1)

    def test_mixed_footprint_not_private(self):
        fp = Footprint(rs=(LOCAL_BASE + 1,), ws=(100,))
        assert not AmpleReducer().footprint_private(fp, 0)


class TestAmpleDecision:
    def test_shared_write_refuses_reduction(self):
        prog = cimp_program(
            "t1(){ [C] := 1; } t2(){ skip; }", ["t1", "t2"]
        )
        ctx = GlobalContext(prog)
        world = ctx.load()[0]
        assert world.cur == 0
        _outs, _results, ample = AmpleReducer().decide(ctx, world)
        assert not ample

    def test_minic_private_locals_reduce(self):
        # MiniC locals live in the thread's freelist pages: the entry
        # steps of the lock-counter clients are private and reducible.
        prog = lock_counter_system(2).source_program()
        ctx = GlobalContext(prog)
        world = ctx.load()[0]
        outs, results, ample = AmpleReducer().decide(ctx, world)
        assert ample
        assert outs and results

    def test_one_step_disjointness_is_not_enough(self):
        # The module-docstring counterexample: t1's write to [C] is
        # disjoint from t2's *next* step (a register assignment, empty
        # footprint), but pruning t2 here would lose the interleaving
        # where t2 runs to its read of [C] *before* the write — the
        # ``print 0`` behaviour. Privacy (not one-step disjointness)
        # is the reduction criterion, so t1's shared write refuses.
        prog = cimp_program(
            "t1(){ [C] := 1; } t2(){ x := 5; y := [C]; print(y); }",
            ["t1", "t2"],
        )
        ctx = GlobalContext(prog)
        world = ctx.load()[0]
        assert world.cur == 0

        _, _, outs0 = thread_outcomes(ctx, world, 0)
        _, _, outs1 = thread_outcomes(ctx, world, 1)
        assert all(
            disjoint(a.fp, b.fp) for a in outs0 for b in outs1
        ), "counterexample premise: one-step footprints disjoint"

        _outs, _results, ample = AmpleReducer().decide(ctx, world)
        assert not ample

        on = program_behaviours(ctx, PRE, 50000, reduce=True)
        off = program_behaviours(GlobalContext(prog), PRE, 50000,
                                 reduce=False)
        assert on == off
        assert {0, 1} <= {
            e.value for b in on for e in b.events
        }, "both read-before-write and write-before-read survive"


class TestCycleProviso:
    def test_spin_loop_does_not_starve_other_threads(self):
        # t1 spins silently forever on registers (empty footprints:
        # every step is a reduction candidate). Without the proviso,
        # the reduced DFS would chase the spin cycle and never emit the
        # switch to t2, losing ``print 7`` — and ``silent_div`` must
        # still be reported exactly.
        prog = cimp_program(
            "t1(){ x := 0; while(x == 0){ skip; } } t2(){ print(7); }",
            ["t1", "t2"],
        )
        on = program_behaviours(GlobalContext(prog), PRE, 50000,
                                reduce=True)
        off = program_behaviours(GlobalContext(prog), PRE, 50000,
                                 reduce=False)
        assert on == off
        assert any(
            e.value == 7 for b in on for e in b.events
        )
        assert all(b.end == "silent_div" for b in on)

    def test_proviso_counter_ticks(self):
        obs.reset()
        try:
            obs.configure(metrics=True)
            prog = cimp_program(
                "t1(){ x := 0; while(x == 0){ skip; } }"
                "t2(){ print(7); }",
                ["t1", "t2"],
            )
            explore(GlobalContext(prog), PRE, 50000, reduce=True)
            assert obs.counter_value("por.proviso_expansions") > 0
        finally:
            obs.reset()


class TestReduction:
    def test_lock_counter_state_ratio(self):
        # The PR acceptance target: POR-on explores at most half the
        # states of the full graph on the 3-thread lock counter.
        prog = lock_counter_system(3).source_program()
        full = explore(GlobalContext(prog), PRE, 200000)
        red = explore(GlobalContext(prog), PRE, 200000, reduce=True)
        assert not full.truncated and not red.truncated
        assert red.state_count() <= full.state_count() // 2
        assert red.done and full.done
        assert not red.stuck and not full.stuck

    def test_explore_default_is_full(self):
        prog = lock_counter_system(2).source_program()
        default = explore(GlobalContext(prog), PRE, 200000)
        full = explore(GlobalContext(prog), PRE, 200000, reduce=False)
        assert default.state_count() == full.state_count()

    def test_nonpreemptive_falls_back_to_full(self):
        # The reducer is preemptive-only: its pruned switch points are
        # exactly the sync points NPDRF quantifies over.
        prog = lock_counter_system(2).source_program()
        sem = NonPreemptiveSemantics()
        on = explore(GlobalContext(prog), sem, 200000, reduce=True)
        off = explore(GlobalContext(prog), sem, 200000, reduce=False)
        assert on.state_count() == off.state_count()

    def test_reduction_counters(self):
        obs.reset()
        try:
            obs.configure(metrics=True)
            prog = lock_counter_system(2).source_program()
            explore(GlobalContext(prog), PRE, 200000, reduce=True)
            assert obs.counter_value("por.ample_worlds") > 0
            assert obs.counter_value("por.full_expansions") > 0
            assert obs.counter_value("por.steps_avoided") > 0
            assert obs.counter_value("por.sleep_hits") > 0
        finally:
            obs.reset()


class TestOnTheFlyFusion:
    RACY = "t1(){ [C] := 1; x := [C]; } t2(){ [C] := 2; y := [C]; }"

    def test_on_the_fly_halts_early(self):
        # A witness at (or near) the initial world: the fused detector
        # must stop the exploration instead of materialising the full
        # state space first.
        prog = cimp_program(self.RACY, ["t1", "t2"])

        def states_visited(on_the_fly):
            obs.reset()
            try:
                obs.configure(metrics=True)
                witness = find_race(
                    GlobalContext(prog), PRE, 50000,
                    on_the_fly=on_the_fly,
                )
                assert witness is not None
                return obs.counter_value("explore.states_visited")
            finally:
                obs.reset()

        assert states_visited(True) < states_visited(False)

    def test_prediction_memo_hits(self):
        obs.reset()
        try:
            obs.configure(metrics=True)
            prog = lock_counter_system(2).source_program()
            assert find_race(GlobalContext(prog), PRE, 200000) is None
            assert obs.counter_value("race.prediction_memo_hits") > 0
        finally:
            obs.reset()
