"""Cross-process metrics for the parallel explorer (PR 6).

Workers run with a private registry and ship their *complete* dump
back inside the ``bye`` stats envelope; the coordinator absorbs every
dump generically (counters add, gauges max, histograms merge). These
tests drive real forked runs and assert on the merged snapshot: the
wire costs only workers can observe must arrive, phase timers must
account for (nearly) all of each worker's wall-clock, and the numbers
must stay consistent as ``jobs`` varies.
"""

import pytest

from repro import obs
from repro.framework.build import lock_counter_system
from repro.semantics import (
    GlobalContext,
    PreemptiveSemantics,
    find_race,
    parallel_explore,
)
from repro.semantics.parallel import available

pytestmark = pytest.mark.skipif(
    not available(), reason="platform cannot fork workers"
)

_PHASES = ("expand", "encode", "decode", "idle")


@pytest.fixture(autouse=True)
def _reset_obs():
    obs.reset()
    yield
    obs.reset()


def _ctx(nthreads=2):
    return GlobalContext(lock_counter_system(nthreads).source_program())


def _explore(jobs, reduce=False):
    obs.reset()
    obs.configure(metrics=True)
    graph = parallel_explore(
        _ctx(), PreemptiveSemantics(), reduce=reduce, jobs=jobs
    )
    return graph, obs.snapshot()


def _phase_total(snap, key):
    summ = snap["histograms"].get(
        "parallel.worker.{}_seconds".format(key)
    )
    if not summ or not summ["count"]:
        return 0.0
    return summ["mean"] * summ["count"]


class TestSnapshotConsistency:
    def test_states_visited_agrees_across_jobs(self):
        """Full-mode graphs are identical, so the merged snapshot's
        state count must not depend on the sharding."""
        seen = {}
        for jobs in (1, 2, 4):
            graph, snap = _explore(jobs)
            seen[jobs] = snap["counters"]["explore.states_visited"]
            assert seen[jobs] == graph.state_count()
        assert seen[1] == seen[2] == seen[4]

    def test_sequential_run_has_no_wire_metrics(self):
        _graph, snap = _explore(jobs=1)
        for name in snap["counters"]:
            assert not name.startswith("parallel.wire.")

    def test_worker_only_metrics_round_trip_the_envelope(self):
        """Wire counters and histograms exist only inside worker
        registries — seeing them in the coordinator snapshot proves
        the dump survived the bye envelope and the generic merge."""
        _graph, snap = _explore(jobs=2)
        counters = snap["counters"]
        assert counters["parallel.shards"] == 2
        assert counters["parallel.wire.bytes_out"] > 0
        assert counters["parallel.wire.bytes_in"] > 0
        assert counters["parallel.wire.rec_bytes"] > 0
        assert counters["serialize.encode.calls"] > 0
        hists = snap["histograms"]
        assert hists["parallel.wire.batch_worlds"]["count"] > 0
        assert hists["parallel.wire.batch_bytes"]["min"] > 0
        wall = hists["parallel.worker.wall_seconds"]
        assert wall["count"] == 2

    def test_por_counters_arrive_via_generic_merge(self):
        """``por.*`` used to be hand-relayed by the coordinator; now
        they must flow through the workers' merged dumps."""
        _graph, snap = _explore(jobs=2, reduce=True)
        counters = snap["counters"]
        assert counters["por.ample_worlds"] > 0
        assert counters["por.steps_avoided"] > 0

    def test_race_counters_arrive_via_generic_merge(self):
        obs.configure(metrics=True)
        witness = find_race(
            _ctx(), PreemptiveSemantics(), jobs=2
        )
        assert witness is None  # lock-counter is race-free
        counters = obs.snapshot()["counters"]
        assert counters["race.worlds_checked"] > 0
        assert counters["race.predictions"] > 0


class TestPhaseAccounting:
    def test_phases_cover_worker_wall_clock(self):
        """The acceptance criterion: expand+encode+decode+idle must
        explain >= 90% of the workers' total wall-clock."""
        _graph, snap = _explore(jobs=2)
        wall = _phase_total(snap, "wall")
        assert wall > 0
        covered = sum(_phase_total(snap, k) for k in _PHASES)
        assert covered / wall >= 0.9
        # And never more than wall: the phases are disjoint.
        assert covered <= wall * 1.01

    def test_durations_are_gauges_not_counters(self):
        """Time does not belong in integer-minded counters: idle and
        merge seconds are published as gauges."""
        _graph, snap = _explore(jobs=2)
        assert "parallel.idle_seconds" in snap["gauges"]
        assert "parallel.merge_seconds" in snap["gauges"]
        assert "parallel.idle_seconds" not in snap["counters"]
        assert obs.gauge_value("parallel.idle_seconds") > 0

    def test_memo_accounting_is_consistent(self):
        """Every routed cross-shard world is either a fresh send or a
        memo hit; the shipped-world count equals the fresh sends."""
        _graph, snap = _explore(jobs=2)
        counters = snap["counters"]
        sends = counters["parallel.wire.memo_sends"]
        assert sends == counters["parallel.cross_edges"]
        assert counters.get("parallel.wire.memo_hits", 0) >= 0


class TestDisabledPath:
    def test_no_metrics_keys_when_disabled(self):
        graph = parallel_explore(
            _ctx(), PreemptiveSemantics(), jobs=2
        )
        assert graph.state_count() > 0
        assert obs.dump() is None
