"""Edge cases of behaviour enumeration limits and IR language labels."""

import pytest

from repro.semantics import (
    ExplorationLimit,
    GlobalContext,
    PreemptiveSemantics,
    behaviours,
    explore,
)

from tests.helpers import cimp_program


class TestBehaviourLimits:
    def test_max_nodes_exceeded_raises_when_strict(self):
        # Many interleavable events make the (state, trace) product
        # large; a tiny node budget must fail loudly under strict=True.
        prog = cimp_program(
            "t1(){ print(1); print(2); print(3); }"
            "t2(){ print(4); print(5); print(6); }",
            ["t1", "t2"],
        )
        graph = explore(GlobalContext(prog), PreemptiveSemantics())
        with pytest.raises(ExplorationLimit):
            behaviours(graph, max_nodes=10, strict=True)

    def test_max_nodes_exceeded_cuts_by_default(self):
        # The non-strict default reports truncated enumerations as
        # partial: every pending trace comes back as a 'cut' behaviour
        # instead of the whole call raising.
        prog = cimp_program(
            "t1(){ print(1); print(2); print(3); }"
            "t2(){ print(4); print(5); print(6); }",
            ["t1", "t2"],
        )
        graph = explore(GlobalContext(prog), PreemptiveSemantics())
        behs = behaviours(graph, max_nodes=10)
        assert any(b.end == "cut" for b in behs)
        # Full enumeration of the same graph is a superset of the
        # non-cut behaviours found under the budget.
        full = {(b.events, b.end) for b in behaviours(graph)}
        assert all(
            (b.events, b.end) in full for b in behs if b.end != "cut"
        )

    def test_generous_budget_enumerates_all(self):
        prog = cimp_program(
            "t1(){ print(1); print(2); } t2(){ print(3); }",
            ["t1", "t2"],
        )
        graph = explore(GlobalContext(prog), PreemptiveSemantics())
        behs = behaviours(graph)
        assert len({b.events for b in behs if b.end == "done"}) == 3


class TestLanguageLabels:
    def test_ir_language_names_distinct(self):
        from repro.langs.ir import (
            CMINOR,
            CMINORSEL,
            CSHARPMINOR,
            LINEAR,
            LTL,
            MACH,
            RTL,
        )
        from repro.langs.minic.semantics import MINIC
        from repro.langs.x86 import X86SC, X86TSO
        from repro.langs.cimp import CIMP

        names = [
            lang.name
            for lang in (
                MINIC, CSHARPMINOR, CMINOR, CMINORSEL, RTL, LTL,
                LINEAR, MACH, X86SC, X86TSO, CIMP,
            )
        ]
        assert len(set(names)) == len(names)
        assert "CminorSel" in names

    def test_cminorsel_shares_cminor_semantics(self):
        from repro.langs.ir import CMINOR, CMINORSEL
        from repro.langs.ir import cminor as cm
        from repro.langs.ir.base import IRModule
        from repro.common.memory import Memory
        from repro.common.freelist import FreeList
        from repro.common.values import VInt
        from repro.lang.messages import RetMsg

        func = cm.CmFunction(
            "f", 0, 0,
            cm.SReturn(cm.EBinop("<<", cm.EConst(3), cm.EConst(2))),
        )
        module = IRModule({"f": func}, {})
        flist = FreeList.for_thread(0)
        for lang in (CMINOR, CMINORSEL):
            core = lang.init_core(module, "f")
            mem = Memory()
            while True:
                (out,) = lang.step(module, core, mem, flist)
                core, mem = out.core, out.mem
                if isinstance(out.msg, RetMsg):
                    assert out.msg.value == VInt(12)
                    break
