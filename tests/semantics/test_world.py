"""Unit tests for worlds, frames and the global context."""

import pytest

from repro.common.errors import SemanticsError
from repro.common.freelist import FreeList
from repro.common.memory import Memory
from repro.common.values import VInt
from repro.semantics.world import Frame, GlobalContext, World

from tests.helpers import cimp_program


def _frame(core="k"):
    return Frame(0, FreeList.for_thread(0), core)


class TestFrame:
    def test_equality_and_hash(self):
        assert _frame() == _frame()
        assert hash(_frame()) == hash(_frame())
        assert _frame("a") != _frame("b")

    def test_with_core(self):
        f = _frame("a").with_core("b")
        assert f.core == "b"

    def test_immutable(self):
        with pytest.raises(AttributeError):
            _frame().core = "x"


class TestWorld:
    def _world(self, nthreads=2):
        threads = tuple((_frame("t{}".format(i)),)
                        for i in range(nthreads))
        return World(threads, 0, (0,) * nthreads, Memory({1: VInt(0)}))

    def test_live_threads(self):
        w = self._world()
        assert w.live_threads() == [0, 1]
        w2 = w._update(1, (), None, None, None)
        assert w2.live_threads() == [0]

    def test_is_done(self):
        w = World(((), ()), 0, (0, 0), Memory())
        assert w.is_done()
        assert not self._world().is_done()

    def test_top_frame(self):
        w = self._world()
        assert w.top_frame().core == "t0"
        assert w.top_frame(1).core == "t1"
        w2 = w._update(0, (), None, None, None)
        assert w2.top_frame(0) is None

    def test_push_pop_frames(self):
        w = self._world()
        inner = _frame("inner")
        pushed = w.push_frame(inner)
        assert pushed.top_frame().core == "inner"
        popped = pushed.pop_frame()
        assert popped.top_frame().core == "t0"

    def test_replace_top_with_bit(self):
        w = self._world()
        w2 = w.replace_top(_frame("new"), bit=1)
        assert w2.top_frame().core == "new"
        assert w2.bits == (1, 0)

    def test_with_current(self):
        assert self._world().with_current(1).cur == 1

    def test_add_thread(self):
        w = self._world()
        w2 = w.add_thread(_frame("spawned"))
        assert len(w2.threads) == 3
        assert w2.bits == (0, 0, 0)
        assert w2.top_frame(2).core == "spawned"

    def test_hashable_and_equal(self):
        assert self._world() == self._world()
        assert hash(self._world()) == hash(self._world())


class TestGlobalContext:
    def test_resolve_entry(self):
        prog = cimp_program(
            "f(){ skip; } g(){ skip; }", ["f"]
        )
        ctx = GlobalContext(prog)
        assert ctx.resolve("g") is not None
        assert ctx.resolve("missing") is None

    def test_ambiguous_entry_rejected(self):
        from repro.lang.module import GlobalEnv, ModuleDecl, Program
        from repro.langs.cimp import CIMP, parse_module

        m1 = parse_module("f(){ skip; }")
        m2 = parse_module("f(){ skip; }")
        prog = Program(
            [
                ModuleDecl(CIMP, GlobalEnv(), m1),
                ModuleDecl(CIMP, GlobalEnv(), m2),
            ],
            ["f"],
        )
        with pytest.raises(ValueError):
            GlobalContext(prog).resolve("f")

    def test_call_depth_limit(self):
        from repro.common.freelist import MAX_DEPTH

        prog = cimp_program("f(){ skip; }", ["f"])
        ctx = GlobalContext(prog)
        world = ctx.load()[0]
        deep = world
        for _ in range(MAX_DEPTH - 1):
            deep = deep.push_frame(_frame())
        with pytest.raises(SemanticsError):
            ctx.next_flist(deep)

    def test_spawn_flist_disjoint(self):
        prog = cimp_program("f(){ skip; } g(){ skip; }", ["f", "g"])
        ctx = GlobalContext(prog)
        world = ctx.load()[0]
        spawned = ctx.spawn_flist(world)
        for frames in world.threads:
            for frame in frames:
                assert spawned.disjoint_from(frame.flist)
