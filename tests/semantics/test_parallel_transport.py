"""Forked-run contracts of the PR 7 channel transport.

The unit surface is covered in ``tests/common/test_serialize_channels``;
these tests drive real forked explorations and assert what only a whole
run shows: delta metrics flow through the cross-process merge, a
channel over budget resets mid-run without corrupting the merged graph,
and a worker whose trace file is unwritable stays metered.
"""

import pytest

from repro import obs
from repro.common import serialize
from repro.framework.build import lock_counter_system
from repro.semantics import (
    GlobalContext,
    PreemptiveSemantics,
    explore,
    parallel_explore,
)
from repro.semantics.parallel import _configure_worker_obs, available

pytestmark = pytest.mark.skipif(
    not available(), reason="platform cannot fork workers"
)


@pytest.fixture(autouse=True)
def _reset_obs():
    obs.reset()
    yield
    obs.reset()


def _ctx(nthreads=2):
    return GlobalContext(lock_counter_system(nthreads).source_program())


def _sequential():
    return explore(_ctx(), PreemptiveSemantics(), 4000000)


def test_delta_metrics_flow_through_the_merge():
    obs.configure(metrics=True)
    graph = parallel_explore(_ctx(), PreemptiveSemantics(), jobs=2)
    snap = obs.snapshot()
    counters = snap["counters"]
    assert counters["parallel.wire.delta_hits"] > 0
    assert counters["parallel.wire.base_registrations"] > 0
    assert (
        counters["parallel.wire.full_sends"]
        >= counters["parallel.wire.base_registrations"]
    )
    seq = _sequential()
    assert list(graph.states) == list(seq.states)
    assert graph.edges == seq.edges


def test_channel_resets_preserve_the_graph(monkeypatch):
    # A tiny byte budget forces epoch resets mid-run; workers fork
    # after the patch, so every channel inherits it.
    monkeypatch.setattr(serialize, "CHANNEL_BYTES_LIMIT", 8 << 10)
    obs.configure(metrics=True)
    graph = parallel_explore(_ctx(), PreemptiveSemantics(), jobs=2)
    snap = obs.snapshot()
    assert snap["counters"]["parallel.wire.channel_resets"] > 0
    seq = _sequential()
    assert list(graph.states) == list(seq.states)
    assert graph.edges == seq.edges


def test_packed_worlds_beat_stateless_bytes(monkeypatch):
    obs.configure(metrics=True)
    parallel_explore(_ctx(), PreemptiveSemantics(), jobs=2)
    channel_out = obs.snapshot()["counters"]["parallel.wire.bytes_out"]
    obs.reset()
    monkeypatch.setenv(serialize.ENV_STATELESS, "1")
    obs.configure(metrics=True)
    parallel_explore(_ctx(), PreemptiveSemantics(), jobs=2)
    snap = obs.snapshot()["counters"]
    stateless_out = snap["parallel.wire.bytes_out"]
    assert snap.get("parallel.wire.delta_hits", 0) == 0
    assert channel_out < stateless_out / 2


def test_channel_delta_survives_prior_stateless_run(monkeypatch):
    # Regression: a stateless run interns worlds whose memories were
    # rebuilt around private base dicts. Without the intern-table
    # reset at the start of every parallel run, a later channel run in
    # the same process inherits those canonical worlds and the
    # encoder's id-matched base cache never hits — delta transport
    # silently degrades to full sends.
    monkeypatch.setenv(serialize.ENV_STATELESS, "1")
    parallel_explore(_ctx(), PreemptiveSemantics(), jobs=2)
    monkeypatch.delenv(serialize.ENV_STATELESS)
    obs.reset()
    obs.configure(metrics=True)
    parallel_explore(_ctx(), PreemptiveSemantics(), jobs=2)
    counters = obs.snapshot()["counters"]
    assert counters["parallel.wire.delta_hits"] > 0


def test_unwritable_worker_trace_keeps_metrics(tmp_path):
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("plain file")
    cfg = {
        "metrics": True,
        "trace_path": str(blocker / "trace.jsonl"),
    }
    _configure_worker_obs(3, cfg)
    try:
        assert not obs.trace_enabled()
        obs.inc("still.metered")
        snap = obs.snapshot()
        assert snap["counters"]["still.metered"] == 1
        assert snap["counters"]["warnings"] == 1
    finally:
        obs.reset()
