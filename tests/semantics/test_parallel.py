"""The process-parallel frontier-sharded explorer (PR 5).

The strongest property is tested directly: without reduction, the
merged graph is *identical* to the sequential ``_explore_full``
graph — same state numbering, edge lists and classification sets —
because the coordinator's canonical BFS replays the same traversal
over the same recorded successor lists. POR mode is compared on
behaviour sets (the reduced state *set* legitimately differs: region
DFS stacks are shallower than the sequential global DFS, so the cycle
proviso fires at different worlds).
"""

import pytest

from repro.framework.build import lock_counter_system
from repro.semantics import (
    ExplorationLimit,
    GlobalContext,
    NonPreemptiveSemantics,
    PreemptiveSemantics,
    behaviours,
    explore,
    find_race,
    parallel_explore,
    replay_schedule,
)
from repro.semantics.explore import Behaviour
from repro.semantics.parallel import available, default_jobs

from tests.helpers import SUITE, cimp_program, minic_program

pytestmark = pytest.mark.skipif(
    not available(), reason="platform cannot fork workers"
)

_RACY = "t1(){ [C] := 1; x := [C]; } t2(){ [C] := 2; y := [C]; }"
_SAFE = "t1(){ <x := [C]; [C] := x + 1;> } t2(){ <[C] := 9;> }"


def _ctx(program):
    return GlobalContext(program)


def _graphs_identical(g1, g2):
    assert g1.states == g2.states
    assert g1.ids == g2.ids
    assert g1.edges == g2.edges
    assert g1.initial == g2.initial
    assert g1.done == g2.done
    assert g1.stuck == g2.stuck
    assert g1.truncated == g2.truncated
    assert g1.halted == g2.halted


@pytest.mark.parametrize("jobs", [2, 3, 4])
@pytest.mark.parametrize(
    "build",
    [
        lambda: cimp_program(_RACY, ["t1", "t2"]),
        lambda: minic_program([SUITE["loops"]], ["main"])[0],
        lambda: lock_counter_system(2).source_program(),
    ],
    ids=["cimp-racy", "minic-loops", "lock-counter-2"],
)
def test_full_mode_graph_is_bit_identical(build, jobs):
    ctx = _ctx(build())
    sem = PreemptiveSemantics()
    seq = explore(ctx, sem, reduce=False)
    par = explore(ctx, sem, reduce=False, jobs=jobs)
    _graphs_identical(seq, par)


@pytest.mark.parametrize("sem_cls", [PreemptiveSemantics,
                                     NonPreemptiveSemantics],
                         ids=lambda c: c.name)
def test_nonpreemptive_and_preemptive_full_mode(sem_cls):
    ctx = _ctx(cimp_program(_SAFE, ["t1", "t2"]))
    seq = explore(ctx, sem_cls(), reduce=False)
    par = explore(ctx, sem_cls(), reduce=False, jobs=2)
    _graphs_identical(seq, par)


@pytest.mark.parametrize("jobs", [2, 4])
def test_por_mode_behaviours_agree(jobs):
    ctx = _ctx(lock_counter_system(2).source_program())
    sem = PreemptiveSemantics()
    seq = behaviours(explore(ctx, sem, reduce=True), 12)
    par = behaviours(explore(ctx, sem, reduce=True, jobs=jobs), 12)
    assert seq == par


def test_jobs_one_falls_back_to_sequential():
    ctx = _ctx(lock_counter_system(1).source_program())
    sem = PreemptiveSemantics()
    _graphs_identical(
        explore(ctx, sem), explore(ctx, sem, jobs=1)
    )
    # parallel_explore itself also degrades to the sequential path.
    _graphs_identical(
        explore(ctx, sem), parallel_explore(ctx, sem, jobs=1)
    )


def test_observer_with_jobs_rejected():
    ctx = _ctx(cimp_program(_RACY, ["t1", "t2"]))
    with pytest.raises(ValueError, match="observer"):
        explore(
            ctx, PreemptiveSemantics(), jobs=2,
            observer=lambda w, o: False,
        )


def test_strict_limit_raises_in_parallel():
    ctx = _ctx(lock_counter_system(2).source_program())
    with pytest.raises(ExplorationLimit):
        explore(
            ctx, PreemptiveSemantics(), max_states=40, strict=True,
            jobs=2,
        )


def test_truncation_surfaces_as_cut_behaviours():
    ctx = _ctx(lock_counter_system(2).source_program())
    graph = explore(ctx, PreemptiveSemantics(), max_states=40, jobs=2)
    assert graph.truncated
    assert any(
        b.end == Behaviour.CUT for b in behaviours(graph, 12)
    )


@pytest.mark.parametrize("jobs", [2, 3])
@pytest.mark.parametrize("red", [False, True], ids=["full", "por"])
def test_parallel_race_witness_is_replayable(jobs, red):
    ctx = _ctx(cimp_program(_RACY, ["t1", "t2"]))
    seq = find_race(ctx, PreemptiveSemantics(), reduce=red)
    par = find_race(ctx, PreemptiveSemantics(), reduce=red, jobs=jobs)
    assert (seq is None) == (par is None) is False
    assert par.schedule is not None
    # The merged graph's edge lists are in successor order, so the
    # captured schedule replays under the plain semantics.
    res = replay_schedule(ctx, par.schedule)
    assert res.world == par.world


@pytest.mark.parametrize("red", [False, True], ids=["full", "por"])
def test_parallel_race_verdict_negative(red):
    ctx = _ctx(cimp_program(_SAFE, ["t1", "t2"]))
    assert find_race(ctx, PreemptiveSemantics(), reduce=red,
                     jobs=2) is None


def test_race_on_the_fly_false_with_jobs():
    ctx = _ctx(cimp_program(_RACY, ["t1", "t2"]))
    witness = find_race(
        ctx, PreemptiveSemantics(), reduce=False, on_the_fly=False,
        jobs=2,
    )
    assert witness is not None and witness.schedule is not None


def test_max_atomic_steps_defaults_from_semantics():
    ctx = _ctx(cimp_program(_SAFE, ["t1", "t2"]))
    # A one-step horizon cripples Predict-1 less than not at all; the
    # point here is only that the semantics' bound is adopted without
    # crashing and the verdict stays stable for this safe program.
    sem = PreemptiveSemantics(max_atomic_steps=8)
    assert sem.max_atomic_steps == 8
    assert find_race(ctx, sem) is None


def test_default_jobs_parsing():
    assert default_jobs({}) == 1
    assert default_jobs({"REPRO_JOBS": "4"}) == 4
    assert default_jobs({"REPRO_JOBS": " 2 "}) == 2
    assert default_jobs({"REPRO_JOBS": "junk"}) == 1
    assert default_jobs({"REPRO_JOBS": "-3"}) == 1
    assert default_jobs({"REPRO_JOBS": "0"}) == 1


class TestShutdownLiveness:
    """The coordinator must never wait forever on a wedged worker.

    The hazard: a worker exiting right after halt kills its queue
    feeder thread mid-write (``cancel_join_thread``), tearing a
    message into a live peer's pipe; the peer's next ``recv`` blocks
    forever, it never sees the halt, and the run hangs waiting for its
    bye. The exit-drain discipline prevents the tear; the post-halt
    watchdog bounds the damage when a worker wedges anyway.
    """

    def test_drain_inbox_empties_and_returns(self):
        import multiprocessing
        import time as _time

        from repro.semantics import parallel as par

        q = multiprocessing.get_context("fork").Queue()
        for i in range(5):
            q.put(("w", 0, i, b"x"))
        _time.sleep(0.1)  # let the feeder publish
        t0 = _time.monotonic()
        par._drain_inbox(q, _time.monotonic() + 5.0)
        elapsed = _time.monotonic() - t0
        # Everything consumed, and the quiet-pipe return fired well
        # before the deadline backstop.
        assert elapsed < 2.0
        try:
            q.get_nowait()
        except Exception:
            pass
        else:
            pytest.fail("drain left a message behind")
        q.cancel_join_thread()
        q.close()

    def test_watchdog_terminates_wedged_worker(self, monkeypatch):
        import multiprocessing
        import time as _time

        from repro.semantics import parallel as par

        def wedged_main(wid, jobs, ctx, semantics, cfg, counter,
                        inboxes, coord_q):
            if wid == 0:
                # Fail fast: the coordinator broadcasts halt on err.
                coord_q.put(("err", 0, ("crash", "boom")))
                coord_q.put(("bye", 0, {}))
                return
            # Worker 1 wedges: never reads its inbox, never reports.
            while True:
                _time.sleep(60)

        monkeypatch.setattr(par, "_worker_main", wedged_main)
        monkeypatch.setattr(par, "_GET_TIMEOUT", 0.2)
        monkeypatch.setattr(par, "_HALT_GRACE", 0.5)
        ctx = _ctx(lock_counter_system(2).source_program())
        t0 = _time.monotonic()
        with pytest.raises(RuntimeError, match="boom"):
            parallel_explore(ctx, PreemptiveSemantics(), jobs=2)
        assert _time.monotonic() - t0 < 20.0
        # The wedged worker was terminated, not leaked: no child of
        # this process is still running once the run has returned.
        deadline = _time.monotonic() + 10.0
        while any(
            p.is_alive() for p in multiprocessing.active_children()
        ):
            assert _time.monotonic() < deadline, (
                "run returned but left live worker processes"
            )
            _time.sleep(0.05)
