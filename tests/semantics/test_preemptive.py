"""Tests for the preemptive global semantics (Fig. 7)."""

import pytest

from repro.common.errors import SemanticsError
from repro.common.values import VInt
from repro.semantics import (
    GlobalContext,
    PreemptiveSemantics,
    behaviours,
    drf,
    explore,
)
from repro.semantics.engine import SW, GAbort, GStep

from tests.helpers import (
    CELL,
    behaviours_of,
    cimp_program,
    done_traces,
    events_of,
)


class TestLoad:
    def test_one_initial_world_per_thread(self):
        prog = cimp_program(
            "t1(){ skip; } t2(){ skip; }", ["t1", "t2"]
        )
        ctx = GlobalContext(prog)
        worlds = PreemptiveSemantics().initial_worlds(ctx)
        assert sorted(w.cur for w in worlds) == [0, 1]

    def test_missing_entry_raises(self):
        prog = cimp_program("t1(){ skip; }", ["nope"])
        with pytest.raises(SemanticsError):
            GlobalContext(prog).load()

    def test_initial_memory_from_ge(self):
        prog = cimp_program("t1(){ skip; }", ["t1"])
        world = GlobalContext(prog).load()[0]
        assert world.mem.load(CELL) == VInt(0)


class TestSingleThread:
    def test_sequence_of_prints(self):
        prog = cimp_program(
            "main(){ print(1); print(2); }", ["main"]
        )
        assert done_traces(behaviours_of(prog)) == {(1, 2)}

    def test_memory_update_visible(self):
        prog = cimp_program(
            "main(){ [C] := 5; x := [C]; print(x); }", ["main"]
        )
        assert done_traces(behaviours_of(prog)) == {(5,)}

    def test_assert_failure_aborts(self):
        prog = cimp_program("main(){ assert(0); }", ["main"])
        assert events_of(behaviours_of(prog)) == {((), "abort")}

    def test_store_to_unallocated_aborts(self):
        prog = cimp_program("main(){ [77] := 1; }", ["main"])
        behs = behaviours_of(prog)
        assert {b.end for b in behs} == {"abort"}


class TestInterleaving:
    def test_independent_prints_interleave(self):
        prog = cimp_program(
            "t1(){ print(1); } t2(){ print(2); }", ["t1", "t2"]
        )
        assert done_traces(behaviours_of(prog)) == {(1, 2), (2, 1)}

    def test_three_threads_all_orders(self):
        prog = cimp_program(
            "t1(){ print(1); } t2(){ print(2); } t3(){ print(3); }",
            ["t1", "t2", "t3"],
        )
        traces = done_traces(behaviours_of(prog))
        assert len(traces) == 6

    def test_racy_writes_expose_both_final_values(self):
        prog = cimp_program(
            "t1(){ [C] := 1; x := [C]; print(x); } t2(){ [C] := 2; }",
            ["t1", "t2"],
        )
        traces = done_traces(behaviours_of(prog))
        assert traces == {(1,), (2,)}


class TestAtomicBlocks:
    def test_atomic_not_interruptible(self):
        # Without atomicity, t2's write could land between the read
        # and the write of t1's increment, losing an update.
        prog = cimp_program(
            "t1(){ <x := [C]; [C] := x + 1;> }"
            "t2(){ <y := [C]; [C] := y + 10;> }"
            "t3(){ skip; skip; r := [C]; print(r); }",
            ["t1", "t2", "t3"],
        )
        traces = done_traces(behaviours_of(prog))
        # t3 may observe 0, 1, 10 or 11 depending on scheduling, but
        # never a lost update: after both increments the value is 11.
        assert (11,) in traces
        assert all(t[0] in (0, 1, 10, 11) for t in traces)

    def test_nested_atomic_rejected(self):
        prog = cimp_program(
            "main(){ < <skip;> > }", ["main"]
        )
        ctx = GlobalContext(prog)
        with pytest.raises(SemanticsError):
            explore(ctx, PreemptiveSemantics())


class TestSwitchRule:
    def test_switch_edges_present(self):
        prog = cimp_program(
            "t1(){ print(1); } t2(){ print(2); }", ["t1", "t2"]
        )
        ctx = GlobalContext(prog)
        world = ctx.load()[0]
        outs = PreemptiveSemantics().successors(ctx, world)
        labels = [o.label for o in outs if isinstance(o, GStep)]
        assert SW in labels

    def test_no_switch_inside_atomic(self):
        prog = cimp_program(
            "t1(){ <skip; skip;> } t2(){ skip; }", ["t1", "t2"]
        )
        ctx = GlobalContext(prog)
        world = ctx.load()[0]
        # Step t1 into its atomic block.
        sem = PreemptiveSemantics()
        inside = None
        for out in sem.successors(ctx, world):
            if isinstance(out, GStep) and out.label != SW:
                inside = out.world
                break
        assert inside.bits[0] == 1
        labels = [
            o.label
            for o in sem.successors(ctx, inside)
            if isinstance(o, GStep)
        ]
        assert SW not in labels


class TestCrossModuleCalls:
    def test_unresolved_external_aborts(self):
        prog_src = "main(){ print(1); }"
        # Build a MiniC module calling an undefined external.
        from tests.helpers import minic_program

        prog, _, _, _ = minic_program(
            ["extern void mystery(); void main() { mystery(); }"],
            ["main"],
        )
        behs = behaviours_of(prog)
        assert {b.end for b in behs} == {"abort"}
