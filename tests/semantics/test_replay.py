"""Deterministic replay and witness minimization.

The hypothesis property at the bottom is the determinism contract the
whole subsystem stands on: for arbitrary pick sequences over the
lock-counter workload, a schedule captured under either semantics
(explored with POR on or off for the discovery side) replays to the
exact same world, step for step. The tamper tests pin the divergence
reporting; the minimizer tests check shrinkage, verdict preservation
and replayability of the result.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.framework.build import lock_counter_system
from repro.semantics import (
    GlobalContext,
    NonPreemptiveSemantics,
    PreemptiveSemantics,
    find_race,
)
from repro.semantics.engine import label_kind
from repro.semantics.replay import (
    ReplayDivergence,
    minimize_witness,
    replay_schedule,
    replay_witness,
    semantics_for,
)
from repro.semantics.witness import (
    CaptureError,
    Schedule,
    ScheduleStep,
    WitnessRecord,
    _make_step,
    capture_walk,
    record_race,
)

from tests.helpers import cimp_program

GUARDED = (
    "t1(){ x := 0; while(x < 2){ x := x + 1; } [C] := 1; }"
    " t2(){ [C] := 2; }"
)


def _racy_ctx():
    return GlobalContext(cimp_program(GUARDED, ["t1", "t2"]))


def _racy_record(reduce=False):
    witness = find_race(_racy_ctx(), PreemptiveSemantics(),
                        reduce=reduce)
    return record_race(witness, meta={"max_atomic_steps": 64})


class TestSemanticsForName:
    def test_known_names(self):
        assert isinstance(
            semantics_for("preemptive"), PreemptiveSemantics
        )
        assert isinstance(
            semantics_for("non-preemptive"), NonPreemptiveSemantics
        )

    def test_unknown_name(self):
        with pytest.raises(CaptureError):
            semantics_for("sequentially-consistent")


class TestReplayDivergence:
    def _schedule(self):
        return _racy_record().schedule

    def _tamper(self, schedule, n, **changes):
        st0 = schedule.steps[n]
        fields = {
            "index": st0.index, "tid": st0.tid, "to": st0.to,
            "kind": st0.kind, "detail": st0.detail, "rs": st0.rs,
            "ws": st0.ws,
        }
        fields.update(changes)
        steps = list(schedule.steps)
        steps[n] = ScheduleStep(**fields)
        return Schedule(schedule.init, steps, schedule.semantics)

    def test_wrong_tid_detected(self):
        schedule = self._schedule()
        n = next(
            i for i, s in enumerate(schedule.steps)
            if s.kind != "sw"
        )
        bad = self._tamper(schedule, n, tid=schedule.steps[n].tid + 1)
        with pytest.raises(ReplayDivergence) as err:
            replay_schedule(_racy_ctx(), bad)
        assert err.value.step == n
        assert "thread" in err.value.reason

    def test_out_of_range_index_detected(self):
        schedule = self._schedule()
        bad = self._tamper(schedule, 0, index=995)
        with pytest.raises(ReplayDivergence) as err:
            replay_schedule(_racy_ctx(), bad)
        assert err.value.step == 0
        assert "range" in err.value.reason

    def test_wrong_footprint_detected(self):
        schedule = self._schedule()
        n = next(
            i for i, s in enumerate(schedule.steps)
            if s.rs is not None
        )
        bad = self._tamper(schedule, n, rs=(123456,), ws=(123457,))
        with pytest.raises(ReplayDivergence) as err:
            replay_schedule(_racy_ctx(), bad)
        assert err.value.step == n
        assert "footprint" in err.value.reason

    def test_bad_initial_index_detected(self):
        schedule = self._schedule()
        bad = Schedule(42, schedule.steps, schedule.semantics)
        with pytest.raises(ReplayDivergence) as err:
            replay_schedule(_racy_ctx(), bad)
        assert err.value.step == -1

    def test_divergence_message_names_step(self):
        schedule = self._schedule()
        bad = self._tamper(schedule, 0, index=995)
        with pytest.raises(ReplayDivergence, match="step 0"):
            replay_schedule(_racy_ctx(), bad)

    def test_race_verdict_reverified(self):
        record = _racy_record()
        # Truncate the schedule: the walk succeeds but the final world
        # is no longer the racy one, so verdict verification must fail.
        short = Schedule(
            record.schedule.init,
            record.schedule.steps[:1],
            record.schedule.semantics,
        )
        broken = WitnessRecord(
            "race", short, record.race, record.program,
            meta=record.meta,
        )
        with pytest.raises(ReplayDivergence, match="not reproduced"):
            replay_witness(_racy_ctx(), broken)

    def test_unknown_verdict_rejected(self):
        record = _racy_record()
        weird = WitnessRecord(
            "maybe", record.schedule, record.race, meta=record.meta
        )
        with pytest.raises(ReplayDivergence, match="verdict"):
            replay_witness(_racy_ctx(), weird)


class TestMinimize:
    def test_minimized_no_longer_and_still_racy(self):
        record = _racy_record()
        mini = minimize_witness(_racy_ctx(), record)
        assert mini.minimized
        assert len(mini.schedule) <= len(record.schedule)
        replay_witness(_racy_ctx(), mini)

    def test_padding_removed(self):
        # Pad the front of a real racy schedule with a switch
        # round-trip (t0 -> t1 -> t0 lands back on the identical
        # interned world): minimization must strip it.
        record = _racy_record()
        ctx = _racy_ctx()
        sem = PreemptiveSemantics()
        world = sem.initial_worlds(ctx)[record.schedule.init]
        outs = sem.successors(ctx, world)
        away = next(
            i for i, o in enumerate(outs)
            if label_kind(o.label) == "sw" and o.world.cur == 1
        )
        mid = outs[away].world
        back_outs = sem.successors(ctx, mid)
        back = next(
            i for i, o in enumerate(back_outs)
            if label_kind(o.label) == "sw" and o.world.cur == 0
        )
        assert back_outs[back].world == world
        pad = [
            _make_step(away, world, outs[away]),
            _make_step(back, mid, back_outs[back]),
        ]
        padded = WitnessRecord(
            "race",
            Schedule(
                record.schedule.init,
                pad + list(record.schedule.steps),
                record.schedule.semantics,
            ),
            record.race,
            meta=record.meta,
        )
        replay_witness(_racy_ctx(), padded)  # still a valid witness
        mini = minimize_witness(_racy_ctx(), padded)
        assert len(mini.schedule) < len(padded.schedule)
        replay_witness(_racy_ctx(), mini)

    def test_race_pair_rederived(self):
        record = _racy_record()
        mini = minimize_witness(_racy_ctx(), record)
        assert set(mini.race) == set(record.race)

    def test_abort_witness_rejected(self):
        record = _racy_record()
        fake = WitnessRecord("abort", record.schedule)
        with pytest.raises(CaptureError):
            minimize_witness(_racy_ctx(), fake)

    def test_original_untouched(self):
        record = _racy_record()
        before = record.schedule.steps
        minimize_witness(_racy_ctx(), record)
        assert record.schedule.steps == before
        assert not record.minimized

    def test_minimizes_por_found_witness(self):
        record = _racy_record(reduce=True)
        assert record.schedule.por
        mini = minimize_witness(_racy_ctx(), record)
        replay_witness(_racy_ctx(), mini)


class TestMinimizeBudget:
    """Bounded minimization (the fuzz campaign's contract): hitting a
    round or wall-clock budget degrades to *less minimal*, never to
    *invalid*."""

    def test_zero_rounds_still_yields_a_valid_witness(self):
        record = _racy_record()
        mini = minimize_witness(_racy_ctx(), record, max_rounds=0)
        assert mini.minimized
        assert len(mini.schedule) <= len(record.schedule)
        replay_witness(_racy_ctx(), mini)

    def test_expired_deadline_still_yields_a_valid_witness(self):
        record = _racy_record()
        mini = minimize_witness(_racy_ctx(), record, max_seconds=0.0)
        assert len(mini.schedule) <= len(record.schedule)
        replay_witness(_racy_ctx(), mini)

    def test_bounded_is_no_shorter_than_unbounded(self):
        record = _racy_record()
        free = minimize_witness(_racy_ctx(), record)
        tight = minimize_witness(_racy_ctx(), record, max_rounds=1)
        assert len(tight.schedule) >= len(free.schedule)
        replay_witness(_racy_ctx(), tight)

    def test_budget_hit_is_counted(self):
        obs.reset()
        obs.configure(metrics=True)
        try:
            minimize_witness(_racy_ctx(), _racy_record(),
                             max_rounds=0)
            counters = obs.snapshot()["counters"]
            assert counters["witness.minimize.budget_hits"] == 1
        finally:
            obs.reset()

    def test_unbounded_run_does_not_count_a_hit(self):
        obs.reset()
        obs.configure(metrics=True)
        try:
            minimize_witness(_racy_ctx(), _racy_record())
            counters = obs.snapshot()["counters"]
            assert "witness.minimize.budget_hits" not in counters
        finally:
            obs.reset()


# ----- the determinism property, hypothesis-driven ---------------------------


def _lock_counter_ctx():
    return GlobalContext(lock_counter_system(2).source_program())


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    picks=st.lists(
        st.integers(min_value=0, max_value=11), min_size=1,
        max_size=30,
    ),
    sem_cls=st.sampled_from(
        [PreemptiveSemantics, NonPreemptiveSemantics]
    ),
)
def test_replay_is_deterministic(picks, sem_cls):
    """Capture then replay lands on the identical world, every time.

    The worlds are hash-consed, so ``==`` here is full structural
    equality of thread stacks, memory, scheduler state and atomic
    bits.
    """
    sem = sem_cls()
    schedule, final = capture_walk(_lock_counter_ctx(), sem, picks)
    # A fresh context: replay must not depend on shared mutable state.
    result = replay_schedule(_lock_counter_ctx(), schedule, sem)
    assert result.world == final
    assert (result.end == "abort") == (
        bool(schedule.steps) and schedule.steps[-1].kind == "abort"
    )
    # Replay twice: still the same world (no hidden statefulness).
    again = replay_schedule(_lock_counter_ctx(), schedule, sem)
    assert again.world == final


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    picks=st.lists(
        st.integers(min_value=0, max_value=11), min_size=1,
        max_size=20,
    ),
    reduce=st.booleans(),
)
def test_serialized_schedule_replays(picks, reduce):
    """JSON round-trip + POR-on/off discovery do not affect replay."""
    import io

    from repro.semantics.witness import Schedule as Sched

    ctx = _lock_counter_ctx()
    sem = PreemptiveSemantics()
    # `reduce` varies which graph the exploration would build, but a
    # capture_walk schedule is discovery-independent; fold the flag in
    # by touching the por marker, which replay must ignore.
    schedule, final = capture_walk(ctx, sem, picks)
    marked = Sched(
        schedule.init, schedule.steps, schedule.semantics, por=reduce
    )
    buf = io.StringIO()
    import json

    json.dump(marked.as_dict(), buf)
    loaded = Sched.from_dict(json.loads(buf.getvalue()))
    result = replay_schedule(_lock_counter_ctx(), loaded)
    assert result.world == final
