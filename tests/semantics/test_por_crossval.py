"""Cross-validation of partial-order reduction against full exploration.

Every example workload — the canonical MiniC suite, the lock-counter
systems at 1–3 threads, Example 2.2, and ad-hoc CImp programs covering
races, atomic blocks and divergence — is run with POR on and off under
both global semantics, asserting identical behaviour sets, DRF/NPDRF
verdicts, ``find_race`` outcomes across all four mode combinations
(on-the-fly × reduction), and matching done/stuck classifications.
This is the empirical soundness net the ``REPRO_POR`` default relies
on.

The hypothesis property test at the bottom checks the commutation
lemma the ample construction is built on: two silent steps of
different threads with non-conflicting footprints reach the same world
in either order.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.footprint import disjoint
from repro.common.values import VInt
from repro.framework.build import ClientSystem, lock_counter_system
from repro.semantics import (
    GlobalContext,
    NonPreemptiveSemantics,
    PreemptiveSemantics,
    drf,
    explore,
    find_race,
    npdrf,
    program_behaviours,
)
from repro.semantics.engine import GStep, thread_successors

from tests.helpers import EXAMPLE_2_2, SUITE, cimp_program, minic_program

MAX_STATES = 100000
MAX_EVENTS = 12

_CIMP_RACY = "t1(){ [C] := 1; x := [C]; } t2(){ [C] := 2; y := [C]; }"
_CIMP_ATOMIC = (
    "t1(){ <x := [C]; [C] := x + 1;> }"
    "t2(){ <y := [C]; [C] := y + 1;> }"
    "t3(){ print(9); }"
)
_CIMP_SPIN = (
    "t1(){ x := 0; while(x == 0){ skip; } } t2(){ print(7); }"
)


def _workloads():
    items = {}
    for name, src in sorted(SUITE.items()):
        items["minic-" + name] = (
            lambda src=src: minic_program([src], ["main"])[0]
        )
    for n in (1, 2, 3):
        items["lock-counter-{}".format(n)] = (
            lambda n=n: lock_counter_system(n).source_program()
        )
    items["example-2-2"] = lambda: ClientSystem(
        [EXAMPLE_2_2], ["thread1", "thread2"], use_lock=True
    ).source_program()
    items["cimp-racy"] = lambda: cimp_program(
        _CIMP_RACY, ["t1", "t2"]
    )
    items["cimp-atomic"] = lambda: cimp_program(
        _CIMP_ATOMIC, ["t1", "t2", "t3"]
    )
    items["cimp-spin"] = lambda: cimp_program(_CIMP_SPIN, ["t1", "t2"])
    return items


_WORKLOADS = _workloads()
_SEMANTICS = [PreemptiveSemantics, NonPreemptiveSemantics]


@pytest.mark.parametrize("name", sorted(_WORKLOADS))
@pytest.mark.parametrize("sem_cls", _SEMANTICS, ids=lambda c: c.name)
def test_behaviours_agree(name, sem_cls):
    build = _WORKLOADS[name]
    on = program_behaviours(
        GlobalContext(build()), sem_cls(), MAX_STATES, MAX_EVENTS,
        reduce=True,
    )
    off = program_behaviours(
        GlobalContext(build()), sem_cls(), MAX_STATES, MAX_EVENTS,
        reduce=False,
    )
    assert on == off, (sorted(map(repr, on)), sorted(map(repr, off)))


@pytest.mark.parametrize("name", sorted(_WORKLOADS))
def test_race_verdicts_agree(name):
    prog = _WORKLOADS[name]()
    assert drf(prog, MAX_STATES, reduce=True) == drf(
        prog, MAX_STATES, reduce=False
    )
    assert npdrf(prog, MAX_STATES, reduce=True) == npdrf(
        prog, MAX_STATES, reduce=False
    )


@pytest.mark.parametrize("name", sorted(_WORKLOADS))
@pytest.mark.parametrize("sem_cls", _SEMANTICS, ids=lambda c: c.name)
def test_find_race_modes_agree(name, sem_cls):
    # On-the-fly vs stored-graph, with and without reduction: all four
    # paths must agree on whether the workload races.
    build = _WORKLOADS[name]
    verdicts = {
        (
            find_race(
                GlobalContext(build()), sem_cls(), MAX_STATES,
                reduce=red, on_the_fly=otf,
            )
            is None
        )
        for red in (True, False)
        for otf in (True, False)
    }
    assert len(verdicts) == 1, verdicts


@pytest.mark.parametrize("name", sorted(_WORKLOADS))
def test_classifications_agree(name):
    build = _WORKLOADS[name]
    sem = PreemptiveSemantics()
    red = explore(GlobalContext(build()), sem, MAX_STATES, reduce=True)
    full = explore(GlobalContext(build()), sem, MAX_STATES,
                   reduce=False)
    assert not red.truncated and not full.truncated
    assert not red.halted and not full.halted
    assert bool(red.done) == bool(full.done)
    assert bool(red.stuck) == bool(full.stuck)
    assert red.state_count() <= full.state_count()


# ----- the commutation lemma, property-based ---------------------------------

_CIMP_POOL = [
    "[C] := x + 1;",
    "x := [C];",
    "x := x + 1;",
    "[D] := 3;",
    "y := [D];",
    "print(x);",
    "skip;",
]


@st.composite
def _two_thread_programs(draw):
    def body():
        stmts = draw(
            st.lists(st.sampled_from(_CIMP_POOL), min_size=1,
                     max_size=4)
        )
        return " ".join(stmts)

    return "t1(){{ {} }} t2(){{ {} }}".format(body(), body())


def _silent_steps(ctx, world, tid):
    """Thread ``tid``'s silent global steps, scheduled explicitly."""
    results = thread_successors(ctx, world.with_current(tid))
    return [
        r
        for r in results
        if isinstance(r, GStep) and r.label is None and r.fp is not None
    ]


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(_two_thread_programs())
def test_disjoint_silent_steps_commute(source):
    """δ(a) ⌣̸ δ(b) for steps of different threads ⇒ a;b ≡ b;a.

    The independence relation behind the ample construction (and the
    paper's locality/forward lemmas): from any reachable world, if
    thread 0 and thread 1 each have a silent step and the two
    footprints do not conflict, executing them in either order reaches
    the same world (scheduler component normalized).
    """
    prog = cimp_program(
        source,
        ["t1", "t2"],
        symbols={"C": 100, "D": 101},
        init={100: VInt(0), 101: VInt(0)},
    )
    ctx = GlobalContext(prog)
    graph = explore(ctx, PreemptiveSemantics(), max_states=400)

    checked = 0
    for world in graph.states:
        if checked >= 40:
            break
        if any(world.bits) or not world.threads[0] or not world.threads[1]:
            continue
        steps0 = _silent_steps(ctx, world, 0)
        steps1 = _silent_steps(ctx, world, 1)
        # CImp is deterministic: at most one successor per thread.
        assert len(steps0) <= 1 and len(steps1) <= 1
        if not steps0 or not steps1:
            continue
        a, b = steps0[0], steps1[0]
        if not disjoint(a.fp, b.fp):
            continue
        checked += 1
        after_ab = _silent_steps(ctx, a.world, 1)
        after_ba = _silent_steps(ctx, b.world, 0)
        assert len(after_ab) == 1 and len(after_ba) == 1, (
            "a non-conflicting step changed the other thread's options"
        )
        end_ab = after_ab[0].world.with_current(0)
        end_ba = after_ba[0].world.with_current(0)
        assert end_ab == end_ba, (source, world)
