"""Unit tests for the shared global-semantics engine: the message
protocol (Fig. 7 rules + interaction semantics)."""

import pytest

from repro.common.errors import SemanticsError
from repro.common.footprint import EMP, Footprint
from repro.common.values import VInt
from repro.lang.messages import ENT_ATOM, EXT_ATOM, TAU, SpawnMsg
from repro.lang.steps import Step
from repro.semantics import (
    GlobalContext,
    NonPreemptiveSemantics,
    PreemptiveSemantics,
)
from repro.semantics.engine import (
    SW,
    GAbort,
    GStep,
    SyncPoint,
    thread_successors,
)

from tests.helpers import behaviours_of, cimp_program, done_traces


def _step_until(ctx, world, pred, semantics=None, bound=100):
    """Follow non-switch global steps until ``pred(world)``."""
    semantics = semantics or PreemptiveSemantics()
    for _ in range(bound):
        if pred(world):
            return world
        outs = [
            o
            for o in semantics.successors(ctx, world)
            if isinstance(o, GStep) and o.label != SW
        ]
        world = outs[0].world
    raise AssertionError("predicate never satisfied")


class TestAtomProtocol:
    def test_entatom_sets_bit(self):
        prog = cimp_program("main(){ <skip;> }", ["main"])
        ctx = GlobalContext(prog)
        world = ctx.load()[0]
        world = _step_until(ctx, world, lambda w: w.bits[0] == 1)
        assert world.bits == (1,)

    def test_extatom_clears_bit(self):
        prog = cimp_program("main(){ <skip;> print(1); }", ["main"])
        ctx = GlobalContext(prog)
        world = ctx.load()[0]
        world = _step_until(ctx, world, lambda w: w.bits[0] == 1)
        world = _step_until(ctx, world, lambda w: w.bits[0] == 0)
        assert world.bits == (0,)

    def test_impure_entatom_rejected(self):
        # A hand-built language emitting EntAtom with a footprint
        # violates the Fig. 7 EntAt purity side condition.
        class BadLang:
            name = "bad"

            def init_core(self, module, entry, args=()):
                return "start"

            def step(self, module, core, mem, flist):
                return [
                    Step(
                        ENT_ATOM, Footprint({1}, ()), "in", mem
                    )
                ]

        from repro.lang.module import GlobalEnv, ModuleDecl, Program
        from repro.common.memory import Memory

        prog = Program(
            [ModuleDecl(BadLang(), GlobalEnv({}, {}), None)], ["f"]
        )
        ctx = GlobalContext(prog)
        # Bypass load (entry resolution needs init_core to accept).
        world = ctx.load()[0]
        with pytest.raises(SemanticsError):
            thread_successors(ctx, world)


class TestCallProtocol:
    def test_cross_module_call_pushes_frame(self):
        from tests.helpers import minic_program

        prog, _, _, _ = minic_program(
            [
                "extern int g2(); void main() { int r; r = g2(); "
                "print(r); }",
                "int g2() { return 7; }",
            ],
            ["main"],
        )
        ctx = GlobalContext(prog)
        world = ctx.load()[0]
        deep = _step_until(
            ctx, world, lambda w: len(w.threads[0]) == 2
        )
        assert deep.top_frame().mod_idx == 1
        # Run to completion; the result flows back.
        assert done_traces(behaviours_of(prog)) == {(7,)}

    def test_callee_frame_freelist_disjoint(self):
        from tests.helpers import minic_program

        prog, _, _, _ = minic_program(
            [
                "extern int g2(); void main() { int r; r = g2(); "
                "print(r); }",
                "int g2() { int local = 7; return local; }",
            ],
            ["main"],
        )
        ctx = GlobalContext(prog)
        world = ctx.load()[0]
        deep = _step_until(
            ctx, world, lambda w: len(w.threads[0]) == 2
        )
        caller, callee = deep.threads[0]
        assert caller.flist.disjoint_from(callee.flist)


class TestSpawnProtocol:
    def test_preemptive_spawn_is_plain_step(self):
        prog = cimp_program(
            "main(){ spawn worker; } worker(){ skip; }", ["main"]
        )
        ctx = GlobalContext(prog)
        world = ctx.load()[0]
        outs = thread_successors(ctx, world)
        assert len(outs) == 1
        assert isinstance(outs[0], SyncPoint)
        assert outs[0].kind == "spawn"
        assert len(outs[0].world.threads) == 2

    def test_np_spawn_is_switch_point(self):
        prog = cimp_program(
            "main(){ spawn worker; print(1); } worker(){ print(2); }",
            ["main"],
        )
        ctx = GlobalContext(prog)
        world = ctx.load()[0]
        outs = NonPreemptiveSemantics().successors(ctx, world)
        # Spawn offers both: continue in main, or switch to the child.
        currents = {o.world.cur for o in outs if isinstance(o, GStep)}
        assert currents == {0, 1}

    def test_np_spawned_interleavings(self):
        prog = cimp_program(
            "main(){ spawn worker; print(1); } worker(){ print(2); }",
            ["main"],
        )
        from tests.helpers import np_behaviours_of

        assert done_traces(np_behaviours_of(prog)) == {
            (1, 2), (2, 1),
        }


class TestAbortPropagation:
    def test_unresolved_call_aborts_globally(self):
        from tests.helpers import minic_program

        prog, _, _, _ = minic_program(
            ["extern void ghost(); void main() { ghost(); }"],
            ["main"],
        )
        ctx = GlobalContext(prog)
        world = ctx.load()[0]
        world = _step_until(
            ctx,
            world,
            lambda w: any(
                isinstance(o, GAbort)
                for o in thread_successors(ctx, w)
            ),
        )
        aborts = [
            o
            for o in thread_successors(ctx, world)
            if isinstance(o, GAbort)
        ]
        assert "ghost" in aborts[0].reason
