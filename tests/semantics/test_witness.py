"""Witness capture: schedules, serialization, and the POR cross-check.

Covers path extraction from recorded graphs (including halted ones),
the annotating re-walk, abort schedules, ``find_race``'s attached
schedules under every mode combination, and the JSON artifact
round-trip.
"""

import io

import pytest

from repro.semantics import (
    GlobalContext,
    NonPreemptiveSemantics,
    PreemptiveSemantics,
    explore,
    find_race,
)
from repro.semantics.replay import replay_schedule, replay_witness
from repro.semantics.witness import (
    CaptureError,
    Schedule,
    ScheduleStep,
    WitnessRecord,
    capture_abort_schedule,
    capture_schedule,
    capture_walk,
    graph_path,
    load_witness,
    record_abort,
    record_race,
    save_witness,
)

from tests.helpers import cimp_program

RACY = "t1(){ [C] := 1; } t2(){ [C] := 2; }"
#: Race guarded behind a few private steps, so schedules are nontrivial.
GUARDED = (
    "t1(){ x := 0; while(x < 2){ x := x + 1; } [C] := 1; }"
    " t2(){ [C] := 2; }"
)
SAFE = "t1(){ x := 1; } t2(){ y := 2; }"
ABORTING = "t1(){ [D] := 1; } t2(){ skip; }"


def _racy_ctx(src=GUARDED):
    return GlobalContext(cimp_program(src, ["t1", "t2"]))


def _aborting_ctx():
    return GlobalContext(
        cimp_program(ABORTING, ["t1", "t2"], symbols={"D": 999},
                     init={})
    )


class TestGraphPath:
    def test_initial_state_has_empty_path(self):
        ctx = _racy_ctx()
        graph = explore(ctx, PreemptiveSemantics(), 10000)
        init_idx, hops = graph_path(graph, graph.initial[0])
        assert hops == []
        assert graph.initial[init_idx] == graph.initial[0]

    def test_path_edges_exist_in_graph(self):
        ctx = _racy_ctx()
        graph = explore(ctx, PreemptiveSemantics(), 10000)
        target = graph.state_count() - 1
        _init_idx, hops = graph_path(graph, target)
        assert hops[-1][2] == target
        for sid, i, dst in hops:
            assert graph.edges[sid][i][1] == dst

    def test_unreachable_raises(self):
        ctx = _racy_ctx()
        graph = explore(ctx, PreemptiveSemantics(), 10000)
        with pytest.raises(CaptureError):
            graph_path(graph, graph.state_count() + 7)


class TestCaptureSchedule:
    @pytest.mark.parametrize(
        "sem_cls", [PreemptiveSemantics, NonPreemptiveSemantics],
        ids=lambda c: c.name,
    )
    def test_every_state_capturable_and_replayable(self, sem_cls):
        ctx = _racy_ctx()
        sem = sem_cls()
        graph = explore(ctx, sem, 10000)
        for sid in range(graph.state_count()):
            schedule = capture_schedule(ctx, sem, graph, sid)
            result = replay_schedule(ctx, schedule, sem)
            assert result.world == graph.states[sid]

    def test_por_schedule_replays_under_full_semantics(self):
        # The ample-prefix cross-check: a path recorded through a
        # reduced graph must re-walk verbatim under full expansion.
        ctx = _racy_ctx()
        sem = PreemptiveSemantics()
        graph = explore(ctx, sem, 10000, reduce=True)
        for sid in range(graph.state_count()):
            schedule = capture_schedule(ctx, sem, graph, sid, por=True)
            assert schedule.por
            result = replay_schedule(ctx, schedule, sem)
            assert result.world == graph.states[sid]

    def test_steps_annotated(self):
        ctx = _racy_ctx()
        sem = PreemptiveSemantics()
        graph = explore(ctx, sem, 10000)
        schedule = capture_schedule(ctx, sem, graph,
                                    graph.state_count() - 1)
        for st in schedule.steps:
            assert st.kind in ("tau", "sw", "event")
            assert st.tid is not None and st.to is not None
            if st.kind == "sw":
                assert st.rs is None and st.ws is None
            else:
                assert st.rs is not None and st.ws is not None

    def test_abort_schedule(self):
        ctx = _aborting_ctx()
        sem = PreemptiveSemantics()
        graph = explore(ctx, sem, 10000)
        schedule = capture_abort_schedule(ctx, sem, graph)
        assert schedule is not None
        assert schedule.steps[-1].kind == "abort"
        result = replay_schedule(ctx, schedule, sem)
        assert result.end == "abort"

    def test_no_abort_no_schedule(self):
        ctx = _racy_ctx(SAFE)
        sem = PreemptiveSemantics()
        graph = explore(ctx, sem, 10000)
        assert capture_abort_schedule(ctx, sem, graph) is None


class TestFindRaceCapture:
    @pytest.mark.parametrize("reduce", [False, True], ids=["full", "por"])
    @pytest.mark.parametrize("otf", [False, True], ids=["stored", "otf"])
    @pytest.mark.parametrize(
        "sem_cls", [PreemptiveSemantics, NonPreemptiveSemantics],
        ids=lambda c: c.name,
    )
    def test_witness_carries_replayable_schedule(
        self, sem_cls, otf, reduce
    ):
        ctx = _racy_ctx()
        witness = find_race(
            ctx, sem_cls(), reduce=reduce, on_the_fly=otf
        )
        assert witness is not None
        assert witness.schedule is not None
        record = record_race(witness, meta={"max_atomic_steps": 64})
        replay_witness(_racy_ctx(), record)

    def test_capture_off(self):
        witness = find_race(
            _racy_ctx(), PreemptiveSemantics(), capture=False
        )
        assert witness is not None
        assert witness.schedule is None
        with pytest.raises(CaptureError):
            record_race(witness)

    def test_immediate_race_has_empty_schedule(self):
        # Both threads race from the very first world: the witness is
        # an initial state and its schedule has no steps.
        witness = find_race(_racy_ctx(RACY), PreemptiveSemantics())
        assert witness is not None
        record = record_race(witness)
        assert len(record.schedule) == 0
        replay_witness(_racy_ctx(RACY), record)


class TestCaptureWalk:
    def test_walk_replays_to_same_world(self):
        ctx = _racy_ctx()
        sem = PreemptiveSemantics()
        schedule, final = capture_walk(
            ctx, sem, [3, 1, 4, 1, 5, 9, 2, 6, 5, 3]
        )
        result = replay_schedule(ctx, schedule, sem)
        assert result.world == final

    def test_walk_stops_at_abort(self):
        ctx = _aborting_ctx()
        schedule, _final = capture_walk(
            ctx, PreemptiveSemantics(), [0] * 50
        )
        assert schedule.steps[-1].kind == "abort"


class TestSerialization:
    def _record(self):
        witness = find_race(_racy_ctx(), PreemptiveSemantics())
        return record_race(
            witness,
            program={"threads": "t1,t2"},
            meta={"max_atomic_steps": 64},
        )

    def test_round_trip_preserves_schedule(self, tmp_path):
        record = self._record()
        path = tmp_path / "w.json"
        save_witness(str(path), record)
        loaded = load_witness(str(path))
        assert loaded.verdict == "race"
        assert loaded.schedule == record.schedule
        assert loaded.race == record.race
        assert loaded.program == record.program
        assert loaded.meta == record.meta

    def test_round_trip_file_objects(self):
        record = self._record()
        buf = io.StringIO()
        save_witness(buf, record)
        loaded = load_witness(io.StringIO(buf.getvalue()))
        assert loaded.schedule == record.schedule

    def test_loaded_witness_replays(self, tmp_path):
        path = tmp_path / "w.json"
        save_witness(str(path), self._record())
        replay_witness(_racy_ctx(), load_witness(str(path)))

    def test_rejects_wrong_type(self):
        with pytest.raises(CaptureError):
            load_witness(io.StringIO('{"type": "trace"}'))

    def test_rejects_wrong_version(self):
        rec = self._record().as_dict()
        rec["version"] = 999
        import json

        with pytest.raises(CaptureError):
            load_witness(io.StringIO(json.dumps(rec)))

    def test_abort_record_requires_abort_step(self):
        schedule = Schedule(
            0, [ScheduleStep(0, 0, 0, "tau")], "preemptive"
        )
        with pytest.raises(CaptureError):
            record_abort(schedule)

    def test_abort_record_round_trip(self, tmp_path):
        ctx = _aborting_ctx()
        sem = PreemptiveSemantics()
        graph = explore(ctx, sem, 10000)
        schedule = capture_abort_schedule(ctx, sem, graph)
        record = record_abort(schedule)
        path = tmp_path / "abort.json"
        save_witness(str(path), record)
        loaded = load_witness(str(path))
        assert loaded.verdict == "abort"
        result = replay_witness(_aborting_ctx(), loaded)
        assert result.end == "abort"

    def test_record_is_plain_json(self):
        rec = self._record().as_dict()
        import json

        json.dumps(rec)  # no custom types anywhere
        assert rec["type"] == "witness"
        assert rec["version"] == 1
        assert isinstance(rec["schedule"]["steps"], list)


class TestWitnessRecordValidation:
    def test_minimized_flag_round_trips(self):
        witness = find_race(_racy_ctx(), PreemptiveSemantics())
        record = record_race(witness, minimized=True)
        loaded = WitnessRecord.from_dict(record.as_dict())
        assert loaded.minimized
