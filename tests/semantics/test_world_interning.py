"""Hash-consed worlds/frames, the resolve table, and exploration
determinism under the interned representation.

Interning is an optimization layered under the structural semantics:
these tests check the canonical constructors return pointer-equal
objects for equal states, that directly-constructed (un-interned)
objects remain fully interoperable, and that whole-suite behaviour
sets are unaffected.
"""

import pytest

from repro.common.errors import SemanticsError
from repro.common.freelist import FreeList
from repro.common.memory import Memory
from repro.common.values import VInt
from repro.lang.module import GlobalEnv, ModuleDecl, Program
from repro.langs.cimp import CIMP, parse_module as parse_cimp
from repro.semantics import (
    GlobalContext,
    NonPreemptiveSemantics,
    PreemptiveSemantics,
    behaviours,
    explore,
)
from repro.semantics.world import Frame, World

from tests.helpers import CELL, cimp_program, events_of


def _frame_parts():
    prog = cimp_program("f(){ print(1); }", ["f"])
    ctx = GlobalContext(prog)
    mod_idx, core = ctx.resolve("f")
    return ctx, mod_idx, core


class TestHashConsing:
    def test_frame_make_is_canonical(self):
        _, mod_idx, core = _frame_parts()
        flist = FreeList.for_thread(0)
        f1 = Frame.make(mod_idx, flist, core)
        f2 = Frame.make(mod_idx, FreeList.for_thread(0), core)
        assert f1 is f2

    def test_world_make_is_canonical(self):
        _, mod_idx, core = _frame_parts()
        frame = Frame.make(mod_idx, FreeList.for_thread(0), core)
        mem = Memory({CELL: VInt(0)})
        w1 = World.make(((frame,),), 0, (0,), mem)
        w2 = World.make(((frame,),), 0, (0,), Memory({CELL: VInt(0)}))
        assert w1 is w2

    def test_direct_construction_interoperates(self):
        # Un-interned objects are structurally equal to interned ones
        # and hash identically — interning is invisible to semantics.
        _, mod_idx, core = _frame_parts()
        flist = FreeList.for_thread(0)
        interned = Frame.make(mod_idx, flist, core)
        direct = Frame(mod_idx, flist, core)
        assert direct == interned and interned == direct
        assert hash(direct) == hash(interned)

        mem = Memory({CELL: VInt(0)})
        w_interned = World.make(((interned,),), 0, (0,), mem)
        w_direct = World(((direct,),), 0, (0,), mem)
        assert w_direct == w_interned
        assert hash(w_direct) == hash(w_interned)
        assert len({w_direct, w_interned}) == 1

    def test_successor_dedup_is_pointer_equal(self):
        # Two different interleavings converging on the same abstract
        # state must produce the same World object.
        prog = cimp_program(
            "t1(){ print(1); } t2(){ print(2); }", ["t1", "t2"]
        )
        graph = explore(GlobalContext(prog), PreemptiveSemantics())
        seen = {}
        for w in graph.states:
            key = (w.threads, w.cur, w.bits, w.mem)
            assert key not in seen
            seen[key] = w


class TestReplaceTopGuard:
    def test_replace_top_on_terminated_thread_raises(self):
        _, mod_idx, core = _frame_parts()
        frame = Frame.make(mod_idx, FreeList.for_thread(0), core)
        # Thread 0 terminated (empty stack), thread 1 live, cur = 0.
        world = World.make(((), (frame,)), 0, (0, 0), Memory())
        with pytest.raises(SemanticsError):
            world.replace_top(frame)

    def test_replace_top_on_live_thread_still_works(self):
        _, mod_idx, core = _frame_parts()
        frame = Frame.make(mod_idx, FreeList.for_thread(0), core)
        world = World.make(((frame,),), 0, (0,), Memory())
        out = world.replace_top(frame)
        assert out == world


class TestResolveTable:
    def test_table_resolution_matches_probing(self):
        prog = cimp_program(
            "f(){ print(1); } g(){ print(2); }", ["f"]
        )
        ctx = GlobalContext(prog)
        assert ctx._resolve_table is not None
        for name in ("f", "g"):
            mod_idx, core = ctx.resolve(name)
            assert mod_idx == 0
            assert core is not None
        assert ctx.resolve("missing") is None

    def test_resolve_memoizes_initial_core(self):
        prog = cimp_program("f(){ print(1); }", ["f"])
        ctx = GlobalContext(prog)
        assert ctx.resolve("f") == ctx.resolve("f")
        assert ctx.resolve("f")[1] is ctx.resolve("f")[1]

    def test_ambiguous_entry_raises(self):
        symbols = {"C": CELL}
        init = {CELL: VInt(0)}
        mod = parse_cimp("dup(){ print(1); }", symbols=symbols)
        ge = GlobalEnv(symbols, init)
        prog = Program(
            [ModuleDecl(CIMP, ge, mod), ModuleDecl(CIMP, ge, mod)],
            ["dup"],
        )
        ctx = GlobalContext(prog)
        with pytest.raises(ValueError):
            ctx.resolve("dup")

    def test_probing_fallback_when_entries_unknown(self):
        # A language that cannot enumerate entries forces the lazy
        # probing path; resolution results must be identical.
        prog = cimp_program("f(){ print(1); }", ["f"])
        ctx = GlobalContext(prog)
        ctx._resolve_table = None
        ctx._core_cache.clear()
        mod_idx, core = ctx.resolve("f")
        assert mod_idx == 0 and core is not None
        assert ctx.resolve("missing") is None


class TestExplorationDeterminism:
    def test_behaviour_sets_stable_across_runs(self):
        # Fresh contexts, warm or cold intern tables: the behaviour
        # set, the state count, and race-free verdicts never move.
        prog = cimp_program(
            "t1(){ print(1); print(2); } t2(){ [C] := 1; print(3); }",
            ["t1", "t2"],
        )
        results = []
        for _ in range(2):
            for sem in (PreemptiveSemantics(), NonPreemptiveSemantics()):
                graph = explore(GlobalContext(prog), sem)
                behs = frozenset(events_of(behaviours(graph)))
                results.append((type(sem).__name__,
                                graph.state_count(), behs))
        assert results[0] == results[2]
        assert results[1] == results[3]
