"""Tests for refinement ⊑, ⊑′ and equivalence ≈ on behaviour sets."""

from repro.lang.messages import EventMsg
from repro.semantics.explore import Behaviour
from repro.semantics.refinement import equivalent, refines, safe


def beh(values, end=Behaviour.DONE):
    return Behaviour(tuple(EventMsg("print", v) for v in values), end)


class TestRefines:
    def test_subset_refines(self):
        small = {beh([1])}
        big = {beh([1]), beh([2])}
        assert bool(refines(small, big))
        assert not bool(refines(big, small))

    def test_counterexamples_reported(self):
        r = refines({beh([1]), beh([3])}, {beh([1])})
        assert not r.holds
        assert r.counterexamples == (beh([3]),)

    def test_end_markers_matter(self):
        assert not bool(
            refines({beh([1], "abort")}, {beh([1], "done")})
        )

    def test_divergence_in_strict_mode(self):
        lhs = {beh([], Behaviour.SILENT_DIV)}
        rhs = {beh([], Behaviour.DONE)}
        assert not bool(refines(lhs, rhs, termination_sensitive=True))

    def test_divergence_ignored_in_weak_mode(self):
        # ⊑′ does not preserve termination (Thm 15).
        lhs = {beh([1]), beh([], Behaviour.SILENT_DIV)}
        rhs = {beh([1])}
        assert bool(refines(lhs, rhs, termination_sensitive=False))

    def test_cut_makes_inconclusive(self):
        lhs = {beh([1]), beh([1], Behaviour.CUT)}
        rhs = {beh([1])}
        r = refines(lhs, rhs)
        assert r.holds and r.inconclusive
        assert not bool(r)

    def test_empty_lhs_trivially_refines(self):
        assert bool(refines(set(), {beh([1])}))


class TestEquivalent:
    def test_equal_sets(self):
        s = {beh([1]), beh([2])}
        assert bool(equivalent(s, set(s)))

    def test_asymmetric_fails(self):
        assert not bool(equivalent({beh([1])}, {beh([1]), beh([2])}))

    def test_counterexamples_from_both_sides(self):
        r = equivalent({beh([1])}, {beh([2])})
        assert len(r.counterexamples) == 2


class TestSafe:
    def test_safe_without_aborts(self):
        assert bool(safe({beh([1]), beh([], Behaviour.SILENT_DIV)}))

    def test_abort_unsafe(self):
        r = safe({beh([1]), beh([2], Behaviour.ABORT)})
        assert not r.holds
        assert r.counterexamples == (beh([2], Behaviour.ABORT),)

    def test_cut_inconclusive(self):
        r = safe({beh([1], Behaviour.CUT)})
        assert r.holds and r.inconclusive
