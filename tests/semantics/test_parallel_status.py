"""Heartbeat fork-safety under the parallel explorer.

The properties that matter: every worker writes its own shard file
(the fork-inherited parent writer never clobbers the main document),
a concurrent poller never sees a torn JSON document at any
parallelism, and the final merged heartbeat accounts for every shard.
"""

import glob
import json
import threading

import pytest

from repro import obs
from repro.framework.build import lock_counter_system
from repro.obs import status
from repro.semantics import GlobalContext, PreemptiveSemantics, explore
from repro.semantics.parallel import available

from tests.helpers import SUITE, minic_program

pytestmark = pytest.mark.skipif(
    not available(), reason="platform cannot fork workers"
)


@pytest.fixture(autouse=True)
def _reset():
    obs.reset()
    status.reset()
    yield
    obs.reset()
    status.reset()


class _Poller:
    """Reads the status file in a tight loop, counting torn reads."""

    def __init__(self, path):
        self.path = str(path)
        self.stop = threading.Event()
        self.failures = 0
        self.reads = 0
        self.docs = []
        self.thread = threading.Thread(target=self._run)

    def _run(self):
        while not self.stop.is_set():
            try:
                with open(self.path) as handle:
                    doc = json.load(handle)
            except OSError:
                continue
            except ValueError:
                self.failures += 1
                continue
            self.reads += 1
            self.docs.append(doc)

    def __enter__(self):
        self.thread.start()
        return self

    def __exit__(self, *exc):
        self.stop.set()
        self.thread.join()


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_no_torn_reads_and_full_shard_coverage(tmp_path, jobs):
    st = tmp_path / "st.json"
    status.configure(st, interval=0.01)
    program = lock_counter_system(2).source_program()
    ctx = GlobalContext(program)
    with _Poller(st) as poller:
        graph = explore(
            ctx, PreemptiveSemantics(), reduce=False, jobs=jobs,
            max_states=100000,
        )
    assert poller.failures == 0
    assert poller.reads > 0

    final = json.loads(st.read_text())
    assert final["states"] == graph.state_count()
    if jobs > 1:
        # The coordinator's final merge accounts for every worker.
        assert final["phase"] == "merged"
        assert final["jobs"] == jobs
        wids = {row["wid"] for row in final["shards"]}
        assert wids == set(range(jobs))
        assert all(row["beats"] > 0 for row in final["shards"])
        assert sum(
            row["states"] for row in final["shards"]
        ) == graph.state_count()
        # Every worker wrote (and left) its own shard heartbeat.
        shard_files = glob.glob(str(st) + ".w*")
        assert len(shard_files) == jobs
        for path in shard_files:
            doc = json.loads(open(path).read())
            assert doc["type"] == "heartbeat"
            assert "wid" in doc


def test_workers_do_not_write_the_main_file(tmp_path):
    """Shard docs carry wids; the main file is only ever the parent's
    (its pid) — the fork-inherited writer was reset in the child."""
    st = tmp_path / "st.json"
    status.configure(st, interval=0.01)
    program, _m, _g, _s = minic_program([SUITE["loops"]], ["main"])
    explore(
        GlobalContext(program), PreemptiveSemantics(), reduce=False,
        jobs=2, max_states=100000,
    )
    import os

    main_doc = json.loads(st.read_text())
    assert main_doc["pid"] == os.getpid()
    assert "wid" not in main_doc
    for path in glob.glob(str(st) + ".w*"):
        shard = json.loads(open(path).read())
        assert shard["pid"] != os.getpid()


SLOW_LOCK_CLIENT = """
extern void lock();
extern void unlock();
int x = 0;
void t1() { int i = 25; while (i > 0) { lock(); x = x + 1; unlock(); i = i - 1; } }
void t2() { int i = 25; while (i > 0) { lock(); x = x + 2; unlock(); i = i - 1; } }
"""


def _pid_alive(pid):
    import os

    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def test_sigint_exits_130_and_reaps_forked_workers(tmp_path):
    """Ctrl-C mid-parallel-exploration: the CLI exits 130 with a
    one-line message, and the coordinator's ``finally`` reaps every
    forked worker (previously the reap was skipped on the interrupt
    path and live workers leaked)."""
    import os
    import signal
    import subprocess
    import sys
    import time

    import repro

    src_dir = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)
    ))
    program = tmp_path / "slow.c"
    program.write_text(SLOW_LOCK_CLIENT)
    hb = tmp_path / "hb.json"
    env = dict(os.environ, PYTHONPATH=src_dir,
               REPRO_STATUS_INTERVAL="0.05")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "run", str(program),
         "--lock", "--threads", "t1,t2", "--jobs", "2",
         "--max-states", "2000000", "--status", str(hb)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
    )
    worker_pids = []
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and len(worker_pids) < 2:
            if proc.poll() is not None:
                pytest.fail(
                    "run finished before workers could be observed "
                    "(rc={})".format(proc.returncode)
                )
            worker_pids = []
            for wid in (0, 1):
                doc = status.load(status.shard_path(hb, wid))
                if doc and "pid" in doc:
                    worker_pids.append(doc["pid"])
            time.sleep(0.02)
        assert len(worker_pids) == 2, "workers never wrote shards"
        proc.send_signal(signal.SIGINT)
        _, err = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=30)

    assert proc.returncode == 130
    assert b"repro: interrupted" in err
    # The coordinator's finally reaped both forked workers.
    deadline = time.monotonic() + 15
    while time.monotonic() < deadline and \
            any(_pid_alive(pid) for pid in worker_pids):
        time.sleep(0.05)
    assert not any(_pid_alive(pid) for pid in worker_pids)
    # The heartbeat finalizer still stamped the interrupt.
    final = json.loads(hb.read_text())
    assert final["phase"] == "done"
    assert final["exit_status"] == 130


def test_reduced_mode_parallel_also_beats(tmp_path):
    st = tmp_path / "st.json"
    status.configure(st, interval=0.01)
    program = lock_counter_system(2).source_program()
    with _Poller(st) as poller:
        graph = explore(
            GlobalContext(program), PreemptiveSemantics(),
            reduce=True, jobs=2, max_states=100000,
        )
    assert poller.failures == 0
    final = json.loads(st.read_text())
    assert final["states"] == graph.state_count()
    assert {row["wid"] for row in final["shards"]} == {0, 1}
