"""Property tests: algebraic laws of refinement and equivalence."""

from hypothesis import given
from hypothesis import strategies as st

from repro.lang.messages import EventMsg
from repro.semantics.explore import Behaviour
from repro.semantics.refinement import equivalent, refines

_behaviour = st.builds(
    Behaviour,
    st.lists(
        st.integers(min_value=0, max_value=3).map(
            lambda v: EventMsg("print", v)
        ),
        max_size=3,
    ).map(tuple),
    st.sampled_from([
        Behaviour.DONE, Behaviour.ABORT, Behaviour.SILENT_DIV,
    ]),
)

_behaviour_sets = st.frozensets(_behaviour, max_size=6)


class TestRefinementLaws:
    @given(_behaviour_sets)
    def test_reflexive(self, s):
        assert bool(refines(s, s))

    @given(_behaviour_sets, _behaviour_sets, _behaviour_sets)
    def test_transitive(self, a, b, c):
        if bool(refines(a, b)) and bool(refines(b, c)):
            assert bool(refines(a, c))

    @given(_behaviour_sets, _behaviour_sets)
    def test_antisymmetric_up_to_equivalence(self, a, b):
        if bool(refines(a, b)) and bool(refines(b, a)):
            assert bool(equivalent(a, b))

    @given(_behaviour_sets, _behaviour_sets)
    def test_union_upper_bound(self, a, b):
        assert bool(refines(a, a | b))
        assert bool(refines(b, a | b))

    @given(_behaviour_sets, _behaviour_sets)
    def test_weak_is_weaker(self, a, b):
        if bool(refines(a, b, termination_sensitive=True)):
            assert bool(refines(a, b, termination_sensitive=False))

    @given(_behaviour_sets, _behaviour_sets)
    def test_counterexamples_witness_failure(self, a, b):
        result = refines(a, b)
        assert result.holds == (not result.counterexamples)
        for cex in result.counterexamples:
            assert cex in a and cex not in b


class TestEquivalenceLaws:
    @given(_behaviour_sets)
    def test_reflexive(self, s):
        assert bool(equivalent(s, s))

    @given(_behaviour_sets, _behaviour_sets)
    def test_symmetric(self, a, b):
        assert bool(equivalent(a, b)) == bool(equivalent(b, a))

    @given(_behaviour_sets, _behaviour_sets, _behaviour_sets)
    def test_transitive(self, a, b, c):
        if bool(equivalent(a, b)) and bool(equivalent(b, c)):
            assert bool(equivalent(a, c))

    @given(_behaviour_sets, _behaviour_sets)
    def test_equivalence_is_set_equality_without_cuts(self, a, b):
        assert bool(equivalent(a, b)) == (a == b)
