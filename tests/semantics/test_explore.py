"""Tests for state-space exploration and behaviour extraction."""

import pytest

from repro.semantics import (
    Behaviour,
    ExplorationLimit,
    GlobalContext,
    PreemptiveSemantics,
    behaviours,
    explore,
)

from tests.helpers import behaviours_of, cimp_program, events_of


class TestGraph:
    def test_done_state_recorded(self):
        prog = cimp_program("main(){ skip; }", ["main"])
        graph = explore(GlobalContext(prog), PreemptiveSemantics())
        assert graph.done

    def test_states_deduplicated(self):
        # A loop that revisits the same configuration must not blow up.
        prog = cimp_program(
            "main(){ while(1 == 1){ [C] := 0; } }", ["main"]
        )
        graph = explore(GlobalContext(prog), PreemptiveSemantics())
        assert graph.state_count() < 20

    def test_strict_limit_raises(self):
        prog = cimp_program(
            "main(){ i := 0; while(i < 50){ i := i + 1; } }", ["main"]
        )
        with pytest.raises(ExplorationLimit):
            explore(
                GlobalContext(prog),
                PreemptiveSemantics(),
                max_states=5,
                strict=True,
            )

    def test_nonstrict_limit_marks_truncation(self):
        prog = cimp_program(
            "main(){ i := 0; while(i < 50){ i := i + 1; } }", ["main"]
        )
        graph = explore(
            GlobalContext(prog), PreemptiveSemantics(), max_states=5
        )
        assert graph.truncated


class TestBehaviours:
    def test_terminating(self):
        prog = cimp_program("main(){ print(1); }", ["main"])
        assert events_of(behaviours_of(prog)) == {
            ((("print", 1),), "done")
        }

    def test_abort(self):
        prog = cimp_program("main(){ assert(0); }", ["main"])
        assert events_of(behaviours_of(prog)) == {((), "abort")}

    def test_silent_divergence(self):
        prog = cimp_program(
            "main(){ while(1 == 1){ [C] := 0; } }", ["main"]
        )
        assert events_of(behaviours_of(prog)) == {((), "silent_div")}

    def test_event_after_divergent_choice(self):
        # The loop may or may not be entered depending on the racy
        # value; both a diverging and a terminating behaviour exist.
        prog = cimp_program(
            "t1(){ x := [C]; while(x == 0){ x := [C]; } print(1); }"
            "t2(){ [C] := 1; }",
            ["t1", "t2"],
        )
        behs = events_of(behaviours_of(prog))
        assert ((("print", 1),), "done") in behs
        assert ((), "silent_div") in behs

    def test_cut_on_unbounded_event_traces(self):
        prog = cimp_program(
            "main(){ while(1 == 1){ print(1); } }", ["main"]
        )
        behs = behaviours_of(prog, max_events=4)
        assert any(b.end == Behaviour.CUT for b in behs)

    def test_truncated_graph_reports_cut(self):
        prog = cimp_program(
            "main(){ i := 0; while(i < 50){ i := i + 1; } print(i); }",
            ["main"],
        )
        graph = explore(
            GlobalContext(prog), PreemptiveSemantics(), max_states=5
        )
        behs = behaviours(graph)
        assert any(b.end == Behaviour.CUT for b in behs)

    def test_pure_scheduler_livelock_not_divergence(self):
        # Two already-terminating threads: sw-only cycles must not be
        # reported as program divergence.
        prog = cimp_program(
            "t1(){ print(1); } t2(){ print(2); }", ["t1", "t2"]
        )
        behs = behaviours_of(prog)
        assert all(b.end != Behaviour.SILENT_DIV for b in behs)


class TestBehaviourObject:
    def test_equality_and_hash(self):
        a = Behaviour((), Behaviour.DONE)
        b = Behaviour((), Behaviour.DONE)
        assert a == b and hash(a) == hash(b)
        assert a != Behaviour((), Behaviour.ABORT)

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Behaviour((), Behaviour.DONE).end = "abort"
