"""Tests for the freelist address-space partition — the paper's memory
model decision (Sec. 2.3) — including the shared-counter ablation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SemanticsError
from repro.common.freelist import (
    LOCAL_BASE,
    MAX_DEPTH,
    SLOT_SPACE,
    FreeList,
    SharedCounterAllocator,
    is_global,
    is_local,
)

tids = st.integers(min_value=0, max_value=20)
depths = st.integers(min_value=0, max_value=MAX_DEPTH - 1)


class TestFreeList:
    def test_addresses_above_local_base(self):
        fl = FreeList.for_thread(0)
        assert fl.addr_at(0) >= LOCAL_BASE

    def test_deterministic_positional_allocation(self):
        fl = FreeList.for_thread(1)
        assert fl.addr_at(3) == fl.addr_at(3)
        assert fl.addr_at(0) != fl.addr_at(1)

    def test_contains(self):
        fl = FreeList.for_thread(2)
        assert fl.contains(fl.addr_at(0))
        assert fl.contains(fl.addr_at(SLOT_SPACE - 1))
        assert not fl.contains(fl.addr_at(0) - 1)

    def test_exhaustion_raises(self):
        fl = FreeList.for_thread(0)
        with pytest.raises(SemanticsError):
            fl.addr_at(SLOT_SPACE)

    def test_depth_out_of_range(self):
        with pytest.raises(SemanticsError):
            FreeList.for_thread(0, MAX_DEPTH)

    def test_base_below_global_rejected(self):
        with pytest.raises(SemanticsError):
            FreeList(0)

    def test_addresses_set(self):
        fl = FreeList.for_thread(0)
        addrs = fl.addresses(4)
        assert len(addrs) == 4
        assert all(fl.contains(a) for a in addrs)

    @given(tids, depths, tids, depths)
    def test_disjointness(self, t1, d1, t2, d2):
        f1 = FreeList.for_thread(t1, d1)
        f2 = FreeList.for_thread(t2, d2)
        if (t1, d1) == (t2, d2):
            assert f1 == f2
        else:
            assert f1.disjoint_from(f2)
            assert not (
                f1.addresses(8) & f2.addresses(8)
            ), "freelists of distinct activations overlap"

    @given(tids, depths, st.integers(min_value=0,
                                     max_value=SLOT_SPACE - 1))
    def test_all_addresses_local(self, tid, depth, n):
        addr = FreeList.for_thread(tid, depth).addr_at(n)
        assert is_local(addr)
        assert not is_global(addr)


class TestRegionPredicates:
    def test_global_region(self):
        assert is_global(0)
        assert is_global(LOCAL_BASE - 1)
        assert not is_global(LOCAL_BASE)

    def test_negative_not_global(self):
        assert not is_global(-1)


class TestSharedCounterAblation:
    """The CompCert-style allocator breaks commutation of
    non-conflicting allocations — the paper's reason to abandon it."""

    def test_order_dependence(self):
        # Thread A and thread B each allocate once; the address each
        # receives depends on who goes first.
        alloc = SharedCounterAllocator()
        a_first = (alloc.alloc(), alloc.alloc())  # A then B
        alloc = SharedCounterAllocator()
        b_then_a = (alloc.alloc(), alloc.alloc())  # B then A
        # Reordering swaps the received addresses.
        assert a_first == b_then_a
        assert a_first[0] != a_first[1]

    def test_freelists_commute(self):
        # With disjoint freelists the address depends only on the
        # thread's own allocation count, not on interleaving.
        fa = FreeList.for_thread(0)
        fb = FreeList.for_thread(1)
        # "A then B" and "B then A" give each thread the same address.
        assert fa.addr_at(0) == fa.addr_at(0)
        assert fb.addr_at(0) == fb.addr_at(0)
        assert fa.addr_at(0) != fb.addr_at(0)
