"""Unit and property tests for the memory model and the Fig. 6
footprint/state predicates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.footprint import Footprint
from repro.common.memory import (
    Memory,
    closed,
    closed_region,
    eq_on,
    forward,
    leffect,
    leq_post,
    leq_pre,
    pointers_in,
)
from repro.common.values import VInt, VPtr

mem_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=-5, max_value=5).map(VInt),
    max_size=6,
).map(Memory)


class TestMemoryBasics:
    def test_load_store(self):
        m = Memory({1: VInt(10)})
        assert m.load(1) == VInt(10)
        m2 = m.store(1, VInt(20))
        assert m2.load(1) == VInt(20)
        assert m.load(1) == VInt(10), "store must not mutate"

    def test_load_missing_is_none(self):
        assert Memory().load(5) is None

    def test_store_missing_is_none(self):
        assert Memory().store(5, VInt(1)) is None

    def test_alloc(self):
        m = Memory().alloc(3, VInt(7))
        assert m.load(3) == VInt(7)

    def test_alloc_existing_is_none(self):
        m = Memory({3: VInt(0)})
        assert m.alloc(3, VInt(1)) is None

    def test_alloc_range(self):
        m = Memory().alloc_range([1, 2, 3], VInt(0))
        assert m.domain() == {1, 2, 3}
        assert m.alloc_range([3, 4], VInt(0)) is None

    def test_domain_and_len(self):
        m = Memory({1: VInt(0), 2: VInt(0)})
        assert m.domain() == {1, 2}
        assert len(m) == 2
        assert 1 in m and 3 not in m

    def test_union_compatible(self):
        a = Memory({1: VInt(1)})
        b = Memory({2: VInt(2)})
        assert a.union(b).domain() == {1, 2}

    def test_union_conflicting_is_none(self):
        a = Memory({1: VInt(1)})
        b = Memory({1: VInt(2)})
        assert a.union(b) is None

    def test_union_agreeing_overlap(self):
        a = Memory({1: VInt(1)})
        assert a.union(Memory({1: VInt(1)})) == a

    def test_restrict(self):
        m = Memory({1: VInt(1), 2: VInt(2)})
        assert m.restrict({2, 9}).domain() == {2}

    def test_hash_consistent(self):
        assert hash(Memory({1: VInt(1)})) == hash(Memory({1: VInt(1)}))

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Memory()._data = {}


class TestEqOn:
    def test_equal_on_region(self):
        a = Memory({1: VInt(1), 2: VInt(2)})
        b = Memory({1: VInt(1), 2: VInt(9)})
        assert eq_on(a, b, {1})
        assert not eq_on(a, b, {2})

    def test_membership_must_agree(self):
        a = Memory({1: VInt(1)})
        b = Memory()
        assert not eq_on(a, b, {1})
        assert eq_on(a, b, {2})

    @given(mem_strategy)
    def test_reflexive(self, m):
        assert eq_on(m, m, m.domain())


class TestForward:
    def test_growth_ok(self):
        a = Memory({1: VInt(0)})
        b = a.alloc(2, VInt(0))
        assert forward(a, b)
        assert not forward(b, a)

    @given(mem_strategy)
    def test_reflexive(self, m):
        assert forward(m, m)


class TestLEffect:
    def test_store_within_ws(self):
        a = Memory({1: VInt(0), 2: VInt(0)})
        b = a.store(1, VInt(5))
        assert leffect(a, b, Footprint((), {1}), frozenset())

    def test_store_outside_ws_detected(self):
        a = Memory({1: VInt(0), 2: VInt(0)})
        b = a.store(2, VInt(5))
        assert not leffect(a, b, Footprint((), {1}), frozenset())

    def test_alloc_from_flist(self):
        a = Memory({1: VInt(0)})
        b = a.alloc(100, VInt(0))
        assert leffect(a, b, Footprint((), {100}), frozenset({100}))
        # Fresh address not from the freelist: rejected.
        assert not leffect(a, b, Footprint((), {100}), frozenset())


class TestLEqPrePost:
    def test_leq_pre_requires_rs_agreement(self):
        fl = frozenset({50})
        a = Memory({1: VInt(1), 2: VInt(2)})
        b = Memory({1: VInt(1), 2: VInt(9)})
        assert leq_pre(a, b, Footprint({1}, ()), fl)
        assert not leq_pre(a, b, Footprint({2}, ()), fl)

    def test_leq_pre_requires_ws_availability(self):
        fl = frozenset()
        a = Memory({1: VInt(1)})
        b = Memory()
        assert not leq_pre(a, b, Footprint((), {1}), fl)

    def test_leq_pre_requires_flist_agreement(self):
        fl = frozenset({50})
        a = Memory({50: VInt(0)})
        b = Memory()
        assert not leq_pre(a, b, Footprint((), ()), fl)

    def test_leq_post(self):
        fl = frozenset()
        a = Memory({1: VInt(5), 2: VInt(0)})
        b = Memory({1: VInt(5), 2: VInt(9)})
        assert leq_post(a, b, Footprint((), {1}), fl)


class TestClosed:
    def test_int_memory_closed(self):
        assert closed(Memory({1: VInt(1)}))

    def test_internal_pointer_closed(self):
        assert closed(Memory({1: VPtr(2), 2: VInt(0)}))

    def test_wild_pointer_not_closed(self):
        assert not closed(Memory({1: VPtr(99)}))

    def test_closed_region_pointer_escape(self):
        m = Memory({1: VPtr(2), 2: VInt(0)})
        assert closed_region({1, 2}, m)
        assert not closed_region({1}, m), "pointer leaves the region"

    def test_pointers_in(self):
        assert pointers_in(VPtr(7)) == {7}
        assert pointers_in(VInt(7)) == set()
