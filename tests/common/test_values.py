"""Unit and property tests for the value domain (32-bit machine ints,
pointers, VUndef propagation)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import values as V
from repro.common.values import VInt, VPtr, VUndef, wrap32

ints = st.integers(min_value=-(2 ** 35), max_value=2 ** 35)
small_ints = st.integers(min_value=V.INT_MIN, max_value=V.INT_MAX)


class TestWrap32:
    def test_identity_in_range(self):
        assert wrap32(0) == 0
        assert wrap32(V.INT_MAX) == V.INT_MAX
        assert wrap32(V.INT_MIN) == V.INT_MIN

    def test_overflow_wraps(self):
        assert wrap32(V.INT_MAX + 1) == V.INT_MIN
        assert wrap32(V.INT_MIN - 1) == V.INT_MAX

    def test_two_power_32_is_zero(self):
        assert wrap32(2 ** 32) == 0

    @given(ints)
    def test_always_in_range(self, n):
        assert V.INT_MIN <= wrap32(n) <= V.INT_MAX

    @given(ints)
    def test_idempotent(self, n):
        assert wrap32(wrap32(n)) == wrap32(n)

    @given(ints, ints)
    def test_congruence(self, a, b):
        assert wrap32(a + b) == wrap32(wrap32(a) + wrap32(b))


class TestVInt:
    def test_equality_and_hash(self):
        assert VInt(5) == VInt(5)
        assert hash(VInt(5)) == hash(VInt(5))
        assert VInt(5) != VInt(6)

    def test_constructor_wraps(self):
        assert VInt(2 ** 32 + 3) == VInt(3)

    def test_immutable(self):
        with pytest.raises(AttributeError):
            VInt(1).n = 2

    def test_truthiness(self):
        assert VInt(1).is_true() is True
        assert VInt(0).is_true() is False
        assert VInt(-1).is_true() is True


class TestVPtr:
    def test_equality(self):
        assert VPtr(10) == VPtr(10)
        assert VPtr(10) != VPtr(11)
        assert VPtr(10) != VInt(10)

    def test_truthiness(self):
        assert VPtr(0).is_true() is True

    def test_immutable(self):
        with pytest.raises(AttributeError):
            VPtr(1).addr = 2


class TestVUndef:
    def test_singleton(self):
        from repro.common.values import _VUndef

        assert _VUndef() is VUndef

    def test_truthiness_undefined(self):
        assert VUndef.is_true() is None


class TestArithmetic:
    def test_add_ints(self):
        assert V.add(VInt(2), VInt(3)) == VInt(5)

    def test_add_ptr_int(self):
        assert V.add(VPtr(10), VInt(2)) == VPtr(12)
        assert V.add(VInt(2), VPtr(10)) == VPtr(12)

    def test_add_ptr_ptr_undef(self):
        assert V.add(VPtr(1), VPtr(2)) is VUndef

    def test_sub_ptr_ptr_is_distance(self):
        assert V.sub(VPtr(12), VPtr(10)) == VInt(2)

    def test_sub_ptr_int(self):
        assert V.sub(VPtr(12), VInt(2)) == VPtr(10)

    def test_mul(self):
        assert V.mul(VInt(6), VInt(7)) == VInt(42)
        assert V.mul(VPtr(1), VInt(2)) is VUndef

    def test_div_truncates_toward_zero(self):
        assert V.divs(VInt(7), VInt(2)) == VInt(3)
        assert V.divs(VInt(-7), VInt(2)) == VInt(-3)
        assert V.divs(VInt(7), VInt(-2)) == VInt(-3)

    def test_div_by_zero_undef(self):
        assert V.divs(VInt(1), VInt(0)) is VUndef

    def test_div_overflow_undef(self):
        assert V.divs(VInt(V.INT_MIN), VInt(-1)) is VUndef

    def test_mod_sign_follows_dividend(self):
        assert V.mods(VInt(7), VInt(2)) == VInt(1)
        assert V.mods(VInt(-7), VInt(2)) == VInt(-1)

    def test_mod_by_zero_undef(self):
        assert V.mods(VInt(1), VInt(0)) is VUndef

    @given(small_ints, small_ints)
    def test_div_mod_identity(self, a, b):
        q = V.divs(VInt(a), VInt(b))
        r = V.mods(VInt(a), VInt(b))
        if q is VUndef:
            assert r is VUndef
        else:
            assert wrap32(q.n * b + r.n) == a

    def test_undef_propagates(self):
        assert V.add(VUndef, VInt(1)) is VUndef
        assert V.neg(VUndef) is VUndef
        assert V.bool_not(VUndef) is VUndef


class TestComparisons:
    def test_eq_ints(self):
        assert V.cmp_eq(VInt(1), VInt(1)) == VInt(1)
        assert V.cmp_eq(VInt(1), VInt(2)) == VInt(0)

    def test_eq_ptrs(self):
        assert V.cmp_eq(VPtr(5), VPtr(5)) == VInt(1)
        assert V.cmp_ne(VPtr(5), VPtr(6)) == VInt(1)

    def test_eq_mixed_undef(self):
        assert V.cmp_eq(VPtr(5), VInt(5)) is VUndef

    def test_orderings(self):
        assert V.cmp_lt(VInt(1), VInt(2)) == VInt(1)
        assert V.cmp_le(VInt(2), VInt(2)) == VInt(1)
        assert V.cmp_gt(VInt(1), VInt(2)) == VInt(0)
        assert V.cmp_ge(VInt(1), VInt(2)) == VInt(0)

    def test_ordering_on_ptrs_undef(self):
        assert V.cmp_lt(VPtr(1), VPtr(2)) is VUndef

    @given(small_ints, small_ints)
    def test_trichotomy(self, a, b):
        lt = V.cmp_lt(VInt(a), VInt(b)).n
        eq = V.cmp_eq(VInt(a), VInt(b)).n
        gt = V.cmp_gt(VInt(a), VInt(b)).n
        assert lt + eq + gt == 1


class TestBooleansAndShifts:
    def test_bool_and(self):
        assert V.bool_and(VInt(1), VInt(2)) == VInt(1)
        assert V.bool_and(VInt(0), VInt(2)) == VInt(0)

    def test_bool_or(self):
        assert V.bool_or(VInt(0), VInt(0)) == VInt(0)
        assert V.bool_or(VInt(0), VInt(3)) == VInt(1)

    def test_bool_not(self):
        assert V.bool_not(VInt(0)) == VInt(1)
        assert V.bool_not(VInt(9)) == VInt(0)
        assert V.bool_not(VPtr(1)) == VInt(0)

    def test_shl(self):
        assert V.shl(VInt(3), VInt(4)) == VInt(48)

    def test_shl_out_of_range_undef(self):
        assert V.shl(VInt(1), VInt(32)) is VUndef
        assert V.shl(VInt(1), VInt(-1)) is VUndef

    def test_shr_arithmetic(self):
        assert V.shr(VInt(-8), VInt(1)) == VInt(-4)

    @given(small_ints, st.integers(min_value=0, max_value=31))
    def test_shl_matches_mul_by_power(self, a, k):
        assert V.shl(VInt(a), VInt(k)) == V.mul(VInt(a), VInt(2 ** k))


class TestOpTables:
    def test_binops_cover_language_operators(self):
        for op in ["+", "-", "*", "/", "%", "==", "!=", "<", "<=",
                   ">", ">=", "&&", "||", "<<", ">>"]:
            assert op in V.BINOPS

    def test_unops(self):
        assert V.UNOPS["-"](VInt(3)) == VInt(-3)
        assert V.UNOPS["!"](VInt(0)) == VInt(1)
