"""The stateful channel transport (PR 7).

A directed channel owns a persistent pickle memo, a memory base cache,
packed-world component tables and an epoch counter; these tests pin the
wire format's contracts: delta/full equivalence (decoded states equal
the originals, hashes recomputed locally), base-miss fallback across a
reset, the epoch protocol (implicit forward reset, loud stale
rejection), packed-record sync errors, schema-v2 rejection of v1
batches, and the pre-shared static segment.
"""

import pickle

import pytest

from repro.common import serialize
from repro.common.memory import Memory
from repro.common.serialize import (
    ChannelDecoder,
    ChannelEncoder,
    SerializationError,
    clear_static_table,
    collect_static_objects,
    decode_batch,
    install_static_table,
)
from repro.framework.build import lock_counter_system
from repro.semantics import GlobalContext, PreemptiveSemantics, explore


@pytest.fixture(scope="module")
def graph():
    ctx = GlobalContext(lock_counter_system(2).source_program())
    return explore(ctx, PreemptiveSemantics(), 4000)


@pytest.fixture(scope="module")
def worlds(graph):
    return list(graph.states)


def _channel():
    return ChannelEncoder(stateless=False), ChannelDecoder(
        stateless=False
    )


# ----- delta/full equivalence ----------------------------------------------


def test_channel_roundtrip_equals_originals(worlds):
    enc, dec = _channel()
    for start in range(0, len(worlds), 64):
        batch = worlds[start:start + 64]
        epoch, data = enc.encode(batch)
        back = dec.decode(epoch, data)
        assert back == batch
        assert [hash(w) for w in back] == [hash(w) for w in batch]


def test_memory_delta_roundtrip_recomputes_hashes():
    base = Memory({1: 10, 2: 20})
    stored = base.store(1, 11)
    written_back = stored.store(1, 10)  # overlay entry equal to base
    assert written_back == base
    enc, dec = _channel()
    epoch, data = enc.encode([base, stored, written_back])
    b, s, w = dec.decode(epoch, data)
    assert (b, s, w) == (base, stored, written_back)
    assert hash(b) == hash(base)
    assert hash(s) == hash(stored)
    assert hash(w) == hash(base)
    assert enc.base_registrations == 1
    assert enc.full_sends == 1
    assert enc.delta_hits == 2


def test_persistent_memo_shrinks_repeats(worlds):
    enc, dec = _channel()
    batch = worlds[:20]
    _, first = enc.encode(batch)
    epoch, second = enc.encode(batch)
    assert len(second) < len(first) / 3
    # Both messages decode in order on the paired decoder.
    assert dec.decode(0, first) == batch
    assert dec.decode(epoch, second) == batch


# ----- packed world records -------------------------------------------------


def test_packed_worlds_roundtrip(worlds):
    enc, dec = _channel()
    sizes = []
    for start in range(0, len(worlds), 32):
        batch = worlds[start:start + 32]
        epoch, data = enc.encode_worlds(batch)
        back = dec.decode(epoch, data)
        assert back == batch
        assert [hash(w) for w in back] == [hash(w) for w in batch]
        sizes.append(len(data) / len(batch))
    # Steady state: worlds whose components all sit in the channel
    # tables cost a few varints each, far below the opening batch.
    assert len(sizes) > 4
    assert min(sizes[1:]) < sizes[0] / 3


def test_packed_worlds_reference_beyond_table_rejected():
    dec = ChannelDecoder(stateless=False)
    # 1 world, threads index 5 against empty channel tables.
    with pytest.raises(SerializationError, match="out of sync"):
        dec._expand_worlds([], bytes([1, 5, 0, 0, 0]))


def test_packed_worlds_exhausted_novel_rejected():
    dec = ChannelDecoder(stateless=False)
    # Index == table size claims a novel component, but none rode along.
    with pytest.raises(SerializationError, match="novel"):
        dec._expand_worlds([], bytes([1, 0, 0, 0, 0]))


def test_packed_worlds_truncated_record_rejected():
    dec = ChannelDecoder(stateless=False)
    with pytest.raises(SerializationError, match="truncated"):
        dec._expand_worlds([], bytes([1]))


def test_varint_roundtrip():
    for n in (0, 1, 127, 128, 300, 1 << 20, (1 << 40) + 12345):
        out = bytearray()
        serialize._pack_uint(out, n)
        value, pos = serialize._read_uint(bytes(out), 0)
        assert (value, pos) == (n, len(out))


# ----- the epoch protocol ---------------------------------------------------


def test_base_miss_after_reset_falls_back_to_full_send():
    m = Memory({1: 10}).store(1, 11)
    enc, dec = _channel()
    e1, d1 = enc.encode([m])
    assert dec.decode(e1, d1) == [m]
    assert enc.base_registrations == 1
    enc.reset()
    # The base cache is gone: the same memory re-registers its base.
    e2, d2 = enc.encode([m])
    assert enc.base_registrations == 2
    assert e2 == e1 + 1
    assert dec.decode(e2, d2) == [m]  # implicit forward reset
    assert dec.resets == 1


def test_stale_epoch_rejected_loudly(worlds):
    enc, dec = _channel()
    e1, d1 = enc.encode(worlds[:2])
    enc.reset()
    e2, d2 = enc.encode(worlds[:2])
    assert dec.decode(e2, d2) == worlds[:2]
    with pytest.raises(SerializationError, match="stale channel epoch"):
        dec.decode(e1, d1)


def test_unknown_base_token_rejected():
    dec = ChannelDecoder(stateless=False)
    with pytest.raises(SerializationError, match="unknown base"):
        dec.apply_delta(7, ((1, 2),))


def test_encode_failure_poisons_the_epoch(worlds):
    enc, dec = _channel()
    e1, d1 = enc.encode(worlds[:2])
    with pytest.raises(SerializationError, match="encode"):
        enc.encode(lambda: None)
    # The half-written memo died with the old epoch; the next message
    # opens a new one and decodes cleanly after the implicit reset.
    e2, d2 = enc.encode(worlds[:2])
    assert e2 == e1 + 1
    assert dec.decode(e1, d1) == worlds[:2]
    assert dec.decode(e2, d2) == worlds[:2]


def test_over_budget_triggers_on_tiny_limits(worlds, monkeypatch):
    enc = ChannelEncoder(stateless=False)
    assert not enc.over_budget()
    monkeypatch.setattr(serialize, "CHANNEL_BYTES_LIMIT", 64)
    enc.encode(worlds[:4])
    assert enc.over_budget()
    enc.reset()
    assert not enc.over_budget()


# ----- versioning -----------------------------------------------------------


def test_v1_batches_rejected():
    data = pickle.dumps(
        (1, serialize._SEED_PROBE, ["payload"]),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    with pytest.raises(SerializationError, match="schema version"):
        decode_batch(data)


# ----- the static segment ---------------------------------------------------


def test_collect_static_objects_covers_initial_state(worlds):
    ctx = GlobalContext(lock_counter_system(2).source_program())
    initial = ctx.load()
    objs = collect_static_objects(ctx, initial)
    assert any(obj is initial[0] for obj in objs)
    assert any(obj is initial[0].mem for obj in objs)
    frame = initial[0].threads[0][0]
    assert any(obj is frame for obj in objs)
    assert len({id(obj) for obj in objs}) == len(objs)


def test_static_members_cross_as_table_indexes(worlds):
    w = worlds[0]
    try:
        install_static_table([w])
        enc, dec = _channel()
        epoch, data = enc.encode([w])
        # Proof the wire carried an index, not the world: resolving
        # without the table fails loudly ...
        clear_static_table()
        with pytest.raises(SerializationError, match="static segment"):
            ChannelDecoder(stateless=False).decode(epoch, data)
        # ... and with it, the receiver's own table member comes back.
        install_static_table([w])
        assert dec.decode(epoch, data)[0] is w
    finally:
        clear_static_table()


def test_static_ref_out_of_range():
    clear_static_table()
    with pytest.raises(SerializationError, match="static segment"):
        serialize._static_ref(3)


# ----- stateless degradation ------------------------------------------------


def test_stateless_env_degrades_to_v1(worlds, monkeypatch):
    monkeypatch.setenv(serialize.ENV_STATELESS, "1")
    enc = ChannelEncoder()
    dec = ChannelDecoder()
    assert enc.stateless and dec.stateless
    _, d1 = enc.encode_worlds(worlds[:5])
    assert dec.decode(0, d1) == worlds[:5]
    # No channel state: the identical batch costs identical bytes, no
    # deltas, no base registrations, and the budget never trips.
    _, d2 = enc.encode_worlds(worlds[:5])
    assert len(d2) == len(d1)
    assert enc.delta_hits == 0
    assert enc.base_registrations == 0
    assert not enc.over_budget()
