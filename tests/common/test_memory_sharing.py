"""Persistent-memory representation: overlay sharing, Zobrist hashing.

The overlay/base split and the incremental XOR hash are pure
representation choices — nothing about them may be observable through
``load``/``domain``/``items``/``__eq__``/``__hash__``. These tests pin
that down against a plain-dict model, including across compaction
(more than :data:`OVERLAY_MAX` consecutive updates).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.memory import OVERLAY_MAX, STATS, Memory, entry_code
from repro.common.values import VInt


def _model_apply(model, op):
    """Apply one op to the plain-dict model; mirrors Memory semantics."""
    kind, addr, val = op
    if kind == "store":
        if addr in model:
            model[addr] = val
    elif kind == "alloc":
        if addr not in model:
            model[addr] = val
    return model


def _memory_apply(mem, op):
    kind, addr, val = op
    if kind == "store":
        out = mem.store(addr, val)
        return mem if out is None else out
    out = mem.alloc(addr, val)
    return mem if out is None else out


_ops = st.lists(
    st.tuples(
        st.sampled_from(["store", "alloc"]),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=-3, max_value=3).map(VInt),
    ),
    max_size=40,
)


class TestModelEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(ops=_ops)
    def test_loads_and_domain_match_dict_model(self, ops):
        mem = Memory({0: VInt(0), 1: VInt(1)})
        model = {0: VInt(0), 1: VInt(1)}
        for op in ops:
            mem = _memory_apply(mem, op)
            model = _model_apply(model, op)
        assert mem.domain() == frozenset(model)
        assert len(mem) == len(model)
        for addr in range(8):
            assert mem.load(addr) == model.get(addr)
        assert dict(mem.items()) == model

    @settings(max_examples=200, deadline=None)
    @given(ops=_ops)
    def test_eq_and_hash_match_fresh_memory(self, ops):
        # History-independence: a memory reached through any op
        # sequence equals (and hashes equal to) one built in one shot
        # from the final contents.
        mem = Memory({0: VInt(0), 1: VInt(1)})
        for op in ops:
            mem = _memory_apply(mem, op)
        fresh = Memory(dict(mem.items()))
        assert mem == fresh
        assert fresh == mem
        assert hash(mem) == hash(fresh)

    @settings(max_examples=100, deadline=None)
    @given(ops=_ops, ops2=_ops)
    def test_inequality_tracks_contents(self, ops, ops2):
        m1 = Memory({0: VInt(0), 1: VInt(1)})
        m2 = Memory({0: VInt(0), 1: VInt(1)})
        for op in ops:
            m1 = _memory_apply(m1, op)
        for op in ops2:
            m2 = _memory_apply(m2, op)
        assert (m1 == m2) == (dict(m1.items()) == dict(m2.items()))


class TestStructuralSharing:
    def test_store_shares_base(self):
        base = Memory({a: VInt(0) for a in range(100)})
        updated = base.store(3, VInt(7))
        # One overlay entry, same base dict object underneath.
        assert updated._base is base._base
        assert updated.load(3) == VInt(7)
        assert base.load(3) == VInt(0)

    def test_value_identical_store_returns_self(self):
        mem = Memory({0: VInt(5)})
        assert mem.store(0, VInt(5)) is mem

    def test_nodes_reused_counter_advances(self):
        mem = Memory({0: VInt(0)})
        before = STATS.nodes_reused
        mem.store(0, VInt(1))
        assert STATS.nodes_reused == before + 1

    def test_compaction_after_overlay_max(self):
        mem = Memory({a: VInt(0) for a in range(OVERLAY_MAX + 4)})
        cur = mem
        before = STATS.compactions
        for a in range(OVERLAY_MAX + 2):
            cur = cur.store(a, VInt(a + 1))
        assert STATS.compactions > before
        for a in range(OVERLAY_MAX + 2):
            assert cur.load(a) == VInt(a + 1)
        # Compaction is invisible: still equal to the one-shot memory.
        fresh = Memory(dict(cur.items()))
        assert cur == fresh and hash(cur) == hash(fresh)

    def test_store_outside_domain_is_none(self):
        assert Memory({0: VInt(0)}).store(99, VInt(1)) is None

    def test_alloc_existing_is_none(self):
        assert Memory({0: VInt(0)}).alloc(0, VInt(1)) is None


class TestZobristHash:
    def test_order_independent(self):
        m1 = Memory({0: VInt(0), 1: VInt(0)})
        m2 = Memory({1: VInt(0), 0: VInt(0)})
        assert hash(m1) == hash(m2)

    def test_store_then_revert_restores_hash(self):
        mem = Memory({0: VInt(0), 1: VInt(1)})
        h0 = hash(mem)
        roundtrip = mem.store(0, VInt(9)).store(0, VInt(0))
        assert hash(roundtrip) == h0
        assert roundtrip == mem

    def test_entry_codes_differ_per_binding(self):
        codes = {
            entry_code(a, VInt(v)) for a in range(16) for v in range(16)
        }
        assert len(codes) == 256

    def test_union_and_alloc_range_hash_consistent(self):
        m1 = Memory({0: VInt(0)})
        m2 = Memory({1: VInt(1)})
        u = m1.union(m2)
        assert u == Memory({0: VInt(0), 1: VInt(1)})
        assert hash(u) == hash(Memory({0: VInt(0), 1: VInt(1)}))
        r = Memory().alloc_range([5, 6], VInt(0))
        assert hash(r) == hash(Memory({5: VInt(0), 6: VInt(0)}))

    def test_restrict_matches_fresh(self):
        mem = Memory({0: VInt(0), 1: VInt(1), 2: VInt(2)})
        sub = mem.restrict({0, 2})
        assert sub == Memory({0: VInt(0), 2: VInt(2)})
        assert hash(sub) == hash(Memory({0: VInt(0), 2: VInt(2)}))
