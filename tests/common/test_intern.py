"""Intern-table mechanics: canonicalization, bounds, counters."""

from repro.common import intern
from repro.common.footprint import Footprint
from repro.common.intern import InternTable


class TestInternTable:
    def test_returns_canonical_representative(self):
        t = InternTable("t1")
        a = (1, 2)
        b = (1, 2)
        assert t.intern(a) is a
        assert t.intern(b) is a

    def test_counts_hits_and_misses(self):
        t = InternTable("t2")
        t.intern((1,))
        t.intern((1,))
        t.intern((2,))
        assert t.misses == 2
        assert t.hits == 1

    def test_overflow_clears_and_stays_correct(self):
        t = InternTable("t3", max_size=4)
        for i in range(10):
            assert t.intern((i,)) == (i,)
        assert len(t) <= 4
        # Post-clear interning re-canonicalizes against new entries.
        x = (99,)
        assert t.intern(x) is x
        assert t.intern((99,)) is x

    def test_registered_in_module_stats(self):
        t = InternTable("t4-stats")
        t.intern((1,))
        assert intern.stats()["t4-stats"]["misses"] == 1
        totals = intern.totals()
        assert totals.misses >= 1
        assert totals.peak_size >= 1

    def test_counts_capacity_clears_and_peak(self):
        t = InternTable("t5-clears", max_size=4)
        for i in range(10):
            t.intern((i,))
        assert t.clears >= 1
        assert t.peak_size == 4
        stats = intern.stats()["t5-clears"]
        assert stats["clears"] == t.clears
        assert stats["peak_size"] == 4
        # Explicit clears empty the table without counting as a
        # capacity eviction, and never lower the recorded peak.
        before = t.clears
        t.clear()
        assert len(t) == 0
        assert t.clears == before
        assert t.peak_size == 4

    def test_totals_sums_all_tables(self):
        t = InternTable("t6-totals", max_size=2)
        for i in range(5):
            t.intern((i,))
        totals = intern.totals()
        assert totals.clears >= t.clears
        assert totals.peak_size >= t.peak_size


class TestFootprintInterning:
    def test_equal_footprints_are_identical(self):
        a = Footprint(rs={1, 2}, ws={3})
        b = Footprint(rs={2, 1}, ws={3})
        assert a is b

    def test_interning_preserves_structure(self):
        fp = Footprint(rs=[5], ws=[6, 7])
        assert fp.rs == frozenset({5})
        assert fp.ws == frozenset({6, 7})
        assert fp == Footprint(rs={5}, ws={6, 7})
        assert hash(fp) == hash(Footprint(rs={5}, ws={6, 7}))
