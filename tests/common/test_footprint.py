"""Unit and property tests for footprints and conflicts (Sec. 5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.footprint import (
    EMP,
    Footprint,
    conflict,
    conflict_atomic,
    union_all,
)

addr_sets = st.frozensets(
    st.integers(min_value=0, max_value=20), max_size=5
)
footprints = st.builds(Footprint, addr_sets, addr_sets)


class TestBasics:
    def test_emp_is_empty(self):
        assert EMP.is_empty()
        assert EMP.locs() == frozenset()

    def test_locs_union_of_rs_ws(self):
        fp = Footprint({1, 2}, {2, 3})
        assert fp.locs() == {1, 2, 3}

    def test_equality_and_hash(self):
        assert Footprint({1}, {2}) == Footprint([1], [2])
        assert hash(Footprint({1}, {2})) == hash(Footprint({1}, {2}))

    def test_immutable(self):
        with pytest.raises(AttributeError):
            EMP.rs = frozenset({1})

    def test_union(self):
        a = Footprint({1}, {2})
        b = Footprint({3}, {4})
        assert a.union(b) == Footprint({1, 3}, {2, 4})

    def test_subset(self):
        assert Footprint({1}, {2}).subset_of(Footprint({1, 3}, {2}))
        assert not Footprint({1}, {2}).subset_of(Footprint({1}, set()))

    def test_restricted(self):
        fp = Footprint({1, 2}, {3, 4})
        assert fp.restricted({2, 3}) == Footprint({2}, {3})

    def test_within(self):
        fp = Footprint({1}, {2})
        assert fp.within({1, 2, 3})
        assert not fp.within({1})

    def test_union_all(self):
        fps = [Footprint({1}, set()), Footprint(set(), {2})]
        assert union_all(fps) == Footprint({1}, {2})
        assert union_all([]) == EMP


class TestConflict:
    def test_write_write_conflicts(self):
        assert conflict(Footprint((), {1}), Footprint((), {1}))

    def test_read_write_conflicts(self):
        assert conflict(Footprint({1}, ()), Footprint((), {1}))
        assert conflict(Footprint((), {1}), Footprint({1}, ()))

    def test_read_read_no_conflict(self):
        assert not conflict(Footprint({1}, ()), Footprint({1}, ()))

    def test_disjoint_no_conflict(self):
        assert not conflict(Footprint({1}, {2}), Footprint({3}, {4}))

    def test_emp_never_conflicts(self):
        assert not conflict(EMP, Footprint({1}, {1}))

    @given(footprints, footprints)
    def test_symmetric(self, a, b):
        assert conflict(a, b) == conflict(b, a)

    @given(footprints)
    def test_self_conflict_iff_writes(self, fp):
        assert conflict(fp, fp) == bool(fp.ws)


class TestAtomicConflict:
    def test_both_atomic_not_a_race(self):
        a = Footprint((), {1})
        assert not conflict_atomic(a, 1, a, 1)

    def test_one_atomic_is_a_race(self):
        a = Footprint((), {1})
        assert conflict_atomic(a, 1, a, 0)
        assert conflict_atomic(a, 0, a, 1)

    def test_neither_atomic_is_a_race(self):
        a = Footprint((), {1})
        assert conflict_atomic(a, 0, a, 0)

    def test_no_conflict_no_race(self):
        assert not conflict_atomic(
            Footprint({1}, ()), 0, Footprint({1}, ()), 0
        )

    @given(footprints, footprints)
    def test_implies_plain_conflict(self, a, b):
        if conflict_atomic(a, 0, b, 0):
            assert conflict(a, b)


class TestAlgebraicProperties:
    @given(footprints, footprints)
    def test_union_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(footprints, footprints, footprints)
    def test_union_associative(self, a, b, c):
        assert a.union(b).union(c) == a.union(b.union(c))

    @given(footprints)
    def test_union_identity(self, a):
        assert a.union(EMP) == a

    @given(footprints, footprints)
    def test_union_upper_bound(self, a, b):
        u = a.union(b)
        assert a.subset_of(u) and b.subset_of(u)

    @given(footprints, footprints, footprints)
    def test_conflict_monotone_in_union(self, a, b, c):
        if conflict(a, b):
            assert conflict(a.union(c), b)
