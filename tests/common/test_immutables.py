"""Tests for ImmutableMap and the AST node base class."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.astbase import Node
from repro.common.immutables import EMPTY_MAP, ImmutableMap

dicts = st.dictionaries(
    st.text(min_size=1, max_size=3), st.integers(), max_size=5
)


class TestImmutableMap:
    def test_get_and_contains(self):
        m = ImmutableMap({"a": 1})
        assert m["a"] == 1
        assert "a" in m
        assert m.get("b") is None
        assert m.get("b", 7) == 7

    def test_set_returns_new(self):
        m = ImmutableMap({"a": 1})
        m2 = m.set("a", 2)
        assert m["a"] == 1 and m2["a"] == 2

    def test_update(self):
        m = ImmutableMap({"a": 1}).update({"b": 2})
        assert m["a"] == 1 and m["b"] == 2

    def test_remove(self):
        m = ImmutableMap({"a": 1, "b": 2}).remove("a")
        assert "a" not in m and "b" in m
        assert ImmutableMap().remove("zz") == EMPTY_MAP

    def test_immutability(self):
        with pytest.raises(AttributeError):
            EMPTY_MAP._data = {}

    def test_kwargs_constructor(self):
        assert ImmutableMap(a=1)["a"] == 1

    @given(dicts)
    def test_equality_and_hash_by_content(self, d):
        assert ImmutableMap(d) == ImmutableMap(dict(d))
        assert hash(ImmutableMap(d)) == hash(ImmutableMap(dict(d)))

    @given(dicts, st.text(min_size=1, max_size=3), st.integers())
    def test_set_then_get(self, d, k, v):
        assert ImmutableMap(d).set(k, v)[k] == v

    def test_len_iter_items(self):
        m = ImmutableMap({"a": 1, "b": 2})
        assert len(m) == 2
        assert sorted(m) == ["a", "b"]
        assert dict(m.items()) == {"a": 1, "b": 2}
        assert sorted(m.keys()) == ["a", "b"]
        assert sorted(m.values()) == [1, 2]


class _Point(Node):
    _fields = ("x", "y")


class _Pair(Node):
    _fields = ("left", "right")


class TestNode:
    def test_positional_and_keyword_construction(self):
        assert _Point(1, 2) == _Point(x=1, y=2)
        assert _Point(1, y=2) == _Point(1, 2)

    def test_missing_fields_default_none(self):
        assert _Point(1).y is None

    def test_too_many_args(self):
        with pytest.raises(TypeError):
            _Point(1, 2, 3)

    def test_unknown_kwarg(self):
        with pytest.raises(TypeError):
            _Point(z=1)

    def test_duplicate_field(self):
        with pytest.raises(TypeError):
            _Point(1, x=2)

    def test_lists_become_tuples(self):
        assert _Point([1, 2], 0).x == (1, 2)

    def test_equality_structural(self):
        assert _Pair(_Point(1, 2), 3) == _Pair(_Point(1, 2), 3)
        assert _Pair(_Point(1, 2), 3) != _Pair(_Point(1, 9), 3)

    def test_different_types_unequal(self):
        assert _Point(1, 2) != _Pair(1, 2)

    def test_hashable(self):
        assert hash(_Point(1, 2)) == hash(_Point(1, 2))

    def test_immutable(self):
        with pytest.raises(AttributeError):
            _Point(1, 2).x = 5

    def test_replace(self):
        assert _Point(1, 2).replace(y=9) == _Point(1, 9)
        with pytest.raises(TypeError):
            _Point(1, 2).replace(z=1)

    def test_repr_mentions_fields(self):
        assert "x=1" in repr(_Point(1, 2))
