"""The cross-process world serialization layer (PR 5).

Every runtime-state class blocks ``__setattr__``, so plain pickling
fails by design; :mod:`repro.common.serialize` must rebuild each class
through its blessed constructor, preserve equality *and* hash (shard
ownership is ``hash(world) % jobs``), and reject batches from a
different schema version or string-hash seed.
"""

import pickle

import pytest

from repro.common import serialize
from repro.common.serialize import (
    SerializationError,
    decode_batch,
    encode_batch,
    roundtrip,
)
from repro.framework.build import lock_counter_system
from repro.semantics import GlobalContext, PreemptiveSemantics, explore

from tests.helpers import SUITE, cimp_program, minic_program

_CIMP = "t1(){ [C] := 1; x := [C]; } t2(){ <y := [C]; [C] := y + 2;> }"


def _worlds(program, max_states=2000):
    graph = explore(
        GlobalContext(program), PreemptiveSemantics(), max_states
    )
    return graph.states


@pytest.fixture(
    params=["cimp", "minic", "lock-counter"], scope="module"
)
def worlds(request):
    if request.param == "cimp":
        return _worlds(cimp_program(_CIMP, ["t1", "t2"]))
    if request.param == "minic":
        return _worlds(
            minic_program([SUITE["calls"]], ["main"])[0]
        )
    return _worlds(lock_counter_system(2).source_program())


def test_plain_pickle_is_blocked_by_immutability(worlds):
    # The guard this module exists to work around: default slot-state
    # restore calls the blocked ``__setattr__``. If this ever starts
    # passing, the copyreg layer may be obsolete.
    serialize._registered()
    world = worlds[0]
    frame = world.threads[world.cur][0]
    cls = type(frame.core)
    with pytest.raises(Exception):
        obj = cls.__new__(cls)
        obj.some_attr = 1


def test_world_roundtrip_preserves_equality_and_hash(worlds):
    for world in worlds:
        back = roundtrip(world)
        assert back == world
        assert hash(back) == hash(world)
        assert back.cur == world.cur and back.bits == world.bits
        assert back.mem == world.mem


def test_batch_roundtrip_whole_graph(worlds):
    back = decode_batch(encode_batch(list(worlds)))
    assert back == list(worlds)
    assert [hash(w) for w in back] == [hash(w) for w in worlds]


def test_decoded_worlds_reintern(worlds):
    # Decoding goes through World.make, so a world already known to
    # this process comes back pointer-equal (the intern fast path the
    # coordinator's merge relies on).
    back = roundtrip(worlds[0])
    assert back is worlds[0]


def test_batch_shares_hash_consed_state(worlds):
    # One batch shares one pickle memo: n sibling worlds cost far less
    # than n independent dumps.
    if len(worlds) < 10:
        pytest.skip("workload too small")
    batch = encode_batch(list(worlds[:50]))
    singles = sum(len(encode_batch(w)) for w in worlds[:50])
    assert len(batch) < singles / 2


def test_version_mismatch_rejected(worlds):
    data = pickle.dumps(
        (serialize.SERIAL_SCHEMA_VERSION + 1, serialize._SEED_PROBE,
         [worlds[0]]),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    with pytest.raises(SerializationError, match="schema version"):
        decode_batch(data)


def test_seed_probe_mismatch_rejected(worlds):
    data = pickle.dumps(
        (serialize.SERIAL_SCHEMA_VERSION, serialize._SEED_PROBE ^ 1,
         [worlds[0]]),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    with pytest.raises(SerializationError, match="hash-seed"):
        decode_batch(data)


def test_garbage_rejected():
    with pytest.raises(SerializationError, match="decode"):
        decode_batch(b"not a pickle")


def test_unpicklable_payload_raises_serialization_error():
    with pytest.raises(SerializationError, match="encode"):
        encode_batch(lambda: None)


def test_scalar_payloads_roundtrip():
    from repro.common.footprint import Footprint
    from repro.common.values import VInt, VUndef
    from repro.lang.messages import TAU, EventMsg

    fp = Footprint(rs=(1, 2), ws=(3,))
    payload = {
        "fp": fp,
        "msg": EventMsg("print", VInt(7)),
        "tau": TAU,
        "undef": VUndef,
    }
    back = roundtrip(payload)
    assert back["fp"] == fp and back["fp"] is fp  # interned
    assert back["msg"] == EventMsg("print", VInt(7))
    assert back["tau"] is TAU
    assert back["undef"] is VUndef
