"""Tests for thread spawn — the paper's future-work extension, carried
through CImp, MiniC, every compiler pass and the x86 machines."""

import pytest

from repro.common.errors import TypeCheckError
from repro.lang.module import ModuleDecl, Program
from repro.langs.minic import compile_unit, link_units
from repro.semantics import drf, equivalent, npdrf
from repro.simulation.validate import validate_compilation
from repro.compiler import compile_minic

from tests.helpers import (
    behaviours_of,
    cimp_program,
    done_traces,
    np_behaviours_of,
)


class TestCImpSpawn:
    def test_spawned_thread_runs(self):
        prog = cimp_program(
            "main(){ spawn worker; print(1); }"
            "worker(){ print(2); }",
            ["main"],
        )
        assert done_traces(behaviours_of(prog)) == {(1, 2), (2, 1)}

    def test_spawn_gets_fresh_freelist(self):
        # Both threads run functions with identical local behaviour;
        # the state exploration terminates (distinct address spaces,
        # no clash aborts).
        prog = cimp_program(
            "main(){ spawn worker; x := 1; print(x); }"
            "worker(){ y := 2; print(y); }",
            ["main"],
        )
        behs = behaviours_of(prog)
        assert all(b.end != "abort" for b in behs)

    def test_spawn_unresolved_aborts(self):
        prog = cimp_program("main(){ spawn nothere; }", ["main"])
        behs = behaviours_of(prog)
        assert {b.end for b in behs} == {"abort"}

    def test_nested_spawns(self):
        prog = cimp_program(
            "main(){ spawn mid; print(1); }"
            "mid(){ spawn leaf; print(2); }"
            "leaf(){ print(3); }",
            ["main"],
        )
        traces = done_traces(behaviours_of(prog))
        # 1 before 2 is not forced; 2 before 3 is not forced either —
        # but all three prints always happen.
        assert all(sorted(t) == [1, 2, 3] for t in traces)
        assert len(traces) > 1

    def test_races_with_spawned_thread_detected(self):
        prog = cimp_program(
            "main(){ spawn worker; [C] := 1; }"
            "worker(){ [C] := 2; }",
            ["main"],
        )
        assert not drf(prog)
        assert not npdrf(prog)

    def test_spawn_preserves_equivalence_for_drf(self):
        prog = cimp_program(
            "main(){ spawn worker; <x := [C]; [C] := x + 1;> print(1); }"
            "worker(){ <y := [C]; [C] := y + 1;> print(2); }",
            ["main"],
        )
        assert bool(
            equivalent(behaviours_of(prog), np_behaviours_of(prog))
        )


SPAWN_SRC = """
int flag = 0;
void worker() {
  print(2);
  flag = 1;
}
void main() {
  spawn worker;
  print(1);
}
"""


class TestMiniCSpawn:
    def test_typecheck_rejects_unknown(self):
        with pytest.raises(TypeCheckError):
            compile_unit("void main() { spawn ghost; }")

    def test_typecheck_rejects_arity(self):
        with pytest.raises(TypeCheckError):
            compile_unit(
                "void w(int x) { print(x); } "
                "void main() { spawn w; }"
            )

    def test_typecheck_rejects_nonvoid(self):
        with pytest.raises(TypeCheckError):
            compile_unit(
                "int w() { return 1; } void main() { spawn w; }"
            )

    def test_extern_spawn_target_allowed(self):
        unit = compile_unit(
            "extern void w(); void main() { spawn w; }"
        )
        assert "main" in unit.functions

    def test_source_semantics(self):
        mods, genvs, _ = link_units([compile_unit(SPAWN_SRC)])
        prog = Program([ModuleDecl(
            __import__("repro.langs.minic.semantics",
                       fromlist=["MINIC"]).MINIC,
            genvs[0], mods[0])], ["main"])
        assert done_traces(behaviours_of(prog)) == {(1, 2), (2, 1)}

    def test_every_stage_preserves_spawn_behaviour(self):
        mods, genvs, _ = link_units([compile_unit(SPAWN_SRC)])
        result = compile_minic(mods[0], optimize=True)
        ref = None
        for stage in result.stages:
            prog = Program(
                [ModuleDecl(stage.lang, genvs[0], stage.module)],
                ["main"],
            )
            behs = behaviours_of(prog, max_states=500000)
            if ref is None:
                ref = behs
            assert bool(equivalent(ref, behs)), stage.name

    def test_translation_validation_with_spawn(self):
        mods, genvs, _ = link_units([compile_unit(SPAWN_SRC)])
        result = compile_minic(mods[0])
        mem = genvs[0].memory()
        vals = validate_compilation(result, mem, mem.domain())
        assert all(v.ok for v in vals), [
            (v.pass_name, v.report.failures[:2])
            for v in vals if not v.ok
        ]

    def test_cross_module_spawn(self):
        m1 = "extern void w(); void main() { spawn w; print(1); }"
        m2 = "void w() { print(2); }"
        mods, genvs, _ = link_units(
            [compile_unit(m1), compile_unit(m2)]
        )
        results = [compile_minic(m) for m in mods]
        prog = Program(
            [
                ModuleDecl(r.target.lang, ge, r.target.module)
                for r, ge in zip(results, genvs)
            ],
            ["main"],
        )
        assert done_traces(behaviours_of(prog, max_states=500000)) \
            == {(1, 2), (2, 1)}
