"""End-to-end integration: the suite compiled, validated, and checked
for whole-program semantics preservation; plus fault-injection tests
showing the validator rejects broken compilers."""

import pytest

from repro.lang.module import ModuleDecl, Program
from repro.langs.ir import rtl
from repro.langs.minic import compile_unit, link_units
from repro.semantics import equivalent
from repro.simulation.validate import validate_compilation, validate_pair
from repro.compiler import compile_minic
from repro.compiler.pipeline import Stage
from repro.langs.ir import RTL

from tests.helpers import (
    EXAMPLE_2_2,
    SUITE,
    behaviours_of,
    done_traces,
)
from repro.framework import ClientSystem, check_gcorrect


@pytest.mark.parametrize("name", sorted(SUITE))
def test_suite_translation_validation(name):
    mods, genvs, _ = link_units([compile_unit(SUITE[name])])
    result = compile_minic(mods[0])
    mem = genvs[0].memory()
    validations = validate_compilation(result, mem, mem.domain())
    bad = [
        (v.pass_name, v.report.failures[:2])
        for v in validations
        if not v.ok
    ]
    assert not bad, bad


class TestExample22:
    """The lock-synchronized two-thread program of example (2.2)."""

    def _system(self):
        return ClientSystem(
            [EXAMPLE_2_2], ["thread1", "thread2"], use_lock=True
        )

    def test_source_behaviours(self):
        system = self._system()
        behs = behaviours_of(
            system.source_program(), max_states=800000
        )
        assert done_traces(behs) == {(2, 3), (3, 2)}

    def test_gcorrect(self):
        result = check_gcorrect(self._system(), max_states=2000000)
        assert result.ok, (result.detail, result.premises)


class _BreakingPass:
    """Fault injections: corrupt the RTL of a compiled module."""

    @staticmethod
    def swap_const(module):
        """Change a constant — wrong values flow to events."""
        functions = {}
        for name, func in module.functions.items():
            code = dict(func.code)
            for pc, instr in func.code.items():
                if isinstance(instr, rtl.Iconst) and instr.n != 0:
                    code[pc] = instr.replace(n=instr.n + 1)
                    break
            functions[name] = rtl.RTLFunction(
                func.name, func.params, func.stacksize, func.entry,
                code,
            )
        return module.with_functions(functions)

    @staticmethod
    def widen_footprint(module, extra_global):
        """Insert a spurious shared-memory store."""
        functions = {}
        for name, func in module.functions.items():
            code = dict(func.code)
            fresh = max(code) + 1
            reg_addr = 900
            reg_val = 901
            # entry: addrglobal; store; then old entry
            code[fresh] = rtl.Iaddrglobal(
                extra_global, reg_addr, fresh + 1
            )
            code[fresh + 1] = rtl.Iconst(77, reg_val, fresh + 2)
            code[fresh + 2] = rtl.Istore(reg_addr, reg_val, func.entry)
            functions[name] = rtl.RTLFunction(
                func.name, func.params, func.stacksize, fresh, code
            )
        return module.with_functions(functions)


class TestFaultInjection:
    SRC = "int g = 5; void main() { g = g + 1; print(g); }"

    def _stages(self):
        mods, genvs, _ = link_units([compile_unit(self.SRC)])
        result = compile_minic(mods[0])
        mem = genvs[0].memory()
        return result, mem

    def test_wrong_constant_rejected(self):
        result, mem = self._stages()
        good = result.stage("Renumber")
        broken = Stage(
            "Renumber", RTL, _BreakingPass.swap_const(good.module)
        )
        report = validate_pair(
            result.stage("Tailcall"), broken,
            [("main", [])], mem, mem.domain(),
        )
        assert not report.ok

    def test_spurious_store_rejected(self):
        result, mem = self._stages()
        good = result.stage("Renumber")
        broken = Stage(
            "Renumber",
            RTL,
            _BreakingPass.widen_footprint(good.module, "g"),
        )
        report = validate_pair(
            result.stage("Tailcall"), broken,
            [("main", [])], mem, mem.domain(),
        )
        assert not report.ok
        assert any(
            "FPmatch" in f or "LG" in f for f in report.failures
        )

    def test_sanity_unbroken_pass_accepted(self):
        result, mem = self._stages()
        report = validate_pair(
            result.stage("Tailcall"), result.stage("Renumber"),
            [("main", [])], mem, mem.domain(),
        )
        assert report.ok
