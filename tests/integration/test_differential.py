"""Differential testing with hypothesis-generated programs.

* Random safe MiniC programs are compiled through the *optimizing*
  pipeline and their behaviours compared source-vs-x86 (the GCorrect
  conclusion, on arbitrary programs rather than the hand-picked suite).
* Random two-thread CImp programs check the framework lemmas: DRF ⇔
  NPDRF agreement always, and preemptive ≈ non-preemptive whenever the
  program is DRF (Lem. 9).

Generators produce only *safe* programs (locals initialized, divisions
by non-zero constants, loops bounded) because the paper's correctness
statements assume ``Safe(P)``.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lang.module import ModuleDecl, Program
from repro.langs.minic import compile_unit, link_units
from repro.semantics import drf, equivalent, npdrf
from repro.compiler import compile_minic

from tests.helpers import (
    behaviours_of,
    cimp_program,
    np_behaviours_of,
)

# ----- MiniC generator --------------------------------------------------------

_LOCALS = ("a", "b", "c")


def _exprs(depth):
    leaf = st.one_of(
        st.integers(min_value=-5, max_value=5).map(str),
        st.sampled_from(_LOCALS + ("g",)),
    )
    if depth == 0:
        return leaf
    sub = _exprs(depth - 1)
    binop = st.tuples(
        sub, st.sampled_from(["+", "-", "*", "<", "<=", "==", "!="]),
        sub,
    ).map(lambda t: "({} {} {})".format(t[0], t[1], t[2]))
    safe_div = st.tuples(
        sub, st.sampled_from(["/", "%"]),
        st.integers(min_value=1, max_value=4),
    ).map(lambda t: "({} {} {})".format(t[0], t[1], t[2]))
    unop = sub.map(lambda e: "(-{})".format(e))
    return st.one_of(leaf, binop, safe_div, unop)


def _stmts(depth):
    expr = _exprs(2)
    assign = st.tuples(
        st.sampled_from(_LOCALS + ("g",)), expr
    ).map(lambda t: "{} = {};".format(t[0], t[1]))
    printing = expr.map(lambda e: "print({});".format(e))
    helper_call = st.tuples(
        st.sampled_from(_LOCALS), expr
    ).map(lambda t: "{} = helper({});".format(t[0], t[1]))
    base = st.one_of(assign, printing, helper_call)
    if depth == 0:
        return base
    sub = st.lists(_stmts(depth - 1), min_size=1, max_size=3).map(
        " ".join
    )
    conditional = st.tuples(expr, sub, sub).map(
        lambda t: "if ({}) {{ {} }} else {{ {} }}".format(*t)
    )
    # Bounded loop: a dedicated counter no body statement touches.
    loop = st.tuples(
        st.integers(min_value=1, max_value=3), sub
    ).map(
        lambda t: (
            "i = {}; while (i > 0) {{ i = i - 1; {} }}".format(*t)
        )
    )
    return st.one_of(base, conditional, loop)


@st.composite
def minic_programs(draw):
    body = " ".join(
        draw(st.lists(_stmts(1), min_size=1, max_size=5))
    )
    return (
        "int g = 1;\n"
        "int helper(int a) { return a * 2 - 1; }\n"
        "void main() {\n"
        "  int a = 1; int b = 2; int c = 3; int i = 0;\n"
        "  " + body + "\n"
        "}\n"
    )


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(minic_programs())
def test_differential_compilation(source):
    mods, genvs, _ = link_units([compile_unit(source)])
    result = compile_minic(mods[0], optimize=True)

    def behaviours(stage):
        prog = Program(
            [ModuleDecl(stage.lang, genvs[0], stage.module)], ["main"]
        )
        # The generator's worst case is 5 top-level loops of 3
        # iterations with 3 prints each (45 events); a bound below
        # that truncates behaviours to ``cut`` and makes
        # ``equivalent`` inconclusive.
        return behaviours_of(prog, max_states=300000, max_events=48)

    src = behaviours(result.source)
    tgt = behaviours(result.target)
    assert bool(equivalent(src, tgt)), (
        source,
        sorted(map(repr, src)),
        sorted(map(repr, tgt)),
    )


# ----- CImp two-thread generator ------------------------------------------------


def _cimp_stmt():
    plain = st.sampled_from([
        "[C] := x + 1;",
        "x := [C];",
        "x := x + 1;",
        "print(x);",
        "skip;",
    ])
    atomic = st.sampled_from([
        "<y := [C]; [C] := y + 1;>",
        "<[C] := 5;>",
        "<y := [C];>",
    ])
    return st.one_of(plain, atomic)


@st.composite
def cimp_threads(draw):
    def thread():
        stmts = draw(st.lists(_cimp_stmt(), min_size=1, max_size=4))
        return "x := 0; " + " ".join(stmts)

    return (
        "t1(){{ {} }} t2(){{ {} }}".format(thread(), thread())
    )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(cimp_threads())
def test_differential_drf_npdrf_agreement(source):
    prog = cimp_program(source, ["t1", "t2"])
    assert drf(prog, max_states=300000) == npdrf(
        prog, max_states=300000
    ), source


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(cimp_threads())
def test_differential_lemma9(source):
    prog = cimp_program(source, ["t1", "t2"])
    if not drf(prog, max_states=300000):
        return  # premise fails: vacuous
    pre = behaviours_of(prog, max_states=300000, max_events=16)
    non = np_behaviours_of(prog, max_states=300000, max_events=16)
    assert bool(equivalent(pre, non)), source
