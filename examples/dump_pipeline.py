#!/usr/bin/env python3
"""Dump every IR of the pipeline for the Fig. 10c client — watch the
lock-counter's ``inc`` travel from Clight down to x86.

Run:  python examples/dump_pipeline.py
"""

from repro.langs.minic import compile_unit, link_units
from repro.compiler import compile_minic
from repro.compiler.pprint import dump_stage
from repro.tso import DEFAULT_LOCK_ADDR

CLIENT = """
extern void lock();
extern void unlock();
int x = 0;
void inc() {
  int tmp;
  lock();
  tmp = x;
  x ++;
  unlock();
  print(tmp);
}
"""


def main():
    modules, _genvs, _ = link_units(
        [compile_unit(CLIENT)], extra_symbols={"L": DEFAULT_LOCK_ADDR}
    )
    result = compile_minic(
        modules[0].with_forbidden({DEFAULT_LOCK_ADDR}), optimize=True
    )
    for stage in result.stages:
        print(dump_stage(stage))
        print()


if __name__ == "__main__":
    main()
