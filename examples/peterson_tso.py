#!/usr/bin/env python3
"""Peterson's algorithm on x86-SC vs x86-TSO.

The classic demonstration of why relaxed memory models matter — and a
validation of this repository's TSO machine against the standard
x86-TSO model:

* under SC, Peterson's entry protocol guarantees mutual exclusion:
  the critical-section counter is always observed 0 then 1;
* under TSO *without a fence*, the ``flag[i] := 1`` store can still be
  in the store buffer when the other thread reads it — both threads
  enter, and both can print 0;
* one ``mfence`` after the entry-protocol stores restores correctness.

Run:  python examples/peterson_tso.py
"""

import sys
import os

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir)
)

from repro.langs.x86 import X86SC, X86TSO
from tests.langs.test_peterson import peterson_program
from tests.helpers import behaviours_of, done_traces


def show(title, lang, fenced, max_states):
    prog = peterson_program(lang, fenced=fenced)
    traces = done_traces(behaviours_of(prog, max_states=max_states))
    verdict = (
        "mutual exclusion holds"
        if (0, 0) not in traces
        else "VIOLATED — both threads read the counter as 0"
    )
    print("{:38s} traces={}  -> {}".format(
        title, sorted(traces), verdict))


def main():
    show("SC, no fence", X86SC, False, 800000)
    show("SC, with mfence", X86SC, True, 800000)
    show("TSO, no fence", X86TSO, False, 3000000)
    show("TSO, with mfence", X86TSO, True, 3000000)


if __name__ == "__main__":
    main()
