#!/usr/bin/env python3
"""Translation validation in action: the per-pass obligation table
(the Fig. 13 analogue) and a fault-injection demonstration — a
"miscompiled" module is rejected by the footprint-preserving
simulation checker.

Run:  python examples/translation_validation.py
"""

from repro.framework import (
    format_table,
    lock_counter_system,
    per_pass_table,
)
from repro.langs.ir import RTL, rtl
from repro.langs.minic import compile_unit, link_units
from repro.compiler import compile_minic
from repro.compiler.pipeline import Stage
from repro.simulation.validate import validate_pair


def fault_injection_demo():
    src = "int g = 5; void main() { g = g + 1; print(g); }"
    mods, genvs, _ = link_units([compile_unit(src)])
    result = compile_minic(mods[0])
    mem = genvs[0].memory()

    good = result.stage("Renumber")

    # Sabotage: flip a constant in the RTL.
    functions = {}
    for name, func in good.module.functions.items():
        code = dict(func.code)
        for pc, instr in func.code.items():
            if isinstance(instr, rtl.Iconst) and instr.n != 0:
                code[pc] = instr.replace(n=instr.n + 1)
                break
        functions[name] = rtl.RTLFunction(
            func.name, func.params, func.stacksize, func.entry, code
        )
    broken = Stage("Renumber", RTL, good.module.with_functions(functions))

    print("validating the sabotaged Renumber output:")
    report = validate_pair(
        result.stage("Tailcall"), broken, [("main", [])],
        mem, mem.domain(),
    )
    print("  ok:", report.ok)
    for failure in report.failures[:3]:
        print("  failure:", failure)


def main():
    print("per-pass validation effort for the lock-counter system")
    print("(the Fig. 13 analogue: baseline = message matching, the")
    print(" sequential validator's job; FP = the added footprint-")
    print(" preserving obligations)\n")
    system = lock_counter_system(2)
    print(format_table(per_pass_table(system)))
    print()
    fault_injection_demo()


if __name__ == "__main__":
    main()
