// A deliberately racy two-thread program, for the witness workflow:
//
//   python -m repro drf     examples/racy.c --threads t1,t2 --witness-out w.json
//   python -m repro replay  examples/racy.c --threads t1,t2 --witness w.json
//   python -m repro inspect w.json
//
// Both threads write the shared global without synchronization, so
// `drf` finds a conflicting prediction pair and records the schedule
// that reaches it. Linking `--lock` and wrapping the writes would make
// it race-free (compare examples/quickstart.c).
int x = 0;
void t1() { x = 1; }
void t2() { x = 2; }
