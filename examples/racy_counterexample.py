#!/usr/bin/env python3
"""Why DRF is the load-bearing premise.

For a *racy* program:

1. the preemptive and non-preemptive semantics genuinely differ
   (Lem. 9's premise is necessary);
2. the GCorrect premise check fails loudly instead of certifying a
   compilation whose correctness argument does not apply.

Run:  python examples/racy_counterexample.py
"""

from repro.framework import ClientSystem, check_gcorrect
from repro.semantics import (
    GlobalContext,
    NonPreemptiveSemantics,
    PreemptiveSemantics,
    drf,
    equivalent,
    program_behaviours,
)

from repro.lang.module import GlobalEnv, ModuleDecl, Program
from repro.langs.cimp import CIMP, parse_module
from repro.common.values import VInt


def behaviours(prog, semantics):
    return program_behaviours(
        GlobalContext(prog), semantics, max_states=400000
    )


def main():
    # A racy CImp program: t1 writes 1 then 2; t2 reads once.
    module = parse_module(
        "t1(){ [C] := 1; [C] := 2; }"
        "t2(){ x := [C]; print(x); }",
        symbols={"C": 100},
    )
    ge = GlobalEnv({"C": 100}, {100: VInt(0)})
    prog = Program([ModuleDecl(CIMP, ge, module)], ["t1", "t2"])

    print("DRF:", drf(prog))
    pre = behaviours(prog, PreemptiveSemantics())
    non = behaviours(prog, NonPreemptiveSemantics())
    print("\npreemptive behaviours:")
    for b in sorted(pre, key=repr):
        print("   ", b)
    print("non-preemptive behaviours:")
    for b in sorted(non, key=repr):
        print("   ", b)
    verdict = equivalent(pre, non)
    print("\nLem. 9 equivalence without the DRF premise:",
          bool(verdict))
    print("counterexamples:", list(verdict.counterexamples))

    # The framework refuses to certify a racy MiniC program.
    racy = ClientSystem(
        ["int x = 0; void t1() { x = 1; } void t2() { x = 2; }"],
        ["t1", "t2"],
    )
    result = check_gcorrect(racy)
    print("\nGCorrect on a racy client:", result.ok,
          "--", result.detail)


if __name__ == "__main__":
    main()
