#!/usr/bin/env python3
"""Quickstart: compile a concurrent MiniC program with CASCompCert and
check, at every one of the 12 passes, that behaviour is preserved.

Run:  python examples/quickstart.py
"""

from repro.lang.module import ModuleDecl, Program
from repro.langs.minic import compile_unit, link_units
from repro.semantics import (
    GlobalContext,
    PreemptiveSemantics,
    equivalent,
    program_behaviours,
)
from repro.compiler import compile_minic

SOURCE = """
int g = 5;
int add(int a, int b) { return a + b; }
void main() {
  int x = 2;
  int y;
  y = add(x, g);
  print(y);
  g = y * 2;
  print(g);
  int i = 0;
  while (i < 3) { print(i); i = i + 1; }
}
"""


def main():
    # 1. Front end: lex, parse, typecheck, link.
    units = [compile_unit(SOURCE)]
    modules, genvs, _symbols = link_units(units)

    # 2. The pipeline: every stage of Fig. 11 is kept.
    result = compile_minic(modules[0])
    print("pipeline stages:")
    for stage in result.stages:
        print("  {:14s} ({})".format(stage.name, stage.lang.name))

    # 3. Execute the program at every level and compare behaviours.
    reference = None
    for stage in result.stages:
        program = Program(
            [ModuleDecl(stage.lang, genvs[0], stage.module)], ["main"]
        )
        behs = program_behaviours(
            GlobalContext(program), PreemptiveSemantics(),
            max_states=500000,
        )
        if reference is None:
            reference = behs
            print("\nsource behaviours:")
            for b in sorted(behs, key=repr):
                print("  ", b)
            print()
        verdict = "ok" if bool(equivalent(reference, behs)) else "FAIL"
        print("  {:14s} -> behaviours preserved: {}".format(
            stage.name, verdict))


if __name__ == "__main__":
    main()
