#!/usr/bin/env python3
"""Separate compilation of example (2.1) from the paper: two modules,
compiled independently, calling across the module boundary.

Module 1 defines ``f`` which calls the external ``g``; module 2
implements ``g``, which writes through a pointer into module 1's
global. The modules are compiled *independently* — each through the
full 12-pass pipeline — and then linked at the x86 level. The paper's
point: correctness must hold for the linked whole, not just each
module alone.

Run:  python examples/separate_compilation.py
"""

from repro.lang.module import ModuleDecl, Program
from repro.langs.minic import compile_unit, link_units
from repro.semantics import (
    GlobalContext,
    PreemptiveSemantics,
    equivalent,
    program_behaviours,
)
from repro.compiler import compile_minic

MODULE_1 = """
extern void g(int*);
int gb = 0;
int f() {
  int a = 0;
  g(&gb);
  return a + gb;
}
void main() { int r; r = f(); print(r); }
"""

MODULE_2 = """
extern int gb;
void g(int *x) { *x = 3; }
"""


def main():
    units = [compile_unit(MODULE_1), compile_unit(MODULE_2)]
    modules, genvs, symbols = link_units(units)
    print("linked globals:", symbols)

    # Compile each module independently.
    results = [compile_minic(m) for m in modules]

    def program(stages):
        return Program(
            [
                ModuleDecl(s.lang, ge, s.module)
                for s, ge in zip(stages, genvs)
            ],
            ["main"],
        )

    def behaviours(prog):
        return program_behaviours(
            GlobalContext(prog), PreemptiveSemantics(),
            max_states=500000,
        )

    src = behaviours(program([r.source for r in results]))
    print("\nsource behaviours (module1 + module2, Clight):")
    for b in sorted(src, key=repr):
        print("   ", b)

    # Link compiled module 1 with *source* module 2 — cross-language
    # linking via the interaction semantics.
    mixed = behaviours(
        program([results[0].target, results[1].source])
    )
    print("\nmixed linking (x86 module1 + Clight module2) "
          "equivalent:", bool(equivalent(src, mixed)))

    # Fully compiled.
    tgt = behaviours(program([r.target for r in results]))
    print("fully compiled (x86 + x86) equivalent:",
          bool(equivalent(src, tgt)))


if __name__ == "__main__":
    main()
