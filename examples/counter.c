// The canonical lock-counter workload (the paper's Fig. 10 client),
// as a standalone MiniC file for profiling walkthroughs:
//
//   python -m repro drf examples/counter.c --threads inc,inc,inc --lock \
//       --jobs 2 --trace run.jsonl --metrics-out run-metrics.json
//   python -m repro profile run.jsonl
//
// Three threads increment a shared counter under the lock object, so
// the program is race-free but its interleaving space is large enough
// (tens of thousands of worlds) that where the checker's wall-clock
// goes is worth asking. See EXPERIMENTS.md, "Profiling a parallel
// run".
extern void lock();
extern void unlock();
int x = 0;
void inc() {
  int tmp;
  lock();
  tmp = x;
  x ++;
  unlock();
  print(tmp);
}
