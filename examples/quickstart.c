// The quickstart program as a standalone MiniC file, for the CLI:
//
//   python -m repro compile  examples/quickstart.c
//   python -m repro run      examples/quickstart.c --metrics
//   python -m repro validate examples/quickstart.c --trace out.jsonl
int g = 5;
int add(int a, int b) { return a + b; }
void main() {
  int x = 2;
  int y;
  y = add(x, g);
  print(y);
  g = y * 2;
  print(g);
  int i = 0;
  while (i < 3) { print(i); i = i + 1; }
}
