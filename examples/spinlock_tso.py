#!/usr/bin/env python3
"""The paper's headline scenario (Fig. 10 + Fig. 3): a Clight client
using an abstract lock, compiled to x86 and linked with the racy
x86-TSO TTAS spin lock.

Checks, end to end:

1. the source program (Clight + γ_lock) is safe and DRF;
2. GCorrect (Thm 14): the x86-SC program refines the source;
3. the TSO program with π_lock *does* race (the benign races);
4. yet Thm 15 holds: it ⊑′-refines the source.

Run:  python examples/spinlock_tso.py
"""

from repro.framework import (
    check_gcorrect,
    check_theorem15,
    lock_counter_system,
)
from repro.semantics import drf, program_behaviours, PreemptiveSemantics
from repro.semantics.world import GlobalContext


def show(title, behaviours):
    print(title)
    for b in sorted(behaviours, key=repr):
        print("   ", b)


def main():
    system = lock_counter_system(nthreads=2)
    print("client: inc ∥ inc with lock()/unlock() "
          "(the counter of Fig. 10c)\n")

    src = system.source_program()
    show("source behaviours (Clight + γ_lock, SC):",
         program_behaviours(GlobalContext(src), PreemptiveSemantics(),
                            max_states=800000))
    print("source DRF:", drf(src, max_states=800000))

    print("\nThm 14 (GCorrect, x86-SC backend):")
    verdict = check_gcorrect(system, max_states=1500000)
    print("   premises:", verdict.premises)
    print("   conclusion:", verdict.detail)

    tso = system.tso_program()
    show("\nx86-TSO behaviours (compiled clients + π_lock):",
         program_behaviours(GlobalContext(tso), PreemptiveSemantics(),
                            max_states=2000000))
    print("TSO program DRF:", drf(tso, max_states=2000000),
          " <- the TTAS lock's benign races")

    print("\nThm 15 (x86-TSO backend with the racy lock):")
    verdict = check_theorem15(system, max_states=2000000)
    print("   premises:", verdict.premises)
    print("   conclusion:", verdict.detail)


if __name__ == "__main__":
    main()
