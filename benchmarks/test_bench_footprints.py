"""FPSHRINK — shared-memory footprint across the pipeline (extension
figure).

The paper's criterion lets footprints only *shrink* under compilation
(``FPmatch``: target ⊆ source, modulo the mapping). This benchmark
measures the shrinkage on real compilations: the number of
shared-memory reads and writes performed per execution, at the source,
at plain x86, and at optimized x86.

Shape claims: shared writes are preserved exactly (they are observable
interactions); shared reads only decrease; the optimizer removes
strictly more reads than the plain pipeline on CSE-friendly code.
"""

import pytest

from repro.common.freelist import FreeList
from repro.lang.messages import RetMsg, is_silent
from repro.lang.steps import Step
from repro.langs.minic import compile_unit, link_units
from repro.compiler import compile_minic

FLIST = FreeList.for_thread(0)

SRC = """
int g = 2;
int h = 3;
void main() {
  int a;
  a = g + g;       // repeated load: CSE fodder
  int b;
  b = g + g;
  int dead;
  dead = h;        // dead load
  g = a + b;
  print(g);
}
"""


def shared_footprint_profile(stage, mem, shared, entry="main"):
    """(read set, write set, read events) on the shared region.

    The sets are what ``FPmatch`` constrains; the event count is a
    same-granularity metric for comparing instruction-level stages
    (a source *statement* batches its loads into one set-valued
    footprint, so event counts across granularities are meaningless).
    """
    lang, module = stage.lang, stage.module
    core = lang.init_core(module, entry)
    rs = set()
    ws = set()
    read_events = 0
    for _ in range(5000):
        outs = lang.step(module, core, mem, FLIST)
        if not outs:
            break
        (out,) = outs
        assert isinstance(out, Step), out
        rs |= out.fp.rs & shared
        ws |= out.fp.ws & shared
        read_events += len(out.fp.rs & shared)
        core, mem = out.core, out.mem
        if isinstance(out.msg, RetMsg):
            break
    return frozenset(rs), frozenset(ws), read_events


def test_footprint_shrinkage(benchmark):
    mods, genvs, _ = link_units([compile_unit(SRC)])
    mem = genvs[0].memory()
    shared = mem.domain()

    def measure():
        plain = compile_minic(mods[0])
        opt = compile_minic(mods[0], optimize=True)
        return {
            label: shared_footprint_profile(stage, mem, shared)
            for label, stage in [
                ("source", plain.source),
                ("x86", plain.target),
                ("x86 -O", opt.target),
            ]
        }

    counts = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\n[FPSHRINK] shared (reads, writes, read events):", {
        k: (sorted(r), sorted(w), n)
        for k, (r, w, n) in counts.items()
    })

    src_r, src_w, _ = counts["source"]
    x86_r, x86_w, x86_events = counts["x86"]
    opt_r, opt_w, opt_events = counts["x86 -O"]
    # Writes are observable interactions: preserved exactly.
    assert src_w == x86_w == opt_w
    # Read *sets* may only shrink (the FPmatch direction)...
    assert x86_r <= src_r
    assert opt_r <= x86_r
    # ...and the optimizer genuinely shrinks them: the dead load of
    # ``h`` disappears from the read set entirely.
    assert opt_r < src_r
    # At equal (instruction) granularity, CSE also removes read events.
    assert opt_events < x86_events
