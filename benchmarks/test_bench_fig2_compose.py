"""FIG2-5 and FIG2-34 — steps ⑤ (Lem. 6 compositionality), ④ (flip
under determinism) and ③ (Lem. 7 soundness).

Shape claims: per-module local simulations (checked by translation
validation) compose into whole-program behaviour preservation, in both
semantics, with equality (the flip) because the targets are
deterministic."""

import pytest

from repro.framework import (
    ClientSystem,
    check_correct,
    lock_counter_system,
)
from repro.simulation.compose import check_compositionality

from tests.helpers import EXAMPLE_2_2, SUITE


@pytest.fixture(scope="module")
def system():
    return lock_counter_system(2)


def test_fig2_local_sims_validate(benchmark, system):
    ok, validations = benchmark.pedantic(
        check_correct, args=(system,), rounds=1, iterations=1
    )
    assert ok
    per_module = validations[0]
    assert all(v.ok for v in per_module)


def test_fig2_composition_lock_counter(benchmark, system):
    src = system.source_program()
    tgt = system.sc_program()
    result = benchmark.pedantic(
        check_compositionality, args=(src, tgt),
        kwargs={"max_states": 800000}, rounds=1, iterations=1,
    )
    assert result.ok, result.detail


def test_fig2_composition_example22(benchmark):
    system = ClientSystem(
        [EXAMPLE_2_2], ["thread1", "thread2"], use_lock=True
    )
    src = system.source_program()
    tgt = system.sc_program()
    result = benchmark.pedantic(
        check_compositionality, args=(src, tgt),
        kwargs={"max_states": 2000000}, rounds=1, iterations=1,
    )
    assert result.ok, result.detail


@pytest.mark.parametrize("name", sorted(SUITE))
def test_fig2_composition_sequential_suite(benchmark, name):
    system = ClientSystem([SUITE[name]], ["main"])
    src = system.source_program()
    tgt = system.sc_program()
    result = benchmark.pedantic(
        check_compositionality, args=(src, tgt),
        kwargs={"max_states": 800000}, rounds=1, iterations=1,
    )
    assert result.ok, (name, result.detail)
