"""FIG2-68 and FIG2-7 — steps ⑥⑧ (DRF ⇔ NPDRF) and step ⑦ (Lem. 8:
the compilation preserves NPDRF).

Shape claims: the two race notions agree on every workload program
(racy and race-free alike); compiling the DRF clients through all 12
passes preserves NPDRF."""

import pytest

from repro.framework import lock_counter_system
from repro.simulation.compose import (
    check_drf_npdrf_equivalence,
    check_npdrf_preservation,
)

from tests.helpers import cimp_program

RACE_WORKLOAD = [
    ("ww-race", "t1(){ [C] := 1; } t2(){ [C] := 2; }", False),
    ("rw-race", "t1(){ x := [C]; } t2(){ [C] := 2; }", False),
    ("guarded-race",
     "t1(){ x := 0; while(x < 2){ x := x + 1; } [C] := 1; }"
     "t2(){ [C] := 2; }", False),
    ("atomic-counter",
     "t1(){ <x := [C]; [C] := x + 1;> }"
     "t2(){ <x := [C]; [C] := x + 1;> }", True),
    ("readers", "t1(){ x := [C]; } t2(){ y := [C]; }", True),
    ("atomic-vs-plain",
     "t1(){ <x := [C]; [C] := x + 1;> } t2(){ [C] := 5; }", False),
]


@pytest.mark.parametrize("name,src,expected_drf", RACE_WORKLOAD)
def test_fig2_drf_npdrf_agreement(benchmark, name, src, expected_drf):
    prog = cimp_program(src, ["t1", "t2"])
    result = benchmark.pedantic(
        check_drf_npdrf_equivalence, args=(prog,), rounds=1,
        iterations=1,
    )
    assert result.ok, (name, result.detail)
    assert ("DRF={}".format(expected_drf)) in result.detail, (
        name, result.detail,
    )


def test_fig2_npdrf_preservation(benchmark):
    system = lock_counter_system(2)
    src = system.source_program()
    tgt = system.sc_program()
    result = benchmark.pedantic(
        check_npdrf_preservation, args=(src, tgt),
        kwargs={"max_states": 800000}, rounds=1, iterations=1,
    )
    assert result.ok and "preserved" in result.detail, result.detail
