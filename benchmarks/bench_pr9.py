"""Benchmark run for live run introspection (PR 9).

Measures what this PR is about — that the heartbeat/ledger/heap
telemetry is cheap and honest — and re-runs the PR 5/7/8 scaling
matrix so the trajectory series in ``benchmarks/trajectory.py``
continue.

Writes ``BENCH_pr9.json`` next to the repo root (or to argv[1]):

* ``overhead``: the heartbeat gate. SCALE (3-thread lock-counter)
  sequential full exploration with the status writer off and on,
  interleaved rounds, min-of-rounds both ways. The run exits non-zero
  if the on/off wall-clock ratio exceeds ``OVERHEAD_TARGET`` (the
  ISSUE's ≤2% budget plus measurement slack) or if the heartbeat-on
  graph differs from the heartbeat-off graph in any way — telemetry
  must never perturb exploration.
* ``live``: an end-to-end ``drf --jobs 2 --no-por`` run through the
  real CLI with a 0.2 s heartbeat, a run ledger and a concurrent
  poller thread. Gates: the poller never sees a torn JSON document,
  every shard row appears in the final merged heartbeat, and at least
  one mid-run rolling states/s sample lands within 2x of the
  manifest's overall states/s (the final beats decay the rolling
  window by design, so the check uses mid-run poller samples).
* ``heap``: the interning/sharing census of the explored SCALE graph
  — intern table sizes and hit rates, bytes-unique vs
  bytes-if-copied, the sharing factor, bytes/world — the numbers
  quoted in ``EXPERIMENTS.md``.
* ``scaling``: the PR 5/7/8 jobs-axis matrix (3-/4-thread, full and
  reduced, jobs 1/2/4) with telemetry off, so the
  ``states_per_second`` trajectory series continue at this PR.

Usage::

    PYTHONPATH=src:. python benchmarks/bench_pr9.py [out.json]
"""

import gc
import hashlib
import json
import os
import sys
import tempfile
import threading
import time

from repro.lang import closure
from repro.framework import lock_counter_system
from repro.obs import heap, ledger
from repro.obs import status as live_status
from repro.semantics import (
    GlobalContext,
    PreemptiveSemantics,
    behaviours,
    explore,
)
from repro.semantics.world import reset_intern_tables

JOBS = (1, 2, 4)
THREAD_COUNTS = (3, 4)
MAX_STATES = 3000000
MAX_NODES = 8000000

#: Committed behaviour fingerprints (BENCH_pr3/pr5/pr7/pr8).
BASELINE_FINGERPRINTS = {
    3: "50e1ab6d869c3910",
    4: "4e906154a79c7890",
}

#: Maximum allowed heartbeat-on / heartbeat-off wall-clock ratio on
#: SCALE. The ISSUE budget is 2%; the stride-gated beat path measures
#: well under that (the countdown integer is the entire per-iteration
#: cost), so the gate adds slack only for timer noise on a loaded
#: runner.
OVERHEAD_TARGET = 1.02

#: Interleaved rounds per mode for the overhead measurement.
OVERHEAD_ROUNDS = 5

#: Heartbeat interval for the live end-to-end run.
LIVE_INTERVAL = 0.2

#: Mid-run rolling states/s must land within this factor of the
#: manifest's overall states/s.
LIVE_RATE_FACTOR = 2.0


def _cleanup():
    closure.clear_cache()
    reset_intern_tables()
    gc.collect()


def _fingerprint(behs):
    digest = hashlib.sha256()
    for line in sorted(repr(b) for b in behs):
        digest.update(line.encode())
        digest.update(b"\n")
    return digest.hexdigest()[:16]


def _graphs_identical(g1, g2):
    return (
        g1.states == g2.states
        and g1.ids == g2.ids
        and g1.edges == g2.edges
        and g1.done == g2.done
        and g1.stuck == g2.stuck
        and g1.truncated == g2.truncated
    )


def _explore_once(prog, reduce=False, jobs=1):
    start = time.perf_counter()
    graph = explore(
        GlobalContext(prog), PreemptiveSemantics(),
        max_states=MAX_STATES, strict=True, reduce=reduce, jobs=jobs,
    )
    return graph, time.perf_counter() - start


def _overhead_section():
    """Interleaved off/on rounds on SCALE: the ≤2% heartbeat gate."""
    _cleanup()
    prog = lock_counter_system(3).source_program()
    tmpdir = tempfile.mkdtemp(prefix="bench-pr9-")
    st_path = os.path.join(tmpdir, "st.json")
    times = {"off": [], "on": []}
    graphs = {}
    for _ in range(OVERHEAD_ROUNDS):
        for mode in ("off", "on"):
            live_status.reset()
            if mode == "on":
                live_status.configure(st_path, interval=1.0)
            try:
                graph, seconds = _explore_once(prog)
            finally:
                live_status.reset()
            times[mode].append(seconds)
            graphs[mode] = graph
    best_off = min(times["off"])
    best_on = min(times["on"])
    ratio = best_on / best_off
    identical = _graphs_identical(graphs["off"], graphs["on"])
    entry = {
        "workload": "lock-counter, 3 threads, preemptive, full",
        "rounds": OVERHEAD_ROUNDS,
        "states": graphs["on"].state_count(),
        "seconds_off_best": round(best_off, 4),
        "seconds_on_best": round(best_on, 4),
        "seconds_off_all": [round(t, 4) for t in times["off"]],
        "seconds_on_all": [round(t, 4) for t in times["on"]],
        "overhead_ratio": round(ratio, 4),
        "overhead_target": OVERHEAD_TARGET,
        "graph_identical": identical,
    }
    if not identical:
        raise SystemExit(
            "heartbeat-on exploration diverged from heartbeat-off"
        )
    if ratio > OVERHEAD_TARGET:
        raise SystemExit(
            "heartbeat overhead gate missed: {:.4f}x "
            "(target {:.2f}x)".format(ratio, OVERHEAD_TARGET)
        )
    return entry


class _Poller(threading.Thread):
    """Tight-loop reader of the heartbeat file."""

    def __init__(self, path):
        super().__init__()
        self.path = path
        self.stop_flag = threading.Event()
        self.torn = 0
        self.reads = 0
        self.docs = []

    def run(self):
        while not self.stop_flag.is_set():
            try:
                with open(self.path) as handle:
                    doc = json.load(handle)
            except OSError:
                continue
            except ValueError:
                self.torn += 1
                continue
            self.reads += 1
            self.docs.append(doc)


def _live_section(repo_root):
    """End-to-end CLI drf with jobs=2, heartbeat + ledger + poller."""
    from repro.cli import main as cli_main

    _cleanup()
    ledger.reset()
    live_status.reset()
    tmpdir = tempfile.mkdtemp(prefix="bench-pr9-live-")
    st_path = os.path.join(tmpdir, "st.json")
    manifest_path = os.path.join(tmpdir, "run.json")
    counter = os.path.join(repo_root, "examples", "counter.c")
    os.environ[live_status.ENV_STATUS_INTERVAL] = str(LIVE_INTERVAL)
    poller = _Poller(st_path)
    poller.start()
    try:
        code = cli_main([
            "drf", counter, "--threads", "inc,inc,inc", "--lock",
            "--no-por", "--jobs", "2",
            "--status", st_path, "--ledger", manifest_path,
        ])
    finally:
        poller.stop_flag.set()
        poller.join()
        os.environ.pop(live_status.ENV_STATUS_INTERVAL, None)
    if code != 0:
        raise SystemExit("live drf run exited {}".format(code))
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    overall = manifest["states_per_second"]
    # Mid-run samples only: the rolling window decays by design once
    # exploration stops and the merge/final beats repeat a constant
    # state count.
    mid = [
        doc["rolling_states_per_second"]
        for doc in poller.docs
        if doc.get("phase") in ("parallel", "expand")
        and doc.get("rolling_states_per_second")
    ]
    in_band = [
        r
        for r in mid
        if overall / LIVE_RATE_FACTOR <= r <= overall * LIVE_RATE_FACTOR
    ]
    final = poller.docs[-1] if poller.docs else {}
    shard_wids = sorted(
        row.get("wid") for row in final.get("shards", ())
    )
    entry = {
        "workload": "counter.c, 3 threads, locked, full, jobs=2",
        "interval_seconds": LIVE_INTERVAL,
        "poller_reads": poller.reads,
        "poller_torn_reads": poller.torn,
        "manifest_states": manifest["states"],
        "manifest_states_per_second": overall,
        "manifest_verdict": manifest.get("verdict"),
        "mid_run_samples": len(mid),
        "mid_run_samples_within_2x": len(in_band),
        "final_phase": final.get("phase"),
        "final_shard_wids": shard_wids,
    }
    if poller.torn:
        raise SystemExit(
            "poller saw {} torn heartbeat read(s)".format(poller.torn)
        )
    if shard_wids != [0, 1]:
        raise SystemExit(
            "final heartbeat missing shard rows: {}".format(shard_wids)
        )
    if mid and not in_band:
        raise SystemExit(
            "no mid-run rolling sample within {}x of the manifest "
            "overall ({} states/s): {}".format(
                LIVE_RATE_FACTOR, overall, mid
            )
        )
    return entry


def _heap_section():
    """The census quoted in EXPERIMENTS.md, from a fresh SCALE graph."""
    _cleanup()
    prog = lock_counter_system(3).source_program()
    graph, _seconds = _explore_once(prog)
    census = heap.graph_census(graph)
    tables = {
        name: {
            "size": entry["size"],
            "peak_size": entry["peak_size"],
            "hit_rate": round(entry["hit_rate"], 4),
            "clears": entry["clears"],
            "collisions_estimate": entry["collisions_estimate"],
        }
        for name, entry in heap.intern_census().items()
    }
    top_types = sorted(
        census["per_type"].items(), key=lambda kv: -kv[1]["bytes"]
    )[:heap.TOP_TYPES]
    if census["sharing_factor"] <= 1.0:
        raise SystemExit(
            "sharing factor {} <= 1: hash-consing is not sharing"
            .format(census["sharing_factor"])
        )
    return {
        "workload": "lock-counter, 3 threads, preemptive, full",
        "worlds": census["worlds"],
        "objects": census["objects"],
        "bytes_unique": census["bytes_unique"],
        "bytes_if_copied": census["bytes_if_copied"],
        "sharing_factor": census["sharing_factor"],
        "bytes_per_world_unique": census["bytes_per_world_unique"],
        "bytes_per_world_copied": census["bytes_per_world_copied"],
        "per_type_top": {
            name: entry for name, entry in top_types
        },
        "intern_tables": tables,
    }


def _explore_timed(prog, reduce, jobs):
    rounds = 2 if jobs == 1 else 1
    times = []
    graph = None
    for _ in range(rounds):
        graph, seconds = _explore_once(prog, reduce, jobs)
        times.append(seconds)
    return graph, min(times)


def _bench_workload(nthreads, reduce):
    """The PR 5/7/8 scaling matrix, telemetry off."""
    _cleanup()
    prog = lock_counter_system(nthreads).source_program()
    mode = "reduced" if reduce else "full"
    rows = []
    baseline = None
    sound = True
    for jobs in JOBS:
        graph, best = _explore_timed(prog, reduce, jobs)
        states = graph.state_count()
        row = {
            "jobs": jobs,
            "states": states,
            "seconds": round(best, 4),
            "states_per_second": round(states / best, 1),
        }
        if reduce:
            row["behaviours_fingerprint"] = _fingerprint(
                behaviours(graph, max_events=12, max_nodes=MAX_NODES)
            )
        if jobs == 1:
            baseline = graph
        elif not reduce:
            row["graph_identical_to_sequential"] = _graphs_identical(
                baseline, graph)
            sound = sound and row["graph_identical_to_sequential"]
        rows.append(row)
    if reduce:
        sound = len({r["behaviours_fingerprint"] for r in rows}) == 1
    else:
        rows[0]["behaviours_fingerprint"] = _fingerprint(
            behaviours(baseline, max_events=12, max_nodes=MAX_NODES)
        )
    fingerprints = {
        r["behaviours_fingerprint"]
        for r in rows if "behaviours_fingerprint" in r
    }
    crossval = fingerprints == {BASELINE_FINGERPRINTS[nthreads]}
    entry = {
        "workload": "lock-counter, {} threads, preemptive".format(
            nthreads),
        "mode": mode,
        "rows": rows,
        "sound_across_jobs": sound,
        "fingerprint_matches_pr3_pr5_pr7_pr8": crossval,
    }
    if not (sound and crossval):
        raise SystemExit(
            "parallel soundness smoke check failed: "
            "{} threads, {}".format(nthreads, mode)
        )
    return entry


def main():
    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pr9.json"
    repo_root = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..")
    )
    # Scaling first, from the cleanest process state (same reasoning
    # as bench_pr8: forked workers inherit the whole live heap).
    scaling = [
        _bench_workload(n, red)
        for n in THREAD_COUNTS
        for red in (False, True)
    ]
    overhead = _overhead_section()
    live = _live_section(repo_root)
    heap_census = _heap_section()
    report = {
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "jobs_axis": list(JOBS),
        "note": (
            "overhead is the heartbeat-on / heartbeat-off wall-clock "
            "ratio measured interleaved in one process (gated at "
            "{:.0%}); the live section drives the real CLI with a "
            "concurrent poller; the scaling section's absolute "
            "states/second continue the PR 2/3/5/7/8 trajectory "
            "series and move with the runner.".format(
                OVERHEAD_TARGET - 1.0)
        ),
        "overhead": overhead,
        "live": live,
        "heap": heap_census,
        "scaling": scaling,
    }
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
