"""FIG2-12 — steps ①② of Fig. 2 (Lem. 9): DRF programs behave the same
preemptively and non-preemptively, and state-space/behaviour costs of
the two semantics.

Shape claims: equivalence holds on every DRF program of the workload;
the premise is necessary (a racy program where the two semantics
differ); the non-preemptive state space is never larger than the
preemptive one (the reduction that makes sequential-compiler reuse
possible)."""

import pytest

from repro.semantics import (
    GlobalContext,
    NonPreemptiveSemantics,
    PreemptiveSemantics,
    equivalent,
    explore,
)
from repro.simulation.compose import check_semantics_equivalence

from tests.helpers import (
    behaviours_of,
    cimp_program,
    np_behaviours_of,
)

DRF_WORKLOAD = [
    ("atomic-counter",
     "t1(){ <x := [C]; [C] := x + 1;> print(1); }"
     "t2(){ <x := [C]; [C] := x + 1;> print(2); }"),
    ("handoff",
     "t1(){ <[C] := 1;> print(1); }"
     "t2(){ r := 0; while(r == 0){ <r := [C];> } print(2); }"),
    ("readers",
     "t1(){ x := [C]; print(x); } t2(){ y := [C]; print(y); }"),
    ("three-way",
     "t1(){ <x := [C]; [C] := x + 1;> }"
     "t2(){ <x := [C]; [C] := x + 2;> }"
     "t3(){ <x := [C]; [C] := x + 4;> print(0); }"),
]


@pytest.mark.parametrize("name,src", DRF_WORKLOAD)
def test_fig2_equivalence_holds(benchmark, name, src):
    entries = ["t1", "t2"] + (["t3"] if "t3()" in src else [])
    prog = cimp_program(src, entries)
    result = benchmark.pedantic(
        check_semantics_equivalence, args=(prog,),
        kwargs={"max_states": 400000}, rounds=1, iterations=1,
    )
    assert result.ok and "vacuous" not in result.detail, (
        name, result.detail,
    )


def test_fig2_premise_necessary(benchmark):
    """Without DRF the equivalence genuinely fails — the preemptive
    semantics observes an intermediate state non-preemptive execution
    cannot produce."""
    prog = cimp_program(
        "t1(){ [C] := 1; [C] := 2; }"
        "t2(){ x := [C]; print(x); }",
        ["t1", "t2"],
    )

    def check():
        return equivalent(behaviours_of(prog), np_behaviours_of(prog))

    result = benchmark.pedantic(check, rounds=1, iterations=1)
    assert not bool(result)


@pytest.mark.parametrize("name,src", DRF_WORKLOAD)
def test_fig2_state_space_sizes(benchmark, name, src):
    """Reachable-world counts of the two semantics on the workload.

    (Both are finite; the non-preemptive graph trades scheduler edges
    for per-thread atomic-bit bookkeeping, so neither dominates the
    other in states — the reduction the paper exploits is in *proof
    structure*, not raw state count.)"""
    entries = ["t1", "t2"] + (["t3"] if "t3()" in src else [])
    prog = cimp_program(src, entries)

    def measure():
        ctx = GlobalContext(prog)
        pre = explore(ctx, PreemptiveSemantics()).state_count()
        non = explore(ctx, NonPreemptiveSemantics()).state_count()
        return pre, non

    pre, non = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert pre > 0 and non > 0
    print("\n[FIG2-12] {}: preemptive states={} non-preemptive={}"
          .format(name, pre, non))
