"""Benchmark run for closure-compiled step interpreters (PR 8).

Measures what this PR is about — the staged (closure-compiled) step
path against the interpretive one on the same workloads — and re-runs
the PR 5/PR 7 scaling matrix so the trajectory series in
``benchmarks/trajectory.py`` continue.

Writes ``BENCH_pr8.json`` next to the repo root (or to argv[1]):

* ``closure``: per workload (3-/4-thread lock-counter), sequential
  full exploration with closure compilation off and on, same process,
  back to back: states/second both ways and the speedup factor.
  Closure-off is the seed's fully interpretive path — ``ctx.staging``
  gates both the staged step functions and the engine's
  successor-template cache, so this measures the whole PR-8
  mechanism, not just step dispatch. The benchmark exits non-zero if
  the 3-thread (SCALE) speedup falls below ``SPEEDUP_TARGET`` or any
  behaviour fingerprint drifts from the committed PR 3/PR 5/PR 7
  baselines.
* ``stepbench``: the step-dispatch story in isolation — every
  reachable ``(module, core, flist, mem)`` configuration on SCALE is
  stepped through the interpretive ``lang.step`` and the staged
  closure chain, timed per language. Also records how few unique
  step configurations the exploration actually visits
  (``step_dedup_factor``): the successor-template cache absorbs the
  rest, which is why the end-to-end speedup is bounded by world
  interning, not step speed.
* ``staging``: the compile-time story — cold staging cost (first
  ``prime`` over the pipeline modules), warm cost (cache hit), nodes
  compiled, and amortization: cold compile seconds as a fraction of
  the closure-on exploration it pays for.
* ``crossval``: behaviour fingerprints over the full
  closure {off,on} x POR {off,on} x jobs {1,2} cube on the 3-thread
  system — all eight runs must reproduce the committed baseline
  bit-for-bit, or the benchmark exits non-zero.
* ``scaling``: the PR 5/PR 7 jobs-axis matrix (3-/4-thread, full and
  reduced, jobs 1/2/4) under the default (closure-on) path, so the
  ``states_per_second`` trajectory series continue at this PR.
* ``cpu_count`` — the honesty knob from PR 5/PR 7: jobs>1 wall-clock
  needs real cores; the closure speedup itself is per-core and shows
  in the jobs=1 rows regardless.

Usage::

    PYTHONPATH=src:. python benchmarks/bench_pr8.py [out.json]
"""

import gc
import hashlib
import json
import os
import sys
import time

from repro import obs
from repro.lang import closure
from repro.framework import lock_counter_system
from repro.semantics import (
    GlobalContext,
    PreemptiveSemantics,
    behaviours,
    explore,
)
from repro.semantics.world import reset_intern_tables

JOBS = (1, 2, 4)
THREAD_COUNTS = (3, 4)
MAX_STATES = 3000000
MAX_NODES = 8000000  # behaviour enumeration bound (see bench_pr3)

#: Committed behaviour fingerprints from BENCH_pr3/BENCH_pr5/BENCH_pr7
#: — the cross-PR invariant closure compilation must not move.
BASELINE_FINGERPRINTS = {
    3: "50e1ab6d869c3910",
    4: "4e906154a79c7890",
}

#: Minimum closure-on / closure-off states/second factor on the
#: 3-thread SCALE workload, measured in the same process back to back
#: (relative measure, so runner speed cancels out). Measured
#: 1.6-1.75x across 3-/4-thread, full and reduced: once the template
#: cache absorbs repeat step work, the remaining wall clock is world
#: interning and graph assembly, which the off path pays too. The
#: gate sits below the measured band to keep noisy CI runners green
#: while still catching a real regression of the staged path.
SPEEDUP_TARGET = 1.3

#: Rounds for the step-dispatch microbenchmark (per configuration).
STEP_ROUNDS = 20


def _cleanup():
    """Drop cross-section state so each section times a comparable
    process.

    The intern tables, closure caches and cyclic garbage accumulated
    by one section otherwise leak into the next's timings — most
    visibly into forked workers, which inherit the whole live heap
    and pay for it on every GC pass.
    """
    closure.clear_cache()
    reset_intern_tables()
    gc.collect()


def _fingerprint(behs):
    digest = hashlib.sha256()
    for line in sorted(repr(b) for b in behs):
        digest.update(line.encode())
        digest.update(b"\n")
    return digest.hexdigest()[:16]


def _explore_timed(prog, reduce, jobs, rounds=None):
    # Best-of-2 for jobs=1 (matches bench_pr3/pr5/pr7); multi-process
    # runs pay a fork cost per round, so one round keeps them honest.
    if rounds is None:
        rounds = 2 if jobs == 1 else 1
    times = []
    graph = None
    for _ in range(rounds):
        start = time.perf_counter()
        graph = explore(
            GlobalContext(prog), PreemptiveSemantics(),
            max_states=MAX_STATES, strict=True, reduce=reduce,
            jobs=jobs,
        )
        times.append(time.perf_counter() - start)
    return graph, min(times)


def _graphs_identical(g1, g2):
    return (
        g1.states == g2.states
        and g1.ids == g2.ids
        and g1.edges == g2.edges
        and g1.done == g2.done
        and g1.stuck == g2.stuck
        and g1.truncated == g2.truncated
    )


def _closure_section():
    entries = []
    for nthreads in THREAD_COUNTS:
        _cleanup()
        prog = lock_counter_system(nthreads).source_program()
        rows = {}
        graphs = {}
        # Time both modes back to back first; the behaviour
        # enumeration (a second BFS over the whole graph) runs only
        # after both timings, so its allocation churn cannot skew the
        # second mode's clock.
        for enabled in (False, True):
            closure.set_enabled(enabled)
            closure.clear_cache()
            try:
                graph, best = _explore_timed(prog, False, 1)
            finally:
                closure.set_enabled(None)
            states = graph.state_count()
            key = "closure_on" if enabled else "closure_off"
            graphs[key] = graph
            rows[key] = {
                "states": states,
                "seconds": round(best, 4),
                "states_per_second": round(states / best, 1),
            }
        for key, graph in graphs.items():
            rows[key]["behaviours_fingerprint"] = _fingerprint(
                behaviours(graph, max_events=12, max_nodes=MAX_NODES)
            )
        speedup = (
            rows["closure_on"]["states_per_second"]
            / rows["closure_off"]["states_per_second"]
        )
        fingerprints = {
            r["behaviours_fingerprint"] for r in rows.values()
        }
        entry = {
            "workload": "lock-counter, {} threads, preemptive".format(
                nthreads),
            "mode": "full",
            "jobs": 1,
            "closure_off": rows["closure_off"],
            "closure_on": rows["closure_on"],
            "speedup": round(speedup, 2),
            "graph_identical": _graphs_identical(
                graphs["closure_off"], graphs["closure_on"]
            ),
            "fingerprint_matches_baseline": fingerprints
            == {BASELINE_FINGERPRINTS[nthreads]},
        }
        if not (entry["graph_identical"]
                and entry["fingerprint_matches_baseline"]):
            raise SystemExit(
                "closure on/off divergence on {} threads".format(
                    nthreads)
            )
        if nthreads == 3 and speedup < SPEEDUP_TARGET:
            raise SystemExit(
                "closure speedup target missed on SCALE: {:.2f}x "
                "(target {:.1f}x)".format(speedup, SPEEDUP_TARGET)
            )
        entries.append(entry)
        del graphs
    return entries


def _stepbench_section():
    """Interpretive vs staged step dispatch, per language, on the
    reachable configurations of SCALE.

    This is where the closure chains show up undiluted: no world
    interning, no graph assembly, just ``lang.step`` against the
    compiled ``staged.step`` over the same configurations.
    """
    prog = lock_counter_system(3).source_program()
    ctx = GlobalContext(prog)
    closure.set_enabled(True)
    try:
        closure.clear_cache()
        graph = explore(
            ctx, PreemptiveSemantics(),
            max_states=MAX_STATES, strict=True, reduce=False, jobs=1,
        )
        # Every distinct step configuration any live thread reaches.
        configs = {}
        for world in graph.states:
            for tid in world.live_threads():
                frame = world.threads[tid][-1]
                key = (frame.mod_idx, frame.core, frame.flist,
                       world.mem)
                if key not in configs:
                    configs[key] = (ctx.module(frame.mod_idx),
                                    frame.core, world.mem, frame.flist)
        staged = {
            idx: closure.stage(decl.lang, decl.code)
            for idx, decl in enumerate(ctx.modules)
        }
        by_lang = {}
        for (mod_idx, _, _, _), cfg in configs.items():
            name = getattr(cfg[0].lang, "name",
                           type(cfg[0].lang).__name__)
            by_lang.setdefault((mod_idx, name), []).append(cfg)
        rows = []
        interp_total = compiled_total = 0.0
        for (mod_idx, name), cfgs in sorted(by_lang.items()):
            art = staged[mod_idx]
            start = time.perf_counter()
            for _ in range(STEP_ROUNDS):
                for decl, core, mem, flist in cfgs:
                    decl.lang.step(decl.code, core, mem, flist)
            interp = time.perf_counter() - start
            start = time.perf_counter()
            for _ in range(STEP_ROUNDS):
                for decl, core, mem, flist in cfgs:
                    art.step(core, mem, flist)
            compiled = time.perf_counter() - start
            interp_total += interp
            compiled_total += compiled
            rows.append(
                {
                    "language": name,
                    "module_index": mod_idx,
                    "configs": len(cfgs),
                    "interp_seconds": round(interp, 4),
                    "compiled_seconds": round(compiled, 4),
                    "step_speedup": round(interp / compiled, 2),
                }
            )
        return {
            "workload": "lock-counter, 3 threads, preemptive",
            "rounds": STEP_ROUNDS,
            "states": graph.state_count(),
            "unique_step_configs": len(configs),
            "step_dedup_factor": round(
                graph.state_count() / len(configs), 1),
            "per_language": rows,
            "overall_step_speedup": round(
                interp_total / compiled_total, 2),
        }
    finally:
        closure.set_enabled(None)


def _staging_section():
    prog = lock_counter_system(3).source_program()
    ctx = GlobalContext(prog)
    closure.set_enabled(True)
    try:
        closure.clear_cache()
        obs.reset()
        obs.configure(metrics=True)
        start = time.perf_counter()
        closure.prime(ctx)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        closure.prime(ctx)
        warm = time.perf_counter() - start
        snap = obs.snapshot()["counters"]
        obs.reset()
        # The exploration the cold compile pays for (warm cache).
        graph, best = _explore_timed(prog, False, 1)
        return {
            "workload": "lock-counter, 3 threads, preemptive",
            "modules_staged": snap.get("closure.modules_staged", 0),
            "nodes_compiled": snap.get("closure.nodes_compiled", 0),
            "cold_compile_seconds": round(cold, 6),
            "warm_compile_seconds": round(warm, 6),
            "explore_seconds_warm": round(best, 4),
            "compile_fraction_of_explore": round(cold / best, 6),
        }
    finally:
        closure.set_enabled(None)


def _crossval_section():
    prog = lock_counter_system(3).source_program()
    rows = []
    sound = True
    for enabled in (False, True):
        closure.set_enabled(enabled)
        closure.clear_cache()
        try:
            for reduce in (False, True):
                for jobs in (1, 2):
                    graph, _ = _explore_timed(
                        prog, reduce, jobs, rounds=1
                    )
                    fp = _fingerprint(
                        behaviours(graph, max_events=12,
                                   max_nodes=MAX_NODES)
                    )
                    ok = fp == BASELINE_FINGERPRINTS[3]
                    sound = sound and ok
                    rows.append(
                        {
                            "closure": enabled,
                            "por": reduce,
                            "jobs": jobs,
                            "behaviours_fingerprint": fp,
                            "matches_baseline": ok,
                        }
                    )
        finally:
            closure.set_enabled(None)
    if not sound:
        raise SystemExit(
            "closure x POR x jobs cross-validation failed: "
            "fingerprint drift from the committed baseline"
        )
    return {
        "workload": "lock-counter, 3 threads, preemptive",
        "baseline": BASELINE_FINGERPRINTS[3],
        "rows": rows,
        "all_match": sound,
    }


def _bench_workload(nthreads, reduce):
    """The PR 5/PR 7 scaling matrix, on the default (closure-on) path."""
    _cleanup()
    prog = lock_counter_system(nthreads).source_program()
    mode = "reduced" if reduce else "full"
    rows = []
    baseline = None
    sound = True
    for jobs in JOBS:
        graph, best = _explore_timed(prog, reduce, jobs)
        states = graph.state_count()
        row = {
            "jobs": jobs,
            "states": states,
            "seconds": round(best, 4),
            "states_per_second": round(states / best, 1),
        }
        if reduce:
            row["behaviours_fingerprint"] = _fingerprint(
                behaviours(graph, max_events=12, max_nodes=MAX_NODES)
            )
        if jobs == 1:
            baseline = graph
        elif not reduce:
            row["graph_identical_to_sequential"] = _graphs_identical(
                baseline, graph)
            sound = sound and row["graph_identical_to_sequential"]
        rows.append(row)
    if reduce:
        sound = len({r["behaviours_fingerprint"] for r in rows}) == 1
    else:
        rows[0]["behaviours_fingerprint"] = _fingerprint(
            behaviours(baseline, max_events=12, max_nodes=MAX_NODES)
        )
    fingerprints = {
        r["behaviours_fingerprint"]
        for r in rows if "behaviours_fingerprint" in r
    }
    crossval = fingerprints == {BASELINE_FINGERPRINTS[nthreads]}
    entry = {
        "workload": "lock-counter, {} threads, preemptive".format(
            nthreads),
        "mode": mode,
        "rows": rows,
        "sound_across_jobs": sound,
        "fingerprint_matches_pr3_pr5_pr7": crossval,
    }
    if not (sound and crossval):
        raise SystemExit(
            "parallel soundness smoke check failed: "
            "{} threads, {}".format(nthreads, mode)
        )
    return entry


def main():
    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pr8.json"
    # The scaling matrix runs first, from the cleanest process state:
    # its absolute states/second are what the trajectory gate
    # compares against BENCH_pr5/pr7, which measured the same way.
    # Forked workers inherit the parent heap, so running it after the
    # other sections taxes every worker GC pass with megabytes of
    # dead survey state (measured: 4-thread jobs=2 59.7 s clean vs
    # 186 s behind the other sections).
    scaling = [
        _bench_workload(n, red)
        for n in THREAD_COUNTS
        for red in (False, True)
    ]
    closure_entries = _closure_section()
    _cleanup()
    stepbench = _stepbench_section()
    _cleanup()
    staging = _staging_section()
    _cleanup()
    crossval = _crossval_section()
    report = {
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "jobs_axis": list(JOBS),
        "note": (
            "closure speedup is the closure-on / closure-off "
            "states-per-second factor measured back to back in one "
            "process, so it is robust to runner speed; the scaling "
            "section's absolute states/second continue the PR 2/3/5/7 "
            "trajectory series and move with the runner."
        ),
        "closure": closure_entries,
        "stepbench": stepbench,
        "staging": staging,
        "crossval": crossval,
        "scaling": scaling,
    }
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
