"""Benchmark run for the differential-fuzzing campaign (PR 10).

Measures what this PR is about — that the campaign substrate is fast
enough to be left running and trustworthy enough to be believed:

Writes ``BENCH_pr10.json`` next to the repo root (or to argv[1]):

* ``throughput``: sequential campaign throughput per generator family
  (inputs/second over a seeded batch), plus the determinism gate —
  running the identical campaign into a second directory must produce
  the byte-identical program corpus, or the run exits non-zero.
* ``parallel``: the same mixed campaign at ``jobs=2``; gated on the
  forked pool producing the same corpus and checkpoint ``done`` map as
  the sequential run (worker nondeterminism must never leak into the
  artifacts).
* ``resume``: a second run over a finished campaign directory; gated
  on zero re-executed inputs. The wall-clock here is the fixed cost a
  ``kill -9``-interrupted campaign pays to get back to where it was.
* ``injection``: the end-to-end alarm test on ``minic-lock-broken``
  inputs — every injected race must be detected, minimized under the
  campaign budget and confirmed by a real ``repro replay`` of the
  written witness artifact (exit 0), or the run exits non-zero.

Usage::

    PYTHONPATH=src:. python benchmarks/bench_pr10.py [out.json]
"""

import json
import os
import sys
import tempfile
import time

from repro.cli import main as cli_main
from repro.fuzz.campaign import CampaignConfig, run_campaign
from repro.fuzz.corpus import Corpus
from repro.fuzz.generators import DEFAULT_KINDS
from repro.obs import ledger
from repro.obs import status as live_status

SEED = 2026
PER_FAMILY_COUNT = 30
MIXED_COUNT = 30
INJECT_COUNT = 8


def _fresh_dir(prefix):
    return os.path.join(tempfile.mkdtemp(prefix=prefix), "corpus")


def _reset():
    ledger.reset()
    live_status.reset()


def _run(out, **kw):
    _reset()
    kw.setdefault("seed", SEED)
    cfg = CampaignConfig(out=out, **kw)
    start = time.perf_counter()
    stats = run_campaign(cfg)
    return stats, time.perf_counter() - start


def _corpus_snapshot(out):
    root = os.path.join(out, "programs")
    return {
        name: open(os.path.join(root, name)).read()
        for name in os.listdir(root)
    }


def _throughput_section():
    rows = []
    for kind in DEFAULT_KINDS:
        out = _fresh_dir("bench-pr10-tp-")
        stats, seconds = _run(
            out, count=PER_FAMILY_COUNT, kinds=(kind,)
        )
        if stats.unexpected:
            raise SystemExit(
                "clean family {} produced {} unexpected finding(s)"
                .format(kind, stats.unexpected)
            )
        rows.append({
            "kind": kind,
            "inputs": stats.executed,
            "programs": stats.programs_added,
            "dedup_hits": stats.dedup_hits,
            "seconds": round(seconds, 4),
            "inputs_per_second": round(stats.executed / seconds, 1),
        })
    # The determinism gate: same seed, fresh directory, same bytes.
    a, b = _fresh_dir("bench-pr10-da-"), _fresh_dir("bench-pr10-db-")
    _run(a, count=MIXED_COUNT)
    _run(b, count=MIXED_COUNT)
    identical = _corpus_snapshot(a) == _corpus_snapshot(b)
    if not identical:
        raise SystemExit("same-seed campaigns produced differing corpora")
    return {
        "per_family": rows,
        "determinism_corpus_identical": identical,
    }


def _parallel_section():
    seq_out = _fresh_dir("bench-pr10-seq-")
    par_out = _fresh_dir("bench-pr10-par-")
    seq_stats, seq_seconds = _run(seq_out, count=MIXED_COUNT)
    par_stats, par_seconds = _run(par_out, count=MIXED_COUNT, jobs=2)
    same_corpus = _corpus_snapshot(seq_out) == _corpus_snapshot(par_out)
    same_done = (
        Corpus(seq_out).load_checkpoint()["done"]
        == Corpus(par_out).load_checkpoint()["done"]
    )
    if not (same_corpus and same_done):
        raise SystemExit("jobs=2 campaign diverged from sequential")
    return {
        "workload": "{} mixed inputs, kinds={}".format(
            MIXED_COUNT, ",".join(DEFAULT_KINDS)
        ),
        "sequential_seconds": round(seq_seconds, 4),
        "jobs2_seconds": round(par_seconds, 4),
        "speedup": round(seq_seconds / par_seconds, 2),
        "executed": par_stats.executed,
        "corpus_identical": same_corpus,
        "checkpoint_identical": same_done,
    }


def _resume_section():
    out = _fresh_dir("bench-pr10-res-")
    _run(out, count=MIXED_COUNT)
    stats, seconds = _run(out, count=MIXED_COUNT)
    if stats.executed != 0 or stats.skipped != MIXED_COUNT:
        raise SystemExit(
            "resume re-executed finished inputs: executed={} "
            "skipped={}".format(stats.executed, stats.skipped)
        )
    return {
        "inputs_skipped": stats.skipped,
        "seconds": round(seconds, 4),
    }


def _injection_section():
    out = _fresh_dir("bench-pr10-inj-")
    stats, seconds = _run(
        out, count=INJECT_COUNT, kinds=("minic-lock-broken",)
    )
    if stats.findings != INJECT_COUNT or stats.unexpected:
        raise SystemExit(
            "injection campaign: {} finding(s), {} unexpected "
            "(wanted {} expected races)".format(
                stats.findings, stats.unexpected, INJECT_COUNT
            )
        )
    corpus = Corpus(out)
    findings = corpus.load_findings()["findings"]
    steps = []
    replays_ok = 0
    for finding in findings:
        if finding["kind"] != "race" or not finding["expected"]:
            raise SystemExit(
                "unexpected finding shape: {}".format(finding["kind"])
            )
        steps.append(
            (finding["original_steps"], finding["schedule_steps"])
        )
        program = corpus.program_path(finding["input"]["hash"], ".c")
        _reset()
        if cli_main(["replay", program, "--witness",
                     finding["witness"]]) == 0:
            replays_ok += 1
    if replays_ok != len(findings):
        raise SystemExit(
            "only {}/{} minimized witnesses replayed".format(
                replays_ok, len(findings)
            )
        )
    return {
        "injected": INJECT_COUNT,
        "detected": stats.findings,
        "seconds": round(seconds, 4),
        "witness_replays_ok": replays_ok,
        "mean_original_steps": round(
            sum(o for o, _ in steps) / len(steps), 1
        ),
        "mean_minimized_steps": round(
            sum(m for _, m in steps) / len(steps), 1
        ),
    }


def main():
    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pr10.json"
    throughput = _throughput_section()
    parallel = _parallel_section()
    resume = _resume_section()
    injection = _injection_section()
    report = {
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "seed": SEED,
        "note": (
            "all sections gate correctness (determinism, pool/"
            "sequential corpus identity, zero re-execution on resume, "
            "every injected race detected+minimized+replayed); the "
            "absolute inputs/second move with the runner."
        ),
        "throughput": throughput,
        "parallel": parallel,
        "resume": resume,
        "injection": injection,
    }
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
