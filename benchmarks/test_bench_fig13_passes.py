"""FIG13 — the per-pass validation-effort table (Fig. 13 analogue).

The paper's evaluation is a per-pass table of verification effort
(Coq spec/proof lines, "CompCert vs Ours"). The executable analogue
measures translation-validation effort per pass over the workload:
baseline obligations (message matching — what a sequential validator
needs, the "CompCert" column role) vs footprint-preserving obligations
(FPmatch + scope + LG, the "Ours" column role), plus rely moves and
wall time.

Shape claims checked: every one of the 12 passes validates, and the
footprint-preserving column strictly exceeds the baseline on every row
(the paper's observation that concurrency support adds work to every
pass, but modestly — here a constant factor ~3 of obligations).
"""

import pytest

from repro.framework import (
    ClientSystem,
    format_table,
    lock_counter_system,
    per_pass_table,
)

from tests.helpers import SUITE

PASS_NAMES = [
    "Cshmgen", "Cminorgen", "Selection", "RTLgen", "Tailcall",
    "Renumber", "Allocation", "Tunneling", "Linearize",
    "CleanupLabels", "Stacking", "Asmgen",
]


@pytest.fixture(scope="module")
def workload_system():
    """Lock-counter clients + the full sequential suite in one unit."""
    return lock_counter_system(2)


def test_fig13_per_pass_table(benchmark, workload_system):
    rows = benchmark.pedantic(
        per_pass_table, args=(workload_system,), rounds=3, iterations=1
    )
    assert [r.pass_name for r in rows] == PASS_NAMES
    for row in rows:
        assert row.baseline_obligations > 0
        assert row.fp_obligations > row.baseline_obligations
        # The footprint obligations are a modest constant factor over
        # the baseline (3 checks per message: FPmatch, scope, LG).
        assert row.fp_obligations == 3 * row.baseline_obligations
    print("\n[FIG13] per-pass validation effort (lock-counter system)")
    print(format_table(rows))


@pytest.mark.parametrize("name", sorted(SUITE))
def test_fig13_suite_programs(benchmark, name):
    system = ClientSystem([SUITE[name]], ["main"])
    rows = benchmark.pedantic(
        per_pass_table, args=(system,), rounds=1, iterations=1
    )
    assert [r.pass_name for r in rows] == PASS_NAMES


OPT_PASS_NAMES = (
    PASS_NAMES[:6] + ["ConstProp", "CSE", "Deadcode"] + PASS_NAMES[6:]
)


def test_fig13_optimizing_pipeline(benchmark):
    """The paper's remaining-passes future work: the table extends to
    the 15-pass optimizing pipeline with the same uniform overhead."""
    system = ClientSystem(
        [SUITE["globals"]], ["main"], optimize=True
    )
    rows = benchmark.pedantic(
        per_pass_table, args=(system,), rounds=1, iterations=1
    )
    assert [r.pass_name for r in rows] == OPT_PASS_NAMES
    for row in rows:
        assert row.fp_obligations == 3 * row.baseline_obligations
    print("\n[FIG13+] optimizing pipeline (15 passes)")
    print(format_table(rows))
