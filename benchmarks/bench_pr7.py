"""Benchmark run for the delta-encoded channel transport (PR 7).

Re-runs the PR 5 scaling matrix — the 3- and 4-thread lock-counter
systems at ``jobs ∈ {1, 2, 4}``, POR off and on — so the trajectory
series in ``benchmarks/trajectory.py`` continue, and adds the section
this PR is about: a head-to-head **wire comparison** of the stateful
channel transport against the PR 5 stateless format
(``REPRO_WIRE_STATELESS=1``) on the 3-thread full graph at jobs=2.

Writes ``BENCH_pr7.json`` next to the repo root (or to argv[1]):

* per (workload, mode, jobs): state count, wall time, states/second,
  behaviour fingerprints in the BENCH_pr3 format — checked against the
  committed PR 3/PR 5 baselines, so a transport bug that perturbs the
  explored behaviours fails the benchmark, not just the diff review.
* soundness smoke as in PR 5: full-mode parallel graphs bit-identical
  to sequential, reduced-mode fingerprints equal across the jobs axis,
  DRF verdict agreement where affordable.
* ``wire``: both transports' metered jobs=2 run — per-world wire bytes
  (p50/mean over the ``parallel.wire.world_bytes`` histogram), total
  ``bytes_out``, delta/full send counts and wall time. The benchmark
  exits non-zero unless the channel transport cuts the world_bytes
  median by at least ``WIRE_TARGET`` (the ≥5x acceptance line) and
  records at least one delta hit. Each transport runs in a **fresh
  subprocess**: a stateless run's merge interns worlds whose memories
  were rebuilt with private base dicts, which silently disables delta
  encoding for any later in-process channel run over the same program
  — fresh processes measure what the one-run-per-process CLI does.
* ``cpu_count`` — the honesty knob carried over from PR 5: on a
  single-core runner jobs>1 cannot beat sequential; the PR 7 claim is
  that the *wire work per cross-shard edge* shrank, which the wire
  section measures directly and the jobs>1 wall-clock rows reflect.

Usage::

    PYTHONPATH=src:. python benchmarks/bench_pr7.py [out.json]
"""

import hashlib
import json
import os
import subprocess
import sys
import time

from repro import obs
from repro.common.serialize import ENV_STATELESS
from repro.framework import lock_counter_system
from repro.semantics import (
    GlobalContext,
    PreemptiveSemantics,
    behaviours,
    drf,
    explore,
)

JOBS = (1, 2, 4)
THREAD_COUNTS = (3, 4)
MAX_STATES = 3000000
MAX_NODES = 8000000  # behaviour enumeration bound (see bench_pr3)

#: Committed behaviour fingerprints from BENCH_pr3/BENCH_pr5 — the
#: cross-PR invariant the transport must not move.
BASELINE_FINGERPRINTS = {
    3: "50e1ab6d869c3910",
    4: "4e906154a79c7890",
}

#: Minimum factor by which the channel transport must cut the
#: per-world wire byte median versus the stateless format.
WIRE_TARGET = 5.0


def _fingerprint(behs):
    digest = hashlib.sha256()
    for line in sorted(repr(b) for b in behs):
        digest.update(line.encode())
        digest.update(b"\n")
    return digest.hexdigest()[:16]


def _graphs_identical(g1, g2):
    return (
        g1.states == g2.states
        and g1.ids == g2.ids
        and g1.edges == g2.edges
        and g1.done == g2.done
        and g1.stuck == g2.stuck
        and g1.truncated == g2.truncated
    )


def _explore_timed(prog, reduce, jobs):
    # Best-of-2 for jobs=1 (matches bench_pr3/pr5); multi-process runs
    # pay a fork cost per round, so a single round keeps them honest.
    rounds = 2 if jobs == 1 else 1
    times = []
    graph = None
    for _ in range(rounds):
        start = time.perf_counter()
        graph = explore(
            GlobalContext(prog), PreemptiveSemantics(),
            max_states=MAX_STATES, strict=True, reduce=reduce,
            jobs=jobs,
        )
        times.append(time.perf_counter() - start)
    return graph, min(times)


def _metered_counters(prog, reduce):
    obs.reset()
    obs.configure(metrics=True)
    explore(
        GlobalContext(prog), PreemptiveSemantics(),
        max_states=MAX_STATES, strict=True, reduce=reduce, jobs=2,
    )
    counters = {
        name: obs.counter_value(name)
        for name in (
            "parallel.shards",
            "parallel.batches",
            "parallel.cross_edges",
            "parallel.wire.delta_hits",
            "parallel.wire.full_sends",
            "parallel.wire.base_registrations",
            "parallel.wire.channel_resets",
        )
    }
    counters["parallel.idle_seconds"] = obs.gauge_value(
        "parallel.idle_seconds"
    )
    obs.reset()
    return counters


def _bench_workload(nthreads, reduce):
    prog = lock_counter_system(nthreads).source_program()
    mode = "reduced" if reduce else "full"
    heavy = nthreads == 4 and not reduce
    rows = []
    baseline = None
    sound = True
    for jobs in JOBS:
        graph, best = _explore_timed(prog, reduce, jobs)
        states = graph.state_count()
        row = {
            "jobs": jobs,
            "states": states,
            "seconds": round(best, 4),
            "states_per_second": round(states / best, 1),
        }
        if reduce:
            row["behaviours_fingerprint"] = _fingerprint(
                behaviours(graph, max_events=12, max_nodes=MAX_NODES)
            )
        if jobs == 1:
            baseline = graph
        elif not reduce:
            row["graph_identical_to_sequential"] = _graphs_identical(
                baseline, graph)
            sound = sound and row["graph_identical_to_sequential"]
        rows.append(row)
    if reduce:
        sound = len({r["behaviours_fingerprint"] for r in rows}) == 1
    else:
        # The jobs=1 fingerprint alone suffices (graphs are identical).
        rows[0]["behaviours_fingerprint"] = _fingerprint(
            behaviours(baseline, max_events=12, max_nodes=MAX_NODES)
        )
    fingerprints = {
        r["behaviours_fingerprint"]
        for r in rows if "behaviours_fingerprint" in r
    }
    crossval = fingerprints == {BASELINE_FINGERPRINTS[nthreads]}
    entry = {
        "workload": "lock-counter, {} threads, preemptive".format(
            nthreads),
        "mode": mode,
        "rows": rows,
        "sound_across_jobs": sound,
        "fingerprint_matches_pr3_pr5": crossval,
    }
    sound = sound and crossval
    if not heavy:
        verdicts = {
            drf(prog, MAX_STATES, reduce=reduce, jobs=jobs) is None
            for jobs in JOBS
        }
        entry["drf_verdicts_agree"] = len(verdicts) == 1
        sound = sound and entry["drf_verdicts_agree"]
        entry["metered_jobs2"] = _metered_counters(prog, reduce)
    if not sound:
        raise SystemExit(
            "parallel soundness smoke check failed: "
            "{} threads, {}".format(nthreads, mode)
        )
    return entry


def _measure_wire(prog, stateless):
    if stateless:
        os.environ[ENV_STATELESS] = "1"
    else:
        os.environ.pop(ENV_STATELESS, None)
    try:
        obs.reset()
        obs.configure(metrics=True)
        start = time.perf_counter()
        explore(
            GlobalContext(prog), PreemptiveSemantics(),
            max_states=MAX_STATES, strict=True, reduce=False, jobs=2,
        )
        wall = time.perf_counter() - start
        snap = obs.snapshot()
        counters = snap["counters"]
        hist = snap["histograms"].get("parallel.wire.world_bytes", {})
        row = {
            "mode": "stateless-v1" if stateless else "channel",
            "seconds": round(wall, 4),
            "world_bytes_p50": round(float(hist.get("p50", 0.0)), 2),
            "world_bytes_mean": round(float(hist.get("mean", 0.0)), 2),
            "bytes_out": counters.get("parallel.wire.bytes_out", 0),
            "delta_hits": counters.get("parallel.wire.delta_hits", 0),
            "full_sends": counters.get("parallel.wire.full_sends", 0),
            "base_registrations": counters.get(
                "parallel.wire.base_registrations", 0),
            "channel_resets": counters.get(
                "parallel.wire.channel_resets", 0),
        }
        obs.reset()
        return row
    finally:
        os.environ.pop(ENV_STATELESS, None)


def _wire_child(stateless):
    """Entry point for the per-transport subprocess (see module doc)."""
    prog = lock_counter_system(3).source_program()
    json.dump(_measure_wire(prog, stateless), sys.stdout)
    sys.stdout.write("\n")


def _wire_section():
    rows = {}
    for stateless in (True, False):
        out = subprocess.check_output(
            [
                sys.executable, os.path.abspath(__file__),
                "--wire-child", "1" if stateless else "0",
            ],
        )
        rows[stateless] = json.loads(out)
    stateless, channel = rows[True], rows[False]
    drop = stateless["world_bytes_p50"] / max(
        channel["world_bytes_p50"], 1e-9
    )
    section = {
        "workload": "lock-counter, 3 threads, preemptive",
        "mode": "full",
        "jobs": 2,
        "rows": [stateless, channel],
        "world_bytes_p50_drop": round(drop, 2),
        "target_drop": WIRE_TARGET,
    }
    if drop < WIRE_TARGET or channel["delta_hits"] <= 0:
        raise SystemExit(
            "wire transport target missed: p50 drop {:.2f}x "
            "(target {:.0f}x), delta_hits {}".format(
                drop, WIRE_TARGET, channel["delta_hits"]
            )
        )
    return section


def main():
    if len(sys.argv) > 2 and sys.argv[1] == "--wire-child":
        _wire_child(sys.argv[2] == "1")
        return
    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pr7.json"
    report = {
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "jobs_axis": list(JOBS),
        "note": (
            "wall-clock speedup from --jobs requires real cores; on a "
            "single-core runner the sharded run adds serialization "
            "work with no extra parallelism, so expect jobs>1 rows to "
            "be slower there (see cpu_count). PR 7 shrinks that "
            "serialization work — see the wire section."
        ),
        "wire": _wire_section(),
        "scaling": [
            _bench_workload(n, red)
            for n in THREAD_COUNTS
            for red in (False, True)
        ],
    }
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
