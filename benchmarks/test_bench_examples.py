"""EX21 and EX22 — the paper's running examples as benchmarks.

* Example (2.1): separate compilation of two modules with a
  cross-module call and a shared global (the paper's motivating
  example for Compositional CompCert).
* Example (2.2): lock-synchronized threads, plus the store-reordering
  optimization the accumulated FPmatch admits (``x=1; y=2`` vs
  ``y=2; x=1``).
"""

import pytest

from repro.common.freelist import FreeList
from repro.common.values import VInt
from repro.lang.module import GlobalEnv, ModuleDecl, Program
from repro.langs.cimp import CIMP, parse_module as parse_cimp
from repro.langs.minic import compile_unit, link_units
from repro.semantics import equivalent
from repro.compiler import compile_minic
from repro.framework import ClientSystem, check_gcorrect
from repro.simulation.local import LocalSimulationChecker
from repro.simulation.rg import Mu

from tests.helpers import EXAMPLE_2_2, behaviours_of, done_traces

EX21_M1 = """
extern void g(int*);
int gb = 0;
int f() {
  int a = 0;
  g(&gb);
  return a + gb;
}
void main() { int r; r = f(); print(r); }
"""

EX21_M2 = """
extern int gb;
void g(int *x) { *x = 3; }
"""


def test_ex21_separate_compilation(benchmark):
    def compile_and_check():
        units = [compile_unit(EX21_M1), compile_unit(EX21_M2)]
        mods, genvs, _ = link_units(units)
        results = [compile_minic(m) for m in mods]

        def program(stages):
            return Program(
                [
                    ModuleDecl(s.lang, ge, s.module)
                    for s, ge in zip(stages, genvs)
                ],
                ["main"],
            )

        src = behaviours_of(program([r.source for r in results]))
        tgt = behaviours_of(
            program([r.target for r in results]), max_states=500000
        )
        return src, tgt

    src, tgt = benchmark.pedantic(
        compile_and_check, rounds=1, iterations=1
    )
    assert done_traces(src) == {(3,)}
    assert bool(equivalent(src, tgt))


def test_ex22_gcorrect(benchmark):
    system = ClientSystem(
        [EXAMPLE_2_2], ["thread1", "thread2"], use_lock=True
    )
    result = benchmark.pedantic(
        check_gcorrect, args=(system,),
        kwargs={"max_states": 2000000}, rounds=1, iterations=1,
    )
    assert result.ok, (result.detail, result.premises)


def test_ex22_reordering_admitted(benchmark):
    """The compiler may emit ``y=2; x=1`` for source ``x=1; y=2``
    inside a critical section: accumulated FPmatch accepts it."""
    flist = FreeList.for_thread(0)
    symbols = {"X": 10, "Y": 11}
    src = parse_cimp(
        "body(){ [X] := 1; [Y] := [X] + 1; print(0); }",
        symbols=symbols,
    )
    tgt = parse_cimp(
        "body(){ [Y] := 2; [X] := 1; print(0); }", symbols=symbols
    )
    mem = GlobalEnv(symbols, {10: VInt(0), 11: VInt(0)}).memory()

    def check():
        checker = LocalSimulationChecker(
            CIMP, src, CIMP, tgt, Mu.identity(mem.domain())
        )
        return checker.check_entry("body", (), mem, mem, flist, flist)

    report = benchmark.pedantic(check, rounds=1, iterations=1)
    assert report.ok, report.failures
