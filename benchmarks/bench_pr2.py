"""Benchmark smoke run for the hot-path state machinery.

Times the two workloads the persistent-memory + hash-consing work
targets and writes ``BENCH_pr2.json`` next to the repo root (or to the
path given as argv[1]):

* SCALE — 3-thread lock-counter exploration under preemptive
  scheduling (the dominant tier-2 cost): wall time, state count,
  states/second.
* FIG13 — the per-pass validation-effort table for the 2-thread
  lock-counter system: wall time per build of the 12-pass table.

Also records the intern-table and memory-sharing counters for the
SCALE run so CI artifacts show the machinery is actually engaged.

Usage::

    PYTHONPATH=src:. python benchmarks/bench_pr2.py [out.json]
"""

import json
import sys
import time

from repro.common import intern
from repro.common.memory import STATS as MEM_STATS
from repro.framework import lock_counter_system, per_pass_table
from repro.semantics import GlobalContext, PreemptiveSemantics, explore

SCALE_THREADS = 3
SCALE_ROUNDS = 3
FIG13_ROUNDS = 3


def _bench_scale():
    system = lock_counter_system(SCALE_THREADS)
    prog = system.source_program()
    times = []
    states = None
    for _ in range(SCALE_ROUNDS):
        start = time.perf_counter()
        graph = explore(
            GlobalContext(prog), PreemptiveSemantics(),
            max_states=3000000, strict=True,
        )
        times.append(time.perf_counter() - start)
        states = graph.state_count()
    best = min(times)
    totals = intern.totals()
    hits, misses = totals.hits, totals.misses
    return {
        "workload": "lock-counter, {} threads, preemptive".format(
            SCALE_THREADS),
        "states": states,
        "seconds_best": round(best, 4),
        "seconds_all": [round(t, 4) for t in times],
        "states_per_second": round(states / best, 1),
        "intern_hits": hits,
        "intern_misses": misses,
        "memory_nodes_reused": MEM_STATS.nodes_reused,
        "memory_compactions": MEM_STATS.compactions,
    }


def _bench_fig13():
    system = lock_counter_system(2)
    times = []
    rows = None
    for _ in range(FIG13_ROUNDS):
        start = time.perf_counter()
        rows = per_pass_table(system)
        times.append(time.perf_counter() - start)
    return {
        "workload": "per-pass validation table, 2-thread lock-counter",
        "passes": len(rows),
        "seconds_best": round(min(times), 4),
        "seconds_all": [round(t, 4) for t in times],
    }


def main():
    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pr2.json"
    report = {
        "python": sys.version.split()[0],
        "scale": _bench_scale(),
        "fig13": _bench_fig13(),
    }
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
