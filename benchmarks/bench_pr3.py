"""Benchmark smoke run for footprint-directed partial-order reduction.

Re-runs the PR 2 continuity workloads and adds the POR comparison this
PR is about; writes ``BENCH_pr3.json`` next to the repo root (or to the
path given as argv[1]):

* SCALE — 3-thread lock-counter full exploration (unchanged from PR 2,
  tracks the unreduced baseline across PRs).
* FIG13 — the per-pass validation-effort table for the 2-thread
  lock-counter system.
* POR — lock-counter exploration at 2–4 threads with reduction off and
  on: state counts, wall time, the reduction ratio, and the reducer's
  own counters (ample worlds, steps avoided, proviso re-expansions).
  Behaviour sets are fingerprinted both ways and must agree — the
  benchmark doubles as a soundness smoke check.

Usage::

    PYTHONPATH=src:. python benchmarks/bench_pr3.py [out.json]
"""

import hashlib
import json
import sys
import time

from repro import obs
from repro.framework import lock_counter_system, per_pass_table
from repro.semantics import (
    GlobalContext,
    PreemptiveSemantics,
    behaviours,
    drf,
    explore,
    npdrf,
)

SCALE_THREADS = 3
SCALE_ROUNDS = 3
FIG13_ROUNDS = 3
POR_THREADS = (2, 3, 4)
POR_ROUNDS = 3
POR_MAX_STATES = 3000000


def _bench_scale():
    system = lock_counter_system(SCALE_THREADS)
    prog = system.source_program()
    times = []
    states = None
    for _ in range(SCALE_ROUNDS):
        start = time.perf_counter()
        graph = explore(
            GlobalContext(prog), PreemptiveSemantics(),
            max_states=POR_MAX_STATES, strict=True,
        )
        times.append(time.perf_counter() - start)
        states = graph.state_count()
    best = min(times)
    return {
        "workload": "lock-counter, {} threads, preemptive".format(
            SCALE_THREADS),
        "states": states,
        "seconds_best": round(best, 4),
        "seconds_all": [round(t, 4) for t in times],
        "states_per_second": round(states / best, 1),
    }


def _bench_fig13():
    system = lock_counter_system(2)
    times = []
    rows = None
    for _ in range(FIG13_ROUNDS):
        start = time.perf_counter()
        rows = per_pass_table(system)
        times.append(time.perf_counter() - start)
    return {
        "workload": "per-pass validation table, 2-thread lock-counter",
        "passes": len(rows),
        "seconds_best": round(min(times), 4),
        "seconds_all": [round(t, 4) for t in times],
    }


def _fingerprint(behs):
    digest = hashlib.sha256()
    for line in sorted(repr(b) for b in behs):
        digest.update(line.encode())
        digest.update(b"\n")
    return digest.hexdigest()[:16]


def _explore_timed(prog, reduce):
    times = []
    graph = None
    for _ in range(POR_ROUNDS):
        start = time.perf_counter()
        graph = explore(
            GlobalContext(prog), PreemptiveSemantics(),
            max_states=POR_MAX_STATES, strict=True, reduce=reduce,
        )
        times.append(time.perf_counter() - start)
    return graph, min(times)


def _bench_por(nthreads):
    prog = lock_counter_system(nthreads).source_program()
    full, t_full = _explore_timed(prog, reduce=False)

    # One metered reduced run to capture the reducer counters, then the
    # timed rounds (metrics off, like the full baseline).
    obs.reset()
    obs.configure(metrics=True)
    explore(
        GlobalContext(prog), PreemptiveSemantics(),
        max_states=POR_MAX_STATES, strict=True, reduce=True,
    )
    counters = {
        name: obs.counter_value(name)
        for name in (
            "por.ample_worlds",
            "por.full_expansions",
            "por.proviso_expansions",
            "por.sleep_hits",
            "por.steps_avoided",
        )
    }
    obs.reset()
    red, t_red = _explore_timed(prog, reduce=True)

    # The 4-thread full graph needs far more (state, trace) nodes than
    # the library default before every trace resolves; a truncated
    # enumeration would report spurious ``cut`` disagreements.
    fp_full = _fingerprint(
        behaviours(full, max_events=12, max_nodes=8000000)
    )
    fp_red = _fingerprint(
        behaviours(red, max_events=12, max_nodes=8000000)
    )
    entry = {
        "workload": "lock-counter, {} threads, preemptive".format(
            nthreads),
        "states_full": full.state_count(),
        "states_reduced": red.state_count(),
        "state_ratio": round(red.state_count() / full.state_count(), 4),
        "seconds_full": round(t_full, 4),
        "seconds_reduced": round(t_red, 4),
        "speedup": round(t_full / t_red, 2),
        "behaviours_fingerprint_full": fp_full,
        "behaviours_fingerprint_reduced": fp_red,
        "behaviours_agree": fp_full == fp_red,
        "drf_agree": drf(prog, POR_MAX_STATES, reduce=True)
        == drf(prog, POR_MAX_STATES, reduce=False),
        "npdrf_agree": npdrf(prog, POR_MAX_STATES, reduce=True)
        == npdrf(prog, POR_MAX_STATES, reduce=False),
    }
    entry.update(counters)
    if not entry["behaviours_agree"]:
        raise SystemExit(
            "POR soundness smoke check failed at {} threads".format(
                nthreads)
        )
    return entry


def main():
    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pr3.json"
    report = {
        "python": sys.version.split()[0],
        "scale": _bench_scale(),
        "fig13": _bench_fig13(),
        "por": [_bench_por(n) for n in POR_THREADS],
    }
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
