"""ABL-MEM and ABL-FP — ablations of the paper's two key design
decisions (DESIGN.md §2).

* ABL-MEM: CompCert's shared ``nextblock`` allocation vs the paper's
  disjoint per-thread freelists. With the shared counter, reordering
  two *non-conflicting* allocations from different threads changes the
  resulting states — breaking the commutation lemma behind the
  preemptive/non-preemptive equivalence. Freelists commute.
* ABL-FP: accumulated-segment FPmatch vs per-step (lockstep) footprint
  matching. The lockstep criterion — CompCertTSO's stronger
  requirement — rejects the legal store reordering of example (2.2)
  that the paper's accumulated criterion admits.
"""

import pytest

from repro.common.freelist import FreeList, SharedCounterAllocator
from repro.common.values import VInt
from repro.lang.module import GlobalEnv
from repro.langs.cimp import CIMP, parse_module as parse_cimp
from repro.simulation.local import LocalSimulationChecker
from repro.simulation.rg import Mu


def test_abl_mem_shared_counter_not_commutative(benchmark):
    def measure():
        # Schedule 1: thread A allocates, then thread B.
        alloc = SharedCounterAllocator()
        a1, b1 = alloc.alloc(), alloc.alloc()
        # Schedule 2: thread B allocates, then thread A.
        alloc = SharedCounterAllocator()
        b2, a2 = alloc.alloc(), alloc.alloc()
        return (a1, b1), (a2, b2)

    (a1, b1), (a2, b2) = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    assert (a1, b1) != (a2, b2), (
        "the shared counter hands different addresses under the two "
        "schedules — non-conflicting steps fail to commute"
    )


def test_abl_mem_freelists_commutative(benchmark):
    def measure():
        fa = FreeList.for_thread(0)
        fb = FreeList.for_thread(1)
        # Under any schedule, each thread's n-th allocation is the
        # same address.
        schedule1 = (fa.addr_at(0), fb.addr_at(0))
        schedule2 = (fa.addr_at(0), fb.addr_at(0))
        return schedule1, schedule2

    s1, s2 = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert s1 == s2
    assert s1[0] != s1[1], "and the address spaces stay disjoint"


def _reordered_pair():
    symbols = {"X": 10, "Y": 11}
    src = parse_cimp(
        "body(){ [X] := 1; [Y] := 2; print(0); }", symbols=symbols
    )
    tgt = parse_cimp(
        "body(){ [Y] := 2; [X] := 1; print(0); }", symbols=symbols
    )
    mem = GlobalEnv(symbols, {10: VInt(0), 11: VInt(0)}).memory()
    return src, tgt, mem


@pytest.mark.parametrize("lockstep,expected_ok", [
    (False, True),   # the paper's accumulated FPmatch
    (True, False),   # the CompCertTSO-style per-step criterion
])
def test_abl_fp_accumulation(benchmark, lockstep, expected_ok):
    src, tgt, mem = _reordered_pair()
    flist = FreeList.for_thread(0)

    def check():
        checker = LocalSimulationChecker(
            CIMP, src, CIMP, tgt, Mu.identity(mem.domain()),
            lockstep=lockstep,
        )
        return checker.check_entry("body", (), mem, mem, flist, flist)

    report = benchmark.pedantic(check, rounds=1, iterations=1)
    assert report.ok == expected_ok, report.failures
