"""THM14 — the final theorem of the basic framework (GCorrect):
certified separate compilation of DRF concurrent Clight programs to
x86-SC, with all premises checked.

Shape claims: GCorrect holds on the lock-counter workload across thread
counts; the premises are necessary (racy variant fails the DRF
premise)."""

import pytest

from repro.framework import ClientSystem, check_gcorrect, lock_counter_system

from tests.helpers import EXAMPLE_2_2


@pytest.mark.parametrize("nthreads", [1, 2])
def test_thm14_lock_counter(benchmark, nthreads):
    system = lock_counter_system(nthreads)
    result = benchmark.pedantic(
        check_gcorrect, args=(system,),
        kwargs={"max_states": 1500000}, rounds=1, iterations=1,
    )
    assert result.ok, (result.detail, result.premises)
    assert all(result.premises.values())


def test_thm14_example22(benchmark):
    system = ClientSystem(
        [EXAMPLE_2_2], ["thread1", "thread2"], use_lock=True
    )
    result = benchmark.pedantic(
        check_gcorrect, args=(system,),
        kwargs={"max_states": 2000000}, rounds=1, iterations=1,
    )
    assert result.ok, (result.detail, result.premises)


def test_thm14_racy_premise_fails(benchmark):
    racy = ClientSystem(
        ["int x = 0; void t1() { x = 1; } void t2() { x = 2; }"],
        ["t1", "t2"],
    )
    result = benchmark.pedantic(
        check_gcorrect, args=(racy,), rounds=1, iterations=1
    )
    assert not result.ok
    assert not result.premises["drf"]
