"""WD — well-definedness (Def. 1) of the concrete languages.

The paper proves ``wd`` for Clight, Cminor and x86 in Coq (Sec. 3.1,
7.1). The executable analogue runs the perturbation checker over
executions of a representative module at *every* level of the pipeline
plus CImp, counting zero violations."""

import pytest

from repro.common.freelist import FreeList
from repro.common.memory import Memory
from repro.common.values import VInt
from repro.lang.wd import check_execution_wd
from repro.langs.cimp import CIMP, parse_module as parse_cimp
from repro.langs.minic import compile_unit, link_units
from repro.compiler import compile_minic

FLIST = FreeList.for_thread(0)

SRC = """
int g = 3;
int addg(int a) { return a + g; }
void main() {
  int r;
  r = addg(4);
  g = r * 2;
  print(r);
}
"""

STAGES = [
    "source", "Cshmgen", "Cminorgen", "Selection", "RTLgen",
    "Tailcall", "Renumber", "Allocation", "Tunneling", "Linearize",
    "CleanupLabels", "Stacking", "Asmgen",
]


@pytest.fixture(scope="module")
def compilation():
    mods, genvs, _ = link_units([compile_unit(SRC)])
    return compile_minic(mods[0]), genvs[0].memory()


@pytest.mark.parametrize("stage_name", STAGES)
def test_wd_pipeline_language(benchmark, compilation, stage_name):
    result, mem = compilation
    stage = (
        result.source if stage_name == "source"
        else result.stage(stage_name)
    )

    def check():
        core = stage.lang.init_core(stage.module, "main")
        return check_execution_wd(
            stage.lang, stage.module, core, mem, FLIST, max_steps=150
        )

    violations = benchmark.pedantic(check, rounds=1, iterations=1)
    assert violations == [], (stage.lang.name, violations[:3])


def test_wd_cimp(benchmark):
    module = parse_cimp(
        "main(){ x := [G]; <[G] := x + 1;> "
        "if (x == 0) { print(x); } }",
        symbols={"G": 10},
    )
    mem = Memory({10: VInt(0), 11: VInt(5)})

    def check():
        core = CIMP.init_core(module, "main")
        return check_execution_wd(CIMP, module, core, mem, FLIST)

    violations = benchmark.pedantic(check, rounds=1, iterations=1)
    assert violations == []
