"""THM15 and FIG10 — the extended framework: x86-TSO backend with the
racy TTAS lock (Fig. 10b) against the abstract lock (Fig. 10a).

Shape claims (who wins / where the crossover falls):

* the TSO program with π_lock has real data races (``tso_has_races``);
* yet it ⊑′-refines the SC program with γ_lock (Lem. 16 / Thm 15);
* mutual exclusion survives at every level (no lost updates);
* the TSO machine itself genuinely relaxes SC: the SB litmus exhibits
  (0,0) only under TSO — so the refinement is not vacuous.
"""

import pytest

from repro.framework import check_theorem15, lock_counter_system
from repro.langs.ir.base import IRModule
from repro.langs.x86 import X86SC, X86TSO, X86Function
from repro.langs.x86 import ast as x
from repro.lang.module import GlobalEnv, ModuleDecl, Program
from repro.common.values import VInt
from repro.langs.minic import compile_unit, link_units
from repro.compiler import compile_minic
from repro.tso import (
    DEFAULT_LOCK_ADDR,
    check_object_refinement,
    check_strengthened_drf_guarantee,
    lock_impl,
    lock_spec,
)

from tests.helpers import LOCK_CLIENT, behaviours_of, done_traces


def _built():
    units = [compile_unit(LOCK_CLIENT)]
    mods, genvs, _ = link_units(
        units, extra_symbols={"L": DEFAULT_LOCK_ADDR}
    )
    client = mods[0].with_forbidden({DEFAULT_LOCK_ADDR})
    return compile_minic(client), genvs[0]


def test_thm15_end_to_end(benchmark):
    system = lock_counter_system(2)
    result = benchmark.pedantic(
        check_theorem15, args=(system,),
        kwargs={"max_states": 2000000}, rounds=1, iterations=1,
    )
    assert result.ok, result.detail


def test_fig10_object_refinement(benchmark):
    result_c, genv = _built()
    spec_mod, spec_ge = lock_spec()
    impl_mod, impl_ge = lock_impl()
    verdict = benchmark.pedantic(
        check_object_refinement,
        args=([result_c.target], [genv], impl_mod, impl_ge,
              spec_mod, spec_ge, ["inc", "inc"]),
        kwargs={"max_states": 2000000}, rounds=1, iterations=1,
    )
    assert verdict.ok, verdict.detail
    tso_done = done_traces(verdict.tso_behaviours)
    sc_done = done_traces(verdict.sc_behaviours)
    assert tso_done == sc_done == {(0, 1), (1, 0)}, (
        "mutual exclusion: both increments observed, no lost update"
    )


def test_fig10_strengthened_guarantee(benchmark):
    result_c, genv = _built()
    spec_mod, spec_ge = lock_spec()
    impl_mod, impl_ge = lock_impl()
    verdict = benchmark.pedantic(
        check_strengthened_drf_guarantee,
        args=([result_c.target], [genv], impl_mod, impl_ge,
              spec_mod, spec_ge, ["inc", "inc"]),
        kwargs={"max_states": 2000000}, rounds=1, iterations=1,
    )
    assert verdict.ok, verdict.detail
    assert verdict.premises["tso_has_races"], (
        "the benign races must really be present — otherwise this is "
        "just the plain DRF guarantee"
    )


A, B = 30, 31


def _sb_program(lang):
    def thread(name, mine, other):
        return X86Function(name, 0, [
            x.Pmov_ri("ebx", 1),
            x.Pmov_mr(("global", mine), "ebx"),
            x.Pmov_rm("ecx", ("global", other)),
            x.Pprint("ecx"),
            x.Pmov_ri("eax", 0),
            x.Pret(),
        ])

    module = IRModule(
        {"t1": thread("t1", "a", "b"), "t2": thread("t2", "b", "a")},
        {"a": A, "b": B},
    )
    ge = GlobalEnv({"a": A, "b": B}, {A: VInt(0), B: VInt(0)})
    return Program([ModuleDecl(lang, ge, module)], ["t1", "t2"])


def test_sb_litmus_crossover(benchmark):
    """The SC/TSO crossover: (0,0) appears exactly when buffering is
    enabled — the machine-model axis of the paper's Fig. 3."""

    def measure():
        sc = done_traces(behaviours_of(_sb_program(X86SC)))
        tso = done_traces(
            behaviours_of(_sb_program(X86TSO), max_states=400000)
        )
        return sc, tso

    sc, tso = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert (0, 0) not in sc
    assert (0, 0) in tso
    assert sc <= tso
    print("\n[THM15] SB litmus: SC traces={} TSO traces={}".format(
        sorted(sc), sorted(tso)))
