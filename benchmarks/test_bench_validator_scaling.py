"""VSCALE — translation-validation cost vs. program size.

Sweeps straight-line programs of N assignments through the full
pipeline and the validator, recording obligations and time. Shape
claims: obligations grow linearly with observation points, validator
work grows roughly linearly with program size (co-execution is
single-pass per segment) — the property that makes per-module
validation practical, mirroring the paper's "less than one person week
per pass" scalability story."""

import pytest

from repro.langs.minic import compile_unit, link_units
from repro.compiler import compile_minic
from repro.simulation.validate import validate_compilation


def _program(n):
    body = []
    for i in range(n):
        body.append("g = g + {};".format(i % 3 + 1))
        if i % 4 == 3:
            body.append("print(g);")
    return "int g = 0;\nvoid main() {\n" + "\n".join(body) + "\n}\n"


@pytest.mark.parametrize("size", [4, 16, 64])
def test_validator_scaling(benchmark, size):
    mods, genvs, _ = link_units([compile_unit(_program(size))])
    mem = genvs[0].memory()

    def run():
        result = compile_minic(mods[0], optimize=True)
        return validate_compilation(result, mem, mem.domain())

    validations = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(v.ok for v in validations)
    total_msgs = sum(
        v.report.stats.messages_matched for v in validations
    )
    total_steps = sum(
        v.report.stats.src_steps + v.report.stats.tgt_steps
        for v in validations
    )
    print("\n[VSCALE] size={}: msgs={} steps={}".format(
        size, total_msgs, total_steps))
    # Observation points scale with the number of prints.
    assert total_msgs >= size // 4
