"""FIG2-5b — the whole-program simulation relation, constructed
explicitly (greatest fixpoint on the explored graphs).

Complements FIG2-5's behaviour-set check with the object the paper
actually builds: the downward simulation ``P ≼ P̄`` and its flip
(step ④). Shape claims: both directions hold for compiled programs
(flip valid because targets are deterministic); a behaviour-superset
target simulates downward but not flipped — determinism is what makes
④ sound."""

import pytest

from repro.semantics import NonPreemptiveSemantics, PreemptiveSemantics
from repro.simulation.wholeprog import (
    check_simulation_and_flip,
    check_whole_program_simulation,
)
from repro.framework import ClientSystem, lock_counter_system

from tests.helpers import SUITE, cimp_program


@pytest.mark.parametrize("name", sorted(SUITE))
def test_wholeprog_sim_sequential(benchmark, name):
    system = ClientSystem([SUITE[name]], ["main"])
    src = system.source_program()
    tgt = system.sc_program()

    def check():
        return check_simulation_and_flip(
            src, tgt, NonPreemptiveSemantics()
        )

    down, up = benchmark.pedantic(check, rounds=1, iterations=1)
    assert down and up, (name, down, up)


def test_wholeprog_sim_lock_counter(benchmark):
    system = lock_counter_system(1)
    src = system.source_program()
    tgt = system.sc_program()

    def check():
        return check_simulation_and_flip(
            src, tgt, NonPreemptiveSemantics()
        )

    down, up = benchmark.pedantic(check, rounds=1, iterations=1)
    assert down and up
    print("\n[FIG2-5b] lock-counter(1): |R_down|={} |R_up|={}".format(
        down.relation_size, up.relation_size))


def test_wholeprog_flip_needs_determinism(benchmark):
    src = cimp_program("t1(){ print(0); }", ["t1"])
    tgt = cimp_program(
        "t1(){ x := [C]; print(x); } t2(){ [C] := 1; }",
        ["t1", "t2"],
    )

    def check():
        down = check_whole_program_simulation(
            src, tgt, PreemptiveSemantics()
        )
        up = check_whole_program_simulation(
            tgt, src, PreemptiveSemantics()
        )
        return down, up

    down, up = benchmark.pedantic(check, rounds=1, iterations=1)
    assert down and not up
