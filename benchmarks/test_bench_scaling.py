"""SCALE — state-space growth with thread count (extension study).

The paper has no performance evaluation (its costs are proof-effort);
for the executable reproduction, exploration cost is the limiting
resource, so we record how the reachable world count grows with thread
count and abstraction level for the lock-counter workload.

Shape claims: growth is exponential in threads (as expected of explicit
interleaving exploration); each abstraction level multiplies the space
(source < x86-SC < x86-TSO — finer steps and store-buffer contents);
and the 2-thread Thm 14/15 checks stay comfortably in budget.
"""

import pytest

from repro.framework import lock_counter_system
from repro.semantics import GlobalContext, PreemptiveSemantics, explore


@pytest.mark.parametrize("nthreads", [1, 2, 3])
def test_scaling_source(benchmark, nthreads):
    system = lock_counter_system(nthreads)
    prog = system.source_program()

    def measure():
        return explore(
            GlobalContext(prog), PreemptiveSemantics(),
            max_states=3000000, strict=True,
        ).state_count()

    states = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\n[SCALE] source, {} thread(s): {} states".format(
        nthreads, states))
    assert states > 0


@pytest.mark.parametrize("nthreads", [1, 2])
def test_scaling_levels(benchmark, nthreads):
    system = lock_counter_system(nthreads)
    programs = [
        ("source", system.source_program()),
        ("x86-SC", system.sc_program()),
        ("x86-TSO", system.tso_program()),
    ]

    def measure():
        return [
            (
                name,
                explore(
                    GlobalContext(prog), PreemptiveSemantics(),
                    max_states=3000000, strict=True,
                ).state_count(),
            )
            for name, prog in programs
        ]

    counts = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\n[SCALE] {} thread(s): {}".format(nthreads, counts))
    by_name = dict(counts)
    assert by_name["source"] <= by_name["x86-SC"] <= by_name["x86-TSO"], (
        "each refinement level enlarges the state space"
    )
