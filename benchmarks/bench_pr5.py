"""Benchmark run for process-parallel frontier-sharded exploration.

Explores the 3- and 4-thread lock-counter systems at ``jobs ∈ {1, 2,
4}`` with partial-order reduction off and on, and writes
``BENCH_pr5.json`` next to the repo root (or to the path given as
argv[1]):

* per (workload, mode, jobs): state count, wall time and
  states/second. The ``jobs=1`` rows use the same fingerprint format
  as BENCH_pr3 (sha256 over sorted behaviour reprs), so they are
  directly comparable to the PR 3 baseline.
* soundness smoke: in full mode every parallel graph must be
  *bit-identical* to the sequential one (states, numbering, edges,
  classification sets) — checked directly, which is both stronger and
  far cheaper than re-enumerating behaviours per jobs value. In POR
  mode the reduced state set may legitimately differ across shard
  counts, so behaviour fingerprints are compared instead. DRF verdict
  agreement is checked wherever it does not require re-exploring the
  4-thread full graph twice more.
* per (workload, mode): a metered ``jobs=2`` run's parallel counters
  (``parallel.batches``, ``parallel.cross_edges``,
  ``parallel.idle_seconds``) — the data behind the serialization-batch
  overhead crossover discussed in EXPERIMENTS.md. Skipped for the
  4-thread full graph (it would double the most expensive leg).
* ``cpu_count`` — parallel exploration cannot beat sequential on a
  single-core runner (every cross-shard edge adds pickling work but no
  extra parallelism), so the artifact records the core count and
  reports honest numbers instead of a synthetic speedup.

The benchmark exits non-zero if any graph, fingerprint or DRF verdict
disagrees across the jobs axis.

Usage::

    PYTHONPATH=src:. python benchmarks/bench_pr5.py [out.json]
"""

import hashlib
import json
import os
import sys
import time

from repro import obs
from repro.framework import lock_counter_system
from repro.semantics import (
    GlobalContext,
    PreemptiveSemantics,
    behaviours,
    drf,
    explore,
)

JOBS = (1, 2, 4)
THREAD_COUNTS = (3, 4)
MAX_STATES = 3000000
MAX_NODES = 8000000  # behaviour enumeration bound (see bench_pr3)


def _fingerprint(behs):
    digest = hashlib.sha256()
    for line in sorted(repr(b) for b in behs):
        digest.update(line.encode())
        digest.update(b"\n")
    return digest.hexdigest()[:16]


def _graphs_identical(g1, g2):
    return (
        g1.states == g2.states
        and g1.ids == g2.ids
        and g1.edges == g2.edges
        and g1.done == g2.done
        and g1.stuck == g2.stuck
        and g1.truncated == g2.truncated
    )


def _explore_timed(prog, reduce, jobs):
    # Best-of-2 for jobs=1 (matches bench_pr3); the multi-process runs
    # pay a fork+serialize cost per round, so a single round keeps the
    # benchmark honest and quick.
    rounds = 2 if jobs == 1 else 1
    times = []
    graph = None
    for _ in range(rounds):
        start = time.perf_counter()
        graph = explore(
            GlobalContext(prog), PreemptiveSemantics(),
            max_states=MAX_STATES, strict=True, reduce=reduce,
            jobs=jobs,
        )
        times.append(time.perf_counter() - start)
    return graph, min(times)


def _metered_counters(prog, reduce):
    obs.reset()
    obs.configure(metrics=True)
    explore(
        GlobalContext(prog), PreemptiveSemantics(),
        max_states=MAX_STATES, strict=True, reduce=reduce, jobs=2,
    )
    counters = {
        name: obs.counter_value(name)
        for name in (
            "parallel.shards",
            "parallel.batches",
            "parallel.cross_edges",
        )
    }
    # Durations are gauges since PR 6 (counters are integer-minded
    # monotone event counts); keep the key name the old artifacts used.
    counters["parallel.idle_seconds"] = obs.gauge_value(
        "parallel.idle_seconds"
    )
    obs.reset()
    return counters


def _bench_workload(nthreads, reduce):
    prog = lock_counter_system(nthreads).source_program()
    mode = "reduced" if reduce else "full"
    heavy = nthreads == 4 and not reduce
    rows = []
    baseline = None
    sound = True
    for jobs in JOBS:
        graph, best = _explore_timed(prog, reduce, jobs)
        states = graph.state_count()
        row = {
            "jobs": jobs,
            "states": states,
            "seconds": round(best, 4),
            "states_per_second": round(states / best, 1),
        }
        if reduce:
            row["behaviours_fingerprint"] = _fingerprint(
                behaviours(graph, max_events=12, max_nodes=MAX_NODES)
            )
        if jobs == 1:
            baseline = graph
        elif not reduce:
            row["graph_identical_to_sequential"] = _graphs_identical(
                baseline, graph)
            sound = sound and row["graph_identical_to_sequential"]
        rows.append(row)
    if reduce:
        sound = len({r["behaviours_fingerprint"] for r in rows}) == 1
    else:
        # The jobs=1 fingerprint alone suffices (graphs are identical).
        rows[0]["behaviours_fingerprint"] = _fingerprint(
            behaviours(baseline, max_events=12, max_nodes=MAX_NODES)
        )
    entry = {
        "workload": "lock-counter, {} threads, preemptive".format(
            nthreads),
        "mode": mode,
        "rows": rows,
        "sound_across_jobs": sound,
    }
    if not heavy:
        verdicts = {
            drf(prog, MAX_STATES, reduce=reduce, jobs=jobs) is None
            for jobs in JOBS
        }
        entry["drf_verdicts_agree"] = len(verdicts) == 1
        sound = sound and entry["drf_verdicts_agree"]
        entry["metered_jobs2"] = _metered_counters(prog, reduce)
    if not sound:
        raise SystemExit(
            "parallel soundness smoke check failed: "
            "{} threads, {}".format(nthreads, mode)
        )
    return entry


def main():
    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pr5.json"
    report = {
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "jobs_axis": list(JOBS),
        "note": (
            "wall-clock speedup from --jobs requires real cores; on a "
            "single-core runner the sharded run adds serialization "
            "work with no extra parallelism, so expect jobs>1 rows to "
            "be slower there (see cpu_count)"
        ),
        "scaling": [
            _bench_workload(n, red)
            for n in THREAD_COUNTS
            for red in (False, True)
        ],
    }
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
