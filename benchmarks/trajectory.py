"""Perf-trajectory gate over the committed ``BENCH_*.json`` artifacts.

Every perf-focused PR commits a ``BENCH_pr<N>.json`` snapshot (see
``benchmarks/bench_pr*.py``). Individually each file is a point; this
module reads them *as a sequence* and answers the question a reviewer
actually has: **is the repo getting slower?**

It works in three steps:

1. **Discover** — glob ``BENCH_pr*.json`` in the repo root, ordered by
   PR number.
2. **Extract** — normalise each file's sections into named series.
   The schemas differ per PR (``scale`` / ``fig13`` tables in pr2-3, a
   ``scaling`` jobs-axis in pr5), so extraction maps them onto shared
   workload keys: a pr5 ``jobs=1`` full-exploration row continues the
   same ``states_per_second`` series the pr2 ``scale`` table started;
   reduced-mode and ``jobs>1`` rows become their own suffixed series.
   Each series carries a *direction* — ``states_per_second`` is
   higher-is-better, ``seconds_best`` lower-is-better.
3. **Gate** — for every series, compare the newest point against its
   predecessor (``--all`` checks every consecutive transition) and
   fail when the regression exceeds ``--tolerance`` (default 0.4:
   benchmark runners are noisy and PRs legitimately trade raw speed
   for features, so only a >40% cliff fails the gate — the *report*
   still shows every delta).

Run it from CI (see ``.github/workflows/ci.yml``, job ``perf-gate``)::

    python benchmarks/trajectory.py --report trajectory.txt

Exit codes follow the CLI contract: 0 — no gated regression; 1 — a
series regressed beyond tolerance; 2 — usage error (no BENCH files,
unreadable JSON).
"""

import argparse
import glob
import json
import os
import re
import sys

#: Metric name -> True when larger values are better.
DIRECTIONS = {
    "states_per_second": True,
    "seconds_best": False,
}

_PR_RE = re.compile(r"BENCH_pr(\d+)\.json$")


def discover(root):
    """``[(pr_number, path)]`` for the committed bench artifacts."""
    out = []
    for path in glob.glob(os.path.join(root, "BENCH_pr*.json")):
        match = _PR_RE.search(os.path.basename(path))
        if match:
            out.append((int(match.group(1)), path))
    return sorted(out)


def extract_series(data):
    """Normalise one BENCH file into ``{(workload, metric): value}``."""
    series = {}

    def put(workload, metric, value):
        if value is not None:
            series[(workload, metric)] = float(value)

    scale = data.get("scale")
    if isinstance(scale, dict):
        wl = scale.get("workload", "scale")
        put(wl, "states_per_second", scale.get("states_per_second"))
        put(wl, "seconds_best", scale.get("seconds_best"))
    fig13 = data.get("fig13")
    if isinstance(fig13, dict):
        wl = fig13.get("workload", "fig13")
        put(wl, "seconds_best", fig13.get("seconds_best"))
    for entry in data.get("scaling") or []:
        wl = entry.get("workload", "scaling")
        if entry.get("mode") == "reduced":
            wl += " [reduced]"
        for row in entry.get("rows") or []:
            jobs = row.get("jobs", 1)
            key = wl if jobs == 1 else "{} [jobs={}]".format(wl, jobs)
            put(key, "states_per_second", row.get("states_per_second"))
    return series


def build_trajectories(root):
    """``{(workload, metric): [(pr, value), ...]}`` across all files."""
    found = discover(root)
    if not found:
        raise FileNotFoundError(
            "no BENCH_pr*.json artifacts under {}".format(root)
        )
    trajectories = {}
    for pr, path in found:
        with open(path) as handle:
            data = json.load(handle)
        for key, value in extract_series(data).items():
            trajectories.setdefault(key, []).append((pr, value))
    return trajectories


# The delta semantics live in repro.obs.ledger (``repro compare``
# shares them); this script must also run bare from CI without
# PYTHONPATH, so fall back to wiring up ../src ourselves.
try:
    from repro.obs.ledger import ratio_delta as _delta
except ImportError:
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), "..", "src")
    )
    from repro.obs.ledger import ratio_delta as _delta


def find_regressions(trajectories, tolerance, check_all=False):
    """``[(workload, metric, pr_from, pr_to, delta)]`` beyond tolerance.

    By default only each series' newest transition is gated — older
    transitions were already gated by the PRs that introduced them,
    and re-failing history would make the gate impossible to satisfy.
    """
    out = []
    for (workload, metric), points in sorted(trajectories.items()):
        if len(points) < 2:
            continue
        higher = DIRECTIONS.get(metric, True)
        pairs = zip(points, points[1:]) if check_all else [points[-2:]]
        for (pr_a, va), (pr_b, vb) in pairs:
            delta = _delta(va, vb, higher)
            if delta < -tolerance:
                out.append((workload, metric, pr_a, pr_b, delta))
    return out


def render_report(trajectories, regressions, tolerance):
    """The trend report: one line per series, newest delta annotated.

    Failures key on the *transition* ``(workload, metric, pr_a,
    pr_b)``, not the series: under ``--all`` a historical regression
    annotates its own arrow in the path, and the trailing status
    describes the newest transition only — a series whose latest
    point improved is not stamped ``REGRESSED`` for old history.
    """
    failed = {
        (workload, metric, pr_a, pr_b)
        for workload, metric, pr_a, pr_b, _d in regressions
    }
    lines = [
        "perf trajectory ({} series, tolerance {:.0%}):".format(
            len(trajectories), tolerance
        ),
        "",
    ]
    for (workload, metric), points in sorted(trajectories.items()):
        higher = DIRECTIONS.get(metric, True)
        parts = ["pr{}:{:g}".format(points[0][0], points[0][1])]
        for (pr_a, va), (pr_b, vb) in zip(points, points[1:]):
            if (workload, metric, pr_a, pr_b) in failed:
                arrow = " -[REGRESSED {:+.1%}]-> ".format(
                    _delta(va, vb, higher)
                )
            else:
                arrow = " -> "
            parts.append(arrow)
            parts.append("pr{}:{:g}".format(pr_b, vb))
        path = "".join(parts)
        if len(points) >= 2:
            (pr_a, va), (pr_b, vb) = points[-2], points[-1]
            delta = _delta(va, vb, higher)
            newest_failed = (workload, metric, pr_a, pr_b) in failed
            status = "REGRESSED" if newest_failed else (
                "ok ({}{:.1%})".format("+" if delta >= 0 else "", delta)
            )
        else:
            status = "single point"
        lines.append(
            "  {} / {} [{}]".format(
                workload, metric,
                "higher is better" if higher else "lower is better",
            )
        )
        lines.append("      {}   {}".format(path, status))
    if regressions:
        lines.append("")
        lines.append("regressions beyond tolerance:")
        for workload, metric, pr_a, pr_b, delta in regressions:
            lines.append(
                "  {} / {}: pr{} -> pr{} changed {:.1%} "
                "(tolerance {:.0%})".format(
                    workload, metric, pr_a, pr_b, delta, tolerance
                )
            )
    else:
        lines.append("")
        lines.append("no regression beyond tolerance.")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="gate the committed BENCH_*.json perf trajectory"
    )
    parser.add_argument(
        "--dir", default=os.path.join(os.path.dirname(__file__), ".."),
        help="directory holding BENCH_pr*.json (default: repo root)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.4, metavar="FRAC",
        help="allowed relative regression per transition (default 0.4)",
    )
    parser.add_argument(
        "--all", action="store_true",
        help="gate every consecutive transition, not just the newest",
    )
    parser.add_argument(
        "--json", metavar="FILE",
        help="also write trajectories + regressions as JSON",
    )
    parser.add_argument(
        "--report", metavar="FILE",
        help="also write the trend report to FILE",
    )
    args = parser.parse_args(argv)
    try:
        trajectories = build_trajectories(os.path.abspath(args.dir))
    except (FileNotFoundError, ValueError) as exc:
        print("trajectory: error: {}".format(exc), file=sys.stderr)
        return 2
    regressions = find_regressions(
        trajectories, args.tolerance, check_all=args.all
    )
    report = render_report(trajectories, regressions, args.tolerance)
    print(report)
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(report + "\n")
    if args.json:
        payload = {
            "tolerance": args.tolerance,
            "series": [
                {
                    "workload": workload,
                    "metric": metric,
                    "higher_is_better": DIRECTIONS.get(metric, True),
                    "points": [
                        {"pr": pr, "value": value}
                        for pr, value in points
                    ],
                }
                for (workload, metric), points in sorted(
                    trajectories.items()
                )
            ],
            "regressions": [
                {
                    "workload": workload,
                    "metric": metric,
                    "from_pr": pr_a,
                    "to_pr": pr_b,
                    "delta": delta,
                }
                for workload, metric, pr_a, pr_b, delta in regressions
            ],
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
