"""Abstract syntax of CImp, the object source language (Sec. 7.1).

CImp is the "simple imperative language" the paper uses to write
abstract specifications of synchronization objects (Fig. 10a). It has
thread-local registers, loads/stores on shared memory (``[e]``), atomic
blocks ``< c >`` that execute without interruption, and ``assert``.

All AST nodes are immutable and hashable (they appear inside core
states, which label graph nodes). Hashes are cached per node: core
states carry continuation tuples of statements, and the explorer hashes
those tuples once per new core — without caching, every core hash would
re-walk the remaining program recursively.
"""


class _Node:
    """Shared machinery: immutability and a lazily cached hash over the
    subclass's ``_key()`` tuple."""

    __slots__ = ("_hash",)

    def __setattr__(self, name, value):
        raise AttributeError("AST nodes are immutable")

    def __hash__(self):
        try:
            return self._hash
        except AttributeError:
            h = hash(self._key())
            object.__setattr__(self, "_hash", h)
            return h


class Expr(_Node):
    """Base class of CImp expressions (pure except for loads)."""

    __slots__ = ()


class Const(Expr):
    """An integer literal."""

    __slots__ = ("n",)

    def __init__(self, n):
        object.__setattr__(self, "n", n)

    def __eq__(self, other):
        return isinstance(other, Const) and self.n == other.n

    __hash__ = _Node.__hash__

    def _key(self):
        return ("Const", self.n)

    def __repr__(self):
        return "Const({})".format(self.n)


class Var(Expr):
    """A thread-local register, or a global symbol (resolved at runtime:
    register bindings shadow symbols; an unbound symbol denotes its
    address, so ``[L]`` loads from the address of global ``L``)."""

    __slots__ = ("name",)

    def __init__(self, name):
        object.__setattr__(self, "name", name)

    def __eq__(self, other):
        return isinstance(other, Var) and self.name == other.name

    __hash__ = _Node.__hash__

    def _key(self):
        return ("Var", self.name)

    def __repr__(self):
        return "Var({!r})".format(self.name)


class Load(Expr):
    """A memory read ``[e]``."""

    __slots__ = ("addr",)

    def __init__(self, addr):
        object.__setattr__(self, "addr", addr)

    def __eq__(self, other):
        return isinstance(other, Load) and self.addr == other.addr

    __hash__ = _Node.__hash__

    def _key(self):
        return ("Load", self.addr)

    def __repr__(self):
        return "Load({!r})".format(self.addr)


class Bin(Expr):
    """A binary operation ``e1 op e2``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __eq__(self, other):
        return (
            isinstance(other, Bin)
            and self.op == other.op
            and self.left == other.left
            and self.right == other.right
        )

    __hash__ = _Node.__hash__

    def _key(self):
        return ("Bin", self.op, self.left, self.right)

    def __repr__(self):
        return "Bin({!r}, {!r}, {!r})".format(self.op, self.left, self.right)


class Un(Expr):
    """A unary operation ``op e``."""

    __slots__ = ("op", "arg")

    def __init__(self, op, arg):
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "arg", arg)

    def __eq__(self, other):
        return (
            isinstance(other, Un)
            and self.op == other.op
            and self.arg == other.arg
        )

    __hash__ = _Node.__hash__

    def _key(self):
        return ("Un", self.op, self.arg)

    def __repr__(self):
        return "Un({!r}, {!r})".format(self.op, self.arg)


class Stmt(_Node):
    """Base class of CImp statements."""

    __slots__ = ()


class Skip(Stmt):
    __slots__ = ()

    def __eq__(self, other):
        return isinstance(other, Skip)

    __hash__ = _Node.__hash__

    def _key(self):
        return ("Skip",)

    def __repr__(self):
        return "Skip()"


class Assign(Stmt):
    """``r := e`` — write a thread-local register."""

    __slots__ = ("var", "expr")

    def __init__(self, var, expr):
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "expr", expr)

    def __eq__(self, other):
        return (
            isinstance(other, Assign)
            and self.var == other.var
            and self.expr == other.expr
        )

    __hash__ = _Node.__hash__

    def _key(self):
        return ("Assign", self.var, self.expr)

    def __repr__(self):
        return "Assign({!r}, {!r})".format(self.var, self.expr)


class Store(Stmt):
    """``[e1] := e2`` — write shared memory."""

    __slots__ = ("addr", "expr")

    def __init__(self, addr, expr):
        object.__setattr__(self, "addr", addr)
        object.__setattr__(self, "expr", expr)

    def __eq__(self, other):
        return (
            isinstance(other, Store)
            and self.addr == other.addr
            and self.expr == other.expr
        )

    __hash__ = _Node.__hash__

    def _key(self):
        return ("Store", self.addr, self.expr)

    def __repr__(self):
        return "Store({!r}, {!r})".format(self.addr, self.expr)


class Seq(Stmt):
    """A statement sequence."""

    __slots__ = ("stmts",)

    def __init__(self, stmts):
        object.__setattr__(self, "stmts", tuple(stmts))

    def __eq__(self, other):
        return isinstance(other, Seq) and self.stmts == other.stmts

    __hash__ = _Node.__hash__

    def _key(self):
        return ("Seq", self.stmts)

    def __repr__(self):
        return "Seq({!r})".format(list(self.stmts))


class If(Stmt):
    __slots__ = ("cond", "then", "els")

    def __init__(self, cond, then, els):
        object.__setattr__(self, "cond", cond)
        object.__setattr__(self, "then", then)
        object.__setattr__(self, "els", els)

    def __eq__(self, other):
        return (
            isinstance(other, If)
            and self.cond == other.cond
            and self.then == other.then
            and self.els == other.els
        )

    __hash__ = _Node.__hash__

    def _key(self):
        return ("If", self.cond, self.then, self.els)

    def __repr__(self):
        return "If({!r}, {!r}, {!r})".format(self.cond, self.then, self.els)


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond, body):
        object.__setattr__(self, "cond", cond)
        object.__setattr__(self, "body", body)

    def __eq__(self, other):
        return (
            isinstance(other, While)
            and self.cond == other.cond
            and self.body == other.body
        )

    __hash__ = _Node.__hash__

    def _key(self):
        return ("While", self.cond, self.body)

    def __repr__(self):
        return "While({!r}, {!r})".format(self.cond, self.body)


class Assert(Stmt):
    """``assert(e)`` — aborts when false (Fig. 10a)."""

    __slots__ = ("cond",)

    def __init__(self, cond):
        object.__setattr__(self, "cond", cond)

    def __eq__(self, other):
        return isinstance(other, Assert) and self.cond == other.cond

    __hash__ = _Node.__hash__

    def _key(self):
        return ("Assert", self.cond)

    def __repr__(self):
        return "Assert({!r})".format(self.cond)


class Atomic(Stmt):
    """``< c >`` — an atomic block."""

    __slots__ = ("body",)

    def __init__(self, body):
        object.__setattr__(self, "body", body)

    def __eq__(self, other):
        return isinstance(other, Atomic) and self.body == other.body

    __hash__ = _Node.__hash__

    def _key(self):
        return ("Atomic", self.body)

    def __repr__(self):
        return "Atomic({!r})".format(self.body)


class Return(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr=None):
        object.__setattr__(self, "expr", expr)

    def __eq__(self, other):
        return isinstance(other, Return) and self.expr == other.expr

    __hash__ = _Node.__hash__

    def _key(self):
        return ("Return", self.expr)

    def __repr__(self):
        return "Return({!r})".format(self.expr)


class Print(Stmt):
    """``print(e)`` — emit an observable event."""

    __slots__ = ("expr",)

    def __init__(self, expr):
        object.__setattr__(self, "expr", expr)

    def __eq__(self, other):
        return isinstance(other, Print) and self.expr == other.expr

    __hash__ = _Node.__hash__

    def _key(self):
        return ("Print", self.expr)

    def __repr__(self):
        return "Print({!r})".format(self.expr)


class Spawn(Stmt):
    """``spawn f;`` — start a new thread running function ``f``."""

    __slots__ = ("fname",)

    def __init__(self, fname):
        object.__setattr__(self, "fname", fname)

    def __eq__(self, other):
        return isinstance(other, Spawn) and self.fname == other.fname

    __hash__ = _Node.__hash__

    def _key(self):
        return ("Spawn", self.fname)

    def __repr__(self):
        return "Spawn({!r})".format(self.fname)


class Function:
    """A CImp function: parameter names plus a body statement."""

    __slots__ = ("name", "params", "body")

    def __init__(self, name, params, body):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "params", tuple(params))
        object.__setattr__(self, "body", body)

    def __setattr__(self, name, value):
        raise AttributeError("Function is immutable")

    def __eq__(self, other):
        return (
            isinstance(other, Function)
            and self.name == other.name
            and self.params == other.params
            and self.body == other.body
        )

    def __hash__(self):
        return hash(("Function", self.name, self.params, self.body))

    def __repr__(self):
        return "Function({!r}, params={!r})".format(self.name, self.params)


class CImpModule:
    """A CImp module ``π``: functions, symbol table, owned data region.

    ``symbols`` maps global names to addresses. ``owned`` is the set of
    shared addresses this object module exclusively owns — the paper's
    permission partition (Sec. 7.1): clients have no permission on
    these, and the CImp module itself must only access owned addresses
    (it aborts otherwise).
    """

    __slots__ = ("functions", "symbols", "owned")

    def __init__(self, functions, symbols=None, owned=()):
        object.__setattr__(
            self, "functions", {f.name: f for f in functions}
        )
        object.__setattr__(self, "symbols", dict(symbols or {}))
        object.__setattr__(self, "owned", frozenset(owned))

    def __setattr__(self, name, value):
        raise AttributeError("CImpModule is immutable")

    def __repr__(self):
        return "CImpModule({})".format(sorted(self.functions))
