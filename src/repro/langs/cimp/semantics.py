"""Footprint-instrumented small-step semantics of CImp.

Each statement executes in one silent step (loads inside its expressions
contribute to the read set), except atomic blocks, whose entry and exit
are separate ``EntAtom``/``ExtAtom`` steps (Fig. 7) with empty footprints
and unchanged memory, exactly as the global EntAt/ExtAt rules require.

Permission discipline (Sec. 7.1): when a module declares an ``owned``
region, every memory access must fall inside it — the object's data is
invisible to clients and the object touches nothing else. Accessing an
unallocated address or asserting a false condition aborts.

CImp is deterministic: ``step`` always returns at most one outcome.
"""

from repro.common.errors import SemanticsError
from repro.common.footprint import EMP, Footprint
from repro.common.immutables import EMPTY_MAP, ImmutableMap
from repro.common.values import BINOPS, UNOPS, VInt, VPtr, VUndef
from repro.lang.interface import ModuleLanguage
from repro.lang.messages import (
    ENT_ATOM,
    EXT_ATOM,
    TAU,
    EventMsg,
    RetMsg,
    SpawnMsg,
)
from repro.lang.steps import Step, StepAbort
from repro.langs.cimp import ast

#: Continuation marker closing an atomic block.
EXIT_ATOM_MARK = "exit-atom"


class CImpCore:
    """A CImp core: registers, continuation, termination flag."""

    __slots__ = ("regs", "kont", "done", "_hash")

    def __init__(self, regs=EMPTY_MAP, kont=(), done=False):
        object.__setattr__(self, "regs", regs)
        object.__setattr__(self, "kont", tuple(kont))
        object.__setattr__(self, "done", done)

    def __setattr__(self, name, value):
        raise AttributeError("CImpCore is immutable")

    def __eq__(self, other):
        if self is other:
            return True
        return (
            isinstance(other, CImpCore)
            and self.regs == other.regs
            and self.kont == other.kont
            and self.done == other.done
        )

    def __hash__(self):
        # Cached: the continuation can be deep, and every World/Frame
        # hash would otherwise re-walk it.
        try:
            return self._hash
        except AttributeError:
            h = hash((self.regs, self.kont, self.done))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self):
        return "CImpCore(kont_len={}, done={})".format(
            len(self.kont), self.done
        )


class _EvalAbort(Exception):
    """Internal: expression evaluation hit undefined behaviour."""

    def __init__(self, reason):
        super().__init__(reason)
        self.reason = reason


def _check_access(module, addr):
    if module.owned and addr not in module.owned:
        raise _EvalAbort(
            "object accessed non-owned address {}".format(addr)
        )


def _eval(module, regs, mem, expr, rs):
    """Evaluate ``expr``; loads extend ``rs``; raises ``_EvalAbort``."""
    if isinstance(expr, ast.Const):
        return VInt(expr.n)
    if isinstance(expr, ast.Var):
        if expr.name in regs:
            return regs[expr.name]
        addr = module.symbols.get(expr.name)
        if addr is None:
            raise _EvalAbort("unbound identifier {!r}".format(expr.name))
        return VPtr(addr)
    if isinstance(expr, ast.Load):
        ptr = _eval(module, regs, mem, expr.addr, rs)
        if not isinstance(ptr, VPtr):
            raise _EvalAbort("load from non-pointer {!r}".format(ptr))
        _check_access(module, ptr.addr)
        rs.add(ptr.addr)
        value = mem.load(ptr.addr)
        if value is None:
            raise _EvalAbort("load from unallocated {}".format(ptr.addr))
        return value
    if isinstance(expr, ast.Bin):
        left = _eval(module, regs, mem, expr.left, rs)
        right = _eval(module, regs, mem, expr.right, rs)
        result = BINOPS[expr.op](left, right)
        if result is VUndef:
            raise _EvalAbort(
                "undefined result of {!r}".format(expr.op)
            )
        return result
    if isinstance(expr, ast.Un):
        arg = _eval(module, regs, mem, expr.arg, rs)
        result = UNOPS[expr.op](arg)
        if result is VUndef:
            raise _EvalAbort("undefined result of {!r}".format(expr.op))
        return result
    raise SemanticsError("unknown CImp expression {!r}".format(expr))


def _flatten(stmt, rest):
    """Prepend a statement to a continuation, flattening sequences."""
    if isinstance(stmt, ast.Seq):
        out = rest
        for s in reversed(stmt.stmts):
            out = _flatten(s, out)
        return out
    return (stmt,) + rest


class CImpLang(ModuleLanguage):
    """The CImp module language (deterministic, atomic blocks)."""

    name = "CImp"

    def init_core(self, module, entry, args=()):
        func = module.functions.get(entry)
        if func is None:
            return None
        if len(args) != len(func.params):
            # Arity mismatch at linking: undefined behaviour.
            return CImpCore(kont=("arity-abort",))
        regs = ImmutableMap(dict(zip(func.params, args)))
        return CImpCore(regs=regs, kont=_flatten(func.body, ()))

    def step(self, module, core, mem, flist):
        if core.done:
            return []
        if not core.kont:
            # Function body exhausted: implicit ``return 0``.
            return [
                Step(RetMsg(VInt(0)), EMP, CImpCore(done=True), mem)
            ]
        head, rest = core.kont[0], core.kont[1:]
        if head == "arity-abort":
            return [StepAbort(reason="arity mismatch at module call")]
        if head == EXIT_ATOM_MARK:
            return [
                Step(
                    EXT_ATOM,
                    EMP,
                    CImpCore(core.regs, rest, core.done),
                    mem,
                )
            ]
        try:
            return self._stmt_step(module, core, mem, head, rest)
        except _EvalAbort as abort:
            return [StepAbort(reason=abort.reason)]

    def _stmt_step(self, module, core, mem, stmt, rest):
        regs = core.regs

        if isinstance(stmt, ast.Skip):
            return [Step(TAU, EMP, CImpCore(regs, rest), mem)]

        if isinstance(stmt, ast.Assign):
            rs = set()
            value = _eval(module, regs, mem, stmt.expr, rs)
            nxt = CImpCore(regs.set(stmt.var, value), rest)
            return [Step(TAU, Footprint(rs), nxt, mem)]

        if isinstance(stmt, ast.Store):
            rs = set()
            ptr = _eval(module, regs, mem, stmt.addr, rs)
            value = _eval(module, regs, mem, stmt.expr, rs)
            if not isinstance(ptr, VPtr):
                return [StepAbort(reason="store to non-pointer")]
            _check_access(module, ptr.addr)
            mem2 = mem.store(ptr.addr, value)
            if mem2 is None:
                return [
                    StepAbort(
                        reason="store to unallocated {}".format(ptr.addr)
                    )
                ]
            fp = Footprint(rs, {ptr.addr})
            return [Step(TAU, fp, CImpCore(regs, rest), mem2)]

        if isinstance(stmt, ast.Seq):
            return [
                Step(TAU, EMP, CImpCore(regs, _flatten(stmt, rest)), mem)
            ]

        if isinstance(stmt, ast.If):
            rs = set()
            cond = _eval(module, regs, mem, stmt.cond, rs)
            taken = cond.is_true()
            if taken is None:
                return [StepAbort(reason="undefined condition")]
            branch = stmt.then if taken else stmt.els
            nxt = CImpCore(regs, _flatten(branch, rest))
            return [Step(TAU, Footprint(rs), nxt, mem)]

        if isinstance(stmt, ast.While):
            rs = set()
            cond = _eval(module, regs, mem, stmt.cond, rs)
            taken = cond.is_true()
            if taken is None:
                return [StepAbort(reason="undefined loop condition")]
            if taken:
                kont = _flatten(stmt.body, (stmt,) + rest)
            else:
                kont = rest
            return [Step(TAU, Footprint(rs), CImpCore(regs, kont), mem)]

        if isinstance(stmt, ast.Assert):
            rs = set()
            cond = _eval(module, regs, mem, stmt.cond, rs)
            taken = cond.is_true()
            if taken is None or not taken:
                return [StepAbort(reason="assertion failed")]
            return [Step(TAU, Footprint(rs), CImpCore(regs, rest), mem)]

        if isinstance(stmt, ast.Atomic):
            kont = _flatten(stmt.body, (EXIT_ATOM_MARK,) + rest)
            return [Step(ENT_ATOM, EMP, CImpCore(regs, kont), mem)]

        if isinstance(stmt, ast.Return):
            rs = set()
            value = VInt(0)
            if stmt.expr is not None:
                value = _eval(module, regs, mem, stmt.expr, rs)
            return [
                Step(
                    RetMsg(value),
                    Footprint(rs),
                    CImpCore(done=True),
                    mem,
                )
            ]

        if isinstance(stmt, ast.Print):
            rs = set()
            value = _eval(module, regs, mem, stmt.expr, rs)
            if not isinstance(value, VInt):
                return [StepAbort(reason="print of non-integer")]
            msg = EventMsg("print", value.n)
            return [Step(msg, Footprint(rs), CImpCore(regs, rest), mem)]

        if isinstance(stmt, ast.Spawn):
            return [
                Step(
                    SpawnMsg(stmt.fname),
                    EMP,
                    CImpCore(regs, rest),
                    mem,
                )
            ]

        raise SemanticsError("unknown CImp statement {!r}".format(stmt))

    def is_final(self, module, core):
        return core is not None and core.done

    def stage_module(self, module):
        # Lazy: the compiler imports cores/markers from this module.
        from repro.langs.cimp import compile as ccompile

        return ccompile.stage_module(self, module)


#: Shared language instance (the class is stateless).
CIMP = CImpLang()
