"""CImp: the simple imperative object source language of Sec. 7.1.

Used to write abstract specifications of synchronization objects such
as the lock specification ``γ_lock`` of Fig. 10(a). Provides the AST
(:mod:`repro.langs.cimp.ast`), a parser for the paper's concrete syntax
(:mod:`repro.langs.cimp.parser`) and the footprint-instrumented
semantics (:mod:`repro.langs.cimp.semantics`).
"""

from repro.langs.cimp.ast import CImpModule, Function
from repro.langs.cimp.parser import parse_functions, parse_module
from repro.langs.cimp.semantics import CIMP, CImpCore, CImpLang

__all__ = [
    "CImpModule",
    "Function",
    "parse_functions",
    "parse_module",
    "CIMP",
    "CImpCore",
    "CImpLang",
]
