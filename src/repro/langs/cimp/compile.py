"""Closure compilation of the CImp step interpreter.

Same staging discipline as :mod:`repro.langs.minic.compile`: every
statement that can appear at the head of a continuation is compiled
once per module into a closure ``run(core, mem, flist, rest)``; the
isinstance ladder, operator lookups and ``_flatten`` calls happen at
compile time. Registers are dynamic (``Assign`` can introduce new
names), so ``Var`` keeps its run-time regs probe — but the symbol
fallback (a compile-time ``VPtr`` or an unconditional abort) is
resolved statically.

Expression read sets: only ``Load`` touches memory, and its address is
never static (the regs probe is dynamic), so a statement's footprint
is a compile-time constant exactly when its expressions are
``Load``-free — the common case for assignments, branches and asserts
over registers.
"""

from repro.common.footprint import EMP, Footprint
from repro.common.values import BINOPS, UNOPS, VInt, VPtr, VUndef
from repro.lang.messages import (
    ENT_ATOM,
    EXT_ATOM,
    TAU,
    EventMsg,
    RetMsg,
    SpawnMsg,
)
from repro.lang.steps import Step, StepAbort
from repro.langs.cimp import ast
from repro.langs.cimp.semantics import (
    EXIT_ATOM_MARK,
    CImpCore,
    _EvalAbort,
    _flatten,
)

_RET0 = RetMsg(VInt(0))
_DONE = CImpCore(done=True)


def _raiser(reason):
    def run(regs, mem):
        raise _EvalAbort(reason)

    return run


def _raiser_rec(reason):
    def run(regs, mem, rs):
        raise _EvalAbort(reason)

    return run


def loads_freely(expr):
    """True iff ``expr`` performs no memory loads (footprint static)."""
    if isinstance(expr, (ast.Const, ast.Var)):
        return True
    if isinstance(expr, ast.Bin):
        return loads_freely(expr.left) and loads_freely(expr.right)
    if isinstance(expr, ast.Un):
        return loads_freely(expr.arg)
    return False


def compile_expr(module, expr, record, counter):
    """Compile ``expr`` to ``run(regs, mem[, rs])``; None if unknown."""
    counter[0] += 1

    if isinstance(expr, ast.Const):
        v = VInt(expr.n)
        if record:
            return lambda regs, mem, rs: v
        return lambda regs, mem: v

    if isinstance(expr, ast.Var):
        name = expr.name
        addr = module.symbols.get(name)
        if addr is None:
            reason = "unbound identifier {!r}".format(name)
            if record:
                def run(regs, mem, rs):
                    value = regs.get(name)
                    if value is None:
                        raise _EvalAbort(reason)
                    return value
            else:
                def run(regs, mem):
                    value = regs.get(name)
                    if value is None:
                        raise _EvalAbort(reason)
                    return value
        else:
            fallback = VPtr(addr)
            if record:
                def run(regs, mem, rs):
                    value = regs.get(name)
                    return fallback if value is None else value
            else:
                def run(regs, mem):
                    value = regs.get(name)
                    return fallback if value is None else value
        return run

    if isinstance(expr, ast.Load):
        ptr_run = compile_expr(module, expr.addr, True, counter)
        if ptr_run is None or not record:
            # Loads are never footprint-static, so a Load only shows
            # up in recording mode.
            return None
        owned = module.owned

        def run(regs, mem, rs):
            ptr = ptr_run(regs, mem, rs)
            if not isinstance(ptr, VPtr):
                raise _EvalAbort("load from non-pointer {!r}".format(ptr))
            addr = ptr.addr
            if owned and addr not in owned:
                raise _EvalAbort(
                    "object accessed non-owned address {}".format(addr)
                )
            rs.add(addr)
            value = mem.load(addr)
            if value is None:
                raise _EvalAbort("load from unallocated {}".format(addr))
            return value

        return run

    if isinstance(expr, ast.Bin):
        left = compile_expr(module, expr.left, record, counter)
        right = compile_expr(module, expr.right, record, counter)
        if left is None or right is None:
            return None
        op = BINOPS[expr.op]
        undef = "undefined result of {!r}".format(expr.op)
        if record:
            def run(regs, mem, rs):
                result = op(left(regs, mem, rs), right(regs, mem, rs))
                if result is VUndef:
                    raise _EvalAbort(undef)
                return result
        else:
            def run(regs, mem):
                result = op(left(regs, mem), right(regs, mem))
                if result is VUndef:
                    raise _EvalAbort(undef)
                return result
        return run

    if isinstance(expr, ast.Un):
        arg = compile_expr(module, expr.arg, record, counter)
        if arg is None:
            return None
        op = UNOPS[expr.op]
        undef = "undefined result of {!r}".format(expr.op)
        if record:
            def run(regs, mem, rs):
                result = op(arg(regs, mem, rs))
                if result is VUndef:
                    raise _EvalAbort(undef)
                return result
        else:
            def run(regs, mem):
                result = op(arg(regs, mem))
                if result is VUndef:
                    raise _EvalAbort(undef)
                return result
        return run

    return None


def _compile_value(module, expr, counter):
    """``(run, static)``: non-recording (EMP footprint) iff load-free."""
    static = loads_freely(expr)
    run = compile_expr(module, expr, not static, counter)
    return run, static


def _compile_stmt(module, stmt, counter):
    """One statement → ``run(core, mem, flist, rest)`` or None."""
    owned = module.owned

    if isinstance(stmt, ast.Skip):
        def run(core, mem, flist, rest):
            return [Step(TAU, EMP, CImpCore(core.regs, rest), mem)]

        return run

    if isinstance(stmt, ast.Assign):
        value_run, static = _compile_value(module, stmt.expr, counter)
        if value_run is None:
            return None
        var = stmt.var
        if static:
            def run(core, mem, flist, rest):
                regs = core.regs
                value = value_run(regs, mem)
                return [Step(
                    TAU, EMP, CImpCore(regs.set(var, value), rest), mem,
                )]
        else:
            def run(core, mem, flist, rest):
                regs = core.regs
                rs = set()
                value = value_run(regs, mem, rs)
                return [Step(
                    TAU, Footprint(rs),
                    CImpCore(regs.set(var, value), rest), mem,
                )]
        return run

    if isinstance(stmt, ast.Store):
        # Pointer evaluates before the value (abort-order matters).
        ptr_run = compile_expr(module, stmt.addr, True, counter)
        value_run = compile_expr(module, stmt.expr, True, counter)
        if ptr_run is None or value_run is None:
            return None

        def run(core, mem, flist, rest):
            regs = core.regs
            rs = set()
            ptr = ptr_run(regs, mem, rs)
            value = value_run(regs, mem, rs)
            if not isinstance(ptr, VPtr):
                return [StepAbort(reason="store to non-pointer")]
            addr = ptr.addr
            if owned and addr not in owned:
                return [StepAbort(reason=(
                    "object accessed non-owned address {}".format(addr)
                ))]
            mem2 = mem.store(addr, value)
            if mem2 is None:
                return [StepAbort(
                    reason="store to unallocated {}".format(addr)
                )]
            return [Step(
                TAU, Footprint(rs, (addr,)), CImpCore(regs, rest), mem2,
            )]

        return run

    if isinstance(stmt, ast.Seq):
        flat = _flatten(stmt, ())

        def run(core, mem, flist, rest):
            return [Step(
                TAU, EMP, CImpCore(core.regs, flat + rest), mem,
            )]

        return run

    if isinstance(stmt, ast.If):
        cond_run, static = _compile_value(module, stmt.cond, counter)
        if cond_run is None:
            return None
        then_flat = _flatten(stmt.then, ())
        els_flat = _flatten(stmt.els, ())

        if static:
            def run(core, mem, flist, rest):
                regs = core.regs
                taken = cond_run(regs, mem).is_true()
                if taken is None:
                    return [StepAbort(reason="undefined condition")]
                kont = (then_flat if taken else els_flat) + rest
                return [Step(TAU, EMP, CImpCore(regs, kont), mem)]
        else:
            def run(core, mem, flist, rest):
                regs = core.regs
                rs = set()
                taken = cond_run(regs, mem, rs).is_true()
                if taken is None:
                    return [StepAbort(reason="undefined condition")]
                kont = (then_flat if taken else els_flat) + rest
                return [Step(
                    TAU, Footprint(rs), CImpCore(regs, kont), mem,
                )]
        return run

    if isinstance(stmt, ast.While):
        cond_run, static = _compile_value(module, stmt.cond, counter)
        if cond_run is None:
            return None
        body_flat = _flatten(stmt.body, ()) + (stmt,)

        if static:
            def run(core, mem, flist, rest):
                regs = core.regs
                taken = cond_run(regs, mem).is_true()
                if taken is None:
                    return [StepAbort(reason="undefined loop condition")]
                kont = body_flat + rest if taken else rest
                return [Step(TAU, EMP, CImpCore(regs, kont), mem)]
        else:
            def run(core, mem, flist, rest):
                regs = core.regs
                rs = set()
                taken = cond_run(regs, mem, rs).is_true()
                if taken is None:
                    return [StepAbort(reason="undefined loop condition")]
                kont = body_flat + rest if taken else rest
                return [Step(
                    TAU, Footprint(rs), CImpCore(regs, kont), mem,
                )]
        return run

    if isinstance(stmt, ast.Assert):
        cond_run, static = _compile_value(module, stmt.cond, counter)
        if cond_run is None:
            return None

        if static:
            def run(core, mem, flist, rest):
                regs = core.regs
                taken = cond_run(regs, mem).is_true()
                if taken is None or not taken:
                    return [StepAbort(reason="assertion failed")]
                return [Step(TAU, EMP, CImpCore(regs, rest), mem)]
        else:
            def run(core, mem, flist, rest):
                regs = core.regs
                rs = set()
                taken = cond_run(regs, mem, rs).is_true()
                if taken is None or not taken:
                    return [StepAbort(reason="assertion failed")]
                return [Step(
                    TAU, Footprint(rs), CImpCore(regs, rest), mem,
                )]
        return run

    if isinstance(stmt, ast.Atomic):
        body_flat = _flatten(stmt.body, (EXIT_ATOM_MARK,))

        def run(core, mem, flist, rest):
            return [Step(
                ENT_ATOM, EMP, CImpCore(core.regs, body_flat + rest), mem,
            )]

        return run

    if isinstance(stmt, ast.Return):
        if stmt.expr is None:
            def run(core, mem, flist, rest):
                return [Step(_RET0, EMP, _DONE, mem)]

            return run
        value_run, static = _compile_value(module, stmt.expr, counter)
        if value_run is None:
            return None
        if static:
            def run(core, mem, flist, rest):
                value = value_run(core.regs, mem)
                return [Step(RetMsg(value), EMP, _DONE, mem)]
        else:
            def run(core, mem, flist, rest):
                rs = set()
                value = value_run(core.regs, mem, rs)
                return [Step(RetMsg(value), Footprint(rs), _DONE, mem)]
        return run

    if isinstance(stmt, ast.Print):
        value_run, static = _compile_value(module, stmt.expr, counter)
        if value_run is None:
            return None
        if static:
            def run(core, mem, flist, rest):
                regs = core.regs
                value = value_run(regs, mem)
                if not isinstance(value, VInt):
                    return [StepAbort(reason="print of non-integer")]
                return [Step(
                    EventMsg("print", value.n), EMP,
                    CImpCore(regs, rest), mem,
                )]
        else:
            def run(core, mem, flist, rest):
                regs = core.regs
                rs = set()
                value = value_run(regs, mem, rs)
                if not isinstance(value, VInt):
                    return [StepAbort(reason="print of non-integer")]
                return [Step(
                    EventMsg("print", value.n), Footprint(rs),
                    CImpCore(regs, rest), mem,
                )]
        return run

    if isinstance(stmt, ast.Spawn):
        msg = SpawnMsg(stmt.fname)

        def run(core, mem, flist, rest):
            return [Step(msg, EMP, CImpCore(core.regs, rest), mem)]

        return run

    return None


def _arity_abort(core, mem, flist, rest):
    return [StepAbort(reason="arity mismatch at module call")]


def _exit_atom(core, mem, flist, rest):
    return [Step(EXT_ATOM, EMP, CImpCore(core.regs, rest, core.done), mem)]


def _collect_stmts(stmt, acc):
    if stmt is None or stmt in acc:
        return
    acc[stmt] = True
    if isinstance(stmt, ast.Seq):
        for s in stmt.stmts:
            _collect_stmts(s, acc)
    elif isinstance(stmt, ast.If):
        _collect_stmts(stmt.then, acc)
        _collect_stmts(stmt.els, acc)
    elif isinstance(stmt, ast.While):
        _collect_stmts(stmt.body, acc)
    elif isinstance(stmt, ast.Atomic):
        _collect_stmts(stmt.body, acc)


def stage_module(lang, module):
    """Compile every statement of ``module``. Returns ``(step, n)``."""
    counter = [0]
    # The two string continuation markers dispatch through the same
    # table as statement nodes.
    table = {"arity-abort": _arity_abort, EXIT_ATOM_MARK: _exit_atom}
    acc = {}
    for func in module.functions.values():
        _collect_stmts(func.body, acc)
    for stmt in acc:
        compiled = _compile_stmt(module, stmt, counter)
        if compiled is not None:
            table[stmt] = compiled
            counter[0] += 1
    table_get = table.get
    interp = lang.step

    def step(core, mem, flist):
        if core.done:
            return []
        kont = core.kont
        if not kont:
            return [Step(_RET0, EMP, _DONE, mem)]
        fn = table_get(kont[0])
        if fn is None:
            return interp(module, core, mem, flist)
        try:
            return fn(core, mem, flist, kont[1:])
        except _EvalAbort as abort:
            return [StepAbort(reason=abort.reason)]

    return step, counter[0]
