"""Lexer and recursive-descent parser for CImp.

Concrete syntax (Fig. 10a):

.. code-block:: none

    lock(){ r := 0; while(r == 0){ <r := [L]; [L] := 0;> } }
    unlock(){ < r := [L]; assert(r == 0); [L] := 1; > }

Statements end in ``;`` except blocks; ``< ... >`` delimits atomic
blocks; ``[e]`` is a memory access.
"""

import re

from repro.common.errors import ParseError
from repro.langs.cimp import ast

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*)
  | (?P<int>-?\d+)
  | (?P<id>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>:=|==|!=|<=|>=|&&|\|\||[-+*/%!<>=(){}\[\];,])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "while", "if", "else", "assert", "return", "print", "skip",
    "spawn",
}


def tokenize(text):
    """Split CImp source into ``(kind, value, line)`` tokens."""
    tokens = []
    pos = 0
    line = 1
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(
                "unexpected character {!r}".format(text[pos]), line
            )
        pos = m.end()
        kind = m.lastgroup
        value = m.group()
        line += value.count("\n")
        if kind in ("ws", "comment"):
            continue
        if kind == "id" and value in _KEYWORDS:
            tokens.append(("kw", value, line))
        elif kind == "int":
            tokens.append(("int", int(value), line))
        else:
            tokens.append((kind, value, line))
    tokens.append(("eof", None, line))
    return tokens


# Binary operator precedence levels, loosest first.
_PRECEDENCE = [
    ["||"],
    ["&&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["+", "-"],
    ["*", "/", "%"],
]


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    def peek(self):
        return self.tokens[self.pos]

    def advance(self):
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, kind, value=None):
        tok_kind, tok_value, line = self.peek()
        if tok_kind != kind or (value is not None and tok_value != value):
            raise ParseError(
                "expected {!r}, found {!r}".format(
                    value if value is not None else kind, tok_value
                ),
                line,
            )
        return self.advance()

    def accept(self, kind, value=None):
        tok_kind, tok_value, _ = self.peek()
        if tok_kind == kind and (value is None or tok_value == value):
            return self.advance()
        return None

    # ----- expressions -------------------------------------------------

    def expr(self, level=0):
        if level == len(_PRECEDENCE):
            return self.unary()
        left = self.expr(level + 1)
        while True:
            tok_kind, tok_value, _ = self.peek()
            if tok_kind == "op" and tok_value in _PRECEDENCE[level]:
                self.advance()
                right = self.expr(level + 1)
                left = ast.Bin(tok_value, left, right)
            else:
                return left

    def unary(self):
        if self.accept("op", "-"):
            return ast.Un("-", self.unary())
        if self.accept("op", "!"):
            return ast.Un("!", self.unary())
        return self.primary()

    def primary(self):
        tok_kind, tok_value, line = self.peek()
        if tok_kind == "int":
            self.advance()
            return ast.Const(tok_value)
        if tok_kind == "id":
            self.advance()
            return ast.Var(tok_value)
        if self.accept("op", "("):
            e = self.expr()
            self.expect("op", ")")
            return e
        if self.accept("op", "["):
            e = self.expr()
            self.expect("op", "]")
            return ast.Load(e)
        raise ParseError("expected expression", line)

    # ----- statements --------------------------------------------------

    def block(self):
        self.expect("op", "{")
        stmts = []
        while not self.accept("op", "}"):
            stmts.append(self.stmt())
        return ast.Seq(stmts)

    def stmt(self):
        tok_kind, tok_value, line = self.peek()
        if tok_kind == "kw":
            return self._keyword_stmt(tok_value)
        if tok_kind == "op" and tok_value == "<":
            self.advance()
            stmts = []
            while not self.accept("op", ">"):
                stmts.append(self.stmt())
            return ast.Atomic(ast.Seq(stmts))
        if tok_kind == "op" and tok_value == "[":
            self.advance()
            addr = self.expr()
            self.expect("op", "]")
            self.expect("op", ":=")
            value = self.expr()
            self.expect("op", ";")
            return ast.Store(addr, value)
        if tok_kind == "id":
            name = self.advance()[1]
            self.expect("op", ":=")
            value = self.expr()
            self.expect("op", ";")
            return ast.Assign(name, value)
        raise ParseError("expected statement", line)

    def _keyword_stmt(self, kw):
        self.advance()
        if kw == "skip":
            self.expect("op", ";")
            return ast.Skip()
        if kw == "while":
            self.expect("op", "(")
            cond = self.expr()
            self.expect("op", ")")
            return ast.While(cond, self.block())
        if kw == "if":
            self.expect("op", "(")
            cond = self.expr()
            self.expect("op", ")")
            then = self.block()
            els = ast.Skip()
            if self.accept("kw", "else"):
                els = self.block()
            return ast.If(cond, then, els)
        if kw == "assert":
            self.expect("op", "(")
            cond = self.expr()
            self.expect("op", ")")
            self.expect("op", ";")
            return ast.Assert(cond)
        if kw == "return":
            expr = None
            if not self.accept("op", ";"):
                expr = self.expr()
                self.expect("op", ";")
            return ast.Return(expr)
        if kw == "print":
            self.expect("op", "(")
            expr = self.expr()
            self.expect("op", ")")
            self.expect("op", ";")
            return ast.Print(expr)
        if kw == "spawn":
            fname = self.expect("id")[1]
            self.expect("op", ";")
            return ast.Spawn(fname)
        raise ParseError("unexpected keyword {!r}".format(kw))

    def fundef(self):
        name = self.expect("id")[1]
        self.expect("op", "(")
        params = []
        if not self.accept("op", ")"):
            params.append(self.expect("id")[1])
            while self.accept("op", ","):
                params.append(self.expect("id")[1])
            self.expect("op", ")")
        body = self.block()
        return ast.Function(name, params, body)

    def module(self):
        functions = []
        while self.peek()[0] != "eof":
            functions.append(self.fundef())
        return functions


def parse_functions(text):
    """Parse CImp source into a list of :class:`~...ast.Function`."""
    return _Parser(tokenize(text)).module()


def parse_module(text, symbols=None, owned=()):
    """Parse CImp source into a :class:`~...ast.CImpModule`."""
    return ast.CImpModule(parse_functions(text), symbols, owned)
