"""RTL: the CFG-based register transfer language (output of RTLgen).

A function is a control-flow graph: a map from program points ``pc`` to
instructions, each naming its successor(s). Values live in an unbounded
supply of virtual registers (pseudo-registers); memory is touched only
by explicit ``Iload``/``Istore`` and by the entry step's stack-block
allocation.

RTL is also the IR of the three CFG-level optimization passes we
verify (Tailcall, Renumber) and the input of Allocation.
"""

from repro.common.astbase import Node
from repro.common.errors import SemanticsError
from repro.common.footprint import EMP, Footprint
from repro.common.immutables import ImmutableMap
from repro.common.values import BINOPS, UNOPS, VInt, VPtr, VUndef
from repro.lang.interface import ModuleLanguage
from repro.lang.messages import (
    TAU,
    CallMsg,
    EventMsg,
    RetMsg,
    SpawnMsg,
)
from repro.lang.steps import Step, StepAbort
from repro.langs.ir.base import (
    EvalAbort,
    load_checked,
    store_checked,
    symbol_addr,
)


# ----- instructions ----------------------------------------------------------


class Instr(Node):
    pass


class Inop(Instr):
    _fields = ("next",)


class Iconst(Instr):
    _fields = ("n", "dst", "next")


class Iaddrglobal(Instr):
    _fields = ("name", "dst", "next")


class Iaddrstack(Instr):
    _fields = ("ofs", "dst", "next")


class Iop(Instr):
    """``dst := op(args)``; unary for 1 argument (incl. ``move``),
    binary for 2."""

    _fields = ("op", "args", "dst", "next")


class Iload(Instr):
    _fields = ("addr", "dst", "next")


class Istore(Instr):
    _fields = ("addr", "src", "next")


class Icall(Instr):
    _fields = ("fname", "args", "dst", "next", "external")


class Itailcall(Instr):
    """Internal tail call: the current activation is replaced."""

    _fields = ("fname", "args")


class Icond(Instr):
    _fields = ("op", "args", "iftrue", "iffalse")


class Ireturn(Instr):
    _fields = ("src",)


class Iprint(Instr):
    _fields = ("src", "next")


class Ispawn(Instr):
    """Thread creation: start ``fname`` in a new thread."""

    _fields = ("fname", "next")


class RTLFunction:
    """An RTL function: params (virtual regs), stack block size, CFG."""

    __slots__ = ("name", "params", "stacksize", "entry", "code")

    def __init__(self, name, params, stacksize, entry, code):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "params", tuple(params))
        object.__setattr__(self, "stacksize", stacksize)
        object.__setattr__(self, "entry", entry)
        object.__setattr__(self, "code", dict(code))

    def __setattr__(self, name, value):
        raise AttributeError("RTLFunction is immutable")

    def __repr__(self):
        return "RTLFunction({}, {} nodes)".format(
            self.name, len(self.code)
        )


# ----- semantics --------------------------------------------------------------


class RTLFrame:
    __slots__ = ("fname", "pc", "regs", "sp", "ret_dst", "_hash")

    def __init__(self, fname, pc, regs, sp, ret_dst=None):
        object.__setattr__(self, "fname", fname)
        object.__setattr__(self, "pc", pc)
        object.__setattr__(self, "regs", regs)
        object.__setattr__(self, "sp", sp)
        object.__setattr__(self, "ret_dst", ret_dst)

    def __setattr__(self, name, value):
        raise AttributeError("RTLFrame is immutable")

    def __eq__(self, other):
        if self is other:
            return True
        return (
            isinstance(other, RTLFrame)
            and self.fname == other.fname
            and self.pc == other.pc
            and self.regs == other.regs
            and self.sp == other.sp
            and self.ret_dst == other.ret_dst
        )

    def __hash__(self):
        try:
            return self._hash
        except AttributeError:
            h = hash((self.fname, self.pc, self.regs, self.sp, self.ret_dst))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self):
        return "RTLFrame({}@{})".format(self.fname, self.pc)

    def at(self, pc, regs=None):
        return RTLFrame(
            self.fname,
            pc,
            self.regs if regs is None else regs,
            self.sp,
            self.ret_dst,
        )


class RTLCore:
    __slots__ = ("frames", "nidx", "pending", "done", "_hash")

    def __init__(self, frames=(), nidx=0, pending=None, done=False):
        object.__setattr__(self, "frames", tuple(frames))
        object.__setattr__(self, "nidx", nidx)
        object.__setattr__(self, "pending", pending)
        object.__setattr__(self, "done", done)

    def __setattr__(self, name, value):
        raise AttributeError("RTLCore is immutable")

    def __eq__(self, other):
        if self is other:
            return True
        return (
            isinstance(other, RTLCore)
            and self.frames == other.frames
            and self.nidx == other.nidx
            and self.pending == other.pending
            and self.done == other.done
        )

    def __hash__(self):
        try:
            return self._hash
        except AttributeError:
            h = hash((self.frames, self.nidx, self.pending, self.done))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self):
        return "RTLCore(depth={}, pending={!r})".format(
            len(self.frames), self.pending
        )


def _reg(frame, r):
    value = frame.regs.get(r, VUndef)
    if value is VUndef:
        raise EvalAbort("use of undefined register r{}".format(r))
    return value


def _apply_op(op, values):
    if op == "move":
        return values[0]
    if len(values) == 1:
        result = UNOPS[op](values[0])
    else:
        result = BINOPS[op](values[0], values[1])
    if result is VUndef:
        raise EvalAbort("undefined result of {!r}".format(op))
    return result


class RTLLang(ModuleLanguage):
    """The RTL module language (deterministic)."""

    name = "RTL"

    def init_core(self, module, entry, args=()):
        func = module.functions.get(entry)
        if func is None:
            return None
        if len(args) != len(func.params):
            return RTLCore(pending=("arity-abort",))
        return RTLCore(pending=("enter", entry, tuple(args), None))

    def after_external(self, core, retval):
        if not (core.pending and core.pending[0] == "ext-wait"):
            raise SemanticsError("core is not waiting for an external")
        return RTLCore(
            core.frames,
            core.nidx,
            ("assign-result", core.pending[1], retval),
        )

    def step(self, module, core, mem, flist):
        if core.done:
            return []
        try:
            return self._step(module, core, mem, flist)
        except EvalAbort as abort:
            return [StepAbort(reason=abort.reason)]

    def _step(self, module, core, mem, flist):
        pending = core.pending
        if pending is not None:
            kind = pending[0]
            if kind == "arity-abort":
                return [StepAbort(reason="arity mismatch")]
            if kind == "enter":
                return self._enter(module, core, mem, flist, *pending[1:])
            if kind == "assign-result":
                _, dst, value = pending
                frames = core.frames
                if dst is not None:
                    frame = frames[-1]
                    frames = frames[:-1] + (
                        frame.at(frame.pc, frame.regs.set(dst, value)),
                    )
                return [Step(TAU, EMP, RTLCore(frames, core.nidx), mem)]
            if kind == "ext-wait":
                return []
            raise SemanticsError("unknown pending {!r}".format(pending))
        frame = core.frames[-1]
        func = module.functions[frame.fname]
        instr = func.code.get(frame.pc)
        if instr is None:
            raise SemanticsError(
                "no instruction at {}:{}".format(frame.fname, frame.pc)
            )
        return self._instr_step(module, core, mem, frame, instr)

    def _enter(self, module, core, mem, flist, fname, args, ret_dst):
        func = module.functions[fname]
        regs = ImmutableMap(dict(zip(func.params, args)))
        ws = set()
        nidx = core.nidx
        mem2 = mem
        sp = None
        if func.stacksize > 0:
            sp = flist.addr_at(nidx)
            for _ in range(func.stacksize):
                addr = flist.addr_at(nidx)
                nidx += 1
                mem2 = mem2.alloc(addr, VUndef)
                if mem2 is None:
                    raise SemanticsError("freelist slot already allocated")
                ws.add(addr)
        frame = RTLFrame(fname, func.entry, regs, sp, ret_dst)
        nxt = RTLCore(core.frames + (frame,), nidx)
        return [Step(TAU, Footprint((), ws), nxt, mem2)]

    def _instr_step(self, module, core, mem, frame, instr):
        if isinstance(instr, Inop):
            return self._tau(core, frame.at(instr.next), EMP, mem)

        if isinstance(instr, Iconst):
            regs = frame.regs.set(instr.dst, VInt(instr.n))
            return self._tau(core, frame.at(instr.next, regs), EMP, mem)

        if isinstance(instr, Iaddrglobal):
            value = VPtr(symbol_addr(module, instr.name))
            regs = frame.regs.set(instr.dst, value)
            return self._tau(core, frame.at(instr.next, regs), EMP, mem)

        if isinstance(instr, Iaddrstack):
            if frame.sp is None:
                return [StepAbort(reason="stack address without stack")]
            regs = frame.regs.set(instr.dst, VPtr(frame.sp + instr.ofs))
            return self._tau(core, frame.at(instr.next, regs), EMP, mem)

        if isinstance(instr, Iop):
            values = [_reg(frame, r) for r in instr.args]
            result = _apply_op(instr.op, values)
            regs = frame.regs.set(instr.dst, result)
            return self._tau(core, frame.at(instr.next, regs), EMP, mem)

        if isinstance(instr, Iload):
            rs = set()
            ptr = _reg(frame, instr.addr)
            if not isinstance(ptr, VPtr):
                return [StepAbort(reason="load through non-pointer")]
            value = load_checked(module, mem, ptr.addr, rs)
            regs = frame.regs.set(instr.dst, value)
            return self._tau(
                core, frame.at(instr.next, regs), Footprint(rs), mem
            )

        if isinstance(instr, Istore):
            ptr = _reg(frame, instr.addr)
            value = _reg(frame, instr.src)
            if not isinstance(ptr, VPtr):
                return [StepAbort(reason="store through non-pointer")]
            mem2 = store_checked(module, mem, ptr.addr, value)
            return self._tau(
                core,
                frame.at(instr.next),
                Footprint((), {ptr.addr}),
                mem2,
            )

        if isinstance(instr, Icall):
            args = tuple(_reg(frame, r) for r in instr.args)
            frames = core.frames[:-1] + (frame.at(instr.next),)
            if instr.external:
                nxt = RTLCore(frames, core.nidx, ("ext-wait", instr.dst))
                return [Step(CallMsg(instr.fname, args), EMP, nxt, mem)]
            nxt = RTLCore(
                frames, core.nidx, ("enter", instr.fname, args, instr.dst)
            )
            return [Step(TAU, EMP, nxt, mem)]

        if isinstance(instr, Itailcall):
            args = tuple(_reg(frame, r) for r in instr.args)
            # The callee replaces this activation and inherits its
            # return destination.
            # When the tail-callee becomes the bottom activation its
            # eventual return is the module's RetMsg; otherwise the
            # inherited ret_dst routes the value to the original caller.
            nxt = RTLCore(
                core.frames[:-1],
                core.nidx,
                ("enter", instr.fname, args, frame.ret_dst),
            )
            return [Step(TAU, EMP, nxt, mem)]

        if isinstance(instr, Icond):
            values = [_reg(frame, r) for r in instr.args]
            result = _apply_op(instr.op, values)
            taken = result.is_true()
            if taken is None:
                return [StepAbort(reason="undefined condition")]
            target = instr.iftrue if taken else instr.iffalse
            return self._tau(core, frame.at(target), EMP, mem)

        if isinstance(instr, Ireturn):
            value = VInt(0)
            if instr.src is not None:
                value = _reg(frame, instr.src)
            return self._return(core, mem, frame, value)

        if isinstance(instr, Ispawn):
            nxt = RTLCore(
                core.frames[:-1] + (frame.at(instr.next),), core.nidx
            )
            return [Step(SpawnMsg(instr.fname), EMP, nxt, mem)]

        if isinstance(instr, Iprint):
            value = _reg(frame, instr.src)
            if not isinstance(value, VInt):
                return [StepAbort(reason="print of non-integer")]
            nxt = RTLCore(
                core.frames[:-1] + (frame.at(instr.next),), core.nidx
            )
            return [Step(EventMsg("print", value.n), EMP, nxt, mem)]

        raise SemanticsError("unknown RTL instruction {!r}".format(instr))

    def _tau(self, core, frame, footprint, mem):
        nxt = RTLCore(core.frames[:-1] + (frame,), core.nidx)
        return [Step(TAU, footprint, nxt, mem)]

    def _return(self, core, mem, frame, value):
        if len(core.frames) > 1:
            nxt = RTLCore(
                core.frames[:-1],
                core.nidx,
                ("assign-result", frame.ret_dst, value),
            )
            return [Step(TAU, EMP, nxt, mem)]
        nxt = RTLCore(nidx=core.nidx, done=True)
        return [Step(RetMsg(value), EMP, nxt, mem)]

    def is_final(self, module, core):
        return core is not None and core.done

    def stage_module(self, module):
        from repro.langs.ir import compile as ircompile

        return ircompile.stage_rtl_module(self, module)


RTL = RTLLang()
