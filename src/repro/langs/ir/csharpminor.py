"""Csharpminor: the first IR, output of the Cshmgen pass.

Differences from MiniC (Clight): variable scoping is gone — locals are
either *temporaries* (live in the core, no memory footprint) or
explicit *stack locals* (memory-allocated at entry, for address-taken
variables); global accesses are explicit ``ELoad``/``SStore`` through
``EAddrGlobal``. This is where the first footprint shrinkage of the
pipeline happens: reads/writes of promoted locals disappear from
footprints entirely (allowed because ``FPmatch`` only constrains the
shared region).
"""

from repro.common.astbase import Node
from repro.common.errors import SemanticsError
from repro.common.footprint import EMP, Footprint
from repro.common.immutables import ImmutableMap
from repro.common.values import BINOPS, UNOPS, VInt, VPtr, VUndef
from repro.lang.interface import ModuleLanguage
from repro.lang.messages import (
    TAU,
    CallMsg,
    EventMsg,
    RetMsg,
    SpawnMsg,
)
from repro.lang.steps import Step, StepAbort
from repro.langs.ir.base import (
    EvalAbort,
    load_checked,
    store_checked,
    symbol_addr,
)


# ----- expressions -----------------------------------------------------------


class Expr(Node):
    pass


class EConst(Expr):
    _fields = ("n",)


class ETemp(Expr):
    _fields = ("name",)


class EAddrLocal(Expr):
    """Address of a stack-allocated local."""

    _fields = ("name",)


class EAddrGlobal(Expr):
    _fields = ("name",)


class ELoad(Expr):
    _fields = ("addr",)


class EUnop(Expr):
    _fields = ("op", "arg")


class EBinop(Expr):
    _fields = ("op", "left", "right")


# ----- statements ------------------------------------------------------------


class Stmt(Node):
    pass


class SSkip(Stmt):
    _fields = ()


class SSet(Stmt):
    """``temp := e`` — no memory effect."""

    _fields = ("temp", "expr")


class SStore(Stmt):
    """``[addr_e] := e``."""

    _fields = ("addr", "expr")


class SCall(Stmt):
    """``temp? = f(args)``; ``external`` resolved by the pass."""

    _fields = ("dst", "fname", "args", "external")


class SPrint(Stmt):
    _fields = ("expr",)


class SSeq(Stmt):
    _fields = ("stmts",)


class SIf(Stmt):
    _fields = ("cond", "then", "els")


class SWhile(Stmt):
    _fields = ("cond", "body")


class SReturn(Stmt):
    _fields = ("expr",)


class SSpawn(Stmt):
    """``spawn f`` — thread creation."""

    _fields = ("fname",)


class CshmFunction(Node):
    """``params`` are temp names; ``stack_locals`` the memory-resident
    (address-taken) locals."""

    _fields = ("name", "params", "stack_locals", "body")


# ----- semantics -------------------------------------------------------------


class CshmFrame:
    __slots__ = ("fname", "temps", "env", "kont", "ret_dst", "_hash")

    def __init__(self, fname, temps, env, kont, ret_dst=None):
        object.__setattr__(self, "fname", fname)
        object.__setattr__(self, "temps", temps)
        object.__setattr__(self, "env", env)
        object.__setattr__(self, "kont", tuple(kont))
        object.__setattr__(self, "ret_dst", ret_dst)

    def __setattr__(self, name, value):
        raise AttributeError("CshmFrame is immutable")

    def __eq__(self, other):
        if self is other:
            return True
        return (
            isinstance(other, CshmFrame)
            and self.fname == other.fname
            and self.temps == other.temps
            and self.env == other.env
            and self.kont == other.kont
            and self.ret_dst == other.ret_dst
        )

    def __hash__(self):
        try:
            return self._hash
        except AttributeError:
            h = hash((self.fname, self.temps, self.env, self.kont, self.ret_dst))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self):
        return "CshmFrame({}, kont_len={})".format(
            self.fname, len(self.kont)
        )

    def with_kont(self, kont):
        return CshmFrame(
            self.fname, self.temps, self.env, kont, self.ret_dst
        )

    def with_temps(self, temps, kont):
        return CshmFrame(
            self.fname, temps, self.env, kont, self.ret_dst
        )


class CshmCore:
    __slots__ = ("frames", "nidx", "pending", "done", "_hash")

    def __init__(self, frames=(), nidx=0, pending=None, done=False):
        object.__setattr__(self, "frames", tuple(frames))
        object.__setattr__(self, "nidx", nidx)
        object.__setattr__(self, "pending", pending)
        object.__setattr__(self, "done", done)

    def __setattr__(self, name, value):
        raise AttributeError("CshmCore is immutable")

    def __eq__(self, other):
        if self is other:
            return True
        return (
            isinstance(other, CshmCore)
            and self.frames == other.frames
            and self.nidx == other.nidx
            and self.pending == other.pending
            and self.done == other.done
        )

    def __hash__(self):
        try:
            return self._hash
        except AttributeError:
            h = hash((self.frames, self.nidx, self.pending, self.done))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self):
        return "CshmCore(depth={}, pending={!r})".format(
            len(self.frames), self.pending
        )


def _flatten(stmt, rest):
    if isinstance(stmt, SSeq):
        out = rest
        for s in reversed(stmt.stmts):
            out = _flatten(s, out)
        return out
    if isinstance(stmt, SSkip):
        return rest
    return (stmt,) + rest


def _eval(module, frame, mem, expr, rs):
    if isinstance(expr, EConst):
        return VInt(expr.n)
    if isinstance(expr, ETemp):
        value = frame.temps.get(expr.name, VUndef)
        if value is VUndef:
            raise EvalAbort(
                "use of undefined temp {!r}".format(expr.name)
            )
        return value
    if isinstance(expr, EAddrLocal):
        addr = frame.env.get(expr.name)
        if addr is None:
            raise EvalAbort("unknown stack local {!r}".format(expr.name))
        return VPtr(addr)
    if isinstance(expr, EAddrGlobal):
        return VPtr(symbol_addr(module, expr.name))
    if isinstance(expr, ELoad):
        ptr = _eval(module, frame, mem, expr.addr, rs)
        if not isinstance(ptr, VPtr):
            raise EvalAbort("load through non-pointer")
        return load_checked(module, mem, ptr.addr, rs)
    if isinstance(expr, EUnop):
        result = UNOPS[expr.op](
            _eval(module, frame, mem, expr.arg, rs)
        )
        if result is VUndef:
            raise EvalAbort("undefined unop result")
        return result
    if isinstance(expr, EBinop):
        left = _eval(module, frame, mem, expr.left, rs)
        right = _eval(module, frame, mem, expr.right, rs)
        result = BINOPS[expr.op](left, right)
        if result is VUndef:
            raise EvalAbort("undefined binop result")
        return result
    raise SemanticsError("unknown Csharpminor expression {!r}".format(expr))


class CshmLang(ModuleLanguage):
    """The Csharpminor module language (deterministic)."""

    name = "Csharpminor"

    def init_core(self, module, entry, args=()):
        func = module.functions.get(entry)
        if func is None:
            return None
        if len(args) != len(func.params):
            return CshmCore(pending=("arity-abort",))
        return CshmCore(pending=("enter", entry, tuple(args), None))

    def after_external(self, core, retval):
        if not (core.pending and core.pending[0] == "ext-wait"):
            raise SemanticsError("core is not waiting for an external")
        return CshmCore(
            core.frames,
            core.nidx,
            ("assign-result", core.pending[1], retval),
        )

    def step(self, module, core, mem, flist):
        if core.done:
            return []
        try:
            return self._step(module, core, mem, flist)
        except EvalAbort as abort:
            return [StepAbort(reason=abort.reason)]

    def _step(self, module, core, mem, flist):
        pending = core.pending
        if pending is not None:
            kind = pending[0]
            if kind == "arity-abort":
                return [StepAbort(reason="arity mismatch")]
            if kind == "enter":
                return self._enter(module, core, mem, flist, *pending[1:])
            if kind == "assign-result":
                _, dst, value = pending
                frames = core.frames
                if dst is not None:
                    frame = frames[-1]
                    frames = frames[:-1] + (
                        frame.with_temps(
                            frame.temps.set(dst, value), frame.kont
                        ),
                    )
                return [Step(TAU, EMP, CshmCore(frames, core.nidx), mem)]
            if kind == "ext-wait":
                return []
            raise SemanticsError("unknown pending {!r}".format(pending))
        frame = core.frames[-1]
        if not frame.kont:
            return self._return(core, mem, frame, VInt(0), set())
        return self._stmt_step(module, core, mem, frame)

    def _enter(self, module, core, mem, flist, fname, args, ret_dst):
        func = module.functions[fname]
        temps = ImmutableMap(dict(zip(func.params, args)))
        env = {}
        ws = set()
        nidx = core.nidx
        mem2 = mem
        for name in func.stack_locals:
            addr = flist.addr_at(nidx)
            nidx += 1
            mem2 = mem2.alloc(addr, VUndef)
            if mem2 is None:
                raise SemanticsError("freelist slot already allocated")
            env[name] = addr
            ws.add(addr)
        frame = CshmFrame(
            fname,
            temps,
            ImmutableMap(env),
            _flatten(func.body, ()),
            ret_dst,
        )
        nxt = CshmCore(core.frames + (frame,), nidx)
        return [Step(TAU, Footprint((), ws), nxt, mem2)]

    def _stmt_step(self, module, core, mem, frame):
        stmt, rest = frame.kont[0], frame.kont[1:]

        if isinstance(stmt, SSkip):
            return self._tau(core, frame.with_kont(rest), EMP, mem)

        if isinstance(stmt, SSet):
            rs = set()
            value = _eval(module, frame, mem, stmt.expr, rs)
            nxt = frame.with_temps(
                frame.temps.set(stmt.temp, value), rest
            )
            return self._tau(core, nxt, Footprint(rs), mem)

        if isinstance(stmt, SStore):
            rs = set()
            ptr = _eval(module, frame, mem, stmt.addr, rs)
            value = _eval(module, frame, mem, stmt.expr, rs)
            if not isinstance(ptr, VPtr):
                return [StepAbort(reason="store through non-pointer")]
            mem2 = store_checked(module, mem, ptr.addr, value)
            return self._tau(
                core,
                frame.with_kont(rest),
                Footprint(rs, {ptr.addr}),
                mem2,
            )

        if isinstance(stmt, SCall):
            rs = set()
            args = tuple(
                _eval(module, frame, mem, a, rs) for a in stmt.args
            )
            frames = core.frames[:-1] + (frame.with_kont(rest),)
            if stmt.external:
                nxt = CshmCore(
                    frames, core.nidx, ("ext-wait", stmt.dst)
                )
                return [
                    Step(
                        CallMsg(stmt.fname, args),
                        Footprint(rs),
                        nxt,
                        mem,
                    )
                ]
            nxt = CshmCore(
                frames, core.nidx, ("enter", stmt.fname, args, stmt.dst)
            )
            return [Step(TAU, Footprint(rs), nxt, mem)]

        if isinstance(stmt, SPrint):
            rs = set()
            value = _eval(module, frame, mem, stmt.expr, rs)
            if not isinstance(value, VInt):
                return [StepAbort(reason="print of non-integer")]
            nxt = CshmCore(
                core.frames[:-1] + (frame.with_kont(rest),), core.nidx
            )
            return [
                Step(EventMsg("print", value.n), Footprint(rs), nxt, mem)
            ]

        if isinstance(stmt, SIf):
            rs = set()
            cond = _eval(module, frame, mem, stmt.cond, rs)
            taken = cond.is_true()
            if taken is None:
                return [StepAbort(reason="undefined condition")]
            branch = stmt.then if taken else stmt.els
            return self._tau(
                core,
                frame.with_kont(_flatten(branch, rest)),
                Footprint(rs),
                mem,
            )

        if isinstance(stmt, SWhile):
            rs = set()
            cond = _eval(module, frame, mem, stmt.cond, rs)
            taken = cond.is_true()
            if taken is None:
                return [StepAbort(reason="undefined loop condition")]
            kont = (
                _flatten(stmt.body, (stmt,) + rest) if taken else rest
            )
            return self._tau(
                core, frame.with_kont(kont), Footprint(rs), mem
            )

        if isinstance(stmt, SSpawn):
            nxt = CshmCore(
                core.frames[:-1] + (frame.with_kont(rest),), core.nidx
            )
            return [Step(SpawnMsg(stmt.fname), EMP, nxt, mem)]

        if isinstance(stmt, SReturn):
            rs = set()
            value = VInt(0)
            if stmt.expr is not None:
                value = _eval(module, frame, mem, stmt.expr, rs)
            popped = CshmCore(
                core.frames[:-1] + (frame.with_kont(rest),), core.nidx
            )
            return self._return(popped, mem, frame, value, rs)

        raise SemanticsError(
            "unknown Csharpminor statement {!r}".format(stmt)
        )

    def _tau(self, core, frame, footprint, mem):
        nxt = CshmCore(core.frames[:-1] + (frame,), core.nidx)
        return [Step(TAU, footprint, nxt, mem)]

    def _return(self, core, mem, frame, value, rs):
        if len(core.frames) > 1:
            nxt = CshmCore(
                core.frames[:-1],
                core.nidx,
                ("assign-result", frame.ret_dst, value),
            )
            return [Step(TAU, Footprint(rs), nxt, mem)]
        nxt = CshmCore(nidx=core.nidx, done=True)
        return [Step(RetMsg(value), Footprint(rs), nxt, mem)]

    def is_final(self, module, core):
        return core is not None and core.done

    def stage_module(self, module):
        # Lazy: the compiler imports this module's nodes and cores.
        from repro.langs.ir import compile as ircompile

        return ircompile.stage_stmt_module(
            self, module, CshmCore, EAddrLocal
        )


CSHARPMINOR = CshmLang()
