"""Mach: Linear with concrete stack frames (output of Stacking).

The abstract slot locations of LTL/Linear become *memory*: each
activation allocates a frame of ``framesize`` words from the freelist;
slot ``i`` lives at ``sp + i`` and the Cminor stack data at
``sp + numslots + ...`` (the Stacking pass folds that offset in).
Consequently spill traffic now shows up in footprints — in the local
(freelist) region, which ``FPmatch`` permits.

All computing instructions use machine registers only; the spill moves
of Linear become explicit ``MGetstack``/``MSetstack`` memory accesses.
"""

from repro.common.astbase import Node
from repro.common.errors import SemanticsError
from repro.common.footprint import EMP, Footprint
from repro.common.immutables import EMPTY_MAP, ImmutableMap
from repro.common.values import VInt, VPtr, VUndef
from repro.lang.interface import ModuleLanguage
from repro.lang.messages import (
    TAU,
    CallMsg,
    EventMsg,
    RetMsg,
    SpawnMsg,
)
from repro.lang.steps import Step, StepAbort
from repro.langs.ir.base import (
    EvalAbort,
    load_checked,
    store_checked,
    symbol_addr,
)
from repro.langs.ir.ltl import _apply_op
from repro.langs.x86.regs import ARG_REGS, RET_REG, is_reg


class MInstr(Node):
    pass


class MLabel(MInstr):
    _fields = ("lbl",)


class MOp(MInstr):
    """``dst := op(args)`` over machine registers."""

    _fields = ("op", "args", "dst")


class MConst(MInstr):
    _fields = ("n", "dst")


class MAddrGlobal(MInstr):
    _fields = ("name", "dst")


class MAddrStack(MInstr):
    """``dst := sp + ofs`` (ofs already includes the slot area)."""

    _fields = ("ofs", "dst")


class MGetstack(MInstr):
    """``dst := [sp + idx]`` — a spill reload."""

    _fields = ("idx", "dst")


class MSetstack(MInstr):
    """``[sp + idx] := src`` — a spill store."""

    _fields = ("src", "idx")


class MLoad(MInstr):
    _fields = ("addr", "dst")


class MStore(MInstr):
    _fields = ("addr", "src")


class MCall(MInstr):
    _fields = ("fname", "arity", "external")


class MTailcall(MInstr):
    _fields = ("fname", "arity")


class MGoto(MInstr):
    _fields = ("lbl",)


class MCond(MInstr):
    _fields = ("op", "args", "lbl")


class MReturn(MInstr):
    _fields = ()


class MPrint(MInstr):
    _fields = ("src",)


class MSpawn(MInstr):
    _fields = ("fname",)


class MachFunction:
    """A Mach function: instruction tuple, frame size, label map."""

    __slots__ = ("name", "nparams", "framesize", "code", "labels")

    def __init__(self, name, nparams, framesize, code):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "nparams", nparams)
        object.__setattr__(self, "framesize", framesize)
        object.__setattr__(self, "code", tuple(code))
        labels = {}
        for idx, instr in enumerate(self.code):
            if isinstance(instr, MLabel):
                if instr.lbl in labels:
                    raise SemanticsError(
                        "duplicate label {!r} in {}".format(
                            instr.lbl, name
                        )
                    )
                labels[instr.lbl] = idx
        object.__setattr__(self, "labels", labels)

    def __setattr__(self, name, value):
        raise AttributeError("MachFunction is immutable")

    def __repr__(self):
        return "MachFunction({}, {} instrs)".format(
            self.name, len(self.code)
        )

    def target(self, lbl):
        idx = self.labels.get(lbl)
        if idx is None:
            raise SemanticsError(
                "undefined label {!r} in {}".format(lbl, self.name)
            )
        return idx


class MachFrame:
    __slots__ = ("fname", "pc", "sp", "_hash")

    def __init__(self, fname, pc, sp):
        object.__setattr__(self, "fname", fname)
        object.__setattr__(self, "pc", pc)
        object.__setattr__(self, "sp", sp)

    def __setattr__(self, name, value):
        raise AttributeError("MachFrame is immutable")

    def __eq__(self, other):
        if self is other:
            return True
        return (
            isinstance(other, MachFrame)
            and self.fname == other.fname
            and self.pc == other.pc
            and self.sp == other.sp
        )

    def __hash__(self):
        try:
            return self._hash
        except AttributeError:
            h = hash((self.fname, self.pc, self.sp))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self):
        return "MachFrame({}@{})".format(self.fname, self.pc)

    def at(self, pc):
        return MachFrame(self.fname, pc, self.sp)


class MachCore:
    __slots__ = ("regs", "frames", "nidx", "pending", "done", "_hash")

    def __init__(self, regs=EMPTY_MAP, frames=(), nidx=0, pending=None,
                 done=False):
        object.__setattr__(self, "regs", regs)
        object.__setattr__(self, "frames", tuple(frames))
        object.__setattr__(self, "nidx", nidx)
        object.__setattr__(self, "pending", pending)
        object.__setattr__(self, "done", done)

    def __setattr__(self, name, value):
        raise AttributeError("MachCore is immutable")

    def __eq__(self, other):
        if self is other:
            return True
        return (
            isinstance(other, MachCore)
            and self.regs == other.regs
            and self.frames == other.frames
            and self.nidx == other.nidx
            and self.pending == other.pending
            and self.done == other.done
        )

    def __hash__(self):
        try:
            return self._hash
        except AttributeError:
            h = hash((self.regs, self.frames, self.nidx, self.pending, self.done))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self):
        return "MachCore(depth={}, pending={!r})".format(
            len(self.frames), self.pending
        )


def _reg(core, r):
    if not is_reg(r):
        raise SemanticsError("bad machine register {!r}".format(r))
    value = core.regs.get(r, VUndef)
    if value is VUndef:
        raise EvalAbort("use of undefined register {!r}".format(r))
    return value


class MachLang(ModuleLanguage):
    """The Mach module language (deterministic)."""

    name = "Mach"

    def init_core(self, module, entry, args=()):
        func = module.functions.get(entry)
        if func is None:
            return None
        if len(args) != func.nparams:
            return MachCore(pending=("arity-abort",))
        regs = ImmutableMap(dict(zip(ARG_REGS, args)))
        return MachCore(regs=regs, pending=("enter", entry))

    def after_external(self, core, retval):
        if not (core.pending and core.pending[0] == "ext-wait"):
            raise SemanticsError("core is not waiting for an external")
        return MachCore(
            core.regs, core.frames, core.nidx, ("set-ret", retval)
        )

    def step(self, module, core, mem, flist):
        if core.done:
            return []
        try:
            return self._step(module, core, mem, flist)
        except EvalAbort as abort:
            return [StepAbort(reason=abort.reason)]

    def _step(self, module, core, mem, flist):
        pending = core.pending
        if pending is not None:
            kind = pending[0]
            if kind == "arity-abort":
                return [StepAbort(reason="arity mismatch")]
            if kind == "enter":
                return self._enter(module, core, mem, flist, pending[1])
            if kind == "set-ret":
                regs = core.regs.set(RET_REG, pending[1])
                return [
                    Step(
                        TAU, EMP, MachCore(regs, core.frames, core.nidx),
                        mem,
                    )
                ]
            if kind == "ext-wait":
                return []
            raise SemanticsError("unknown pending {!r}".format(pending))
        frame = core.frames[-1]
        func = module.functions[frame.fname]
        if frame.pc >= len(func.code):
            raise SemanticsError(
                "fell off the end of {}".format(frame.fname)
            )
        return self._instr_step(
            module, core, mem, frame, func, func.code[frame.pc]
        )

    def _enter(self, module, core, mem, flist, fname):
        func = module.functions[fname]
        ws = set()
        nidx = core.nidx
        mem2 = mem
        sp = None
        if func.framesize > 0:
            sp = flist.addr_at(nidx)
            for _ in range(func.framesize):
                addr = flist.addr_at(nidx)
                nidx += 1
                mem2 = mem2.alloc(addr, VUndef)
                if mem2 is None:
                    raise SemanticsError("freelist slot already allocated")
                ws.add(addr)
        frame = MachFrame(fname, 0, sp)
        nxt = MachCore(core.regs, core.frames + (frame,), nidx)
        return [Step(TAU, Footprint((), ws), nxt, mem2)]

    def _instr_step(self, module, core, mem, frame, func, instr):
        if isinstance(instr, MLabel):
            return self._adv(core, frame.at(frame.pc + 1), mem, EMP)

        if isinstance(instr, MConst):
            regs = core.regs.set(instr.dst, VInt(instr.n))
            return self._adv(
                core, frame.at(frame.pc + 1), mem, EMP, regs
            )

        if isinstance(instr, MAddrGlobal):
            value = VPtr(symbol_addr(module, instr.name))
            regs = core.regs.set(instr.dst, value)
            return self._adv(
                core, frame.at(frame.pc + 1), mem, EMP, regs
            )

        if isinstance(instr, MAddrStack):
            if frame.sp is None:
                return [StepAbort(reason="stack address without frame")]
            regs = core.regs.set(instr.dst, VPtr(frame.sp + instr.ofs))
            return self._adv(
                core, frame.at(frame.pc + 1), mem, EMP, regs
            )

        if isinstance(instr, MGetstack):
            if frame.sp is None:
                return [StepAbort(reason="getstack without frame")]
            rs = set()
            value = load_checked(
                module, mem, frame.sp + instr.idx, rs
            )
            regs = core.regs.set(instr.dst, value)
            return self._adv(
                core, frame.at(frame.pc + 1), mem, Footprint(rs), regs
            )

        if isinstance(instr, MSetstack):
            if frame.sp is None:
                return [StepAbort(reason="setstack without frame")]
            value = _reg(core, instr.src)
            addr = frame.sp + instr.idx
            mem2 = store_checked(module, mem, addr, value)
            return self._adv(
                core,
                frame.at(frame.pc + 1),
                mem2,
                Footprint((), {addr}),
            )

        if isinstance(instr, MOp):
            values = [_reg(core, r) for r in instr.args]
            result = _apply_op(instr.op, values)
            regs = core.regs.set(instr.dst, result)
            return self._adv(
                core, frame.at(frame.pc + 1), mem, EMP, regs
            )

        if isinstance(instr, MLoad):
            rs = set()
            ptr = _reg(core, instr.addr)
            if not isinstance(ptr, VPtr):
                return [StepAbort(reason="load through non-pointer")]
            value = load_checked(module, mem, ptr.addr, rs)
            regs = core.regs.set(instr.dst, value)
            return self._adv(
                core, frame.at(frame.pc + 1), mem, Footprint(rs), regs
            )

        if isinstance(instr, MStore):
            ptr = _reg(core, instr.addr)
            value = _reg(core, instr.src)
            if not isinstance(ptr, VPtr):
                return [StepAbort(reason="store through non-pointer")]
            mem2 = store_checked(module, mem, ptr.addr, value)
            return self._adv(
                core,
                frame.at(frame.pc + 1),
                mem2,
                Footprint((), {ptr.addr}),
            )

        if isinstance(instr, MCall):
            args = tuple(
                _reg(core, ARG_REGS[i]) for i in range(instr.arity)
            )
            frames = core.frames[:-1] + (frame.at(frame.pc + 1),)
            if instr.external:
                nxt = MachCore(
                    core.regs, frames, core.nidx, ("ext-wait",)
                )
                return [Step(CallMsg(instr.fname, args), EMP, nxt, mem)]
            nxt = MachCore(
                core.regs, frames, core.nidx, ("enter", instr.fname)
            )
            return [Step(TAU, EMP, nxt, mem)]

        if isinstance(instr, MTailcall):
            nxt = MachCore(
                core.regs,
                core.frames[:-1],
                core.nidx,
                ("enter", instr.fname),
            )
            return [Step(TAU, EMP, nxt, mem)]

        if isinstance(instr, MGoto):
            return self._adv(
                core, frame.at(func.target(instr.lbl)), mem, EMP
            )

        if isinstance(instr, MCond):
            values = [_reg(core, r) for r in instr.args]
            result = _apply_op(instr.op, values)
            taken = result.is_true()
            if taken is None:
                return [StepAbort(reason="undefined condition")]
            pc = func.target(instr.lbl) if taken else frame.pc + 1
            return self._adv(core, frame.at(pc), mem, EMP)

        if isinstance(instr, MReturn):
            value = core.regs.get(RET_REG, VUndef)
            if value is VUndef:
                return [StepAbort(reason="return with undefined eax")]
            return self._return(core, mem, value)

        if isinstance(instr, MSpawn):
            nxt = MachCore(
                core.regs,
                core.frames[:-1] + (frame.at(frame.pc + 1),),
                core.nidx,
            )
            return [Step(SpawnMsg(instr.fname), EMP, nxt, mem)]

        if isinstance(instr, MPrint):
            value = _reg(core, instr.src)
            if not isinstance(value, VInt):
                return [StepAbort(reason="print of non-integer")]
            nxt = MachCore(
                core.regs,
                core.frames[:-1] + (frame.at(frame.pc + 1),),
                core.nidx,
            )
            return [Step(EventMsg("print", value.n), EMP, nxt, mem)]

        raise SemanticsError("unknown Mach instruction {!r}".format(instr))

    def _adv(self, core, frame, mem, footprint, regs=None):
        nxt = MachCore(
            core.regs if regs is None else regs,
            core.frames[:-1] + (frame,),
            core.nidx,
        )
        return [Step(TAU, footprint, nxt, mem)]

    def _return(self, core, mem, value):
        if len(core.frames) > 1:
            nxt = MachCore(core.regs, core.frames[:-1], core.nidx)
            return [Step(TAU, EMP, nxt, mem)]
        nxt = MachCore(nidx=core.nidx, done=True)
        return [Step(RetMsg(value), EMP, nxt, mem)]

    def is_final(self, module, core):
        return core is not None and core.done

    def stage_module(self, module):
        from repro.langs.ir import compile as ircompile

        return ircompile.stage_mach_module(self, module)


MACH = MachLang()
