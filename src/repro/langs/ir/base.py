"""Shared infrastructure of the compiler IRs.

Every IR module is an :class:`IRModule`: functions, linked symbol
table, extern signatures and the client-forbidden region. Interpreters
share the ``_EvalAbort`` protocol and the permission/load/store helpers
so footprints and aborts behave identically across the chain.
"""

from repro.common.footprint import Footprint
from repro.common.freelist import is_global
from repro.common.values import VPtr


class IRModule:
    """A module of any compiler IR.

    ``functions``: name → IR-specific function object;
    ``symbols``: global name → linked address;
    ``externs``: extern function name → arity (what the calling
    convention needs at lower levels);
    ``forbidden``: object-owned region this client must not touch;
    ``owned``: for *object* modules, the global region the module is
    confined to — a non-empty ``owned`` makes any access to global
    addresses outside it abort (the other half of the Sec. 7.1
    permission partition; local freelist addresses are always allowed).
    """

    __slots__ = ("functions", "symbols", "externs", "forbidden", "owned")

    def __init__(self, functions, symbols, externs=None, forbidden=(),
                 owned=()):
        object.__setattr__(self, "functions", dict(functions))
        object.__setattr__(self, "symbols", dict(symbols))
        object.__setattr__(self, "externs", dict(externs or {}))
        object.__setattr__(self, "forbidden", frozenset(forbidden))
        object.__setattr__(self, "owned", frozenset(owned))

    def __setattr__(self, name, value):
        raise AttributeError("IRModule is immutable")

    def __repr__(self):
        return "IRModule(functions={})".format(sorted(self.functions))

    def with_forbidden(self, forbidden):
        return IRModule(
            self.functions, self.symbols, self.externs, forbidden,
            self.owned,
        )

    def with_owned(self, owned):
        return IRModule(
            self.functions, self.symbols, self.externs, self.forbidden,
            owned,
        )

    def with_functions(self, functions):
        return IRModule(
            functions, self.symbols, self.externs, self.forbidden,
            self.owned,
        )


class EvalAbort(Exception):
    """Expression/instruction evaluation reached undefined behaviour."""

    def __init__(self, reason):
        super().__init__(reason)
        self.reason = reason


def check_access(module, addr):
    """Permission check (Sec. 7.1 partition).

    Clients must not touch the object-owned region; an object module
    (non-empty ``owned``) must not touch global addresses outside its
    own region. Freelist (thread-local) addresses are unrestricted.
    """
    if addr in module.forbidden:
        raise EvalAbort(
            "client accessed object-owned address {}".format(addr)
        )
    if module.owned and is_global(addr) and addr not in module.owned:
        raise EvalAbort(
            "object accessed non-owned global address {}".format(addr)
        )


def load_checked(module, mem, addr, rs):
    """A permission-checked, footprinted load; aborts on unallocated."""
    check_access(module, addr)
    rs.add(addr)
    value = mem.load(addr)
    if value is None:
        raise EvalAbort("load from unallocated {}".format(addr))
    return value


def store_checked(module, mem, addr, value):
    """A permission-checked store; returns the new memory."""
    check_access(module, addr)
    mem2 = mem.store(addr, value)
    if mem2 is None:
        raise EvalAbort("store to unallocated {}".format(addr))
    return mem2


def symbol_addr(module, name):
    """The linked address of a global symbol."""
    addr = module.symbols.get(name)
    if addr is None:
        raise EvalAbort("unresolved global {!r}".format(name))
    return addr


def deref(value):
    """The address a pointer value designates."""
    if not isinstance(value, VPtr):
        raise EvalAbort("memory access through non-pointer")
    return value.addr


def fp(rs=(), ws=()):
    """Footprint constructor shorthand used by the interpreters."""
    return Footprint(rs, ws)
