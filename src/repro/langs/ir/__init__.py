"""The compiler IR chain (Fig. 11):

Clight (MiniC) → Csharpminor → Cminor → CminorSel → RTL → LTL →
Linear → Mach → x86. Every IR has a footprint-instrumented interpreter
implementing the abstract module-language interface, so the simulation
checker can validate any adjacent pair of the pipeline.
"""

from repro.langs.ir.base import IRModule
from repro.langs.ir.csharpminor import CSHARPMINOR, CshmLang
from repro.langs.ir.cminor import CMINOR, CminorLang
from repro.langs.ir.cminorsel import CMINORSEL, CminorSelLang
from repro.langs.ir.rtl import RTL, RTLLang
from repro.langs.ir.ltl import LTL, LTLLang
from repro.langs.ir.linear import LINEAR, LinearLang
from repro.langs.ir.mach import MACH, MachLang

__all__ = [
    "IRModule",
    "CSHARPMINOR",
    "CshmLang",
    "CMINOR",
    "CminorLang",
    "CMINORSEL",
    "CminorSelLang",
    "RTL",
    "RTLLang",
    "LTL",
    "LTLLang",
    "LINEAR",
    "LinearLang",
    "MACH",
    "MachLang",
]
