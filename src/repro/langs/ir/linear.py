"""Linear: linearized LTL (output of the Linearize pass).

The CFG is replaced by an instruction *list* with labels, gotos and
conditional branches that fall through when false. Locations (machine
registers + abstract slots) and the calling convention are unchanged
from LTL; the CleanupLabels pass runs at this level.
"""

from repro.common.astbase import Node
from repro.common.errors import SemanticsError
from repro.common.footprint import EMP, Footprint
from repro.common.immutables import EMPTY_MAP, ImmutableMap
from repro.common.values import VInt, VPtr, VUndef
from repro.lang.interface import ModuleLanguage
from repro.lang.messages import (
    TAU,
    CallMsg,
    EventMsg,
    RetMsg,
    SpawnMsg,
)
from repro.lang.steps import Step, StepAbort
from repro.langs.ir.base import (
    EvalAbort,
    load_checked,
    store_checked,
    symbol_addr,
)
from repro.langs.ir.ltl import _apply_op, _read, _write
from repro.langs.x86.regs import ARG_REGS, RET_REG


class LinInstr(Node):
    pass


class LinLabel(LinInstr):
    _fields = ("lbl",)


class LinOp(LinInstr):
    _fields = ("op", "args", "dst")


class LinConst(LinInstr):
    _fields = ("n", "dst")


class LinAddrGlobal(LinInstr):
    _fields = ("name", "dst")


class LinAddrStack(LinInstr):
    _fields = ("ofs", "dst")


class LinLoad(LinInstr):
    _fields = ("addr", "dst")


class LinStore(LinInstr):
    _fields = ("addr", "src")


class LinCall(LinInstr):
    _fields = ("fname", "arity", "external")


class LinTailcall(LinInstr):
    _fields = ("fname", "arity")


class LinGoto(LinInstr):
    _fields = ("lbl",)


class LinCond(LinInstr):
    """Branch to ``lbl`` when the condition holds; else fall through."""

    _fields = ("op", "args", "lbl")


class LinReturn(LinInstr):
    _fields = ()


class LinPrint(LinInstr):
    _fields = ("src",)


class LinSpawn(LinInstr):
    _fields = ("fname",)


class LinearFunction:
    """A Linear function: an instruction tuple plus its label map."""

    __slots__ = ("name", "nparams", "stacksize", "numslots", "code",
                 "labels")

    def __init__(self, name, nparams, stacksize, numslots, code):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "nparams", nparams)
        object.__setattr__(self, "stacksize", stacksize)
        object.__setattr__(self, "numslots", numslots)
        object.__setattr__(self, "code", tuple(code))
        labels = {}
        for idx, instr in enumerate(self.code):
            if isinstance(instr, LinLabel):
                if instr.lbl in labels:
                    raise SemanticsError(
                        "duplicate label {!r} in {}".format(
                            instr.lbl, name
                        )
                    )
                labels[instr.lbl] = idx
        object.__setattr__(self, "labels", labels)

    def __setattr__(self, name, value):
        raise AttributeError("LinearFunction is immutable")

    def __repr__(self):
        return "LinearFunction({}, {} instrs)".format(
            self.name, len(self.code)
        )

    def target(self, lbl):
        idx = self.labels.get(lbl)
        if idx is None:
            raise SemanticsError(
                "undefined label {!r} in {}".format(lbl, self.name)
            )
        return idx


class LinFrame:
    __slots__ = ("fname", "pc", "slots", "sp", "_hash")

    def __init__(self, fname, pc, slots, sp):
        object.__setattr__(self, "fname", fname)
        object.__setattr__(self, "pc", pc)
        object.__setattr__(self, "slots", slots)
        object.__setattr__(self, "sp", sp)

    def __setattr__(self, name, value):
        raise AttributeError("LinFrame is immutable")

    def __eq__(self, other):
        if self is other:
            return True
        return (
            isinstance(other, LinFrame)
            and self.fname == other.fname
            and self.pc == other.pc
            and self.slots == other.slots
            and self.sp == other.sp
        )

    def __hash__(self):
        try:
            return self._hash
        except AttributeError:
            h = hash((self.fname, self.pc, self.slots, self.sp))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self):
        return "LinFrame({}@{})".format(self.fname, self.pc)

    def at(self, pc, slots=None):
        return LinFrame(
            self.fname,
            pc,
            self.slots if slots is None else slots,
            self.sp,
        )


class LinCore:
    __slots__ = ("regs", "frames", "nidx", "pending", "done", "_hash")

    def __init__(self, regs=EMPTY_MAP, frames=(), nidx=0, pending=None,
                 done=False):
        object.__setattr__(self, "regs", regs)
        object.__setattr__(self, "frames", tuple(frames))
        object.__setattr__(self, "nidx", nidx)
        object.__setattr__(self, "pending", pending)
        object.__setattr__(self, "done", done)

    def __setattr__(self, name, value):
        raise AttributeError("LinCore is immutable")

    def __eq__(self, other):
        if self is other:
            return True
        return (
            isinstance(other, LinCore)
            and self.regs == other.regs
            and self.frames == other.frames
            and self.nidx == other.nidx
            and self.pending == other.pending
            and self.done == other.done
        )

    def __hash__(self):
        try:
            return self._hash
        except AttributeError:
            h = hash((self.regs, self.frames, self.nidx, self.pending, self.done))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self):
        return "LinCore(depth={}, pending={!r})".format(
            len(self.frames), self.pending
        )


class LinearLang(ModuleLanguage):
    """The Linear module language (deterministic)."""

    name = "Linear"

    core_cls = LinCore
    frame_cls = LinFrame

    def init_core(self, module, entry, args=()):
        func = module.functions.get(entry)
        if func is None:
            return None
        if len(args) != func.nparams:
            return self.core_cls(pending=("arity-abort",))
        regs = ImmutableMap(dict(zip(ARG_REGS, args)))
        return self.core_cls(regs=regs, pending=("enter", entry))

    def after_external(self, core, retval):
        if not (core.pending and core.pending[0] == "ext-wait"):
            raise SemanticsError("core is not waiting for an external")
        return self.core_cls(
            core.regs, core.frames, core.nidx, ("set-ret", retval)
        )

    def step(self, module, core, mem, flist):
        if core.done:
            return []
        try:
            return self._step(module, core, mem, flist)
        except EvalAbort as abort:
            return [StepAbort(reason=abort.reason)]

    def _step(self, module, core, mem, flist):
        pending = core.pending
        if pending is not None:
            kind = pending[0]
            if kind == "arity-abort":
                return [StepAbort(reason="arity mismatch")]
            if kind == "enter":
                return self._enter(module, core, mem, flist, pending[1])
            if kind == "set-ret":
                regs = core.regs.set(RET_REG, pending[1])
                nxt = self.core_cls(regs, core.frames, core.nidx)
                return [Step(TAU, EMP, nxt, mem)]
            if kind == "ext-wait":
                return []
            raise SemanticsError("unknown pending {!r}".format(pending))
        frame = core.frames[-1]
        func = module.functions[frame.fname]
        if frame.pc >= len(func.code):
            raise SemanticsError(
                "fell off the end of {}".format(frame.fname)
            )
        return self._instr_step(
            module, core, mem, frame, func, func.code[frame.pc]
        )

    def _enter(self, module, core, mem, flist, fname):
        func = module.functions[fname]
        ws = set()
        nidx = core.nidx
        mem2 = mem
        sp = None
        if func.stacksize > 0:
            sp = flist.addr_at(nidx)
            for _ in range(func.stacksize):
                addr = flist.addr_at(nidx)
                nidx += 1
                mem2 = mem2.alloc(addr, VUndef)
                if mem2 is None:
                    raise SemanticsError("freelist slot already allocated")
                ws.add(addr)
        frame = self.frame_cls(fname, 0, EMPTY_MAP, sp)
        nxt = self.core_cls(core.regs, core.frames + (frame,), nidx)
        return [Step(TAU, Footprint((), ws), nxt, mem2)]

    def _instr_step(self, module, core, mem, frame, func, instr):
        if isinstance(instr, LinLabel):
            return self._adv(core, frame.at(frame.pc + 1), mem, EMP)

        if isinstance(instr, LinConst):
            regs, slots = _write(core, frame, instr.dst, VInt(instr.n))
            return self._adv(
                core, frame.at(frame.pc + 1, slots), mem, EMP, regs
            )

        if isinstance(instr, LinAddrGlobal):
            value = VPtr(symbol_addr(module, instr.name))
            regs, slots = _write(core, frame, instr.dst, value)
            return self._adv(
                core, frame.at(frame.pc + 1, slots), mem, EMP, regs
            )

        if isinstance(instr, LinAddrStack):
            if frame.sp is None:
                return [StepAbort(reason="stack address without stack")]
            regs, slots = _write(
                core, frame, instr.dst, VPtr(frame.sp + instr.ofs)
            )
            return self._adv(
                core, frame.at(frame.pc + 1, slots), mem, EMP, regs
            )

        if isinstance(instr, LinOp):
            values = [_read(core, frame, l) for l in instr.args]
            result = _apply_op(instr.op, values)
            regs, slots = _write(core, frame, instr.dst, result)
            return self._adv(
                core, frame.at(frame.pc + 1, slots), mem, EMP, regs
            )

        if isinstance(instr, LinLoad):
            rs = set()
            ptr = _read(core, frame, instr.addr)
            if not isinstance(ptr, VPtr):
                return [StepAbort(reason="load through non-pointer")]
            value = load_checked(module, mem, ptr.addr, rs)
            regs, slots = _write(core, frame, instr.dst, value)
            return self._adv(
                core,
                frame.at(frame.pc + 1, slots),
                mem,
                Footprint(rs),
                regs,
            )

        if isinstance(instr, LinStore):
            ptr = _read(core, frame, instr.addr)
            value = _read(core, frame, instr.src)
            if not isinstance(ptr, VPtr):
                return [StepAbort(reason="store through non-pointer")]
            mem2 = store_checked(module, mem, ptr.addr, value)
            return self._adv(
                core,
                frame.at(frame.pc + 1),
                mem2,
                Footprint((), {ptr.addr}),
            )

        if isinstance(instr, LinCall):
            args = tuple(
                _read(core, frame, ARG_REGS[i])
                for i in range(instr.arity)
            )
            frames = core.frames[:-1] + (frame.at(frame.pc + 1),)
            if instr.external:
                nxt = self.core_cls(
                    core.regs, frames, core.nidx, ("ext-wait",)
                )
                return [Step(CallMsg(instr.fname, args), EMP, nxt, mem)]
            nxt = self.core_cls(
                core.regs, frames, core.nidx, ("enter", instr.fname)
            )
            return [Step(TAU, EMP, nxt, mem)]

        if isinstance(instr, LinTailcall):
            nxt = self.core_cls(
                core.regs,
                core.frames[:-1],
                core.nidx,
                ("enter", instr.fname),
            )
            return [Step(TAU, EMP, nxt, mem)]

        if isinstance(instr, LinGoto):
            return self._adv(
                core, frame.at(func.target(instr.lbl)), mem, EMP
            )

        if isinstance(instr, LinCond):
            values = [_read(core, frame, l) for l in instr.args]
            result = _apply_op(instr.op, values)
            taken = result.is_true()
            if taken is None:
                return [StepAbort(reason="undefined condition")]
            pc = func.target(instr.lbl) if taken else frame.pc + 1
            return self._adv(core, frame.at(pc), mem, EMP)

        if isinstance(instr, LinReturn):
            value = core.regs.get(RET_REG, VUndef)
            if value is VUndef:
                return [StepAbort(reason="return with undefined eax")]
            return self._return(core, mem, value)

        if isinstance(instr, LinSpawn):
            nxt = self.core_cls(
                core.regs,
                core.frames[:-1] + (frame.at(frame.pc + 1),),
                core.nidx,
            )
            return [Step(SpawnMsg(instr.fname), EMP, nxt, mem)]

        if isinstance(instr, LinPrint):
            value = _read(core, frame, instr.src)
            if not isinstance(value, VInt):
                return [StepAbort(reason="print of non-integer")]
            nxt = self.core_cls(
                core.regs,
                core.frames[:-1] + (frame.at(frame.pc + 1),),
                core.nidx,
            )
            return [Step(EventMsg("print", value.n), EMP, nxt, mem)]

        raise SemanticsError(
            "unknown Linear instruction {!r}".format(instr)
        )

    def _adv(self, core, frame, mem, footprint, regs=None):
        nxt = self.core_cls(
            core.regs if regs is None else regs,
            core.frames[:-1] + (frame,),
            core.nidx,
        )
        return [Step(TAU, footprint, nxt, mem)]

    def _return(self, core, mem, value):
        if len(core.frames) > 1:
            nxt = self.core_cls(core.regs, core.frames[:-1], core.nidx)
            return [Step(TAU, EMP, nxt, mem)]
        nxt = self.core_cls(nidx=core.nidx, done=True)
        return [Step(RetMsg(value), EMP, nxt, mem)]

    def is_final(self, module, core):
        return core is not None and core.done

    def stage_module(self, module):
        from repro.langs.ir import compile as ircompile

        return ircompile.stage_linear_module(self, module)


LINEAR = LinearLang()
