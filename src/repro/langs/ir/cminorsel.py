"""CminorSel: output of the Selection (instruction selection) pass.

CminorSel shares Cminor's syntax and semantics but admits the
machine-oriented operators the selector introduces — shifts (``<<``,
``>>``) standing in for x86's ``shl``/``sar`` strength-reduced
multiplications and divisions. The language object is a distinct
instance so simulation reports and determinism/wd checks identify the
level correctly.
"""

from repro.langs.ir.cminor import (
    CMINOR,
    CmCore,
    CmFunction,
    CminorLang,
    EAddrGlobal,
    EAddrStack,
    EBinop,
    EConst,
    ELoad,
    ETemp,
    EUnop,
    SCall,
    SIf,
    SPrint,
    SReturn,
    SSeq,
    SSet,
    SSkip,
    SStore,
    SWhile,
)

__all__ = [
    "CMINORSEL",
    "CminorSelLang",
    "CmFunction",
    "CmCore",
    "EConst",
    "ETemp",
    "EAddrGlobal",
    "EAddrStack",
    "ELoad",
    "EUnop",
    "EBinop",
    "SSkip",
    "SSet",
    "SStore",
    "SCall",
    "SPrint",
    "SSeq",
    "SIf",
    "SWhile",
    "SReturn",
]

_ = CMINOR  # re-exported base instance, kept for import symmetry


class CminorSelLang(CminorLang):
    """Cminor semantics under the CminorSel name."""

    name = "CminorSel"


CMINORSEL = CminorSelLang()
