"""LTL: RTL over machine *locations* (output of Allocation).

Virtual registers are replaced by locations: machine registers or
abstract stack slots ``("s", i)``. Slots still live in the core (the
"locset"), not in memory — materializing them as frame memory is the
Stacking pass's job. The Allocation pass maintains the CompCert
invariant that computing instructions use register operands only;
slots appear exclusively in ``move`` instructions.

Calling convention: arguments in ``ARG_REGS``, result in ``RET_REG``;
machine registers are shared across the activation stack (they are the
thread's physical registers), slots are per-activation.
"""

from repro.common.astbase import Node
from repro.common.errors import SemanticsError
from repro.common.footprint import EMP, Footprint
from repro.common.immutables import EMPTY_MAP, ImmutableMap
from repro.common.values import BINOPS, UNOPS, VInt, VPtr, VUndef
from repro.lang.interface import ModuleLanguage
from repro.lang.messages import (
    TAU,
    CallMsg,
    EventMsg,
    RetMsg,
    SpawnMsg,
)
from repro.lang.steps import Step, StepAbort
from repro.langs.ir.base import (
    EvalAbort,
    load_checked,
    store_checked,
    symbol_addr,
)
from repro.langs.x86.regs import ARG_REGS, RET_REG, is_reg, is_slot


# ----- instructions -----------------------------------------------------------


class LInstr(Node):
    pass


class Lnop(LInstr):
    _fields = ("next",)


class Lconst(LInstr):
    _fields = ("n", "dst", "next")


class Laddrglobal(LInstr):
    _fields = ("name", "dst", "next")


class Laddrstack(LInstr):
    _fields = ("ofs", "dst", "next")


class Lop(LInstr):
    """``dst := op(args)``. For ``op != "move"`` all operands and the
    destination must be machine registers (Allocation invariant)."""

    _fields = ("op", "args", "dst", "next")


class Lload(LInstr):
    _fields = ("addr", "dst", "next")


class Lstore(LInstr):
    _fields = ("addr", "src", "next")


class Lcall(LInstr):
    """Arguments already placed in ``ARG_REGS[:arity]``; the result
    arrives in ``RET_REG``."""

    _fields = ("fname", "arity", "next", "external")


class Ltailcall(LInstr):
    _fields = ("fname", "arity")


class Lcond(LInstr):
    _fields = ("op", "args", "iftrue", "iffalse")


class Lreturn(LInstr):
    """Returns the value of ``RET_REG``."""

    _fields = ()


class Lprint(LInstr):
    _fields = ("src", "next")


class Lspawn(LInstr):
    _fields = ("fname", "next")


class LTLFunction:
    """An LTL function: CFG over locations.

    ``numslots`` is the number of spill slots this function uses
    (becomes the frame layout input of Stacking).
    """

    __slots__ = ("name", "nparams", "stacksize", "numslots", "entry",
                 "code")

    def __init__(self, name, nparams, stacksize, numslots, entry, code):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "nparams", nparams)
        object.__setattr__(self, "stacksize", stacksize)
        object.__setattr__(self, "numslots", numslots)
        object.__setattr__(self, "entry", entry)
        object.__setattr__(self, "code", dict(code))

    def __setattr__(self, name, value):
        raise AttributeError("LTLFunction is immutable")

    def __repr__(self):
        return "LTLFunction({}, {} nodes)".format(
            self.name, len(self.code)
        )


# ----- semantics ---------------------------------------------------------------


class LTLFrame:
    __slots__ = ("fname", "pc", "slots", "sp", "_hash")

    def __init__(self, fname, pc, slots, sp):
        object.__setattr__(self, "fname", fname)
        object.__setattr__(self, "pc", pc)
        object.__setattr__(self, "slots", slots)
        object.__setattr__(self, "sp", sp)

    def __setattr__(self, name, value):
        raise AttributeError("LTLFrame is immutable")

    def __eq__(self, other):
        if self is other:
            return True
        return (
            isinstance(other, LTLFrame)
            and self.fname == other.fname
            and self.pc == other.pc
            and self.slots == other.slots
            and self.sp == other.sp
        )

    def __hash__(self):
        try:
            return self._hash
        except AttributeError:
            h = hash((self.fname, self.pc, self.slots, self.sp))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self):
        return "LTLFrame({}@{})".format(self.fname, self.pc)

    def at(self, pc, slots=None):
        return LTLFrame(
            self.fname,
            pc,
            self.slots if slots is None else slots,
            self.sp,
        )


class LTLCore:
    __slots__ = ("regs", "frames", "nidx", "pending", "done", "_hash")

    def __init__(self, regs=EMPTY_MAP, frames=(), nidx=0, pending=None,
                 done=False):
        object.__setattr__(self, "regs", regs)
        object.__setattr__(self, "frames", tuple(frames))
        object.__setattr__(self, "nidx", nidx)
        object.__setattr__(self, "pending", pending)
        object.__setattr__(self, "done", done)

    def __setattr__(self, name, value):
        raise AttributeError("LTLCore is immutable")

    def __eq__(self, other):
        if self is other:
            return True
        return (
            isinstance(other, LTLCore)
            and self.regs == other.regs
            and self.frames == other.frames
            and self.nidx == other.nidx
            and self.pending == other.pending
            and self.done == other.done
        )

    def __hash__(self):
        try:
            return self._hash
        except AttributeError:
            h = hash((self.regs, self.frames, self.nidx, self.pending, self.done))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self):
        return "LTLCore(depth={}, pending={!r})".format(
            len(self.frames), self.pending
        )


def _read(core, frame, loc):
    if is_reg(loc):
        value = core.regs.get(loc, VUndef)
    elif is_slot(loc):
        value = frame.slots.get(loc[1], VUndef)
    else:
        raise SemanticsError("bad location {!r}".format(loc))
    if value is VUndef:
        raise EvalAbort("use of undefined location {!r}".format(loc))
    return value


def _write(core, frame, loc, value):
    """Returns ``(regs, slots)`` after writing ``loc``."""
    if is_reg(loc):
        return core.regs.set(loc, value), frame.slots
    if is_slot(loc):
        return core.regs, frame.slots.set(loc[1], value)
    raise SemanticsError("bad location {!r}".format(loc))


def _apply_op(op, values):
    if op == "move":
        return values[0]
    if len(values) == 1:
        result = UNOPS[op](values[0])
    else:
        result = BINOPS[op](values[0], values[1])
    if result is VUndef:
        raise EvalAbort("undefined result of {!r}".format(op))
    return result


class LTLLang(ModuleLanguage):
    """The LTL module language (deterministic)."""

    name = "LTL"

    def init_core(self, module, entry, args=()):
        func = module.functions.get(entry)
        if func is None:
            return None
        if len(args) != func.nparams:
            return LTLCore(pending=("arity-abort",))
        regs = ImmutableMap(dict(zip(ARG_REGS, args)))
        return LTLCore(regs=regs, pending=("enter", entry))

    def after_external(self, core, retval):
        if not (core.pending and core.pending[0] == "ext-wait"):
            raise SemanticsError("core is not waiting for an external")
        return LTLCore(
            core.regs,
            core.frames,
            core.nidx,
            ("set-ret", retval),
        )

    def step(self, module, core, mem, flist):
        if core.done:
            return []
        try:
            return self._step(module, core, mem, flist)
        except EvalAbort as abort:
            return [StepAbort(reason=abort.reason)]

    def _step(self, module, core, mem, flist):
        pending = core.pending
        if pending is not None:
            kind = pending[0]
            if kind == "arity-abort":
                return [StepAbort(reason="arity mismatch")]
            if kind == "enter":
                return self._enter(module, core, mem, flist, pending[1])
            if kind == "set-ret":
                regs = core.regs.set(RET_REG, pending[1])
                nxt = LTLCore(regs, core.frames, core.nidx)
                return [Step(TAU, EMP, nxt, mem)]
            if kind == "ext-wait":
                return []
            raise SemanticsError("unknown pending {!r}".format(pending))
        frame = core.frames[-1]
        func = module.functions[frame.fname]
        instr = func.code.get(frame.pc)
        if instr is None:
            raise SemanticsError(
                "no instruction at {}:{}".format(frame.fname, frame.pc)
            )
        return self._instr_step(module, core, mem, frame, instr)

    def _enter(self, module, core, mem, flist, fname):
        func = module.functions[fname]
        ws = set()
        nidx = core.nidx
        mem2 = mem
        sp = None
        if func.stacksize > 0:
            sp = flist.addr_at(nidx)
            for _ in range(func.stacksize):
                addr = flist.addr_at(nidx)
                nidx += 1
                mem2 = mem2.alloc(addr, VUndef)
                if mem2 is None:
                    raise SemanticsError("freelist slot already allocated")
                ws.add(addr)
        frame = LTLFrame(fname, func.entry, EMPTY_MAP, sp)
        nxt = LTLCore(core.regs, core.frames + (frame,), nidx)
        return [Step(TAU, Footprint((), ws), nxt, mem2)]

    def _instr_step(self, module, core, mem, frame, instr):
        if isinstance(instr, Lnop):
            return self._advance(core, frame.at(instr.next), mem, EMP)

        if isinstance(instr, Lconst):
            regs, slots = _write(core, frame, instr.dst, VInt(instr.n))
            return self._advance(
                core, frame.at(instr.next, slots), mem, EMP, regs
            )

        if isinstance(instr, Laddrglobal):
            value = VPtr(symbol_addr(module, instr.name))
            regs, slots = _write(core, frame, instr.dst, value)
            return self._advance(
                core, frame.at(instr.next, slots), mem, EMP, regs
            )

        if isinstance(instr, Laddrstack):
            if frame.sp is None:
                return [StepAbort(reason="stack address without stack")]
            regs, slots = _write(
                core, frame, instr.dst, VPtr(frame.sp + instr.ofs)
            )
            return self._advance(
                core, frame.at(instr.next, slots), mem, EMP, regs
            )

        if isinstance(instr, Lop):
            if instr.op != "move":
                bad = [
                    l
                    for l in tuple(instr.args) + (instr.dst,)
                    if not is_reg(l)
                ]
                if bad:
                    raise SemanticsError(
                        "non-register operand {!r} in Lop".format(bad[0])
                    )
            values = [_read(core, frame, l) for l in instr.args]
            result = _apply_op(instr.op, values)
            regs, slots = _write(core, frame, instr.dst, result)
            return self._advance(
                core, frame.at(instr.next, slots), mem, EMP, regs
            )

        if isinstance(instr, Lload):
            rs = set()
            ptr = _read(core, frame, instr.addr)
            if not isinstance(ptr, VPtr):
                return [StepAbort(reason="load through non-pointer")]
            value = load_checked(module, mem, ptr.addr, rs)
            regs, slots = _write(core, frame, instr.dst, value)
            return self._advance(
                core,
                frame.at(instr.next, slots),
                mem,
                Footprint(rs),
                regs,
            )

        if isinstance(instr, Lstore):
            ptr = _read(core, frame, instr.addr)
            value = _read(core, frame, instr.src)
            if not isinstance(ptr, VPtr):
                return [StepAbort(reason="store through non-pointer")]
            mem2 = store_checked(module, mem, ptr.addr, value)
            return self._advance(
                core,
                frame.at(instr.next),
                mem2,
                Footprint((), {ptr.addr}),
            )

        if isinstance(instr, Lcall):
            args = tuple(
                _read(core, frame, ARG_REGS[i])
                for i in range(instr.arity)
            )
            frames = core.frames[:-1] + (frame.at(instr.next),)
            if instr.external:
                nxt = LTLCore(
                    core.regs, frames, core.nidx, ("ext-wait",)
                )
                return [Step(CallMsg(instr.fname, args), EMP, nxt, mem)]
            nxt = LTLCore(
                core.regs, frames, core.nidx, ("enter", instr.fname)
            )
            return [Step(TAU, EMP, nxt, mem)]

        if isinstance(instr, Ltailcall):
            nxt = LTLCore(
                core.regs,
                core.frames[:-1],
                core.nidx,
                ("enter", instr.fname),
            )
            return [Step(TAU, EMP, nxt, mem)]

        if isinstance(instr, Lcond):
            values = [_read(core, frame, l) for l in instr.args]
            result = _apply_op(instr.op, values)
            taken = result.is_true()
            if taken is None:
                return [StepAbort(reason="undefined condition")]
            target = instr.iftrue if taken else instr.iffalse
            return self._advance(core, frame.at(target), mem, EMP)

        if isinstance(instr, Lreturn):
            value = core.regs.get(RET_REG, VUndef)
            if value is VUndef:
                return [StepAbort(reason="return with undefined eax")]
            return self._return(core, mem, value)

        if isinstance(instr, Lspawn):
            nxt = LTLCore(
                core.regs,
                core.frames[:-1] + (frame.at(instr.next),),
                core.nidx,
            )
            return [Step(SpawnMsg(instr.fname), EMP, nxt, mem)]

        if isinstance(instr, Lprint):
            value = _read(core, frame, instr.src)
            if not isinstance(value, VInt):
                return [StepAbort(reason="print of non-integer")]
            nxt = LTLCore(
                core.regs,
                core.frames[:-1] + (frame.at(instr.next),),
                core.nidx,
            )
            return [Step(EventMsg("print", value.n), EMP, nxt, mem)]

        raise SemanticsError("unknown LTL instruction {!r}".format(instr))

    def _advance(self, core, frame, mem, footprint, regs=None):
        nxt = LTLCore(
            core.regs if regs is None else regs,
            core.frames[:-1] + (frame,),
            core.nidx,
        )
        return [Step(TAU, footprint, nxt, mem)]

    def _return(self, core, mem, value):
        if len(core.frames) > 1:
            nxt = LTLCore(core.regs, core.frames[:-1], core.nidx)
            return [Step(TAU, EMP, nxt, mem)]
        nxt = LTLCore(nidx=core.nidx, done=True)
        return [Step(RetMsg(value), EMP, nxt, mem)]

    def is_final(self, module, core):
        return core is not None and core.done

    def stage_module(self, module):
        from repro.langs.ir import compile as ircompile

        return ircompile.stage_ltl_module(self, module)


LTL = LTLLang()
