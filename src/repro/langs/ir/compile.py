"""Closure compilation of the compiler-IR step interpreters.

One module, seven languages. The statement family (Csharpminor and
Cminor — CminorSel shares Cminor's semantics) compiles per
continuation-head statement, exactly like
:mod:`repro.langs.minic.compile`; the instruction family (RTL, LTL,
Linear, Mach) compiles one closure **per program point** — the table
is keyed ``(fname, pc)``, so the hot loop goes straight from the
frame's position to the staged instruction without touching the
function object or the isinstance ladder.

Everything the instruction mentions is resolved at compile time:
operator functions, label targets, successor pcs, symbol addresses,
register names and their undefined-use abort reasons, and — when the
accessed locations are static — the footprint itself. Anything the
compilers cannot handle (malformed operands, unknown nodes, undefined
labels) is left out of the table, so the interpreter reproduces the
exact error behaviour at run time.
"""

from repro.common.footprint import EMP, Footprint
from repro.common.freelist import is_global
from repro.common.values import BINOPS, UNOPS, VInt, VPtr, VUndef
from repro.lang.messages import (
    TAU,
    CallMsg,
    EventMsg,
    RetMsg,
    SpawnMsg,
)
from repro.lang.steps import Step, StepAbort
from repro.langs.ir import csharpminor as cshm
from repro.langs.ir import cminor as cm
from repro.langs.ir import linear as lin
from repro.langs.ir import ltl
from repro.langs.ir import mach
from repro.langs.ir import rtl
from repro.langs.ir.base import EvalAbort
from repro.langs.ir.csharpminor import _flatten
from repro.langs.x86.regs import ARG_REGS, RET_REG, is_reg, is_slot

_VINT0 = VInt(0)


def access_check(module):
    """The module's permission predicate, or None when vacuous.

    Mirrors :func:`repro.langs.ir.base.check_access` with the region
    sets bound at compile time.
    """
    forbidden = module.forbidden
    owned = module.owned
    if not forbidden and not owned:
        return None

    def check(addr):
        if addr in forbidden:
            raise EvalAbort(
                "client accessed object-owned address {}".format(addr)
            )
        if owned and is_global(addr) and addr not in owned:
            raise EvalAbort(
                "object accessed non-owned global address "
                "{}".format(addr)
            )

    return check


def _static_load(module, name):
    """Compile-time resolution of ``ELoad(EAddrGlobal(name))``.

    Returns ``(addr, abort_reason)``; a statically detected abort
    still happens at run time (reads are discarded on abort anyway).
    """
    addr = module.symbols.get(name)
    if addr is None:
        return None, "unresolved global {!r}".format(name)
    if addr in module.forbidden:
        return addr, (
            "client accessed object-owned address {}".format(addr)
        )
    if module.owned and is_global(addr) and addr not in module.owned:
        return addr, (
            "object accessed non-owned global address {}".format(addr)
        )
    return addr, None


# ----- statement family: Csharpminor / Cminor (/ CminorSel) -----------------


def stmt_expr_reads(module, expr):
    """Static read set of a stmt-family expression, or None (dynamic)."""
    if isinstance(
        expr,
        (cshm.EConst, cshm.ETemp, cshm.EAddrLocal, cshm.EAddrGlobal,
         cm.EAddrStack),
    ):
        return frozenset()
    if isinstance(expr, cshm.ELoad):
        if isinstance(expr.addr, cshm.EAddrGlobal):
            addr, abort = _static_load(module, expr.addr.name)
            return frozenset() if abort is not None else frozenset((addr,))
        return None
    if isinstance(expr, cshm.EUnop):
        return stmt_expr_reads(module, expr.arg)
    if isinstance(expr, cshm.EBinop):
        left = stmt_expr_reads(module, expr.left)
        if left is None:
            return None
        right = stmt_expr_reads(module, expr.right)
        if right is None:
            return None
        return left | right
    return None


def compile_stmt_expr(module, expr, record, counter, stackaddr):
    """One stmt-family expression → ``run(frame, mem[, rs])``.

    ``stackaddr`` selects the frame-address form: EAddrLocal for
    Csharpminor, EAddrStack for Cminor/CminorSel. The other form falls
    back to the interpreter (which rejects it as an unknown node).
    """
    counter[0] += 1

    if isinstance(expr, cshm.EConst):
        v = VInt(expr.n)
        if record:
            return lambda frame, mem, rs: v
        return lambda frame, mem: v

    if isinstance(expr, cshm.ETemp):
        name = expr.name
        reason = "use of undefined temp {!r}".format(name)
        if record:
            def run(frame, mem, rs):
                value = frame.temps.get(name, VUndef)
                if value is VUndef:
                    raise EvalAbort(reason)
                return value
        else:
            def run(frame, mem):
                value = frame.temps.get(name, VUndef)
                if value is VUndef:
                    raise EvalAbort(reason)
                return value
        return run

    if isinstance(expr, cshm.EAddrLocal):
        if stackaddr is not cshm.EAddrLocal:
            return None
        name = expr.name
        reason = "unknown stack local {!r}".format(name)
        if record:
            def run(frame, mem, rs):
                addr = frame.env.get(name)
                if addr is None:
                    raise EvalAbort(reason)
                return VPtr(addr)
        else:
            def run(frame, mem):
                addr = frame.env.get(name)
                if addr is None:
                    raise EvalAbort(reason)
                return VPtr(addr)
        return run

    if isinstance(expr, cm.EAddrStack):
        if stackaddr is not cm.EAddrStack:
            return None
        ofs = expr.ofs
        if record:
            def run(frame, mem, rs):
                if frame.sp is None:
                    raise EvalAbort(
                        "stack address in a frame without stack"
                    )
                return VPtr(frame.sp + ofs)
        else:
            def run(frame, mem):
                if frame.sp is None:
                    raise EvalAbort(
                        "stack address in a frame without stack"
                    )
                return VPtr(frame.sp + ofs)
        return run

    if isinstance(expr, cshm.EAddrGlobal):
        addr = module.symbols.get(expr.name)
        if addr is None:
            reason = "unresolved global {!r}".format(expr.name)
            if record:
                def run(frame, mem, rs):
                    raise EvalAbort(reason)
            else:
                def run(frame, mem):
                    raise EvalAbort(reason)
            return run
        v = VPtr(addr)
        if record:
            return lambda frame, mem, rs: v
        return lambda frame, mem: v

    if isinstance(expr, cshm.ELoad):
        if isinstance(expr.addr, cshm.EAddrGlobal):
            addr, abort = _static_load(module, expr.addr.name)
            if abort is not None:
                if record:
                    def run(frame, mem, rs):
                        raise EvalAbort(abort)
                else:
                    def run(frame, mem):
                        raise EvalAbort(abort)
                return run
            miss = "load from unallocated {}".format(addr)
            if record:
                def run(frame, mem, rs):
                    rs.add(addr)
                    value = mem.load(addr)
                    if value is None:
                        raise EvalAbort(miss)
                    return value
            else:
                def run(frame, mem):
                    value = mem.load(addr)
                    if value is None:
                        raise EvalAbort(miss)
                    return value
            return run
        sub = compile_stmt_expr(module, expr.addr, True, counter,
                                stackaddr)
        if sub is None or not record:
            return None
        check = access_check(module)

        def run(frame, mem, rs):
            ptr = sub(frame, mem, rs)
            if not isinstance(ptr, VPtr):
                raise EvalAbort("load through non-pointer")
            addr = ptr.addr
            if check is not None:
                check(addr)
            rs.add(addr)
            value = mem.load(addr)
            if value is None:
                raise EvalAbort("load from unallocated {}".format(addr))
            return value

        return run

    if isinstance(expr, cshm.EUnop):
        arg = compile_stmt_expr(module, expr.arg, record, counter,
                                stackaddr)
        if arg is None:
            return None
        try:
            op = UNOPS[expr.op]
        except KeyError:
            return None
        if record:
            def run(frame, mem, rs):
                result = op(arg(frame, mem, rs))
                if result is VUndef:
                    raise EvalAbort("undefined unop result")
                return result
        else:
            def run(frame, mem):
                result = op(arg(frame, mem))
                if result is VUndef:
                    raise EvalAbort("undefined unop result")
                return result
        return run

    if isinstance(expr, cshm.EBinop):
        left = compile_stmt_expr(module, expr.left, record, counter,
                                 stackaddr)
        right = compile_stmt_expr(module, expr.right, record, counter,
                                  stackaddr)
        if left is None or right is None:
            return None
        try:
            op = BINOPS[expr.op]
        except KeyError:
            return None
        if record:
            def run(frame, mem, rs):
                result = op(left(frame, mem, rs), right(frame, mem, rs))
                if result is VUndef:
                    raise EvalAbort("undefined binop result")
                return result
        else:
            def run(frame, mem):
                result = op(left(frame, mem), right(frame, mem))
                if result is VUndef:
                    raise EvalAbort("undefined binop result")
                return result
        return run

    return None


def _stmt_value(module, expr, counter, stackaddr):
    reads = stmt_expr_reads(module, expr)
    run = compile_stmt_expr(module, expr, reads is None, counter,
                            stackaddr)
    return run, reads


def _compile_stmt(module, stmt, counter, core_cls, stackaddr):
    """One stmt-family statement → ``run(core, mem, flist, frame,
    rest)`` or None."""
    check = access_check(module)

    if isinstance(stmt, cshm.SSkip):
        def run(core, mem, flist, frame, rest):
            nxt = core_cls(
                core.frames[:-1] + (frame.with_kont(rest),), core.nidx
            )
            return [Step(TAU, EMP, nxt, mem)]

        return run

    if isinstance(stmt, cshm.SSet):
        value_run, reads = _stmt_value(module, stmt.expr, counter,
                                       stackaddr)
        if value_run is None:
            return None
        temp = stmt.temp
        if reads is not None:
            fp = Footprint(reads)

            def run(core, mem, flist, frame, rest):
                value = value_run(frame, mem)
                nxt_frame = frame.with_temps(
                    frame.temps.set(temp, value), rest
                )
                nxt = core_cls(
                    core.frames[:-1] + (nxt_frame,), core.nidx
                )
                return [Step(TAU, fp, nxt, mem)]
        else:
            def run(core, mem, flist, frame, rest):
                rs = set()
                value = value_run(frame, mem, rs)
                nxt_frame = frame.with_temps(
                    frame.temps.set(temp, value), rest
                )
                nxt = core_cls(
                    core.frames[:-1] + (nxt_frame,), core.nidx
                )
                return [Step(TAU, Footprint(rs), nxt, mem)]
        return run

    if isinstance(stmt, cshm.SStore):
        # The address evaluates before the stored value.
        ptr_run = compile_stmt_expr(module, stmt.addr, True, counter,
                                    stackaddr)
        value_run = compile_stmt_expr(module, stmt.expr, True, counter,
                                      stackaddr)
        if ptr_run is None or value_run is None:
            return None

        def run(core, mem, flist, frame, rest):
            rs = set()
            ptr = ptr_run(frame, mem, rs)
            value = value_run(frame, mem, rs)
            if not isinstance(ptr, VPtr):
                return [StepAbort(reason="store through non-pointer")]
            addr = ptr.addr
            if check is not None:
                check(addr)
            mem2 = mem.store(addr, value)
            if mem2 is None:
                raise EvalAbort("store to unallocated {}".format(addr))
            nxt = core_cls(
                core.frames[:-1] + (frame.with_kont(rest),), core.nidx
            )
            return [Step(TAU, Footprint(rs, (addr,)), nxt, mem2)]

        return run

    if isinstance(stmt, cshm.SCall):
        runs = []
        all_reads = frozenset()
        for arg in stmt.args:
            arg_run, arg_reads = _stmt_value(module, arg, counter,
                                             stackaddr)
            if arg_run is None:
                return None
            runs.append((arg_run, arg_reads))
            if all_reads is not None and arg_reads is not None:
                all_reads = all_reads | arg_reads
            else:
                all_reads = None
        runs = tuple(runs)
        fname = stmt.fname
        dst = stmt.dst
        external = stmt.external
        fp = Footprint(all_reads) if all_reads is not None else None

        def run(core, mem, flist, frame, rest):
            if fp is not None:
                args = tuple(
                    arg_run(frame, mem) for arg_run, _ in runs
                )
                afp = fp
            else:
                rs = set()
                args = []
                for arg_run, arg_reads in runs:
                    if arg_reads is not None:
                        args.append(arg_run(frame, mem))
                        rs.update(arg_reads)
                    else:
                        args.append(arg_run(frame, mem, rs))
                args = tuple(args)
                afp = Footprint(rs)
            frames = core.frames[:-1] + (frame.with_kont(rest),)
            if external:
                nxt = core_cls(frames, core.nidx, ("ext-wait", dst))
                return [Step(CallMsg(fname, args), afp, nxt, mem)]
            nxt = core_cls(
                frames, core.nidx, ("enter", fname, args, dst)
            )
            return [Step(TAU, afp, nxt, mem)]

        return run

    if isinstance(stmt, cshm.SPrint):
        value_run, reads = _stmt_value(module, stmt.expr, counter,
                                       stackaddr)
        if value_run is None:
            return None
        fp = Footprint(reads) if reads is not None else None

        def run(core, mem, flist, frame, rest):
            if fp is not None:
                value = value_run(frame, mem)
                afp = fp
            else:
                rs = set()
                value = value_run(frame, mem, rs)
                afp = Footprint(rs)
            if not isinstance(value, VInt):
                return [StepAbort(reason="print of non-integer")]
            nxt = core_cls(
                core.frames[:-1] + (frame.with_kont(rest),), core.nidx
            )
            return [Step(EventMsg("print", value.n), afp, nxt, mem)]

        return run

    if isinstance(stmt, cshm.SIf):
        cond_run, reads = _stmt_value(module, stmt.cond, counter,
                                      stackaddr)
        if cond_run is None:
            return None
        then_flat = _flatten(stmt.then, ())
        els_flat = _flatten(stmt.els, ())
        fp = Footprint(reads) if reads is not None else None

        def run(core, mem, flist, frame, rest):
            if fp is not None:
                cond = cond_run(frame, mem)
                afp = fp
            else:
                rs = set()
                cond = cond_run(frame, mem, rs)
                afp = Footprint(rs)
            taken = cond.is_true()
            if taken is None:
                return [StepAbort(reason="undefined condition")]
            kont = (then_flat if taken else els_flat) + rest
            nxt = core_cls(
                core.frames[:-1] + (frame.with_kont(kont),), core.nidx
            )
            return [Step(TAU, afp, nxt, mem)]

        return run

    if isinstance(stmt, cshm.SWhile):
        cond_run, reads = _stmt_value(module, stmt.cond, counter,
                                      stackaddr)
        if cond_run is None:
            return None
        body_flat = _flatten(stmt.body, ()) + (stmt,)
        fp = Footprint(reads) if reads is not None else None

        def run(core, mem, flist, frame, rest):
            if fp is not None:
                cond = cond_run(frame, mem)
                afp = fp
            else:
                rs = set()
                cond = cond_run(frame, mem, rs)
                afp = Footprint(rs)
            taken = cond.is_true()
            if taken is None:
                return [StepAbort(reason="undefined loop condition")]
            kont = body_flat + rest if taken else rest
            nxt = core_cls(
                core.frames[:-1] + (frame.with_kont(kont),), core.nidx
            )
            return [Step(TAU, afp, nxt, mem)]

        return run

    if isinstance(stmt, cshm.SSpawn):
        msg = SpawnMsg(stmt.fname)

        def run(core, mem, flist, frame, rest):
            nxt = core_cls(
                core.frames[:-1] + (frame.with_kont(rest),), core.nidx
            )
            return [Step(msg, EMP, nxt, mem)]

        return run

    if isinstance(stmt, cshm.SReturn):
        if stmt.expr is None:
            value_run, reads = None, frozenset()
        else:
            value_run, reads = _stmt_value(module, stmt.expr, counter,
                                           stackaddr)
            if value_run is None:
                return None
        fp = Footprint(reads) if reads is not None else None

        def run(core, mem, flist, frame, rest):
            if value_run is None:
                value, afp = _VINT0, EMP
            elif fp is not None:
                value = value_run(frame, mem)
                afp = fp
            else:
                rs = set()
                value = value_run(frame, mem, rs)
                afp = Footprint(rs)
            if len(core.frames) > 1:
                nxt = core_cls(
                    core.frames[:-1],
                    core.nidx,
                    ("assign-result", frame.ret_dst, value),
                )
                return [Step(TAU, afp, nxt, mem)]
            nxt = core_cls(nidx=core.nidx, done=True)
            return [Step(RetMsg(value), afp, nxt, mem)]

        return run

    return None


def _collect_stmts(stmt, acc):
    if stmt is None or stmt in acc:
        return
    acc[stmt] = True
    if isinstance(stmt, cshm.SSeq):
        for s in stmt.stmts:
            _collect_stmts(s, acc)
    elif isinstance(stmt, cshm.SIf):
        _collect_stmts(stmt.then, acc)
        _collect_stmts(stmt.els, acc)
    elif isinstance(stmt, cshm.SWhile):
        _collect_stmts(stmt.body, acc)


def stage_stmt_module(lang, module, core_cls, stackaddr):
    """Stage a Csharpminor/Cminor module. Returns ``(step, n)``."""
    counter = [0]
    table = {}
    acc = {}
    for func in module.functions.values():
        _collect_stmts(func.body, acc)
    for stmt in acc:
        # SSeq never heads a continuation (``_flatten`` dissolves it);
        # the collector above only walks through it.
        if isinstance(stmt, cshm.SSeq):
            continue
        compiled = _compile_stmt(module, stmt, counter, core_cls,
                                 stackaddr)
        if compiled is not None:
            table[stmt] = compiled
            counter[0] += 1
    table_get = table.get
    interp = lang.step

    def step(core, mem, flist):
        if core.done:
            return []
        if core.pending is not None or not core.frames:
            return interp(module, core, mem, flist)
        frame = core.frames[-1]
        kont = frame.kont
        if not kont:
            if len(core.frames) > 1:
                nxt = core_cls(
                    core.frames[:-1],
                    core.nidx,
                    ("assign-result", frame.ret_dst, _VINT0),
                )
                return [Step(TAU, EMP, nxt, mem)]
            return [Step(
                RetMsg(_VINT0), EMP, core_cls(nidx=core.nidx, done=True),
                mem,
            )]
        fn = table_get(kont[0])
        if fn is None:
            return interp(module, core, mem, flist)
        try:
            return fn(core, mem, flist, frame, kont[1:])
        except EvalAbort as abort:
            return [StepAbort(reason=abort.reason)]

    return step, counter[0]


# ----- instruction family: shared pieces ------------------------------------


def _op_apply(op, nargs):
    """Staged :func:`_apply_op`; None when the interpreter must keep
    the (failing) call."""
    if op == "move":
        if nargs < 1:
            return None
        return lambda values: values[0]
    try:
        fn = UNOPS[op] if nargs == 1 else BINOPS[op]
    except KeyError:
        return None
    if nargs not in (1, 2):
        return None
    reason = "undefined result of {!r}".format(op)

    if nargs == 1:
        def apply(values):
            result = fn(values[0])
            if result is VUndef:
                raise EvalAbort(reason)
            return result
    else:
        def apply(values):
            result = fn(values[0], values[1])
            if result is VUndef:
                raise EvalAbort(reason)
            return result
    return apply


def _instr_dispatcher(lang, module, table):
    """The compiled step for the frame-based instruction IRs."""
    table_get = table.get
    interp = lang.step

    def step(core, mem, flist):
        if core.done:
            return []
        if core.pending is not None or not core.frames:
            return interp(module, core, mem, flist)
        frame = core.frames[-1]
        fn = table_get((frame.fname, frame.pc))
        if fn is None:
            return interp(module, core, mem, flist)
        try:
            return fn(core, mem, frame)
        except EvalAbort as abort:
            return [StepAbort(reason=abort.reason)]

    return step


# ----- RTL ------------------------------------------------------------------


def _rtl_reg(r):
    reason = "use of undefined register r{}".format(r)

    def read(frame):
        value = frame.regs.get(r, VUndef)
        if value is VUndef:
            raise EvalAbort(reason)
        return value

    return read


def _compile_rtl_instr(module, fname, instr, counter):
    """One RTL instruction → ``run(core, mem, frame)`` or None."""
    counter[0] += 1
    Core = rtl.RTLCore
    check = access_check(module)

    def tau(core, frame, footprint, mem):
        nxt = Core(core.frames[:-1] + (frame,), core.nidx)
        return [Step(TAU, footprint, nxt, mem)]

    if isinstance(instr, rtl.Inop):
        nxt_pc = instr.next

        def run(core, mem, frame):
            return tau(core, frame.at(nxt_pc), EMP, mem)

        return run

    if isinstance(instr, rtl.Iconst):
        v = VInt(instr.n)
        dst, nxt_pc = instr.dst, instr.next

        def run(core, mem, frame):
            return tau(
                core, frame.at(nxt_pc, frame.regs.set(dst, v)), EMP, mem
            )

        return run

    if isinstance(instr, rtl.Iaddrglobal):
        addr = module.symbols.get(instr.name)
        dst, nxt_pc = instr.dst, instr.next
        if addr is None:
            reason = "unresolved global {!r}".format(instr.name)

            def run(core, mem, frame):
                raise EvalAbort(reason)

            return run
        v = VPtr(addr)

        def run(core, mem, frame):
            return tau(
                core, frame.at(nxt_pc, frame.regs.set(dst, v)), EMP, mem
            )

        return run

    if isinstance(instr, rtl.Iaddrstack):
        ofs, dst, nxt_pc = instr.ofs, instr.dst, instr.next

        def run(core, mem, frame):
            if frame.sp is None:
                return [StepAbort(reason="stack address without stack")]
            regs = frame.regs.set(dst, VPtr(frame.sp + ofs))
            return tau(core, frame.at(nxt_pc, regs), EMP, mem)

        return run

    if isinstance(instr, rtl.Iop):
        readers = tuple(_rtl_reg(r) for r in instr.args)
        apply_op = _op_apply(instr.op, len(readers))
        if apply_op is None:
            return None
        dst, nxt_pc = instr.dst, instr.next

        def run(core, mem, frame):
            result = apply_op([read(frame) for read in readers])
            regs = frame.regs.set(dst, result)
            return tau(core, frame.at(nxt_pc, regs), EMP, mem)

        return run

    if isinstance(instr, rtl.Iload):
        addr_read = _rtl_reg(instr.addr)
        dst, nxt_pc = instr.dst, instr.next

        def run(core, mem, frame):
            ptr = addr_read(frame)
            if not isinstance(ptr, VPtr):
                return [StepAbort(reason="load through non-pointer")]
            addr = ptr.addr
            if check is not None:
                check(addr)
            value = mem.load(addr)
            if value is None:
                raise EvalAbort("load from unallocated {}".format(addr))
            regs = frame.regs.set(dst, value)
            return tau(
                core, frame.at(nxt_pc, regs), Footprint((addr,)), mem
            )

        return run

    if isinstance(instr, rtl.Istore):
        addr_read = _rtl_reg(instr.addr)
        src_read = _rtl_reg(instr.src)
        nxt_pc = instr.next

        def run(core, mem, frame):
            ptr = addr_read(frame)
            value = src_read(frame)
            if not isinstance(ptr, VPtr):
                return [StepAbort(reason="store through non-pointer")]
            addr = ptr.addr
            if check is not None:
                check(addr)
            mem2 = mem.store(addr, value)
            if mem2 is None:
                raise EvalAbort("store to unallocated {}".format(addr))
            return tau(
                core,
                frame.at(nxt_pc),
                Footprint((), (addr,)),
                mem2,
            )

        return run

    if isinstance(instr, rtl.Icall):
        readers = tuple(_rtl_reg(r) for r in instr.args)
        fname_c, dst, nxt_pc = instr.fname, instr.dst, instr.next
        external = instr.external

        def run(core, mem, frame):
            args = tuple(read(frame) for read in readers)
            frames = core.frames[:-1] + (frame.at(nxt_pc),)
            if external:
                nxt = Core(frames, core.nidx, ("ext-wait", dst))
                return [Step(CallMsg(fname_c, args), EMP, nxt, mem)]
            nxt = Core(frames, core.nidx, ("enter", fname_c, args, dst))
            return [Step(TAU, EMP, nxt, mem)]

        return run

    if isinstance(instr, rtl.Itailcall):
        readers = tuple(_rtl_reg(r) for r in instr.args)
        fname_c = instr.fname

        def run(core, mem, frame):
            args = tuple(read(frame) for read in readers)
            nxt = Core(
                core.frames[:-1],
                core.nidx,
                ("enter", fname_c, args, frame.ret_dst),
            )
            return [Step(TAU, EMP, nxt, mem)]

        return run

    if isinstance(instr, rtl.Icond):
        readers = tuple(_rtl_reg(r) for r in instr.args)
        apply_op = _op_apply(instr.op, len(readers))
        if apply_op is None:
            return None
        iftrue, iffalse = instr.iftrue, instr.iffalse

        def run(core, mem, frame):
            result = apply_op([read(frame) for read in readers])
            taken = result.is_true()
            if taken is None:
                return [StepAbort(reason="undefined condition")]
            return tau(
                core, frame.at(iftrue if taken else iffalse), EMP, mem
            )

        return run

    if isinstance(instr, rtl.Ireturn):
        src_read = _rtl_reg(instr.src) if instr.src is not None else None

        def run(core, mem, frame):
            value = _VINT0 if src_read is None else src_read(frame)
            if len(core.frames) > 1:
                nxt = Core(
                    core.frames[:-1],
                    core.nidx,
                    ("assign-result", frame.ret_dst, value),
                )
                return [Step(TAU, EMP, nxt, mem)]
            nxt = Core(nidx=core.nidx, done=True)
            return [Step(RetMsg(value), EMP, nxt, mem)]

        return run

    if isinstance(instr, rtl.Ispawn):
        msg = SpawnMsg(instr.fname)
        nxt_pc = instr.next

        def run(core, mem, frame):
            nxt = Core(
                core.frames[:-1] + (frame.at(nxt_pc),), core.nidx
            )
            return [Step(msg, EMP, nxt, mem)]

        return run

    if isinstance(instr, rtl.Iprint):
        src_read = _rtl_reg(instr.src)
        nxt_pc = instr.next

        def run(core, mem, frame):
            value = src_read(frame)
            if not isinstance(value, VInt):
                return [StepAbort(reason="print of non-integer")]
            nxt = Core(
                core.frames[:-1] + (frame.at(nxt_pc),), core.nidx
            )
            return [Step(EventMsg("print", value.n), EMP, nxt, mem)]

        return run

    return None


def stage_rtl_module(lang, module):
    counter = [0]
    table = {}
    for func in module.functions.values():
        for pc, instr in func.code.items():
            compiled = _compile_rtl_instr(module, func.name, instr,
                                          counter)
            if compiled is not None:
                table[(func.name, pc)] = compiled
    return _instr_dispatcher(lang, module, table), counter[0]


# ----- LTL / Linear: location-based helpers ---------------------------------


def _loc_reader(loc):
    """``read(core, frame)`` for a location, or None (bad location)."""
    if is_reg(loc):
        reason = "use of undefined location {!r}".format(loc)

        def read(core, frame):
            value = core.regs.get(loc, VUndef)
            if value is VUndef:
                raise EvalAbort(reason)
            return value

        return read
    if is_slot(loc):
        idx = loc[1]
        reason = "use of undefined location {!r}".format(loc)

        def read(core, frame):
            value = frame.slots.get(idx, VUndef)
            if value is VUndef:
                raise EvalAbort(reason)
            return value

        return read
    return None


def _loc_writer(loc):
    """``write(core, frame, value) -> (regs, slots)``, or None."""
    if is_reg(loc):
        def write(core, frame, value):
            return core.regs.set(loc, value), frame.slots

        return write
    if is_slot(loc):
        idx = loc[1]

        def write(core, frame, value):
            return core.regs, frame.slots.set(idx, value)

        return write
    return None


def _arg_reg_readers(arity):
    """Readers for the calling convention's argument registers."""
    if arity > len(ARG_REGS):
        return None
    return tuple(_loc_reader(ARG_REGS[i]) for i in range(arity))


def _compile_loc_instr(module, core_cls, instr_at, kinds, instr,
                       counter, targets=None, check_lop=False):
    """One LTL/Linear instruction → ``run(core, mem, frame)`` or None.

    ``instr_at(instr)`` gives the successor pc(s); ``kinds`` maps the
    role names to the language's node classes; ``targets`` resolves
    labels (Linear); ``check_lop`` enforces LTL's register-operand
    invariant at compile time (violations fall back to the interpreter,
    which raises SemanticsError).
    """
    counter[0] += 1
    Core = core_cls
    check = access_check(module)

    def adv(core, frame, mem, footprint, regs=None):
        nxt = Core(
            core.regs if regs is None else regs,
            core.frames[:-1] + (frame,),
            core.nidx,
        )
        return [Step(TAU, footprint, nxt, mem)]

    if isinstance(instr, kinds["nop"]):
        nxt_pc = instr_at(instr)

        def run(core, mem, frame):
            return adv(core, frame.at(nxt_pc), mem, EMP)

        return run

    if isinstance(instr, kinds["const"]):
        write = _loc_writer(instr.dst)
        if write is None:
            return None
        v = VInt(instr.n)
        nxt_pc = instr_at(instr)

        def run(core, mem, frame):
            regs, slots = write(core, frame, v)
            return adv(core, frame.at(nxt_pc, slots), mem, EMP, regs)

        return run

    if isinstance(instr, kinds["addrglobal"]):
        write = _loc_writer(instr.dst)
        if write is None:
            return None
        addr = module.symbols.get(instr.name)
        nxt_pc = instr_at(instr)
        if addr is None:
            reason = "unresolved global {!r}".format(instr.name)

            def run(core, mem, frame):
                raise EvalAbort(reason)

            return run
        v = VPtr(addr)

        def run(core, mem, frame):
            regs, slots = write(core, frame, v)
            return adv(core, frame.at(nxt_pc, slots), mem, EMP, regs)

        return run

    if isinstance(instr, kinds["addrstack"]):
        write = _loc_writer(instr.dst)
        if write is None:
            return None
        ofs = instr.ofs
        nxt_pc = instr_at(instr)

        def run(core, mem, frame):
            if frame.sp is None:
                return [StepAbort(reason="stack address without stack")]
            regs, slots = write(core, frame, VPtr(frame.sp + ofs))
            return adv(core, frame.at(nxt_pc, slots), mem, EMP, regs)

        return run

    if isinstance(instr, kinds["op"]):
        if check_lop and instr.op != "move":
            if any(
                not is_reg(l)
                for l in tuple(instr.args) + (instr.dst,)
            ):
                return None
        readers = tuple(_loc_reader(l) for l in instr.args)
        if any(r is None for r in readers):
            return None
        write = _loc_writer(instr.dst)
        if write is None:
            return None
        apply_op = _op_apply(instr.op, len(readers))
        if apply_op is None:
            return None
        nxt_pc = instr_at(instr)

        def run(core, mem, frame):
            result = apply_op(
                [read(core, frame) for read in readers]
            )
            regs, slots = write(core, frame, result)
            return adv(core, frame.at(nxt_pc, slots), mem, EMP, regs)

        return run

    if isinstance(instr, kinds["load"]):
        addr_read = _loc_reader(instr.addr)
        write = _loc_writer(instr.dst)
        if addr_read is None or write is None:
            return None
        nxt_pc = instr_at(instr)

        def run(core, mem, frame):
            ptr = addr_read(core, frame)
            if not isinstance(ptr, VPtr):
                return [StepAbort(reason="load through non-pointer")]
            addr = ptr.addr
            if check is not None:
                check(addr)
            value = mem.load(addr)
            if value is None:
                raise EvalAbort("load from unallocated {}".format(addr))
            regs, slots = write(core, frame, value)
            return adv(
                core,
                frame.at(nxt_pc, slots),
                mem,
                Footprint((addr,)),
                regs,
            )

        return run

    if isinstance(instr, kinds["store"]):
        addr_read = _loc_reader(instr.addr)
        src_read = _loc_reader(instr.src)
        if addr_read is None or src_read is None:
            return None
        nxt_pc = instr_at(instr)

        def run(core, mem, frame):
            ptr = addr_read(core, frame)
            value = src_read(core, frame)
            if not isinstance(ptr, VPtr):
                return [StepAbort(reason="store through non-pointer")]
            addr = ptr.addr
            if check is not None:
                check(addr)
            mem2 = mem.store(addr, value)
            if mem2 is None:
                raise EvalAbort("store to unallocated {}".format(addr))
            return adv(
                core,
                frame.at(nxt_pc),
                mem2,
                Footprint((), (addr,)),
            )

        return run

    if isinstance(instr, kinds["call"]):
        readers = _arg_reg_readers(instr.arity)
        if readers is None:
            return None
        fname_c = instr.fname
        external = instr.external
        nxt_pc = instr_at(instr)

        def run(core, mem, frame):
            args = tuple(read(core, frame) for read in readers)
            frames = core.frames[:-1] + (frame.at(nxt_pc),)
            if external:
                nxt = Core(core.regs, frames, core.nidx, ("ext-wait",))
                return [Step(CallMsg(fname_c, args), EMP, nxt, mem)]
            nxt = Core(
                core.regs, frames, core.nidx, ("enter", fname_c)
            )
            return [Step(TAU, EMP, nxt, mem)]

        return run

    if isinstance(instr, kinds["tailcall"]):
        fname_c = instr.fname

        def run(core, mem, frame):
            nxt = Core(
                core.regs,
                core.frames[:-1],
                core.nidx,
                ("enter", fname_c),
            )
            return [Step(TAU, EMP, nxt, mem)]

        return run

    if isinstance(instr, kinds["cond"]):
        readers = tuple(_loc_reader(l) for l in instr.args)
        if any(r is None for r in readers):
            return None
        apply_op = _op_apply(instr.op, len(readers))
        if apply_op is None:
            return None
        branch = instr_at(instr)
        if branch is None:
            return None
        pc_true, pc_false = branch

        def run(core, mem, frame):
            result = apply_op(
                [read(core, frame) for read in readers]
            )
            taken = result.is_true()
            if taken is None:
                return [StepAbort(reason="undefined condition")]
            return adv(
                core, frame.at(pc_true if taken else pc_false), mem, EMP
            )

        return run

    if isinstance(instr, kinds["return"]):
        def run(core, mem, frame):
            value = core.regs.get(RET_REG, VUndef)
            if value is VUndef:
                return [StepAbort(reason="return with undefined eax")]
            if len(core.frames) > 1:
                nxt = Core(core.regs, core.frames[:-1], core.nidx)
                return [Step(TAU, EMP, nxt, mem)]
            nxt = Core(nidx=core.nidx, done=True)
            return [Step(RetMsg(value), EMP, nxt, mem)]

        return run

    if isinstance(instr, kinds["spawn"]):
        msg = SpawnMsg(instr.fname)
        nxt_pc = instr_at(instr)

        def run(core, mem, frame):
            nxt = Core(
                core.regs,
                core.frames[:-1] + (frame.at(nxt_pc),),
                core.nidx,
            )
            return [Step(msg, EMP, nxt, mem)]

        return run

    if isinstance(instr, kinds["print"]):
        src_read = _loc_reader(instr.src)
        if src_read is None:
            return None
        nxt_pc = instr_at(instr)

        def run(core, mem, frame):
            value = src_read(core, frame)
            if not isinstance(value, VInt):
                return [StepAbort(reason="print of non-integer")]
            nxt = Core(
                core.regs,
                core.frames[:-1] + (frame.at(nxt_pc),),
                core.nidx,
            )
            return [Step(EventMsg("print", value.n), EMP, nxt, mem)]

        return run

    if targets is not None and isinstance(instr, kinds["goto"]):
        target = targets(instr.lbl)
        if target is None:
            return None

        def run(core, mem, frame):
            return adv(core, frame.at(target), mem, EMP)

        return run

    if targets is not None and isinstance(instr, kinds["label"]):
        nxt_pc = instr_at(instr)

        def run(core, mem, frame):
            return adv(core, frame.at(nxt_pc), mem, EMP)

        return run

    return None


_LTL_KINDS = {
    "nop": ltl.Lnop,
    "const": ltl.Lconst,
    "addrglobal": ltl.Laddrglobal,
    "addrstack": ltl.Laddrstack,
    "op": ltl.Lop,
    "load": ltl.Lload,
    "store": ltl.Lstore,
    "call": ltl.Lcall,
    "tailcall": ltl.Ltailcall,
    "cond": ltl.Lcond,
    "return": ltl.Lreturn,
    "spawn": ltl.Lspawn,
    "print": ltl.Lprint,
}

_LINEAR_KINDS = {
    "nop": (),  # Linear has no nop; LinLabel plays the role
    "label": lin.LinLabel,
    "goto": lin.LinGoto,
    "const": lin.LinConst,
    "addrglobal": lin.LinAddrGlobal,
    "addrstack": lin.LinAddrStack,
    "op": lin.LinOp,
    "load": lin.LinLoad,
    "store": lin.LinStore,
    "call": lin.LinCall,
    "tailcall": lin.LinTailcall,
    "cond": lin.LinCond,
    "return": lin.LinReturn,
    "spawn": lin.LinSpawn,
    "print": lin.LinPrint,
}


def stage_ltl_module(lang, module):
    counter = [0]
    table = {}

    def instr_at(instr):
        if isinstance(instr, ltl.Lcond):
            return (instr.iftrue, instr.iffalse)
        return instr.next if "next" in instr._fields else None

    for func in module.functions.values():
        for pc, instr in func.code.items():
            compiled = _compile_loc_instr(
                module, ltl.LTLCore, instr_at, _LTL_KINDS, instr,
                counter, check_lop=True,
            )
            if compiled is not None:
                table[(func.name, pc)] = compiled
    return _instr_dispatcher(lang, module, table), counter[0]


def stage_linear_module(lang, module):
    counter = [0]
    table = {}
    core_cls = lang.core_cls

    for func in module.functions.values():
        labels = func.labels

        def targets(lbl, _labels=labels):
            return _labels.get(lbl)

        for pc, instr in enumerate(func.code):
            def instr_at(i, _pc=pc, _labels=labels):
                if isinstance(i, lin.LinCond):
                    target = _labels.get(i.lbl)
                    if target is None:
                        return None
                    return (target, _pc + 1)
                return _pc + 1

            compiled = _compile_loc_instr(
                module, core_cls, instr_at, _LINEAR_KINDS, instr,
                counter, targets=targets,
            )
            if compiled is not None:
                table[(func.name, pc)] = compiled
    return _instr_dispatcher(lang, module, table), counter[0]


# ----- Mach -----------------------------------------------------------------


def _mach_reg(r):
    if not is_reg(r):
        return None
    reason = "use of undefined register {!r}".format(r)

    def read(core):
        value = core.regs.get(r, VUndef)
        if value is VUndef:
            raise EvalAbort(reason)
        return value

    return read


def _compile_mach_instr(module, func, pc, instr, counter):
    counter[0] += 1
    Core = mach.MachCore
    check = access_check(module)
    nxt_pc = pc + 1

    def adv(core, frame, mem, footprint, regs=None):
        nxt = Core(
            core.regs if regs is None else regs,
            core.frames[:-1] + (frame,),
            core.nidx,
        )
        return [Step(TAU, footprint, nxt, mem)]

    if isinstance(instr, mach.MLabel):
        def run(core, mem, frame):
            return adv(core, frame.at(nxt_pc), mem, EMP)

        return run

    if isinstance(instr, mach.MConst):
        v = VInt(instr.n)
        dst = instr.dst

        def run(core, mem, frame):
            return adv(
                core, frame.at(nxt_pc), mem, EMP,
                core.regs.set(dst, v),
            )

        return run

    if isinstance(instr, mach.MAddrGlobal):
        addr = module.symbols.get(instr.name)
        if addr is None:
            reason = "unresolved global {!r}".format(instr.name)

            def run(core, mem, frame):
                raise EvalAbort(reason)

            return run
        v = VPtr(addr)
        dst = instr.dst

        def run(core, mem, frame):
            return adv(
                core, frame.at(nxt_pc), mem, EMP,
                core.regs.set(dst, v),
            )

        return run

    if isinstance(instr, mach.MAddrStack):
        ofs, dst = instr.ofs, instr.dst

        def run(core, mem, frame):
            if frame.sp is None:
                return [StepAbort(reason="stack address without frame")]
            regs = core.regs.set(dst, VPtr(frame.sp + ofs))
            return adv(core, frame.at(nxt_pc), mem, EMP, regs)

        return run

    if isinstance(instr, mach.MGetstack):
        idx, dst = instr.idx, instr.dst

        def run(core, mem, frame):
            if frame.sp is None:
                return [StepAbort(reason="getstack without frame")]
            addr = frame.sp + idx
            if check is not None:
                check(addr)
            value = mem.load(addr)
            if value is None:
                raise EvalAbort("load from unallocated {}".format(addr))
            regs = core.regs.set(dst, value)
            return adv(
                core, frame.at(nxt_pc), mem, Footprint((addr,)), regs
            )

        return run

    if isinstance(instr, mach.MSetstack):
        src_read = _mach_reg(instr.src)
        if src_read is None:
            return None
        idx = instr.idx

        def run(core, mem, frame):
            if frame.sp is None:
                return [StepAbort(reason="setstack without frame")]
            value = src_read(core)
            addr = frame.sp + idx
            if check is not None:
                check(addr)
            mem2 = mem.store(addr, value)
            if mem2 is None:
                raise EvalAbort("store to unallocated {}".format(addr))
            return adv(
                core,
                frame.at(nxt_pc),
                mem2,
                Footprint((), (addr,)),
            )

        return run

    if isinstance(instr, mach.MOp):
        readers = tuple(_mach_reg(r) for r in instr.args)
        if any(r is None for r in readers):
            return None
        if not is_reg(instr.dst):
            return None
        apply_op = _op_apply(instr.op, len(readers))
        if apply_op is None:
            return None
        dst = instr.dst

        def run(core, mem, frame):
            result = apply_op([read(core) for read in readers])
            regs = core.regs.set(dst, result)
            return adv(core, frame.at(nxt_pc), mem, EMP, regs)

        return run

    if isinstance(instr, mach.MLoad):
        addr_read = _mach_reg(instr.addr)
        if addr_read is None or not is_reg(instr.dst):
            return None
        dst = instr.dst

        def run(core, mem, frame):
            ptr = addr_read(core)
            if not isinstance(ptr, VPtr):
                return [StepAbort(reason="load through non-pointer")]
            addr = ptr.addr
            if check is not None:
                check(addr)
            value = mem.load(addr)
            if value is None:
                raise EvalAbort("load from unallocated {}".format(addr))
            regs = core.regs.set(dst, value)
            return adv(
                core, frame.at(nxt_pc), mem, Footprint((addr,)), regs
            )

        return run

    if isinstance(instr, mach.MStore):
        addr_read = _mach_reg(instr.addr)
        src_read = _mach_reg(instr.src)
        if addr_read is None or src_read is None:
            return None

        def run(core, mem, frame):
            ptr = addr_read(core)
            value = src_read(core)
            if not isinstance(ptr, VPtr):
                return [StepAbort(reason="store through non-pointer")]
            addr = ptr.addr
            if check is not None:
                check(addr)
            mem2 = mem.store(addr, value)
            if mem2 is None:
                raise EvalAbort("store to unallocated {}".format(addr))
            return adv(
                core,
                frame.at(nxt_pc),
                mem2,
                Footprint((), (addr,)),
            )

        return run

    if isinstance(instr, mach.MCall):
        if instr.arity > len(ARG_REGS):
            return None
        readers = tuple(
            _mach_reg(ARG_REGS[i]) for i in range(instr.arity)
        )
        fname_c = instr.fname
        external = instr.external

        def run(core, mem, frame):
            args = tuple(read(core) for read in readers)
            frames = core.frames[:-1] + (frame.at(nxt_pc),)
            if external:
                nxt = Core(core.regs, frames, core.nidx, ("ext-wait",))
                return [Step(CallMsg(fname_c, args), EMP, nxt, mem)]
            nxt = Core(
                core.regs, frames, core.nidx, ("enter", fname_c)
            )
            return [Step(TAU, EMP, nxt, mem)]

        return run

    if isinstance(instr, mach.MTailcall):
        fname_c = instr.fname

        def run(core, mem, frame):
            nxt = Core(
                core.regs,
                core.frames[:-1],
                core.nidx,
                ("enter", fname_c),
            )
            return [Step(TAU, EMP, nxt, mem)]

        return run

    if isinstance(instr, mach.MGoto):
        target = func.labels.get(instr.lbl)
        if target is None:
            return None

        def run(core, mem, frame):
            return adv(core, frame.at(target), mem, EMP)

        return run

    if isinstance(instr, mach.MCond):
        readers = tuple(_mach_reg(r) for r in instr.args)
        if any(r is None for r in readers):
            return None
        apply_op = _op_apply(instr.op, len(readers))
        if apply_op is None:
            return None
        target = func.labels.get(instr.lbl)
        if target is None:
            return None

        def run(core, mem, frame):
            result = apply_op([read(core) for read in readers])
            taken = result.is_true()
            if taken is None:
                return [StepAbort(reason="undefined condition")]
            return adv(
                core, frame.at(target if taken else nxt_pc), mem, EMP
            )

        return run

    if isinstance(instr, mach.MReturn):
        def run(core, mem, frame):
            value = core.regs.get(RET_REG, VUndef)
            if value is VUndef:
                return [StepAbort(reason="return with undefined eax")]
            if len(core.frames) > 1:
                nxt = Core(core.regs, core.frames[:-1], core.nidx)
                return [Step(TAU, EMP, nxt, mem)]
            nxt = Core(nidx=core.nidx, done=True)
            return [Step(RetMsg(value), EMP, nxt, mem)]

        return run

    if isinstance(instr, mach.MSpawn):
        msg = SpawnMsg(instr.fname)

        def run(core, mem, frame):
            nxt = Core(
                core.regs,
                core.frames[:-1] + (frame.at(nxt_pc),),
                core.nidx,
            )
            return [Step(msg, EMP, nxt, mem)]

        return run

    if isinstance(instr, mach.MPrint):
        src_read = _mach_reg(instr.src)
        if src_read is None:
            return None

        def run(core, mem, frame):
            value = src_read(core)
            if not isinstance(value, VInt):
                return [StepAbort(reason="print of non-integer")]
            nxt = Core(
                core.regs,
                core.frames[:-1] + (frame.at(nxt_pc),),
                core.nidx,
            )
            return [Step(EventMsg("print", value.n), EMP, nxt, mem)]

        return run

    return None


def stage_mach_module(lang, module):
    counter = [0]
    table = {}
    for func in module.functions.values():
        for pc, instr in enumerate(func.code):
            compiled = _compile_mach_instr(module, func, pc, instr,
                                           counter)
            if compiled is not None:
                table[(func.name, pc)] = compiled
    return _instr_dispatcher(lang, module, table), counter[0]
