"""Lexer for MiniC (C-like tokens)."""

import re

from repro.common.errors import ParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<int>\d+)
  | (?P<id>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>\+\+|==|!=|<=|>=|&&|\|\||<<|>>|[-+*/%!<>=(){};,&\[\]])
    """,
    re.VERBOSE | re.DOTALL,
)

KEYWORDS = {
    "int",
    "void",
    "extern",
    "if",
    "else",
    "while",
    "return",
    "print",
    "spawn",
    "for",
}


class Token:
    """A lexed token: kind (``int``/``id``/``kw``/``op``/``eof``),
    value, and 1-based source line."""

    __slots__ = ("kind", "value", "line")

    def __init__(self, kind, value, line):
        self.kind = kind
        self.value = value
        self.line = line

    def __repr__(self):
        return "Token({}, {!r}, line {})".format(
            self.kind, self.value, self.line
        )


def tokenize(text):
    """Lex MiniC source into a token list ending with an ``eof`` token."""
    tokens = []
    pos = 0
    line = 1
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(
                "unexpected character {!r}".format(text[pos]), line
            )
        pos = m.end()
        kind = m.lastgroup
        value = m.group()
        newlines = value.count("\n")
        if kind in ("ws", "comment"):
            line += newlines
            continue
        if kind == "int":
            tokens.append(Token("int", int(value), line))
        elif kind == "id":
            tok_kind = "kw" if value in KEYWORDS else "id"
            tokens.append(Token(tok_kind, value, line))
        else:
            tokens.append(Token("op", value, line))
        line += newlines
    tokens.append(Token("eof", None, line))
    return tokens
