"""Abstract syntax of MiniC, the Clight-like client source language.

MiniC is the paper's "Clight" role: the language multi-threaded clients
are written in (Fig. 10c) and the input of the CASCompCert pipeline. It
covers the subset the paper's examples need: ``int`` globals and locals,
``int*`` parameters, functions, control flow, cross-module (external)
calls such as ``lock()``/``unlock()``, address-of on variables,
pointer dereference, and the observable ``print``.

As in Clight, *all* local variables live in memory (stack slots
allocated from the thread's freelist); promoting the non-addressed ones
to temporaries is the compiler's job (the Cshmgen pass).

Two deliberate restrictions, both documented in DESIGN.md:

* calls appear only at statement level (``f(x);`` or ``y = f(x);``);
* statements are the unit of execution (one footprinted step each).
"""

from repro.common.astbase import Node

# ----- types ---------------------------------------------------------------


class Type(Node):
    """Base class of MiniC types."""


class TInt(Type):
    _fields = ()


class TPtr(Type):
    """Pointer to int (the only pointer type MiniC needs)."""

    _fields = ()


class TVoid(Type):
    _fields = ()


INT = TInt()
PTR = TPtr()
VOID = TVoid()


# ----- expressions ---------------------------------------------------------


class Expr(Node):
    """Base class of expressions. ``ty`` is filled by the typechecker."""


class IntLit(Expr):
    _fields = ("n", "ty")


class VarExpr(Expr):
    """A variable read (local or global, resolved by the typechecker:
    ``scope`` is ``"local"`` or ``"global"``)."""

    _fields = ("name", "scope", "ty")


class AddrOf(Expr):
    """``&x`` — the address of a variable."""

    _fields = ("name", "scope", "ty")


class Deref(Expr):
    """``*e`` — load through a pointer."""

    _fields = ("arg", "ty")


class Unop(Expr):
    _fields = ("op", "arg", "ty")


class Binop(Expr):
    _fields = ("op", "left", "right", "ty")


class Call(Expr):
    """A call ``f(args)``; only valid at statement level (typechecked).

    ``external`` is filled by the typechecker: True when ``f`` is not
    defined in this module.
    """

    _fields = ("fname", "args", "external", "ty")


# ----- statements ----------------------------------------------------------


class Stmt(Node):
    """Base class of statements."""


class SSkip(Stmt):
    _fields = ()


class SDecl(Stmt):
    """A local declaration ``int x = e;`` (slot allocated at function
    entry, the initializer is an ordinary assignment here)."""

    _fields = ("name", "ty", "init")


class SAssign(Stmt):
    """``lhs = e;`` with ``lhs`` a variable or ``*p``."""

    _fields = ("lhs", "expr")


class LhsVar(Node):
    _fields = ("name", "scope", "ty")


class LhsDeref(Node):
    """``*p = ...`` — store through a pointer expression."""

    _fields = ("arg", "ty")


class SCallStmt(Stmt):
    """``f(args);`` or ``x = f(args);`` — ``dst`` is an optional lhs."""

    _fields = ("dst", "call")


class SPrint(Stmt):
    _fields = ("expr",)


class SIf(Stmt):
    _fields = ("cond", "then", "els")


class SWhile(Stmt):
    _fields = ("cond", "body")


class SBlock(Stmt):
    _fields = ("stmts",)


class SReturn(Stmt):
    _fields = ("expr",)


class SSpawn(Stmt):
    """``spawn f;`` — start a new thread running ``f`` (a function of
    no parameters). The paper's future-work thread-creation form."""

    _fields = ("fname",)


# ----- declarations ---------------------------------------------------------


class GlobalVar(Node):
    """``int g = n;`` — a global definition owned by this module."""

    _fields = ("name", "init")


class ExternVar(Node):
    """``extern int g;`` — a global defined by another module."""

    _fields = ("name",)


class ExternFun(Node):
    """``extern int f(int*);`` — a function defined elsewhere."""

    _fields = ("name", "ret", "params")


class FuncDef(Node):
    """A function definition. ``locals_`` (name, type) pairs are
    collected by the typechecker from the SDecl statements; all are
    stack-allocated at entry, Clight-style."""

    _fields = ("name", "ret", "params", "body", "locals_")


class SourceModule(Node):
    """A parsed (untyped) MiniC translation unit."""

    _fields = ("decls",)


class MiniCModule:
    """A typechecked, linked MiniC module: the compiler's input.

    ``functions`` maps names to :class:`FuncDef` (with ``locals_``
    filled); ``symbols`` maps every referenced global to its linked
    address; ``globals_`` lists the globals this module *defines*;
    ``externs`` the extern function signatures; ``forbidden`` is the
    object-owned region this client has no permission on (Sec. 7.1).
    """

    __slots__ = ("functions", "symbols", "globals_", "externs", "forbidden")

    def __init__(self, functions, symbols, globals_, externs,
                 forbidden=()):
        object.__setattr__(
            self, "functions", dict(functions)
        )
        object.__setattr__(self, "symbols", dict(symbols))
        object.__setattr__(self, "globals_", dict(globals_))
        object.__setattr__(self, "externs", dict(externs))
        object.__setattr__(self, "forbidden", frozenset(forbidden))

    def __setattr__(self, name, value):
        raise AttributeError("MiniCModule is immutable")

    def __repr__(self):
        return "MiniCModule(functions={}, globals={})".format(
            sorted(self.functions), sorted(self.globals_)
        )

    def with_forbidden(self, forbidden):
        """A copy with the client-forbidden (object-owned) region set."""
        return MiniCModule(
            self.functions,
            self.symbols,
            self.globals_,
            self.externs,
            forbidden,
        )
