"""Recursive-descent parser for MiniC.

Produces an untyped :class:`~repro.langs.minic.ast.SourceModule`;
scopes and types are resolved by :mod:`repro.langs.minic.typecheck`.
"""

from repro.common.errors import ParseError
from repro.langs.minic import ast
from repro.langs.minic.lexer import tokenize

_PRECEDENCE = [
    ["||"],
    ["&&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["+", "-"],
    ["*", "/", "%"],
]


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    def peek(self, ahead=0):
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self):
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, kind, value=None):
        tok = self.peek()
        if tok.kind != kind or (value is not None and tok.value != value):
            raise ParseError(
                "expected {!r}, found {!r}".format(
                    value if value is not None else kind, tok.value
                ),
                tok.line,
            )
        return self.advance()

    def accept(self, kind, value=None):
        tok = self.peek()
        if tok.kind == kind and (value is None or tok.value == value):
            return self.advance()
        return None

    # ----- types --------------------------------------------------------

    def type_(self):
        tok = self.peek()
        if self.accept("kw", "void"):
            return ast.VOID
        if self.accept("kw", "int"):
            if self.accept("op", "*"):
                return ast.PTR
            return ast.INT
        raise ParseError("expected a type", tok.line)

    # ----- expressions ---------------------------------------------------

    def expr(self, level=0):
        if level == len(_PRECEDENCE):
            return self.unary()
        left = self.expr(level + 1)
        while True:
            tok = self.peek()
            if tok.kind == "op" and tok.value in _PRECEDENCE[level]:
                self.advance()
                right = self.expr(level + 1)
                left = ast.Binop(tok.value, left, right, None)
            else:
                return left

    def unary(self):
        if self.accept("op", "-"):
            return ast.Unop("-", self.unary(), None)
        if self.accept("op", "!"):
            return ast.Unop("!", self.unary(), None)
        if self.accept("op", "*"):
            return ast.Deref(self.unary(), None)
        if self.accept("op", "&"):
            name = self.expect("id").value
            return ast.AddrOf(name, None, None)
        return self.primary()

    def primary(self):
        tok = self.peek()
        if tok.kind == "int":
            self.advance()
            return ast.IntLit(tok.value, None)
        if tok.kind == "id":
            name = self.advance().value
            if self.accept("op", "("):
                args = self.call_args()
                return ast.Call(name, args, None, None)
            return ast.VarExpr(name, None, None)
        if self.accept("op", "("):
            e = self.expr()
            self.expect("op", ")")
            return e
        raise ParseError("expected an expression", tok.line)

    def call_args(self):
        args = []
        if self.accept("op", ")"):
            return args
        args.append(self.expr())
        while self.accept("op", ","):
            args.append(self.expr())
        self.expect("op", ")")
        return args

    # ----- statements ------------------------------------------------------

    def block(self):
        self.expect("op", "{")
        stmts = []
        while not self.accept("op", "}"):
            stmts.append(self.stmt())
        return ast.SBlock(stmts)

    def stmt(self):
        tok = self.peek()
        if tok.kind == "op" and tok.value == "{":
            return self.block()
        if tok.kind == "kw":
            return self._keyword_stmt(tok)
        if tok.kind == "op" and tok.value == "*":
            self.advance()
            target = self.unary()
            self.expect("op", "=")
            value = self.expr()
            self.expect("op", ";")
            return self._assign(ast.LhsDeref(target, None), value)
        if tok.kind == "id":
            name = self.advance().value
            if self.accept("op", "++"):
                self.expect("op", ";")
                incremented = ast.Binop(
                    "+",
                    ast.VarExpr(name, None, None),
                    ast.IntLit(1, None),
                    None,
                )
                return ast.SAssign(
                    ast.LhsVar(name, None, None), incremented
                )
            if self.accept("op", "("):
                call = ast.Call(name, self.call_args(), None, None)
                self.expect("op", ";")
                return ast.SCallStmt(None, call)
            self.expect("op", "=")
            value = self.expr()
            self.expect("op", ";")
            return self._assign(ast.LhsVar(name, None, None), value)
        raise ParseError("expected a statement", tok.line)

    def _assign(self, lhs, value):
        if isinstance(value, ast.Call):
            return ast.SCallStmt(lhs, value)
        return ast.SAssign(lhs, value)

    def _keyword_stmt(self, tok):
        if tok.value == "int":
            # Local declaration: ``int x;`` or ``int x = e;`` (plain
            # int locals only; pointer locals would allow stack-pointer
            # escape, which the paper's footnote 6 rules out).
            self.advance()
            if self.peek().kind == "op" and self.peek().value == "*":
                raise ParseError(
                    "pointer-typed locals are not supported", tok.line
                )
            name = self.expect("id").value
            init = None
            if self.accept("op", "="):
                init = self.expr()
            self.expect("op", ";")
            return ast.SDecl(name, ast.INT, init)
        if tok.value == "if":
            self.advance()
            self.expect("op", "(")
            cond = self.expr()
            self.expect("op", ")")
            then = self.block()
            els = ast.SSkip()
            if self.accept("kw", "else"):
                els = self.block()
            return ast.SIf(cond, then, els)
        if tok.value == "for":
            # ``for (init; cond; step) { ... }`` — sugar for an
            # init + while loop (CompCert's Clight does the same
            # elaboration).
            self.advance()
            self.expect("op", "(")
            init = None
            if not self.accept("op", ";"):
                init = self._simple_stmt_no_semi()
                self.expect("op", ";")
            cond = ast.IntLit(1, None)
            if not self.accept("op", ";"):
                cond = self.expr()
                self.expect("op", ";")
            step = None
            if not self.accept("op", ")"):
                step = self._simple_stmt_no_semi()
                self.expect("op", ")")
            body = self.block()
            loop_body = list(body.stmts)
            if step is not None:
                loop_body.append(step)
            loop = ast.SWhile(cond, ast.SBlock(loop_body))
            if init is None:
                return loop
            return ast.SBlock([init, loop])
        if tok.value == "while":
            self.advance()
            self.expect("op", "(")
            cond = self.expr()
            self.expect("op", ")")
            return ast.SWhile(cond, self.block())
        if tok.value == "return":
            self.advance()
            expr = None
            if not self.accept("op", ";"):
                expr = self.expr()
                self.expect("op", ";")
            return ast.SReturn(expr)
        if tok.value == "spawn":
            self.advance()
            fname = self.expect("id").value
            self.expect("op", ";")
            return ast.SSpawn(fname)
        if tok.value == "print":
            self.advance()
            self.expect("op", "(")
            expr = self.expr()
            self.expect("op", ")")
            self.expect("op", ";")
            return ast.SPrint(expr)
        raise ParseError(
            "unexpected keyword {!r}".format(tok.value), tok.line
        )

    def _simple_stmt_no_semi(self):
        """An assignment / declaration / increment without its ``;`` —
        the init and step positions of a ``for`` header."""
        tok = self.peek()
        if tok.kind == "kw" and tok.value == "int":
            self.advance()
            name = self.expect("id").value
            init = None
            if self.accept("op", "="):
                init = self.expr()
            return ast.SDecl(name, ast.INT, init)
        if tok.kind == "id":
            name = self.advance().value
            if self.accept("op", "++"):
                return ast.SAssign(
                    ast.LhsVar(name, None, None),
                    ast.Binop(
                        "+",
                        ast.VarExpr(name, None, None),
                        ast.IntLit(1, None),
                        None,
                    ),
                )
            self.expect("op", "=")
            return ast.SAssign(
                ast.LhsVar(name, None, None), self.expr()
            )
        raise ParseError("expected a for-header statement", tok.line)

    # ----- top-level declarations ------------------------------------------

    def topdecl(self):
        if self.accept("kw", "extern"):
            ty = self.type_()
            name = self.expect("id").value
            if self.accept("op", ";"):
                if ty != ast.INT:
                    raise ParseError("extern globals must be int")
                return ast.ExternVar(name)
            self.expect("op", "(")
            params = []
            if not self.accept("op", ")"):
                params.append(self.type_())
                while self.accept("op", ","):
                    params.append(self.type_())
                self.expect("op", ")")
            self.expect("op", ";")
            return ast.ExternFun(name, ty, params)

        # Either a global variable or a function definition.
        ty = self.type_()
        name = self.expect("id").value
        if self.peek().kind == "op" and self.peek().value in ("=", ";"):
            if ty != ast.INT:
                raise ParseError("globals must be plain int")
            init = 0
            if self.accept("op", "="):
                neg = self.accept("op", "-") is not None
                init = self.expect("int").value
                if neg:
                    init = -init
            self.expect("op", ";")
            return ast.GlobalVar(name, init)
        self.expect("op", "(")
        params = []
        if not self.accept("op", ")"):
            while True:
                pty = self.type_()
                pname = self.expect("id").value
                params.append((pname, pty))
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
        body = self.block()
        return ast.FuncDef(name, ty, params, body, None)

    def module(self):
        decls = []
        while self.peek().kind != "eof":
            decls.append(self.topdecl())
        return ast.SourceModule(decls)


def parse(text):
    """Parse MiniC source into an untyped :class:`SourceModule`."""
    return _Parser(tokenize(text)).module()
