"""Convenience builders: source text → typechecked, linked MiniC modules.

:func:`compile_unit` runs lexer/parser/typechecker on one translation
unit. :func:`link_units` performs the linker's job of the Load rule:
assigns global addresses consistently across units (and any
object-module symbols), checks that every ``extern int`` resolves to a
definition, and produces one :class:`MiniCModule` plus
:class:`GlobalEnv` per unit.
"""

from repro.common.errors import TypeCheckError
from repro.common.values import VInt
from repro.lang.module import GlobalEnv
from repro.langs.minic.ast import MiniCModule
from repro.langs.minic.parser import parse
from repro.langs.minic.typecheck import typecheck

#: First address handed out to linked globals.
GLOBAL_BASE = 16


def compile_unit(text):
    """Parse and typecheck one MiniC translation unit."""
    return typecheck(parse(text))


def link_units(units, extra_symbols=None, base=GLOBAL_BASE):
    """Assign addresses to all globals and build per-unit modules.

    ``extra_symbols`` maps externally provided global names (e.g. the
    lock object's data) to addresses chosen by the caller; ``extern``
    declarations may resolve against them.

    Returns ``(modules, genvs, symbols)``: one
    (:class:`MiniCModule`, :class:`GlobalEnv`) pair per unit plus the
    full symbol table.
    """
    extra_symbols = dict(extra_symbols or {})
    symbols = dict(extra_symbols)
    inits = {}
    next_addr = base
    for unit in units:
        for name, init in sorted(unit.globals_.items()):
            if name in inits:
                raise TypeCheckError(
                    "global {!r} defined in two units".format(name)
                )
            if name in extra_symbols:
                raise TypeCheckError(
                    "global {!r} collides with an object symbol".format(
                        name
                    )
                )
            while next_addr in set(extra_symbols.values()):
                next_addr += 1
            symbols[name] = next_addr
            inits[name] = init
            next_addr += 1

    for unit in units:
        for name in unit.extern_vars:
            if name not in symbols:
                raise TypeCheckError(
                    "extern global {!r} has no definition".format(name)
                )

    modules = []
    genvs = []
    for unit in units:
        unit_symbols = {
            name: symbols[name] for name in unit.referenced_globals()
        }
        module = MiniCModule(
            unit.functions,
            unit_symbols,
            unit.globals_,
            unit.extern_funs,
        )
        ge = GlobalEnv(
            {name: symbols[name] for name in unit.globals_},
            {
                symbols[name]: VInt(init)
                for name, init in unit.globals_.items()
            },
        )
        modules.append(module)
        genvs.append(ge)
    return modules, genvs, symbols
