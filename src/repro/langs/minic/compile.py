"""Closure compilation of the MiniC step interpreter.

Staging (see :mod:`repro.lang.closure`): every statement node of a
module is compiled once into a closure over its pre-resolved parts —
operator functions, global symbol addresses, permission verdicts,
flattened branch continuations, and the footprint when the accessed
locations are static — so the per-step interpreter dispatch
(``isinstance`` ladder, ``UNOPS``/``BINOPS`` lookups, ``_flatten``)
disappears from the hot loop. Compiled closures live in a side table
keyed by (structurally hashed) statement node; cores, frames and konts
are unchanged AST values, so state hashing and the wire format never
see the difference.

Expressions compile in one of two modes:

* ``record=True`` — ``run(frame, mem, rs)``: loads add their address
  to ``rs``, exactly like the interpreter's ``_eval``. Used whenever
  some address in the statement is only known at run time.
* ``record=False`` — ``run(frame, mem)``: no read-set bookkeeping at
  all; only used when the *whole statement's* read set was proven
  static, in which case the statement's footprint is a compile-time
  constant (interned, so POR's privacy memo hits pointer equality).

Any node the compiler does not recognize falls back to the
interpretive ``_stmt_step`` at run time (counted by the framework's
``closure.fallbacks``), so semantic coverage can never regress.
"""

from repro.common.footprint import EMP, Footprint
from repro.common.values import BINOPS, UNOPS, VInt, VPtr, VUndef
from repro.lang.messages import TAU, CallMsg, EventMsg, RetMsg, SpawnMsg
from repro.lang.steps import Step, StepAbort
from repro.langs.minic import ast
from repro.langs.minic.semantics import (
    MFrame,
    MiniCCore,
    _EvalAbort,
    _flatten,
)

_VINT0 = VInt(0)


def _raiser(reason):
    def run(frame, mem):
        raise _EvalAbort(reason)

    return run


def _raiser_rec(reason):
    def run(frame, mem, rs):
        raise _EvalAbort(reason)

    return run


def expr_reads(module, expr):
    """The static read set of ``expr``, or ``None`` when dynamic.

    An expression that always aborts reports ``frozenset()``: the
    abort discards the read set anyway (``StepAbort`` carries ``EMP``).
    """
    if isinstance(expr, (ast.IntLit, ast.AddrOf)):
        return frozenset()
    if isinstance(expr, ast.VarExpr):
        if expr.scope == "local":
            return None
        addr = module.symbols.get(expr.name)
        if addr is None or addr in module.forbidden:
            return frozenset()
        return frozenset((addr,))
    if isinstance(expr, ast.Unop):
        return expr_reads(module, expr.arg)
    if isinstance(expr, ast.Binop):
        left = expr_reads(module, expr.left)
        if left is None:
            return None
        right = expr_reads(module, expr.right)
        if right is None:
            return None
        return left | right
    # Deref (address known only at run time) and unknown nodes.
    return None


def compile_expr(module, expr, record, counter):
    """Compile ``expr`` to ``run(frame, mem[, rs])``; may return None.

    ``None`` means the node is unknown — the caller then leaves the
    whole statement to the interpreter.
    """
    counter[0] += 1
    forbidden = module.forbidden

    if isinstance(expr, ast.IntLit):
        v = VInt(expr.n)
        if record:
            return lambda frame, mem, rs: v
        return lambda frame, mem: v

    if isinstance(expr, ast.VarExpr):
        name = expr.name
        if expr.scope == "local":
            # Local slot: the address comes from the activation's
            # environment; locals live in freelist space, which the
            # forbidden region (linked globals) never covers unless a
            # test constructs one — keep the check iff non-empty.
            if forbidden:
                def run(frame, mem, rs):
                    addr = frame.env[name]
                    if addr in forbidden:
                        raise _EvalAbort(
                            "client accessed object-owned address "
                            "{}".format(addr)
                        )
                    rs.add(addr)
                    value = mem.load(addr)
                    if value is None:
                        raise _EvalAbort(
                            "load from unallocated {}".format(addr)
                        )
                    return value
            else:
                def run(frame, mem, rs):
                    addr = frame.env[name]
                    rs.add(addr)
                    value = mem.load(addr)
                    if value is None:
                        raise _EvalAbort(
                            "load from unallocated {}".format(addr)
                        )
                    return value
            return run
        addr = module.symbols.get(name)
        if addr is None:
            reason = "unresolved global {!r}".format(name)
            return _raiser_rec(reason) if record else _raiser(reason)
        if addr in forbidden:
            reason = "client accessed object-owned address {}".format(addr)
            return _raiser_rec(reason) if record else _raiser(reason)
        miss = "load from unallocated {}".format(addr)
        if record:
            def run(frame, mem, rs):
                rs.add(addr)
                value = mem.load(addr)
                if value is None:
                    raise _EvalAbort(miss)
                return value
        else:
            def run(frame, mem):
                value = mem.load(addr)
                if value is None:
                    raise _EvalAbort(miss)
                return value
        return run

    if isinstance(expr, ast.AddrOf):
        name = expr.name
        if expr.scope == "local":
            if record:
                return lambda frame, mem, rs: VPtr(frame.env[name])
            return lambda frame, mem: VPtr(frame.env[name])
        addr = module.symbols.get(name)
        if addr is None:
            reason = "unresolved global {!r}".format(name)
            return _raiser_rec(reason) if record else _raiser(reason)
        v = VPtr(addr)
        if record:
            return lambda frame, mem, rs: v
        return lambda frame, mem: v

    if isinstance(expr, ast.Deref):
        # The loaded address is dynamic, so Deref only exists in
        # recording mode (a statement containing one is never static).
        arg = compile_expr(module, expr.arg, True, counter)
        if arg is None or not record:
            return None

        def run(frame, mem, rs):
            ptr = arg(frame, mem, rs)
            if not isinstance(ptr, VPtr):
                raise _EvalAbort("dereference of non-pointer")
            addr = ptr.addr
            if addr in forbidden:
                raise _EvalAbort(
                    "client accessed object-owned address {}".format(addr)
                )
            rs.add(addr)
            value = mem.load(addr)
            if value is None:
                raise _EvalAbort("load from unallocated {}".format(addr))
            return value

        return run

    if isinstance(expr, ast.Unop):
        arg = compile_expr(module, expr.arg, record, counter)
        if arg is None:
            return None
        op = UNOPS[expr.op]
        if record:
            def run(frame, mem, rs):
                result = op(arg(frame, mem, rs))
                if result is VUndef:
                    raise _EvalAbort("undefined unop result")
                return result
        else:
            def run(frame, mem):
                result = op(arg(frame, mem))
                if result is VUndef:
                    raise _EvalAbort("undefined unop result")
                return result
        return run

    if isinstance(expr, ast.Binop):
        left = compile_expr(module, expr.left, record, counter)
        right = compile_expr(module, expr.right, record, counter)
        if left is None or right is None:
            return None
        op = BINOPS[expr.op]
        undef = "undefined result of {!r}".format(expr.op)
        if record:
            def run(frame, mem, rs):
                result = op(left(frame, mem, rs), right(frame, mem, rs))
                if result is VUndef:
                    raise _EvalAbort(undef)
                return result
        else:
            def run(frame, mem):
                result = op(left(frame, mem), right(frame, mem))
                if result is VUndef:
                    raise _EvalAbort(undef)
                return result
        return run

    return None


def _compile_value(module, expr, counter):
    """``(run, reads)`` for one expression; recording iff dynamic."""
    reads = expr_reads(module, expr)
    run = compile_expr(module, expr, reads is None, counter)
    return run, reads


def _lhs_static_addr(module, lhs):
    """The compile-time store address of an lvalue, or ``None``.

    Returns ``(addr, abort_reason)``: a permission violation or an
    unresolved global is itself static knowledge — the statement
    compiles to an unconditional abort.
    """
    if not isinstance(lhs, ast.LhsVar) or lhs.scope == "local":
        return None
    addr = module.symbols.get(lhs.name)
    if addr is None:
        return addr, "unresolved global {!r}".format(lhs.name)
    if addr in module.forbidden:
        return addr, (
            "client accessed object-owned address {}".format(addr)
        )
    return addr, None


def _compile_stmt(module, stmt, counter):
    """One statement → closure ``(core, mem, flist, frame, rest)``.

    Returns ``None`` for nodes left to the interpreter.
    """
    forbidden = module.forbidden

    if isinstance(stmt, ast.SSkip):
        def run(core, mem, flist, frame, rest):
            nxt = MiniCCore(
                core.frames[:-1] + (frame.with_kont(rest),), core.nidx
            )
            return [Step(TAU, EMP, nxt, mem)]

        return run

    if isinstance(stmt, ast.SDecl):
        if stmt.init is None:
            def run(core, mem, flist, frame, rest):
                nxt = MiniCCore(
                    core.frames[:-1] + (frame.with_kont(rest),),
                    core.nidx,
                )
                return [Step(TAU, EMP, nxt, mem)]

            return run
        value_run, reads = _compile_value(module, stmt.init, counter)
        if value_run is None:
            return None
        name = stmt.name
        if reads is not None:
            def run(core, mem, flist, frame, rest):
                value = value_run(frame, mem)
                addr = frame.env[name]
                mem2 = mem.store(addr, value)
                if mem2 is None:
                    return [StepAbort(reason="store to unallocated")]
                nxt = MiniCCore(
                    core.frames[:-1] + (frame.with_kont(rest),),
                    core.nidx,
                )
                return [Step(TAU, Footprint(reads, (addr,)), nxt, mem2)]
        else:
            def run(core, mem, flist, frame, rest):
                rs = set()
                value = value_run(frame, mem, rs)
                addr = frame.env[name]
                mem2 = mem.store(addr, value)
                if mem2 is None:
                    return [StepAbort(reason="store to unallocated")]
                nxt = MiniCCore(
                    core.frames[:-1] + (frame.with_kont(rest),),
                    core.nidx,
                )
                return [Step(TAU, Footprint(rs, (addr,)), nxt, mem2)]
        return run

    if isinstance(stmt, ast.SAssign):
        value_run, reads = _compile_value(module, stmt.expr, counter)
        if value_run is None:
            return None
        lhs = stmt.lhs
        static = _lhs_static_addr(module, lhs)
        if static is not None:
            addr, abort = static
            if abort is not None:
                # Evaluation order: the rhs evaluates first, so its
                # aborts still win over the permission abort.
                if reads is not None:
                    def run(core, mem, flist, frame, rest):
                        value_run(frame, mem)
                        return [StepAbort(reason=abort)]
                else:
                    def run(core, mem, flist, frame, rest):
                        value_run(frame, mem, set())
                        return [StepAbort(reason=abort)]
                return run
            if reads is not None:
                fp = Footprint(reads, (addr,))

                def run(core, mem, flist, frame, rest):
                    value = value_run(frame, mem)
                    mem2 = mem.store(addr, value)
                    if mem2 is None:
                        return [StepAbort(reason="store to unallocated")]
                    nxt = MiniCCore(
                        core.frames[:-1] + (frame.with_kont(rest),),
                        core.nidx,
                    )
                    return [Step(TAU, fp, nxt, mem2)]
            else:
                def run(core, mem, flist, frame, rest):
                    rs = set()
                    value = value_run(frame, mem, rs)
                    mem2 = mem.store(addr, value)
                    if mem2 is None:
                        return [StepAbort(reason="store to unallocated")]
                    nxt = MiniCCore(
                        core.frames[:-1] + (frame.with_kont(rest),),
                        core.nidx,
                    )
                    return [Step(TAU, Footprint(rs, (addr,)), nxt, mem2)]
            return run
        if isinstance(lhs, ast.LhsVar):
            # Local lvalue: address from the environment.
            name = lhs.name
            if reads is not None:
                def run(core, mem, flist, frame, rest):
                    value = value_run(frame, mem)
                    addr = frame.env[name]
                    if addr in forbidden:
                        return [StepAbort(reason=(
                            "client accessed object-owned address "
                            "{}".format(addr)
                        ))]
                    mem2 = mem.store(addr, value)
                    if mem2 is None:
                        return [StepAbort(reason="store to unallocated")]
                    nxt = MiniCCore(
                        core.frames[:-1] + (frame.with_kont(rest),),
                        core.nidx,
                    )
                    return [Step(TAU, Footprint(reads, (addr,)), nxt, mem2)]
            else:
                def run(core, mem, flist, frame, rest):
                    rs = set()
                    value = value_run(frame, mem, rs)
                    addr = frame.env[name]
                    if addr in forbidden:
                        return [StepAbort(reason=(
                            "client accessed object-owned address "
                            "{}".format(addr)
                        ))]
                    mem2 = mem.store(addr, value)
                    if mem2 is None:
                        return [StepAbort(reason="store to unallocated")]
                    nxt = MiniCCore(
                        core.frames[:-1] + (frame.with_kont(rest),),
                        core.nidx,
                    )
                    return [Step(TAU, Footprint(rs, (addr,)), nxt, mem2)]
            return run
        if isinstance(lhs, ast.LhsDeref):
            ptr_run = compile_expr(module, lhs.arg, True, counter)
            if ptr_run is None:
                return None

            def run(core, mem, flist, frame, rest):
                rs = set()
                if reads is not None:
                    value = value_run(frame, mem)
                    rs.update(reads)
                else:
                    value = value_run(frame, mem, rs)
                ptr = ptr_run(frame, mem, rs)
                if not isinstance(ptr, VPtr):
                    return [StepAbort(reason="store through non-pointer")]
                addr = ptr.addr
                if addr in forbidden:
                    return [StepAbort(reason=(
                        "client accessed object-owned address "
                        "{}".format(addr)
                    ))]
                mem2 = mem.store(addr, value)
                if mem2 is None:
                    return [StepAbort(reason="store to unallocated")]
                nxt = MiniCCore(
                    core.frames[:-1] + (frame.with_kont(rest),),
                    core.nidx,
                )
                return [Step(TAU, Footprint(rs, (addr,)), nxt, mem2)]

            return run
        return None

    if isinstance(stmt, ast.SCallStmt):
        call = stmt.call
        runs = []
        all_reads = frozenset()
        for arg in call.args:
            arg_run, arg_reads = _compile_value(module, arg, counter)
            if arg_run is None:
                return None
            runs.append((arg_run, arg_reads))
            if all_reads is not None and arg_reads is not None:
                all_reads = all_reads | arg_reads
            else:
                all_reads = None
        runs = tuple(runs)
        fname = call.fname
        dst = stmt.dst
        external = call.external
        fp = Footprint(all_reads) if all_reads is not None else None

        def run(core, mem, flist, frame, rest):
            if fp is not None:
                args = tuple(
                    arg_run(frame, mem) for arg_run, _ in runs
                )
                afp = fp
            else:
                rs = set()
                args = []
                for arg_run, arg_reads in runs:
                    if arg_reads is not None:
                        args.append(arg_run(frame, mem))
                        rs.update(arg_reads)
                    else:
                        args.append(arg_run(frame, mem, rs))
                args = tuple(args)
                afp = Footprint(rs)
            frames = core.frames[:-1] + (frame.with_kont(rest),)
            if external:
                nxt = MiniCCore(frames, core.nidx, ("ext-wait", dst))
                return [Step(CallMsg(fname, args), afp, nxt, mem)]
            nxt = MiniCCore(frames, core.nidx, ("enter", fname, args, dst))
            return [Step(TAU, afp, nxt, mem)]

        return run

    if isinstance(stmt, ast.SPrint):
        value_run, reads = _compile_value(module, stmt.expr, counter)
        if value_run is None:
            return None
        fp = Footprint(reads) if reads is not None else None

        def run(core, mem, flist, frame, rest):
            if fp is not None:
                value = value_run(frame, mem)
                afp = fp
            else:
                rs = set()
                value = value_run(frame, mem, rs)
                afp = Footprint(rs)
            if not isinstance(value, VInt):
                return [StepAbort(reason="print of non-integer")]
            nxt = MiniCCore(
                core.frames[:-1] + (frame.with_kont(rest),), core.nidx
            )
            return [Step(EventMsg("print", value.n), afp, nxt, mem)]

        return run

    if isinstance(stmt, ast.SIf):
        if stmt.then is None or stmt.els is None:
            return None
        cond_run, reads = _compile_value(module, stmt.cond, counter)
        if cond_run is None:
            return None
        then_flat = _flatten(stmt.then, ())
        els_flat = _flatten(stmt.els, ())
        fp = Footprint(reads) if reads is not None else None

        def run(core, mem, flist, frame, rest):
            if fp is not None:
                cond = cond_run(frame, mem)
                afp = fp
            else:
                rs = set()
                cond = cond_run(frame, mem, rs)
                afp = Footprint(rs)
            taken = cond.is_true()
            if taken is None:
                return [StepAbort(reason="undefined condition")]
            kont = (then_flat if taken else els_flat) + rest
            nxt = MiniCCore(
                core.frames[:-1] + (frame.with_kont(kont),), core.nidx
            )
            return [Step(TAU, afp, nxt, mem)]

        return run

    if isinstance(stmt, ast.SWhile):
        cond_run, reads = _compile_value(module, stmt.cond, counter)
        if cond_run is None:
            return None
        body_flat = _flatten(stmt.body, ()) + (stmt,)
        fp = Footprint(reads) if reads is not None else None

        def run(core, mem, flist, frame, rest):
            if fp is not None:
                cond = cond_run(frame, mem)
                afp = fp
            else:
                rs = set()
                cond = cond_run(frame, mem, rs)
                afp = Footprint(rs)
            taken = cond.is_true()
            if taken is None:
                return [StepAbort(reason="undefined loop condition")]
            kont = body_flat + rest if taken else rest
            nxt = MiniCCore(
                core.frames[:-1] + (frame.with_kont(kont),), core.nidx
            )
            return [Step(TAU, afp, nxt, mem)]

        return run

    if isinstance(stmt, ast.SBlock):
        flat = _flatten(stmt, ())

        def run(core, mem, flist, frame, rest):
            nxt = MiniCCore(
                core.frames[:-1] + (frame.with_kont(flat + rest),),
                core.nidx,
            )
            return [Step(TAU, EMP, nxt, mem)]

        return run

    if isinstance(stmt, ast.SSpawn):
        msg = SpawnMsg(stmt.fname)

        def run(core, mem, flist, frame, rest):
            nxt = MiniCCore(
                core.frames[:-1] + (frame.with_kont(rest),), core.nidx
            )
            return [Step(msg, EMP, nxt, mem)]

        return run

    if isinstance(stmt, ast.SReturn):
        if stmt.expr is None:
            value_run, reads = None, frozenset()
        else:
            value_run, reads = _compile_value(module, stmt.expr, counter)
            if value_run is None:
                return None
        fp = Footprint(reads) if reads is not None else None

        def run(core, mem, flist, frame, rest):
            if value_run is None:
                value, afp = _VINT0, EMP
            elif fp is not None:
                value = value_run(frame, mem)
                afp = fp
            else:
                rs = set()
                value = value_run(frame, mem, rs)
                afp = Footprint(rs)
            if len(core.frames) > 1:
                nxt = MiniCCore(
                    core.frames[:-1],
                    core.nidx,
                    ("assign-result", frame.ret_dst, value),
                )
                return [Step(TAU, afp, nxt, mem)]
            nxt = MiniCCore(nidx=core.nidx, done=True)
            return [Step(RetMsg(value), afp, nxt, mem)]

        return run

    return None


def _collect_stmts(stmt, acc):
    if stmt is None or stmt in acc:
        return
    acc[stmt] = True
    if isinstance(stmt, ast.SBlock):
        for s in stmt.stmts:
            _collect_stmts(s, acc)
    elif isinstance(stmt, ast.SIf):
        _collect_stmts(stmt.then, acc)
        _collect_stmts(stmt.els, acc)
    elif isinstance(stmt, ast.SWhile):
        _collect_stmts(stmt.body, acc)


def stage_module(lang, module):
    """Compile every statement of ``module``; see ModuleLanguage hook.

    Returns ``(step, nodes_compiled)``.
    """
    counter = [0]
    table = {}
    acc = {}
    for func in module.functions.values():
        _collect_stmts(func.body, acc)
    for stmt in acc:
        compiled = _compile_stmt(module, stmt, counter)
        if compiled is not None:
            table[stmt] = compiled
            counter[0] += 1
    table_get = table.get
    interp = lang.step

    def step(core, mem, flist):
        if core.done:
            return []
        if core.pending is not None or not core.frames:
            return interp(module, core, mem, flist)
        frame = core.frames[-1]
        kont = frame.kont
        if not kont:
            # Implicit ``return 0`` at the end of the body.
            if len(core.frames) > 1:
                nxt = MiniCCore(
                    core.frames[:-1],
                    core.nidx,
                    ("assign-result", frame.ret_dst, _VINT0),
                )
                return [Step(TAU, EMP, nxt, mem)]
            return [Step(
                RetMsg(_VINT0), EMP,
                MiniCCore(nidx=core.nidx, done=True), mem,
            )]
        fn = table_get(kont[0])
        if fn is None:
            return interp(module, core, mem, flist)
        try:
            return fn(core, mem, flist, frame, kont[1:])
        except _EvalAbort as abort:
            return [StepAbort(reason=abort.reason)]

    return step, counter[0]
