"""Typechecker and scope resolution for MiniC.

Turns a parsed :class:`SourceModule` into a :class:`TypedUnit`: every
expression annotated with its type, every variable reference resolved
to ``local`` or ``global`` scope, per-function local slots collected,
and the module-level restrictions enforced:

* calls only at statement level;
* no pointer-typed globals or locals (pointers enter only as function
  parameters, so the only addresses that flow are ``&variable``);
* no cross-module escape of stack pointers: passing ``&local`` to an
  *external* function is rejected (the paper's footnote 6 restriction —
  Compositional CompCert's machinery for stack-pointer escape is
  orthogonal to the concurrency contribution).
"""

from repro.common.errors import TypeCheckError
from repro.langs.minic import ast


class TypedUnit:
    """A typechecked translation unit, before linking.

    ``functions``: name → annotated :class:`FuncDef`;
    ``globals_``: name → initial int value (definitions);
    ``extern_vars``: globals defined elsewhere;
    ``extern_funs``: name → (ret type, param types).
    """

    __slots__ = ("functions", "globals_", "extern_vars", "extern_funs")

    def __init__(self, functions, globals_, extern_vars, extern_funs):
        self.functions = dict(functions)
        self.globals_ = dict(globals_)
        self.extern_vars = frozenset(extern_vars)
        self.extern_funs = dict(extern_funs)

    def referenced_globals(self):
        return set(self.globals_) | set(self.extern_vars)


class _FunctionChecker:
    def __init__(self, unit_ctx, func):
        self.ctx = unit_ctx
        self.func = func
        self.locals_ = {}
        #: Locals introduced by desugaring (no SDecl in the body).
        self.extra_locals = []
        for name, ty in func.params:
            self._declare(name, ty)

    def _declare(self, name, ty):
        if name in self.locals_:
            raise TypeCheckError(
                "duplicate local {!r} in {}".format(name, self.func.name)
            )
        if name in self.ctx["globals"]:
            raise TypeCheckError(
                "local {!r} shadows a global in {}".format(
                    name, self.func.name
                )
            )
        self.locals_[name] = ty

    # ----- expressions ----------------------------------------------------

    def expr(self, e):
        """Annotate an expression; rejects nested calls."""
        if isinstance(e, ast.IntLit):
            return ast.IntLit(e.n, ast.INT)
        if isinstance(e, ast.VarExpr):
            if e.name in self.locals_:
                return ast.VarExpr(e.name, "local", self.locals_[e.name])
            if e.name in self.ctx["globals"]:
                return ast.VarExpr(e.name, "global", ast.INT)
            raise TypeCheckError("undefined variable {!r}".format(e.name))
        if isinstance(e, ast.AddrOf):
            if e.name in self.locals_:
                if self.locals_[e.name] != ast.INT:
                    raise TypeCheckError(
                        "&{} of non-int variable".format(e.name)
                    )
                return ast.AddrOf(e.name, "local", ast.PTR)
            if e.name in self.ctx["globals"]:
                return ast.AddrOf(e.name, "global", ast.PTR)
            raise TypeCheckError("undefined variable {!r}".format(e.name))
        if isinstance(e, ast.Deref):
            arg = self.expr(e.arg)
            if arg.ty != ast.PTR:
                raise TypeCheckError("dereference of a non-pointer")
            return ast.Deref(arg, ast.INT)
        if isinstance(e, ast.Unop):
            arg = self.expr(e.arg)
            if arg.ty != ast.INT:
                raise TypeCheckError(
                    "unary {!r} needs an int operand".format(e.op)
                )
            return ast.Unop(e.op, arg, ast.INT)
        if isinstance(e, ast.Binop):
            left = self.expr(e.left)
            right = self.expr(e.right)
            if e.op in ("==", "!="):
                if left.ty != right.ty or left.ty == ast.VOID:
                    raise TypeCheckError(
                        "{!r} compares incompatible types".format(e.op)
                    )
            elif left.ty != ast.INT or right.ty != ast.INT:
                raise TypeCheckError(
                    "binary {!r} needs int operands".format(e.op)
                )
            return ast.Binop(e.op, left, right, ast.INT)
        if isinstance(e, ast.Call):
            raise TypeCheckError(
                "calls are only allowed at statement level"
            )
        raise TypeCheckError("unknown expression {!r}".format(e))

    # ----- statements -------------------------------------------------------

    def stmt(self, s):
        if isinstance(s, ast.SSkip):
            return s
        if isinstance(s, ast.SDecl):
            self._declare(s.name, s.ty)
            init = self.expr(s.init) if s.init is not None else None
            if init is not None and init.ty != ast.INT:
                raise TypeCheckError(
                    "initializer of {!r} is not int".format(s.name)
                )
            return ast.SDecl(s.name, s.ty, init)
        if isinstance(s, ast.SAssign):
            lhs = self.lhs(s.lhs)
            expr = self.expr(s.expr)
            if lhs.ty != expr.ty:
                raise TypeCheckError("assignment type mismatch")
            return ast.SAssign(lhs, expr)
        if isinstance(s, ast.SCallStmt):
            return self.call_stmt(s)
        if isinstance(s, ast.SPrint):
            expr = self.expr(s.expr)
            if expr.ty != ast.INT:
                raise TypeCheckError("print needs an int")
            return ast.SPrint(expr)
        if isinstance(s, ast.SIf):
            cond = self.expr(s.cond)
            if cond.ty != ast.INT:
                raise TypeCheckError("if condition must be int")
            return ast.SIf(cond, self.stmt(s.then), self.stmt(s.els))
        if isinstance(s, ast.SWhile):
            cond = self.expr(s.cond)
            if cond.ty != ast.INT:
                raise TypeCheckError("while condition must be int")
            return ast.SWhile(cond, self.stmt(s.body))
        if isinstance(s, ast.SBlock):
            return ast.SBlock([self.stmt(x) for x in s.stmts])
        if isinstance(s, ast.SSpawn):
            internal = self.ctx["functions"].get(s.fname)
            if internal is not None:
                if internal.params or internal.ret != ast.VOID:
                    raise TypeCheckError(
                        "spawn of {!r}: spawned functions take no "
                        "arguments and return void".format(s.fname)
                    )
            else:
                extern = self.ctx["extern_funs"].get(s.fname)
                if extern is None:
                    raise TypeCheckError(
                        "spawn of undeclared {!r}".format(s.fname)
                    )
                ret, params = extern
                if params or ret != ast.VOID:
                    raise TypeCheckError(
                        "spawn of {!r}: spawned functions take no "
                        "arguments and return void".format(s.fname)
                    )
            return s
        if isinstance(s, ast.SReturn):
            if s.expr is None:
                if self.func.ret != ast.VOID:
                    raise TypeCheckError(
                        "{} must return a value".format(self.func.name)
                    )
                return s
            if isinstance(s.expr, ast.Call):
                # ``return f(args);`` — desugar through a fresh local so
                # the call stays at statement level (and the Tailcall
                # pass can later recognize the pattern).
                if "$ret" not in self.locals_:
                    self._declare("$ret", ast.INT)
                    self.extra_locals.append(("$ret", ast.INT))
                call_stmt = self.call_stmt(
                    ast.SCallStmt(
                        ast.LhsVar("$ret", None, None), s.expr
                    )
                )
                ret = ast.SReturn(
                    ast.VarExpr("$ret", "local", ast.INT)
                )
                if self.func.ret != ast.INT:
                    raise TypeCheckError(
                        "return-call type mismatch in {}".format(
                            self.func.name
                        )
                    )
                return ast.SBlock([call_stmt, ret])
            expr = self.expr(s.expr)
            if expr.ty != self.func.ret:
                raise TypeCheckError(
                    "return type mismatch in {}".format(self.func.name)
                )
            return ast.SReturn(expr)
        raise TypeCheckError("unknown statement {!r}".format(s))

    def lhs(self, lhs):
        if isinstance(lhs, ast.LhsVar):
            if lhs.name in self.locals_:
                return ast.LhsVar(lhs.name, "local", self.locals_[lhs.name])
            if lhs.name in self.ctx["globals"]:
                return ast.LhsVar(lhs.name, "global", ast.INT)
            raise TypeCheckError(
                "undefined variable {!r}".format(lhs.name)
            )
        if isinstance(lhs, ast.LhsDeref):
            arg = self.expr(lhs.arg)
            if arg.ty != ast.PTR:
                raise TypeCheckError("store through a non-pointer")
            return ast.LhsDeref(arg, ast.INT)
        raise TypeCheckError("unknown lhs {!r}".format(lhs))

    def call_stmt(self, s):
        call = s.call
        sig = self._signature(call.fname)
        ret, param_tys, external = sig
        args = [self.expr(a) for a in call.args]
        if len(args) != len(param_tys):
            raise TypeCheckError(
                "call of {!r} with {} args, expected {}".format(
                    call.fname, len(args), len(param_tys)
                )
            )
        for arg, pty in zip(args, param_tys):
            if arg.ty != pty:
                raise TypeCheckError(
                    "argument type mismatch calling {!r}".format(
                        call.fname
                    )
                )
            if (
                external
                and isinstance(arg, ast.AddrOf)
                and arg.scope == "local"
            ):
                raise TypeCheckError(
                    "stack pointer escapes to external {!r} "
                    "(footnote 6 restriction)".format(call.fname)
                )
        dst = None
        if s.dst is not None:
            dst = self.lhs(s.dst)
            if ret == ast.VOID:
                raise TypeCheckError(
                    "void call {!r} used as a value".format(call.fname)
                )
            if dst.ty != ret:
                raise TypeCheckError(
                    "call result type mismatch for {!r}".format(
                        call.fname
                    )
                )
        typed_call = ast.Call(call.fname, args, external, ret)
        return ast.SCallStmt(dst, typed_call)

    def _signature(self, fname):
        internal = self.ctx["functions"].get(fname)
        if internal is not None:
            return (
                internal.ret,
                [ty for _, ty in internal.params],
                False,
            )
        extern = self.ctx["extern_funs"].get(fname)
        if extern is not None:
            ret, params = extern
            return ret, list(params), True
        raise TypeCheckError("call of undeclared {!r}".format(fname))


def _collect_locals(stmt, acc):
    if isinstance(stmt, ast.SDecl):
        acc.append((stmt.name, stmt.ty))
    elif isinstance(stmt, ast.SBlock):
        for s in stmt.stmts:
            _collect_locals(s, acc)
    elif isinstance(stmt, ast.SIf):
        _collect_locals(stmt.then, acc)
        _collect_locals(stmt.els, acc)
    elif isinstance(stmt, ast.SWhile):
        _collect_locals(stmt.body, acc)


def typecheck(source):
    """Typecheck a parsed module; returns a :class:`TypedUnit`."""
    functions = {}
    globals_ = {}
    extern_vars = set()
    extern_funs = {}
    for decl in source.decls:
        if isinstance(decl, ast.GlobalVar):
            if decl.name in globals_:
                raise TypeCheckError(
                    "duplicate global {!r}".format(decl.name)
                )
            globals_[decl.name] = decl.init
        elif isinstance(decl, ast.ExternVar):
            extern_vars.add(decl.name)
        elif isinstance(decl, ast.ExternFun):
            extern_funs[decl.name] = (decl.ret, tuple(decl.params))
        elif isinstance(decl, ast.FuncDef):
            if decl.name in functions:
                raise TypeCheckError(
                    "duplicate function {!r}".format(decl.name)
                )
            functions[decl.name] = decl
        else:
            raise TypeCheckError("unknown declaration {!r}".format(decl))

    ctx = {
        "globals": set(globals_) | extern_vars,
        "functions": functions,
        "extern_funs": extern_funs,
    }
    typed_functions = {}
    for name, func in functions.items():
        checker = _FunctionChecker(ctx, func)
        body = checker.stmt(func.body)
        locals_ = []
        _collect_locals(body, locals_)
        all_locals = list(func.params) + locals_ + checker.extra_locals
        typed_functions[name] = ast.FuncDef(
            name, func.ret, func.params, body, all_locals
        )
    return TypedUnit(typed_functions, globals_, extern_vars, extern_funs)
