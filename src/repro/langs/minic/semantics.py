"""Footprint-instrumented small-step semantics of MiniC (Clight role).

Core states follow the paper's Clight instantiation (Sec. 7.1): a core
is control state plus the index ``N`` of the next freelist slot. As in
Clight, every local variable lives in memory: a function entry
allocates one slot per parameter/local from the activation's freelist
``F`` (so local footprints are visible, and shrinking them is the
compiler's job).

Execution granularity is one statement per step; the footprint of a
step collects every load/store its expressions perform. Cross-module
calls emit ``CallMsg`` and suspend the core; ``after_external`` injects
the result, which a subsequent silent step writes to its destination
(the write is a memory effect and needs its own footprint).

Permission discipline: a client module aborts when touching the
object-owned region (``module.forbidden``), realizing the paper's
"permission None" partition.
"""

from repro.common.errors import SemanticsError
from repro.common.footprint import EMP, Footprint
from repro.common.immutables import ImmutableMap
from repro.common.values import BINOPS, UNOPS, VInt, VPtr, VUndef
from repro.lang.interface import ModuleLanguage
from repro.lang.messages import (
    TAU,
    CallMsg,
    EventMsg,
    RetMsg,
    SpawnMsg,
)
from repro.lang.steps import Step, StepAbort
from repro.langs.minic import ast


class MFrame:
    """One internal activation: function, local slot map, continuation,
    and the caller's destination lvalue for this activation's result."""

    __slots__ = ("fname", "env", "kont", "ret_dst", "_hash")

    def __init__(self, fname, env, kont, ret_dst=None):
        object.__setattr__(self, "fname", fname)
        object.__setattr__(self, "env", env)
        object.__setattr__(self, "kont", tuple(kont))
        object.__setattr__(self, "ret_dst", ret_dst)

    def __setattr__(self, name, value):
        raise AttributeError("MFrame is immutable")

    def __eq__(self, other):
        if self is other:
            return True
        return (
            isinstance(other, MFrame)
            and self.fname == other.fname
            and self.env == other.env
            and self.kont == other.kont
            and self.ret_dst == other.ret_dst
        )

    def __hash__(self):
        try:
            return self._hash
        except AttributeError:
            h = hash((self.fname, self.env, self.kont, self.ret_dst))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self):
        return "MFrame({}, kont_len={})".format(
            self.fname, len(self.kont)
        )

    def with_kont(self, kont):
        return MFrame(self.fname, self.env, kont, self.ret_dst)


class MiniCCore:
    """A MiniC core: activation stack, next slot index, pending action."""

    __slots__ = ("frames", "nidx", "pending", "done", "_hash")

    def __init__(self, frames=(), nidx=0, pending=None, done=False):
        object.__setattr__(self, "frames", tuple(frames))
        object.__setattr__(self, "nidx", nidx)
        object.__setattr__(self, "pending", pending)
        object.__setattr__(self, "done", done)

    def __setattr__(self, name, value):
        raise AttributeError("MiniCCore is immutable")

    def __eq__(self, other):
        if self is other:
            return True
        return (
            isinstance(other, MiniCCore)
            and self.frames == other.frames
            and self.nidx == other.nidx
            and self.pending == other.pending
            and self.done == other.done
        )

    def __hash__(self):
        try:
            return self._hash
        except AttributeError:
            h = hash((self.frames, self.nidx, self.pending, self.done))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self):
        return "MiniCCore(depth={}, nidx={}, pending={!r})".format(
            len(self.frames), self.nidx, self.pending
        )


class _EvalAbort(Exception):
    def __init__(self, reason):
        super().__init__(reason)
        self.reason = reason


def _check_access(module, addr):
    if addr in module.forbidden:
        raise _EvalAbort(
            "client accessed object-owned address {}".format(addr)
        )


def _load(module, mem, addr, rs):
    _check_access(module, addr)
    rs.add(addr)
    value = mem.load(addr)
    if value is None:
        raise _EvalAbort("load from unallocated {}".format(addr))
    return value


def _eval(module, frame, mem, expr, rs):
    if isinstance(expr, ast.IntLit):
        return VInt(expr.n)
    if isinstance(expr, ast.VarExpr):
        addr = _var_addr(module, frame, expr.name, expr.scope)
        return _load(module, mem, addr, rs)
    if isinstance(expr, ast.AddrOf):
        return VPtr(_var_addr(module, frame, expr.name, expr.scope))
    if isinstance(expr, ast.Deref):
        ptr = _eval(module, frame, mem, expr.arg, rs)
        if not isinstance(ptr, VPtr):
            raise _EvalAbort("dereference of non-pointer")
        return _load(module, mem, ptr.addr, rs)
    if isinstance(expr, ast.Unop):
        arg = _eval(module, frame, mem, expr.arg, rs)
        result = UNOPS[expr.op](arg)
        if result is VUndef:
            raise _EvalAbort("undefined unop result")
        return result
    if isinstance(expr, ast.Binop):
        left = _eval(module, frame, mem, expr.left, rs)
        right = _eval(module, frame, mem, expr.right, rs)
        result = BINOPS[expr.op](left, right)
        if result is VUndef:
            raise _EvalAbort(
                "undefined result of {!r}".format(expr.op)
            )
        return result
    raise SemanticsError("unknown MiniC expression {!r}".format(expr))


def _var_addr(module, frame, name, scope):
    if scope == "local":
        return frame.env[name]
    addr = module.symbols.get(name)
    if addr is None:
        raise _EvalAbort("unresolved global {!r}".format(name))
    return addr


def _flatten(stmt, rest):
    if isinstance(stmt, ast.SBlock):
        out = rest
        for s in reversed(stmt.stmts):
            out = _flatten(s, out)
        return out
    if isinstance(stmt, ast.SSkip):
        return rest
    return (stmt,) + rest


class MiniCLang(ModuleLanguage):
    """The MiniC module language (deterministic)."""

    name = "Clight"

    def init_core(self, module, entry, args=()):
        func = module.functions.get(entry)
        if func is None:
            return None
        if len(args) != len(func.params):
            return MiniCCore(pending=("arity-abort",))
        return MiniCCore(pending=("enter", entry, tuple(args), None))

    def after_external(self, core, retval):
        if not (core.pending and core.pending[0] == "ext-wait"):
            raise SemanticsError(
                "after_external on a core that is not waiting"
            )
        dst = core.pending[1]
        return MiniCCore(
            core.frames, core.nidx, ("assign-result", dst, retval)
        )

    def step(self, module, core, mem, flist):
        if core.done:
            return []
        try:
            return self._step(module, core, mem, flist)
        except _EvalAbort as abort:
            return [StepAbort(reason=abort.reason)]

    # ----- pending actions -------------------------------------------------

    def _step(self, module, core, mem, flist):
        pending = core.pending
        if pending is not None:
            kind = pending[0]
            if kind == "arity-abort":
                return [StepAbort(reason="arity mismatch at module call")]
            if kind == "enter":
                return self._enter(module, core, mem, flist, *pending[1:])
            if kind == "assign-result":
                return self._assign_result(
                    module, core, mem, pending[1], pending[2]
                )
            if kind == "ext-wait":
                # Waiting for the environment: no local steps.
                return []
            raise SemanticsError("unknown pending {!r}".format(pending))
        if not core.frames:
            raise SemanticsError("MiniC core without frames")
        frame = core.frames[-1]
        if not frame.kont:
            # Implicit return at the end of the body.
            return self._return(module, core, mem, frame, VInt(0), set())
        return self._stmt_step(module, core, mem, flist, frame)

    def _enter(self, module, core, mem, flist, fname, args, ret_dst):
        func = module.functions[fname]
        env = {}
        ws = set()
        nidx = core.nidx
        data_mem = mem
        values = {name: VUndef for name, _ty in func.locals_}
        for (name, _ty), value in zip(func.params, args):
            values[name] = value
        for name, _ty in func.locals_:
            addr = flist.addr_at(nidx)
            nidx += 1
            data_mem = data_mem.alloc(addr, values[name])
            if data_mem is None:
                raise SemanticsError("freelist slot already allocated")
            env[name] = addr
            ws.add(addr)
        frame = MFrame(
            fname, ImmutableMap(env), _flatten(func.body, ()), ret_dst
        )
        nxt = MiniCCore(core.frames + (frame,), nidx)
        return [Step(TAU, Footprint((), ws), nxt, data_mem)]

    def _assign_result(self, module, core, mem, dst, value):
        frame = core.frames[-1] if core.frames else None
        nxt = MiniCCore(core.frames, core.nidx)
        if dst is None:
            return [Step(TAU, EMP, nxt, mem)]
        rs = set()
        addr = self._lhs_addr(module, frame, mem, dst, rs)
        mem2 = mem.store(addr, value)
        if mem2 is None:
            return [StepAbort(reason="store to unallocated")]
        return [Step(TAU, Footprint(rs, {addr}), nxt, mem2)]

    # ----- statements -------------------------------------------------------

    def _stmt_step(self, module, core, mem, flist, frame):
        stmt, rest = frame.kont[0], frame.kont[1:]
        advance = frame.with_kont(rest)

        if isinstance(stmt, ast.SSkip):
            return self._tau(core, advance, EMP, mem)

        if isinstance(stmt, ast.SDecl):
            if stmt.init is None:
                return self._tau(core, advance, EMP, mem)
            rs = set()
            value = _eval(module, frame, mem, stmt.init, rs)
            addr = frame.env[stmt.name]
            mem2 = mem.store(addr, value)
            if mem2 is None:
                return [StepAbort(reason="store to unallocated")]
            return self._tau(
                core, advance, Footprint(rs, {addr}), mem2
            )

        if isinstance(stmt, ast.SAssign):
            rs = set()
            value = _eval(module, frame, mem, stmt.expr, rs)
            addr = self._lhs_addr(module, frame, mem, stmt.lhs, rs)
            mem2 = mem.store(addr, value)
            if mem2 is None:
                return [StepAbort(reason="store to unallocated")]
            return self._tau(
                core, advance, Footprint(rs, {addr}), mem2
            )

        if isinstance(stmt, ast.SCallStmt):
            return self._call(
                module, core, mem, flist, frame, advance, stmt
            )

        if isinstance(stmt, ast.SPrint):
            rs = set()
            value = _eval(module, frame, mem, stmt.expr, rs)
            if not isinstance(value, VInt):
                return [StepAbort(reason="print of non-integer")]
            nxt = MiniCCore(
                core.frames[:-1] + (advance,), core.nidx
            )
            return [
                Step(
                    EventMsg("print", value.n),
                    Footprint(rs),
                    nxt,
                    mem,
                )
            ]

        if isinstance(stmt, ast.SIf):
            rs = set()
            cond = _eval(module, frame, mem, stmt.cond, rs)
            taken = cond.is_true()
            if taken is None:
                return [StepAbort(reason="undefined condition")]
            branch = stmt.then if taken else stmt.els
            nxt_frame = frame.with_kont(_flatten(branch, rest))
            return self._tau(core, nxt_frame, Footprint(rs), mem)

        if isinstance(stmt, ast.SWhile):
            rs = set()
            cond = _eval(module, frame, mem, stmt.cond, rs)
            taken = cond.is_true()
            if taken is None:
                return [StepAbort(reason="undefined loop condition")]
            if taken:
                kont = _flatten(stmt.body, (stmt,) + rest)
            else:
                kont = rest
            return self._tau(
                core, frame.with_kont(kont), Footprint(rs), mem
            )

        if isinstance(stmt, ast.SBlock):
            return self._tau(
                core, frame.with_kont(_flatten(stmt, rest)), EMP, mem
            )

        if isinstance(stmt, ast.SSpawn):
            nxt = MiniCCore(
                core.frames[:-1] + (advance,), core.nidx
            )
            return [Step(SpawnMsg(stmt.fname), EMP, nxt, mem)]

        if isinstance(stmt, ast.SReturn):
            rs = set()
            value = VInt(0)
            if stmt.expr is not None:
                value = _eval(module, frame, mem, stmt.expr, rs)
            popped_frame = frame.with_kont(rest)
            return self._return(
                module,
                MiniCCore(
                    core.frames[:-1] + (popped_frame,), core.nidx
                ),
                mem,
                popped_frame,
                value,
                rs,
            )

        raise SemanticsError("unknown MiniC statement {!r}".format(stmt))

    def _tau(self, core, frame, fp, mem):
        nxt = MiniCCore(core.frames[:-1] + (frame,), core.nidx)
        return [Step(TAU, fp, nxt, mem)]

    def _lhs_addr(self, module, frame, mem, lhs, rs):
        if isinstance(lhs, ast.LhsVar):
            addr = _var_addr(module, frame, lhs.name, lhs.scope)
        else:
            ptr = _eval(module, frame, mem, lhs.arg, rs)
            if not isinstance(ptr, VPtr):
                raise _EvalAbort("store through non-pointer")
            addr = ptr.addr
        _check_access(module, addr)
        return addr

    def _call(self, module, core, mem, flist, frame, advance, stmt):
        rs = set()
        args = tuple(
            _eval(module, frame, mem, a, rs) for a in stmt.call.args
        )
        frames = core.frames[:-1] + (advance,)
        if stmt.call.external:
            nxt = MiniCCore(
                frames, core.nidx, ("ext-wait", stmt.dst)
            )
            return [
                Step(
                    CallMsg(stmt.call.fname, args),
                    Footprint(rs),
                    nxt,
                    mem,
                )
            ]
        # Internal call: push a new activation (allocating its slots is
        # the callee-entry step, kept pending so allocation carries its
        # own footprint).
        nxt = MiniCCore(
            frames,
            core.nidx,
            ("enter", stmt.call.fname, args, stmt.dst),
        )
        return [Step(TAU, Footprint(rs), nxt, mem)]

    def _return(self, module, core, mem, frame, value, rs):
        if len(core.frames) > 1:
            dst = frame.ret_dst
            nxt = MiniCCore(
                core.frames[:-1],
                core.nidx,
                ("assign-result", dst, value),
            )
            return [Step(TAU, Footprint(rs), nxt, mem)]
        nxt = MiniCCore(nidx=core.nidx, done=True)
        return [Step(RetMsg(value), Footprint(rs), nxt, mem)]

    def is_final(self, module, core):
        return core is not None and core.done

    def stage_module(self, module):
        # Imported lazily: the compiler imports frames/cores/_flatten
        # from this module.
        from repro.langs.minic import compile as mcompile

        return mcompile.stage_module(self, module)


#: Shared language instance.
MINIC = MiniCLang()
