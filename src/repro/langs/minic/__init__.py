"""MiniC: the Clight-like client source language.

Lexer, parser, typechecker and footprint-instrumented semantics for
the C subset the paper's client programs use (Fig. 10c, examples 2.1
and 2.2). This is the source language of the CASCompCert pipeline.
"""

from repro.langs.minic.ast import MiniCModule
from repro.langs.minic.build import compile_unit, link_units
from repro.langs.minic.parser import parse
from repro.langs.minic.semantics import MINIC, MiniCCore, MiniCLang
from repro.langs.minic.typecheck import TypedUnit, typecheck

__all__ = [
    "MiniCModule",
    "compile_unit",
    "link_units",
    "parse",
    "typecheck",
    "TypedUnit",
    "MINIC",
    "MiniCCore",
    "MiniCLang",
]
