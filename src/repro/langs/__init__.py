"""Concrete language instantiations of the abstract framework.

* :mod:`repro.langs.cimp` — CImp, the simple imperative object language
  with atomic blocks (Sec. 7.1), used for the lock specification.
* :mod:`repro.langs.minic` — MiniC, the Clight-like client source
  language, with lexer/parser/typechecker.
* :mod:`repro.langs.ir` — the CompCert-style IR chain (Csharpminor,
  Cminor, CminorSel, RTL, LTL, Linear, Mach).
* :mod:`repro.langs.x86` — the mini-x86 target: SC and TSO semantics.
"""
