"""The x86-SC machine: sequentially consistent mini-x86 semantics.

Every instruction is one silent step; loads/stores act directly on the
global memory (the TSO machine in :mod:`repro.langs.x86.tso` overrides
exactly the memory-access hooks and adds buffer-flush nondeterminism).

Machine state (the core): register file (including ``esp``), condition
flags, current code position, the return-address stack (kept abstract,
as CompCert does), the freelist allocation index, and the store buffer
(always empty under SC).
"""

from repro.common.errors import SemanticsError
from repro.common.footprint import EMP, Footprint
from repro.common.immutables import ImmutableMap
from repro.common.values import BINOPS, VInt, VPtr, VUndef, divs, mods
from repro.lang.interface import ModuleLanguage
from repro.lang.messages import (
    TAU,
    CallMsg,
    EventMsg,
    RetMsg,
    SpawnMsg,
)
from repro.lang.steps import Step, StepAbort
from repro.langs.ir.base import (
    EvalAbort,
    check_access,
    load_checked,
    store_checked,
    symbol_addr,
)
from repro.langs.x86 import ast
from repro.langs.x86.regs import ARG_REGS, RET_REG

#: Flags value for "undefined" (e.g. after an incomparable Pcmp).
FLAGS_UNDEF = None


class X86Core:
    """The x86 machine core (shared by SC and TSO; SC keeps ``buffer``
    empty)."""

    __slots__ = ("regs", "flags", "cur", "rstack", "buffer", "nidx",
                 "pending", "done", "_hash")

    def __init__(self, regs=None, flags=FLAGS_UNDEF, cur=None, rstack=(),
                 buffer=(), nidx=0, pending=None, done=False):
        object.__setattr__(
            self, "regs", regs if regs is not None else ImmutableMap()
        )
        object.__setattr__(self, "flags", flags)
        object.__setattr__(self, "cur", cur)
        object.__setattr__(self, "rstack", tuple(rstack))
        object.__setattr__(self, "buffer", tuple(buffer))
        object.__setattr__(self, "nidx", nidx)
        object.__setattr__(self, "pending", pending)
        object.__setattr__(self, "done", done)

    def __setattr__(self, name, value):
        raise AttributeError("X86Core is immutable")

    def _key(self):
        return (
            self.regs,
            self.flags,
            self.cur,
            self.rstack,
            self.buffer,
            self.nidx,
            self.pending,
            self.done,
        )

    def __eq__(self, other):
        if self is other:
            return True
        return isinstance(other, X86Core) and self._key() == other._key()

    def __hash__(self):
        try:
            return self._hash
        except AttributeError:
            h = hash(self._key())
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self):
        return "X86Core(cur={!r}, buffer={}, pending={!r})".format(
            self.cur, len(self.buffer), self.pending
        )

    def update(self, **kwargs):
        values = {
            "regs": self.regs,
            "flags": self.flags,
            "cur": self.cur,
            "rstack": self.rstack,
            "buffer": self.buffer,
            "nidx": self.nidx,
            "pending": self.pending,
            "done": self.done,
        }
        values.update(kwargs)
        return X86Core(**values)


def _reg(core, r):
    value = core.regs.get(r, VUndef)
    if value is VUndef:
        raise EvalAbort("use of undefined register {!r}".format(r))
    return value


def _flags_of(v1, v2):
    """Condition flags from comparing two values."""
    if isinstance(v1, VInt) and isinstance(v2, VInt):
        return (v1.n == v2.n, v1.n < v2.n)
    if isinstance(v1, VPtr) and isinstance(v2, VPtr):
        return (v1.addr == v2.addr, None)
    return FLAGS_UNDEF


def _cond_holds(flags, cond):
    if flags is FLAGS_UNDEF:
        raise EvalAbort("conditional on undefined flags")
    eq, lt = flags
    if cond == "e":
        return eq
    if cond == "ne":
        return not eq
    if lt is None:
        raise EvalAbort("signed condition on pointer comparison")
    if cond == "l":
        return lt
    if cond == "le":
        return lt or eq
    if cond == "g":
        return not (lt or eq)
    if cond == "ge":
        return not lt
    raise SemanticsError("unknown condition {!r}".format(cond))


class X86SCLang(ModuleLanguage):
    """The sequentially consistent mini-x86 machine (deterministic)."""

    name = "x86-SC"

    # ----- memory hooks (overridden by the TSO machine) -----------------

    def _mem_load(self, module, core, mem, addr):
        """Returns ``(value, footprint)``."""
        rs = set()
        value = load_checked(module, mem, addr, rs)
        return value, Footprint(rs)

    def _mem_store(self, module, core, mem, addr, value):
        """Returns ``(core, mem, footprint)``."""
        mem2 = store_checked(module, mem, addr, value)
        return core, mem2, Footprint((), {addr})

    def _extra_outcomes(self, module, core, mem, flist):
        """Additional nondeterministic outcomes (TSO buffer flushes)."""
        return []

    def _must_drain(self, core):
        """True when the next instruction must wait for the buffer."""
        return False

    # ----- language interface -------------------------------------------

    def init_core(self, module, entry, args=()):
        func = module.functions.get(entry)
        if func is None:
            return None
        if len(args) != func.nparams:
            return X86Core(pending=("arity-abort",))
        regs = ImmutableMap(dict(zip(ARG_REGS, args)))
        return X86Core(regs=regs, cur=(entry, 0))

    def after_external(self, core, retval):
        if not (core.pending and core.pending[0] == "ext-wait"):
            raise SemanticsError("core is not waiting for an external")
        return core.update(pending=("set-ret", retval))

    def step(self, module, core, mem, flist):
        if core.done:
            return []
        try:
            return self._step(module, core, mem, flist)
        except EvalAbort as abort:
            # Instruction-level undefined behaviour. Under TSO the
            # store buffer is an independent agent: pending flushes
            # remain available alongside the abort.
            return [
                StepAbort(reason=abort.reason)
            ] + self._extra_outcomes(module, core, mem, flist)

    def _step(self, module, core, mem, flist):
        pending = core.pending
        outcomes = []
        if pending is not None:
            kind = pending[0]
            if kind == "arity-abort":
                return [StepAbort(reason="arity mismatch")]
            if kind == "set-ret":
                nxt = core.update(
                    regs=core.regs.set(RET_REG, pending[1]),
                    pending=None,
                )
                return [Step(TAU, EMP, nxt, mem)]
            if kind == "ext-wait":
                return self._extra_outcomes(module, core, mem, flist)
            raise SemanticsError("unknown pending {!r}".format(pending))

        fname, pc = core.cur
        func = module.functions[fname]
        if pc >= len(func.code):
            raise SemanticsError("fell off the end of {}".format(fname))
        instr = func.code[pc]

        if self._must_drain(core) and self._blocking(instr):
            return self._extra_outcomes(module, core, mem, flist)

        outcomes.extend(
            self._instr_step(module, core, mem, flist, func, instr)
        )
        outcomes.extend(self._extra_outcomes(module, core, mem, flist))
        return outcomes

    @staticmethod
    def _blocking(instr):
        """Instructions that require an empty store buffer."""
        return isinstance(
            instr,
            (
                ast.Plock_cmpxchg,
                ast.Pmfence,
                ast.Pcall,
                ast.Pret,
                ast.Pprint,
                ast.Pspawn,
            ),
        )

    # ----- instruction execution ------------------------------------------

    def _mode_addr(self, module, core, mode):
        kind = mode[0]
        if kind == "global":
            return symbol_addr(module, mode[1])
        if kind == "base":
            base = _reg(core, mode[1])
            if not isinstance(base, VPtr):
                raise EvalAbort("base register holds non-pointer")
            return base.addr + mode[2]
        raise SemanticsError("unknown addressing mode {!r}".format(mode))

    def _instr_step(self, module, core, mem, flist, func, instr):
        fname, pc = core.cur
        nxt_cur = (fname, pc + 1)

        if isinstance(instr, ast.Plabel):
            return [Step(TAU, EMP, core.update(cur=nxt_cur), mem)]

        if isinstance(instr, ast.Pmov_rr):
            regs = core.regs.set(instr.dst, _reg(core, instr.src))
            return [Step(TAU, EMP, core.update(regs=regs, cur=nxt_cur), mem)]

        if isinstance(instr, ast.Pmov_ri):
            regs = core.regs.set(instr.dst, VInt(instr.n))
            return [Step(TAU, EMP, core.update(regs=regs, cur=nxt_cur), mem)]

        if isinstance(instr, ast.Plea):
            addr = self._mode_addr(module, core, instr.mode)
            regs = core.regs.set(instr.dst, VPtr(addr))
            return [Step(TAU, EMP, core.update(regs=regs, cur=nxt_cur), mem)]

        if isinstance(instr, ast.Pmov_rm):
            addr = self._mode_addr(module, core, instr.mode)
            value, fp = self._mem_load(module, core, mem, addr)
            regs = core.regs.set(instr.dst, value)
            return [Step(TAU, fp, core.update(regs=regs, cur=nxt_cur), mem)]

        if isinstance(instr, ast.Pmov_mr):
            addr = self._mode_addr(module, core, instr.mode)
            value = _reg(core, instr.src)
            core2, mem2, fp = self._mem_store(
                module, core, mem, addr, value
            )
            return [Step(TAU, fp, core2.update(cur=nxt_cur), mem2)]

        if isinstance(instr, ast.Parith_rr):
            result = BINOPS[instr.op](
                _reg(core, instr.dst), _reg(core, instr.src)
            )
            if result is VUndef:
                return [StepAbort(reason="undefined arithmetic result")]
            regs = core.regs.set(instr.dst, result)
            return [Step(TAU, EMP, core.update(regs=regs, cur=nxt_cur), mem)]

        if isinstance(instr, ast.Parith_ri):
            result = BINOPS[instr.op](_reg(core, instr.dst), VInt(instr.n))
            if result is VUndef:
                return [StepAbort(reason="undefined arithmetic result")]
            regs = core.regs.set(instr.dst, result)
            return [Step(TAU, EMP, core.update(regs=regs, cur=nxt_cur), mem)]

        if isinstance(instr, ast.Pneg):
            value = _reg(core, instr.dst)
            if not isinstance(value, VInt):
                return [StepAbort(reason="neg of non-integer")]
            regs = core.regs.set(instr.dst, VInt(-value.n))
            return [Step(TAU, EMP, core.update(regs=regs, cur=nxt_cur), mem)]

        if isinstance(instr, ast.Pdivs):
            result = divs(_reg(core, instr.dst), _reg(core, instr.src))
            if result is VUndef:
                return [StepAbort(reason="undefined division")]
            regs = core.regs.set(instr.dst, result)
            return [Step(TAU, EMP, core.update(regs=regs, cur=nxt_cur), mem)]

        if isinstance(instr, ast.Pmods):
            result = mods(_reg(core, instr.dst), _reg(core, instr.src))
            if result is VUndef:
                return [StepAbort(reason="undefined modulo")]
            regs = core.regs.set(instr.dst, result)
            return [Step(TAU, EMP, core.update(regs=regs, cur=nxt_cur), mem)]

        if isinstance(instr, ast.Pcmp_rr):
            flags = _flags_of(_reg(core, instr.r1), _reg(core, instr.r2))
            return [
                Step(TAU, EMP, core.update(flags=flags, cur=nxt_cur), mem)
            ]

        if isinstance(instr, ast.Pcmp_ri):
            flags = _flags_of(_reg(core, instr.r1), VInt(instr.n))
            return [
                Step(TAU, EMP, core.update(flags=flags, cur=nxt_cur), mem)
            ]

        if isinstance(instr, ast.Pjcc):
            taken = _cond_holds(core.flags, instr.cond)
            cur = (fname, func.target(instr.lbl)) if taken else nxt_cur
            return [Step(TAU, EMP, core.update(cur=cur), mem)]

        if isinstance(instr, ast.Psetcc):
            taken = _cond_holds(core.flags, instr.cond)
            regs = core.regs.set(instr.dst, VInt(1 if taken else 0))
            return [Step(TAU, EMP, core.update(regs=regs, cur=nxt_cur), mem)]

        if isinstance(instr, ast.Pjmp):
            cur = (fname, func.target(instr.lbl))
            return [Step(TAU, EMP, core.update(cur=cur), mem)]

        if isinstance(instr, ast.Pcall):
            if instr.external:
                args = tuple(
                    _reg(core, ARG_REGS[i]) for i in range(instr.arity)
                )
                nxt = core.update(cur=nxt_cur, pending=("ext-wait",))
                return [Step(CallMsg(instr.fname, args), EMP, nxt, mem)]
            if instr.fname not in module.functions:
                return [
                    StepAbort(
                        reason="call to unknown {!r}".format(instr.fname)
                    )
                ]
            nxt = core.update(
                cur=(instr.fname, 0), rstack=core.rstack + (nxt_cur,)
            )
            return [Step(TAU, EMP, nxt, mem)]

        if isinstance(instr, ast.Pret):
            if core.rstack:
                nxt = core.update(
                    cur=core.rstack[-1], rstack=core.rstack[:-1]
                )
                return [Step(TAU, EMP, nxt, mem)]
            value = core.regs.get(RET_REG, VUndef)
            if value is VUndef:
                return [StepAbort(reason="return with undefined eax")]
            nxt = core.update(cur=None, done=True)
            return [Step(RetMsg(value), EMP, nxt, mem)]

        if isinstance(instr, ast.Pallocframe):
            if instr.size < 1:
                raise SemanticsError(
                    "Pallocframe needs at least the back-link word"
                )
            ws = set()
            nidx = core.nidx
            mem2 = mem
            base = flist.addr_at(nidx)
            for _ in range(instr.size):
                addr = flist.addr_at(nidx)
                nidx += 1
                mem2 = mem2.alloc(addr, VUndef)
                if mem2 is None:
                    raise SemanticsError("freelist slot already allocated")
                ws.add(addr)
            # Save the back link (the caller's esp, possibly VUndef for
            # the bottom frame).
            mem2 = mem2.store(base, core.regs.get("esp", VUndef))
            regs = core.regs.set("esp", VPtr(base))
            nxt = core.update(regs=regs, nidx=nidx, cur=nxt_cur)
            return [Step(TAU, Footprint((), ws), nxt, mem2)]

        if isinstance(instr, ast.Pfreeframe):
            sp = _reg(core, "esp")
            if not isinstance(sp, VPtr):
                return [StepAbort(reason="freeframe with non-pointer esp")]
            rs = set()
            check_access(module, sp.addr)
            rs.add(sp.addr)
            saved = mem.load(sp.addr)
            if saved is None:
                return [StepAbort(reason="freeframe on unallocated stack")]
            regs = core.regs.set("esp", saved)
            nxt = core.update(regs=regs, cur=nxt_cur)
            return [Step(TAU, Footprint(rs), nxt, mem)]

        if isinstance(instr, ast.Pprint):
            value = _reg(core, instr.src)
            if not isinstance(value, VInt):
                return [StepAbort(reason="print of non-integer")]
            nxt = core.update(cur=nxt_cur)
            return [Step(EventMsg("print", value.n), EMP, nxt, mem)]

        if isinstance(instr, ast.Pspawn):
            nxt = core.update(cur=nxt_cur)
            return [Step(SpawnMsg(instr.fname), EMP, nxt, mem)]

        if isinstance(instr, ast.Plock_cmpxchg):
            addr = self._mode_addr(module, core, instr.mode)
            check_access(module, addr)
            current = mem.load(addr)
            if current is None:
                return [StepAbort(reason="cmpxchg on unallocated")]
            expected = _reg(core, "eax")
            newval = _reg(core, instr.src)
            equal = current == expected
            if equal:
                mem2 = mem.store(addr, newval)
                nxt = core.update(flags=(True, None), cur=nxt_cur)
                fp = Footprint({addr}, {addr})
                return [Step(TAU, fp, nxt, mem2)]
            regs = core.regs.set("eax", current)
            nxt = core.update(regs=regs, flags=(False, None), cur=nxt_cur)
            return [Step(TAU, Footprint({addr}), nxt, mem)]

        if isinstance(instr, ast.Pmfence):
            return [Step(TAU, EMP, core.update(cur=nxt_cur), mem)]

        raise SemanticsError("unknown x86 instruction {!r}".format(instr))

    def is_final(self, module, core):
        return core is not None and core.done

    def stage_module(self, module):
        # Lazy: the compiler imports this module's helpers. The TSO
        # subclass inherits the hook; the compiled closures bind the
        # instance's memory hooks, so its overrides stay in force.
        from repro.langs.x86 import compile as xcompile

        return xcompile.stage_x86_module(self, module)


X86SC = X86SCLang()
