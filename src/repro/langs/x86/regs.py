"""Machine registers and the calling convention.

Shared by LTL, Linear, Mach and the x86 backends. The convention is a
simplified register-based one (our mini-x86 passes arguments in
registers rather than on the stack; CompCert x86-32 uses the stack, but
the stack-vs-register choice is orthogonal to the concurrency story):

* up to three arguments, in ``ARG_REGS`` (edi, esi, edx);
* result in ``RET_REG`` (eax);
* no callee-saved registers: calls clobber everything, so the register
  allocator must keep values live across calls in stack slots;
* ``POOL`` is the set the allocator may assign to virtual registers;
* ``SCRATCH`` registers are used only within a single instruction
  (spill reloads) and never carry values between instructions.
"""

#: All allocatable/architectural general-purpose registers.
MACH_REGS = ("eax", "ebx", "ecx", "edx", "esi", "edi")

#: Argument-passing registers, in order.
ARG_REGS = ("edi", "esi", "edx")

#: Function results.
RET_REG = "eax"

#: Registers the allocator may assign long-term.
POOL = ("ebx", "ecx")

#: Per-instruction scratch registers for spill code.
SCRATCH = ("eax", "edx", "edi")

#: Maximum number of register-passed arguments.
MAX_ARGS = len(ARG_REGS)


def is_reg(loc):
    """True iff ``loc`` is a machine register name."""
    return isinstance(loc, str) and loc in MACH_REGS


def is_slot(loc):
    """True iff ``loc`` is a stack slot ``("s", index)``."""
    return (
        isinstance(loc, tuple)
        and len(loc) == 2
        and loc[0] == "s"
        and isinstance(loc[1], int)
    )


def slot(index):
    """The ``index``-th spill slot location."""
    return ("s", index)
