"""Closure compilation of the mini-x86 machines (SC and TSO).

One closure per program point, keyed ``(fname, pc)`` like the IR
instruction languages. The compiled code is shared between the SC and
TSO machines by closing over the *language instance's* memory hooks
(``_mem_load``/``_mem_store``), so the TSO overrides keep working; the
staging cache already keys artifacts on the language instance.

The dispatcher comes in two flavours, chosen at staging time by method
identity: when ``_extra_outcomes``/``_must_drain`` are the SC
defaults (no buffer nondeterminism), the per-step hook calls are
dropped entirely; otherwise the TSO composition — drain-blocking,
flush outcomes appended after every step, flushes surviving aborts —
is replicated exactly.

Everything static is folded at compile time: successor positions,
label targets, global addresses, immediate values, unknown-callee
aborts, and the blocking-instruction classification that TSO's drain
rule consults per step.
"""

from repro.common.errors import SemanticsError
from repro.common.footprint import EMP, Footprint
from repro.common.values import BINOPS, VInt, VPtr, VUndef, divs, mods
from repro.lang.messages import (
    TAU,
    CallMsg,
    EventMsg,
    RetMsg,
    SpawnMsg,
)
from repro.lang.steps import Step, StepAbort
from repro.langs.ir.base import EvalAbort, symbol_addr
from repro.langs.ir.compile import access_check
from repro.langs.x86 import ast
from repro.langs.x86.regs import ARG_REGS, RET_REG
from repro.langs.x86.sc import X86SCLang, _cond_holds, _flags_of

_V0 = VInt(0)
_V1 = VInt(1)


def _reg_reader(r):
    reason = "use of undefined register {!r}".format(r)

    def read(core):
        value = core.regs.get(r, VUndef)
        if value is VUndef:
            raise EvalAbort(reason)
        return value

    return read


def _compile_mode(module, mode):
    """An addressing mode → ``addr_of(core)``, or None (unknown kind)."""
    kind = mode[0]
    if kind == "global":
        try:
            addr = symbol_addr(module, mode[1])
        except EvalAbort as abort:
            reason = abort.reason

            def run(core):
                raise EvalAbort(reason)

            return run
        return lambda core: addr
    if kind == "base":
        reg, ofs = mode[1], mode[2]
        undef = "use of undefined register {!r}".format(reg)

        def run(core):
            base = core.regs.get(reg, VUndef)
            if base is VUndef:
                raise EvalAbort(undef)
            if not isinstance(base, VPtr):
                raise EvalAbort("base register holds non-pointer")
            return base.addr + ofs

        return run
    return None


def _compile_instr(lang, module, func, pc, instr, counter):
    """One x86 instruction → ``run(core, mem, flist)`` or None.

    The closure produces exactly ``_instr_step``'s outcomes; the
    dispatcher layers the TSO extra-outcome composition on top.
    """
    counter[0] += 1
    fname = func.name
    nxt_cur = (fname, pc + 1)
    check = access_check(module)
    mem_load = lang._mem_load
    mem_store = lang._mem_store

    if isinstance(instr, (ast.Plabel, ast.Pmfence)):
        def run(core, mem, flist):
            return [Step(TAU, EMP, core.update(cur=nxt_cur), mem)]

        return run

    if isinstance(instr, ast.Pmov_rr):
        src_read = _reg_reader(instr.src)
        dst = instr.dst

        def run(core, mem, flist):
            regs = core.regs.set(dst, src_read(core))
            return [
                Step(TAU, EMP, core.update(regs=regs, cur=nxt_cur), mem)
            ]

        return run

    if isinstance(instr, ast.Pmov_ri):
        v = VInt(instr.n)
        dst = instr.dst

        def run(core, mem, flist):
            regs = core.regs.set(dst, v)
            return [
                Step(TAU, EMP, core.update(regs=regs, cur=nxt_cur), mem)
            ]

        return run

    if isinstance(instr, ast.Plea):
        addr_of = _compile_mode(module, instr.mode)
        if addr_of is None:
            return None
        dst = instr.dst

        def run(core, mem, flist):
            regs = core.regs.set(dst, VPtr(addr_of(core)))
            return [
                Step(TAU, EMP, core.update(regs=regs, cur=nxt_cur), mem)
            ]

        return run

    if isinstance(instr, ast.Pmov_rm):
        addr_of = _compile_mode(module, instr.mode)
        if addr_of is None:
            return None
        dst = instr.dst

        def run(core, mem, flist):
            value, fp = mem_load(module, core, mem, addr_of(core))
            regs = core.regs.set(dst, value)
            return [
                Step(TAU, fp, core.update(regs=regs, cur=nxt_cur), mem)
            ]

        return run

    if isinstance(instr, ast.Pmov_mr):
        addr_of = _compile_mode(module, instr.mode)
        if addr_of is None:
            return None
        src_read = _reg_reader(instr.src)

        def run(core, mem, flist):
            addr = addr_of(core)
            value = src_read(core)
            core2, mem2, fp = mem_store(module, core, mem, addr, value)
            return [Step(TAU, fp, core2.update(cur=nxt_cur), mem2)]

        return run

    if isinstance(instr, (ast.Parith_rr, ast.Parith_ri)):
        try:
            op = BINOPS[instr.op]
        except KeyError:
            return None
        dst = instr.dst
        dst_read = _reg_reader(dst)
        if isinstance(instr, ast.Parith_rr):
            src_read = _reg_reader(instr.src)
        else:
            imm = VInt(instr.n)
            src_read = lambda core: imm  # noqa: E731

        def run(core, mem, flist):
            result = op(dst_read(core), src_read(core))
            if result is VUndef:
                return [StepAbort(reason="undefined arithmetic result")]
            regs = core.regs.set(dst, result)
            return [
                Step(TAU, EMP, core.update(regs=regs, cur=nxt_cur), mem)
            ]

        return run

    if isinstance(instr, ast.Pneg):
        dst = instr.dst
        dst_read = _reg_reader(dst)

        def run(core, mem, flist):
            value = dst_read(core)
            if not isinstance(value, VInt):
                return [StepAbort(reason="neg of non-integer")]
            regs = core.regs.set(dst, VInt(-value.n))
            return [
                Step(TAU, EMP, core.update(regs=regs, cur=nxt_cur), mem)
            ]

        return run

    if isinstance(instr, (ast.Pdivs, ast.Pmods)):
        fn = divs if isinstance(instr, ast.Pdivs) else mods
        reason = (
            "undefined division"
            if isinstance(instr, ast.Pdivs)
            else "undefined modulo"
        )
        dst = instr.dst
        dst_read = _reg_reader(dst)
        src_read = _reg_reader(instr.src)

        def run(core, mem, flist):
            result = fn(dst_read(core), src_read(core))
            if result is VUndef:
                return [StepAbort(reason=reason)]
            regs = core.regs.set(dst, result)
            return [
                Step(TAU, EMP, core.update(regs=regs, cur=nxt_cur), mem)
            ]

        return run

    if isinstance(instr, (ast.Pcmp_rr, ast.Pcmp_ri)):
        r1_read = _reg_reader(instr.r1)
        if isinstance(instr, ast.Pcmp_rr):
            r2_read = _reg_reader(instr.r2)
        else:
            imm = VInt(instr.n)
            r2_read = lambda core: imm  # noqa: E731

        def run(core, mem, flist):
            flags = _flags_of(r1_read(core), r2_read(core))
            return [
                Step(
                    TAU, EMP, core.update(flags=flags, cur=nxt_cur), mem
                )
            ]

        return run

    if isinstance(instr, ast.Pjcc):
        target = func.labels.get(instr.lbl)
        if target is None:
            # The interpreter only resolves the label on a taken
            # branch; keep that behaviour by not compiling.
            return None
        taken_cur = (fname, target)
        cond = instr.cond

        def run(core, mem, flist):
            cur = taken_cur if _cond_holds(core.flags, cond) else nxt_cur
            return [Step(TAU, EMP, core.update(cur=cur), mem)]

        return run

    if isinstance(instr, ast.Psetcc):
        cond = instr.cond
        dst = instr.dst

        def run(core, mem, flist):
            value = _V1 if _cond_holds(core.flags, cond) else _V0
            regs = core.regs.set(dst, value)
            return [
                Step(TAU, EMP, core.update(regs=regs, cur=nxt_cur), mem)
            ]

        return run

    if isinstance(instr, ast.Pjmp):
        target = func.labels.get(instr.lbl)
        if target is None:
            return None
        jmp_cur = (fname, target)

        def run(core, mem, flist):
            return [Step(TAU, EMP, core.update(cur=jmp_cur), mem)]

        return run

    if isinstance(instr, ast.Pcall):
        call_fname = instr.fname
        if instr.external:
            if instr.arity > len(ARG_REGS):
                return None
            readers = tuple(
                _reg_reader(ARG_REGS[i]) for i in range(instr.arity)
            )

            def run(core, mem, flist):
                args = tuple(read(core) for read in readers)
                nxt = core.update(cur=nxt_cur, pending=("ext-wait",))
                return [Step(CallMsg(call_fname, args), EMP, nxt, mem)]

            return run
        if call_fname not in module.functions:
            unknown = [
                StepAbort(
                    reason="call to unknown {!r}".format(call_fname)
                )
            ]

            def run(core, mem, flist):
                return list(unknown)

            return run
        callee_cur = (call_fname, 0)

        def run(core, mem, flist):
            nxt = core.update(
                cur=callee_cur, rstack=core.rstack + (nxt_cur,)
            )
            return [Step(TAU, EMP, nxt, mem)]

        return run

    if isinstance(instr, ast.Pret):
        def run(core, mem, flist):
            if core.rstack:
                nxt = core.update(
                    cur=core.rstack[-1], rstack=core.rstack[:-1]
                )
                return [Step(TAU, EMP, nxt, mem)]
            value = core.regs.get(RET_REG, VUndef)
            if value is VUndef:
                return [StepAbort(reason="return with undefined eax")]
            nxt = core.update(cur=None, done=True)
            return [Step(RetMsg(value), EMP, nxt, mem)]

        return run

    if isinstance(instr, ast.Pallocframe):
        if instr.size < 1:
            # The interpreter rejects this with SemanticsError.
            return None
        size = instr.size

        def run(core, mem, flist):
            ws = set()
            nidx = core.nidx
            mem2 = mem
            base = flist.addr_at(nidx)
            for _ in range(size):
                addr = flist.addr_at(nidx)
                nidx += 1
                mem2 = mem2.alloc(addr, VUndef)
                if mem2 is None:
                    raise SemanticsError(
                        "freelist slot already allocated"
                    )
                ws.add(addr)
            mem2 = mem2.store(base, core.regs.get("esp", VUndef))
            regs = core.regs.set("esp", VPtr(base))
            nxt = core.update(regs=regs, nidx=nidx, cur=nxt_cur)
            return [Step(TAU, Footprint((), ws), nxt, mem2)]

        return run

    if isinstance(instr, ast.Pfreeframe):
        esp_read = _reg_reader("esp")

        def run(core, mem, flist):
            sp = esp_read(core)
            if not isinstance(sp, VPtr):
                return [
                    StepAbort(reason="freeframe with non-pointer esp")
                ]
            addr = sp.addr
            if check is not None:
                check(addr)
            saved = mem.load(addr)
            if saved is None:
                return [
                    StepAbort(reason="freeframe on unallocated stack")
                ]
            regs = core.regs.set("esp", saved)
            nxt = core.update(regs=regs, cur=nxt_cur)
            return [Step(TAU, Footprint((addr,)), nxt, mem)]

        return run

    if isinstance(instr, ast.Pprint):
        src_read = _reg_reader(instr.src)

        def run(core, mem, flist):
            value = src_read(core)
            if not isinstance(value, VInt):
                return [StepAbort(reason="print of non-integer")]
            nxt = core.update(cur=nxt_cur)
            return [Step(EventMsg("print", value.n), EMP, nxt, mem)]

        return run

    if isinstance(instr, ast.Pspawn):
        msg = SpawnMsg(instr.fname)

        def run(core, mem, flist):
            return [Step(msg, EMP, core.update(cur=nxt_cur), mem)]

        return run

    if isinstance(instr, ast.Plock_cmpxchg):
        addr_of = _compile_mode(module, instr.mode)
        if addr_of is None:
            return None
        eax_read = _reg_reader("eax")
        src_read = _reg_reader(instr.src)

        def run(core, mem, flist):
            addr = addr_of(core)
            if check is not None:
                check(addr)
            current = mem.load(addr)
            if current is None:
                return [StepAbort(reason="cmpxchg on unallocated")]
            expected = eax_read(core)
            newval = src_read(core)
            if current == expected:
                mem2 = mem.store(addr, newval)
                nxt = core.update(flags=(True, None), cur=nxt_cur)
                fp = Footprint({addr}, {addr})
                return [Step(TAU, fp, nxt, mem2)]
            regs = core.regs.set("eax", current)
            nxt = core.update(
                regs=regs, flags=(False, None), cur=nxt_cur
            )
            return [Step(TAU, Footprint({addr}), nxt, mem)]

        return run

    return None


def stage_x86_module(lang, module):
    """Stage an x86 module for ``lang`` (SC or TSO). ``(step, n)``."""
    counter = [0]
    table = {}
    for func in module.functions.values():
        for pc, instr in enumerate(func.code):
            compiled = _compile_instr(lang, module, func, pc, instr,
                                      counter)
            if compiled is not None:
                table[(func.name, pc)] = (compiled, lang._blocking(instr))
    table_get = table.get
    interp = lang.step

    plain = (
        type(lang)._extra_outcomes is X86SCLang._extra_outcomes
        and type(lang)._must_drain is X86SCLang._must_drain
    )

    if plain:
        def step(core, mem, flist):
            if core.done:
                return []
            if core.pending is not None:
                return interp(module, core, mem, flist)
            entry = table_get(core.cur)
            if entry is None:
                return interp(module, core, mem, flist)
            try:
                return entry[0](core, mem, flist)
            except EvalAbort as abort:
                return [StepAbort(reason=abort.reason)]

        return step, counter[0]

    extra = lang._extra_outcomes
    must_drain = lang._must_drain

    def step(core, mem, flist):
        if core.done:
            return []
        if core.pending is not None:
            return interp(module, core, mem, flist)
        entry = table_get(core.cur)
        if entry is None:
            return interp(module, core, mem, flist)
        fn, blocking = entry
        try:
            if blocking and must_drain(core):
                return extra(module, core, mem, flist)
            outcomes = fn(core, mem, flist)
            outcomes.extend(extra(module, core, mem, flist))
            return outcomes
        except EvalAbort as abort:
            return [StepAbort(reason=abort.reason)] + extra(
                module, core, mem, flist
            )

    return step, counter[0]
