"""Mini-x86 abstract syntax (shared by the SC and TSO machines).

Instruction set sized for the Asmgen output plus the hand-written
x86-TSO lock implementation of Fig. 10(b): moves, arithmetic,
compare/branch, call/ret with explicit frame (de)allocation pseudo-
instructions (CompCert's ``Pallocframe``/``Pfreeframe``), the
``lock cmpxchg`` atomic and ``mfence``.

Addressing modes are tuples:

* ``("global", name)`` — a linked global symbol;
* ``("base", reg, ofs)`` — register + word offset (stack accesses use
  ``("base", "esp", k)``).

Conditions: ``e``, ``ne``, ``l``, ``le``, ``g``, ``ge``.
"""

from repro.common.astbase import Node
from repro.common.errors import SemanticsError


class XInstr(Node):
    pass


class Plabel(XInstr):
    _fields = ("lbl",)


class Pmov_rr(XInstr):
    """``dst := src`` (register to register)."""

    _fields = ("dst", "src")


class Pmov_ri(XInstr):
    """``dst := imm``."""

    _fields = ("dst", "n")


class Plea(XInstr):
    """``dst := address(mode)`` — address computation, no memory access."""

    _fields = ("dst", "mode")


class Pmov_rm(XInstr):
    """``dst := [mode]`` — a load."""

    _fields = ("dst", "mode")


class Pmov_mr(XInstr):
    """``[mode] := src`` — a store."""

    _fields = ("mode", "src")


class Parith_rr(XInstr):
    """``dst := dst op src``; op one of ``+ - * << >>``."""

    _fields = ("op", "dst", "src")


class Parith_ri(XInstr):
    """``dst := dst op imm``."""

    _fields = ("op", "dst", "n")


class Pneg(XInstr):
    _fields = ("dst",)


class Pdivs(XInstr):
    """Pseudo signed division ``dst := dst / src`` (CompCert-style
    pseudo-expansion of the eax/edx idiom)."""

    _fields = ("dst", "src")


class Pmods(XInstr):
    _fields = ("dst", "src")


class Pcmp_rr(XInstr):
    _fields = ("r1", "r2")


class Pcmp_ri(XInstr):
    _fields = ("r1", "n")


class Pjcc(XInstr):
    _fields = ("cond", "lbl")


class Psetcc(XInstr):
    """``dst := cond ? 1 : 0`` from the current flags."""

    _fields = ("cond", "dst")


class Pjmp(XInstr):
    _fields = ("lbl",)


class Pcall(XInstr):
    _fields = ("fname", "arity", "external")


class Pret(XInstr):
    _fields = ()


class Pallocframe(XInstr):
    """Allocate a ``size``-word frame; ``[new esp + 0]`` saves the old
    esp (the back link); esp := frame base."""

    _fields = ("size",)


class Pfreeframe(XInstr):
    """esp := the saved back link at ``[esp + 0]``."""

    _fields = ("size",)


class Pprint(XInstr):
    """Pseudo: the observable output event (Asmgen target of print)."""

    _fields = ("src",)


class Plock_cmpxchg(XInstr):
    """``lock cmpxchg [mode], src``: atomically compare eax with the
    memory operand; if equal store src and set ZF, else load the
    operand into eax and clear ZF. Drains the store buffer first under
    TSO."""

    _fields = ("mode", "src")


class Pspawn(XInstr):
    """Pseudo: thread creation (models a runtime spawn call)."""

    _fields = ("fname",)


class Pmfence(XInstr):
    """Full memory fence: under TSO, blocks until the buffer drains."""

    _fields = ()


class X86Function:
    """An x86 function: instruction tuple plus label map."""

    __slots__ = ("name", "nparams", "code", "labels")

    def __init__(self, name, nparams, code):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "nparams", nparams)
        object.__setattr__(self, "code", tuple(code))
        labels = {}
        for idx, instr in enumerate(self.code):
            if isinstance(instr, Plabel):
                if instr.lbl in labels:
                    raise SemanticsError(
                        "duplicate label {!r} in {}".format(
                            instr.lbl, name
                        )
                    )
                labels[instr.lbl] = idx
        object.__setattr__(self, "labels", labels)

    def __setattr__(self, name, value):
        raise AttributeError("X86Function is immutable")

    def __repr__(self):
        return "X86Function({}, {} instrs)".format(
            self.name, len(self.code)
        )

    def target(self, lbl):
        idx = self.labels.get(lbl)
        if idx is None:
            raise SemanticsError(
                "undefined label {!r} in {}".format(lbl, self.name)
            )
        return idx
