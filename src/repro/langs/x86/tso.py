"""The x86-TSO machine (Sewell et al.), as a module language.

Total-store-order relaxation of :class:`X86SCLang`: each core carries a
FIFO *store buffer* (part of the core state, so the abstract framework
needs no change). The differences from SC, all confined to the memory
hooks:

* stores append to the buffer — no memory effect, empty footprint;
* loads are satisfied from the newest buffered write to that address
  if any (no memory footprint), else from memory;
* at any moment the oldest buffered write may *flush* to memory (a
  nondeterministic silent step whose footprint is the write);
* ``lock``-prefixed instructions, ``mfence``, calls, returns and
  observable events block until the buffer has drained.

This machine exhibits the non-SC behaviours (e.g. store→load
reordering) that make the spin lock of Fig. 10(b) racy-but-correct,
and is the target of the paper's extended framework (Sec. 7.3).
"""

from repro.common.footprint import EMP, Footprint
from repro.lang.steps import Step, StepAbort
from repro.lang.messages import TAU
from repro.langs.ir.base import check_access, load_checked
from repro.langs.x86.sc import X86SCLang


class X86TSOLang(X86SCLang):
    """The x86-TSO machine language (nondeterministic: buffer flushes)."""

    name = "x86-TSO"

    def _mem_load(self, module, core, mem, addr):
        # TSO load: newest buffered store to the same address wins.
        check_access(module, addr)
        for buf_addr, buf_val in reversed(core.buffer):
            if buf_addr == addr:
                return buf_val, EMP
        rs = set()
        value = load_checked(module, mem, addr, rs)
        return value, Footprint(rs)

    def _mem_store(self, module, core, mem, addr, value):
        # TSO store: buffered; hits memory only when flushed.
        check_access(module, addr)
        core2 = core.update(buffer=core.buffer + ((addr, value),))
        return core2, mem, EMP

    def _extra_outcomes(self, module, core, mem, flist):
        # The oldest buffered write may flush at any time.
        if not core.buffer:
            return []
        addr, value = core.buffer[0]
        mem2 = mem.store(addr, value)
        if mem2 is None:
            return [StepAbort(reason="flush to unallocated address")]
        nxt = core.update(buffer=core.buffer[1:])
        return [Step(TAU, Footprint((), {addr}), nxt, mem2)]

    def _must_drain(self, core):
        return bool(core.buffer)


X86TSO = X86TSOLang()
