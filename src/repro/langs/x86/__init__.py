"""The mini-x86 target: instruction set, SC and TSO machine semantics,
and the register/calling conventions shared with the late IRs."""

from repro.langs.x86.regs import (
    ARG_REGS,
    MACH_REGS,
    MAX_ARGS,
    POOL,
    RET_REG,
    SCRATCH,
    is_reg,
    is_slot,
    slot,
)
from repro.langs.x86.ast import X86Function
from repro.langs.x86.sc import X86SC, X86Core, X86SCLang
from repro.langs.x86.tso import X86TSO, X86TSOLang

__all__ = [
    "ARG_REGS",
    "MACH_REGS",
    "MAX_ARGS",
    "POOL",
    "RET_REG",
    "SCRATCH",
    "is_reg",
    "is_slot",
    "slot",
    "X86Function",
    "X86Core",
    "X86SCLang",
    "X86SC",
    "X86TSOLang",
    "X86TSO",
]
