"""The object simulation ``π_o ≼ᵒ γ_o`` (Sec. 7.3), checked contextually.

The paper's ``≼ᵒ`` (an extension of Liang-Feng simulation to TSO) gives
a contextual-refinement guarantee: any client using ``π_o`` under
relaxed semantics produces no more observable behaviours than using
``γ_o`` under SC, as long as the γ_o-program is DRF. We check exactly
that consequence over client contexts: behaviour inclusion of the
π_o-linked TSO program in the γ_o-linked SC program, termination-
insensitively (the paper's ``⊑′``).
"""

from repro.lang.module import ModuleDecl, Program
from repro.langs.cimp.semantics import CIMP
from repro.langs.x86.sc import X86SC
from repro.langs.x86.tso import X86TSO
from repro.semantics.explore import program_behaviours
from repro.semantics.preemptive import PreemptiveSemantics
from repro.semantics.refinement import refines
from repro.semantics.world import GlobalContext


class ObjectSimResult:
    """Outcome of the contextual ``≼ᵒ`` check for one client context."""

    def __init__(self, ok, detail, tso_behaviours, sc_behaviours):
        self.ok = ok
        self.detail = detail
        self.tso_behaviours = tso_behaviours
        self.sc_behaviours = sc_behaviours

    def __bool__(self):
        return self.ok

    def __repr__(self):
        return "ObjectSimResult(ok={}, {})".format(self.ok, self.detail)


def tso_program(client_stages, client_genvs, impl_module, impl_ge,
                entries):
    """``P_rmm``: every module on the TSO machine (clients + π_o)."""
    decls = [
        ModuleDecl(X86TSO, ge, stage.module)
        for stage, ge in zip(client_stages, client_genvs)
    ]
    decls.append(ModuleDecl(X86TSO, impl_ge, impl_module))
    return Program(decls, entries)


def sc_program(client_stages, client_genvs, spec_module, spec_ge,
               entries):
    """``P_sc``: SC clients + the abstract object γ_o."""
    decls = [
        ModuleDecl(X86SC, ge, stage.module)
        for stage, ge in zip(client_stages, client_genvs)
    ]
    decls.append(ModuleDecl(CIMP, spec_ge, spec_module))
    return Program(decls, entries)


def check_object_refinement(client_stages, client_genvs, impl_module,
                            impl_ge, spec_module, spec_ge, entries,
                            max_states=400000, max_events=10):
    """``P_rmm ⊑′ P_sc`` for one client context.

    ``client_stages`` are the x86 stages of already-compiled client
    modules (syntactically identical under SC and TSO — the paper's
    identity transformation with a semantics change).
    """
    prog_tso = tso_program(
        client_stages, client_genvs, impl_module, impl_ge, entries
    )
    prog_sc = sc_program(
        client_stages, client_genvs, spec_module, spec_ge, entries
    )
    semantics = PreemptiveSemantics()
    tso_b = program_behaviours(
        GlobalContext(prog_tso), semantics, max_states, max_events
    )
    sc_b = program_behaviours(
        GlobalContext(prog_sc), semantics, max_states, max_events
    )
    result = refines(tso_b, sc_b, termination_sensitive=False)
    detail = (
        "⊑′ holds"
        if result
        else "⊑′ fails: {} counterexamples{}".format(
            len(result.counterexamples),
            " (inconclusive)" if result.inconclusive else "",
        )
    )
    return ObjectSimResult(bool(result), detail, tso_b, sc_b)
