"""π_lock: the efficient x86-TSO spin lock (Fig. 10b) — the Linux-style
TTAS lock.

.. code-block:: none

    lock:   movl $L, %ecx
            movl $0, %edx
    l_acq:  movl $1, %eax
            lock cmpxchgl %edx, (%ecx)
            je enter
    spin:   movl (%ecx), %ebx
            cmp $0, %ebx
            je spin
            jmp l_acq
    enter:  retl
    unlock: movl $L, %eax
            movl $1, (%eax)
            retl

The acquisition path uses the lock-prefixed ``cmpxchg``; the spin loop
and the release store are *not* lock-prefixed — the optimization that
introduces the benign races the paper's extended framework confines:
the spin read races with the release store, and the release store is
an ordinary buffered TSO store.
"""

from repro.common.values import VInt
from repro.lang.module import GlobalEnv, ModuleDecl
from repro.langs.ir.base import IRModule
from repro.langs.x86 import ast as x86
from repro.langs.x86.ast import X86Function
from repro.langs.x86.tso import X86TSO
from repro.tso.lockspec import DEFAULT_LOCK_ADDR


def lock_impl(lock_addr=DEFAULT_LOCK_ADDR):
    """Build ``(module, global_env)`` for π_lock at ``lock_addr``."""
    lock_fn = X86Function(
        "lock",
        0,
        [
            x86.Plea("ecx", ("global", "L")),
            x86.Pmov_ri("edx", 0),
            x86.Plabel("l_acq"),
            x86.Pmov_ri("eax", 1),
            x86.Plock_cmpxchg(("base", "ecx", 0), "edx"),
            x86.Pjcc("e", "enter"),
            x86.Plabel("spin"),
            x86.Pmov_rm("ebx", ("base", "ecx", 0)),
            x86.Pcmp_ri("ebx", 0),
            x86.Pjcc("e", "spin"),
            x86.Pjmp("l_acq"),
            x86.Plabel("enter"),
            x86.Pret(),
        ],
    )
    unlock_fn = X86Function(
        "unlock",
        0,
        [
            x86.Plea("eax", ("global", "L")),
            x86.Pmov_ri("ebx", 1),
            x86.Pmov_mr(("base", "eax", 0), "ebx"),
            # retl returns with eax holding the (meaningless) lock
            # address; give the void return a definite value instead.
            x86.Pmov_ri("eax", 0),
            x86.Pret(),
        ],
    )
    module = IRModule(
        {"lock": lock_fn, "unlock": unlock_fn},
        {"L": lock_addr},
        owned={lock_addr},
    )
    ge = GlobalEnv({"L": lock_addr}, {lock_addr: VInt(1)})
    return module, ge


def lock_impl_decl(lock_addr=DEFAULT_LOCK_ADDR, lang=X86TSO):
    """The π_lock module declaration (x86-TSO by default)."""
    module, ge = lock_impl(lock_addr)
    return ModuleDecl(lang, ge, module)
