"""The strengthened DRF-guarantee theorem for x86-TSO (Lem. 16).

Standard DRF-guarantee: a data-race-free program has only SC behaviours
under TSO. The paper strengthens it to allow one racy-but-abstractable
module: if replacing the racy TSO object π_o by its abstraction γ_o
makes the program DRF under SC, then the all-TSO program refines
(``⊑′``) the SC program with γ_o.

:func:`check_strengthened_drf_guarantee` checks premises *and*
conclusion on a concrete program; :func:`check_plain_drf_guarantee` is
the degenerate corollary (empty object): DRF x86 clients behave the
same under TSO as under SC.
"""

from repro.lang.module import ModuleDecl, Program
from repro.langs.x86.sc import X86SC
from repro.langs.x86.tso import X86TSO
from repro.semantics.explore import program_behaviours
from repro.semantics.preemptive import PreemptiveSemantics
from repro.semantics.race import find_race
from repro.semantics.refinement import refines, safe
from repro.semantics.world import GlobalContext
from repro.tso.objectsim import sc_program, tso_program


class GuaranteeResult:
    def __init__(self, ok, detail, premises=None):
        self.ok = ok
        self.detail = detail
        self.premises = dict(premises or {})

    def __bool__(self):
        return self.ok

    def __repr__(self):
        return "GuaranteeResult(ok={}, {})".format(self.ok, self.detail)


def check_strengthened_drf_guarantee(client_stages, client_genvs,
                                     impl_module, impl_ge, spec_module,
                                     spec_ge, entries,
                                     max_states=400000, max_events=10):
    """Lem. 16: premises Safe(P_sc) ∧ DRF(P_sc), conclusion
    ``P_tso ⊑′ P_sc``. Also records that the TSO program is *not* DRF
    (the benign races are really there — otherwise the theorem would
    be the plain guarantee)."""
    semantics = PreemptiveSemantics()
    prog_sc = sc_program(
        client_stages, client_genvs, spec_module, spec_ge, entries
    )
    prog_tso = tso_program(
        client_stages, client_genvs, impl_module, impl_ge, entries
    )
    sc_ctx = GlobalContext(prog_sc)
    sc_b = program_behaviours(sc_ctx, semantics, max_states, max_events)

    premises = {}
    premises["safe_sc"] = bool(safe(sc_b))
    premises["drf_sc"] = (
        find_race(sc_ctx, semantics, max_states) is None
    )
    premises["tso_has_races"] = (
        find_race(GlobalContext(prog_tso), semantics, max_states)
        is not None
    )
    if not (premises["safe_sc"] and premises["drf_sc"]):
        return GuaranteeResult(
            True, "premises fail; theorem vacuous", premises
        )
    tso_b = program_behaviours(
        GlobalContext(prog_tso), semantics, max_states, max_events
    )
    result = refines(tso_b, sc_b, termination_sensitive=False)
    return GuaranteeResult(
        bool(result),
        "P_tso ⊑′ P_sc" if result else "refinement fails",
        premises,
    )


def check_plain_drf_guarantee(client_stages, client_genvs, entries,
                              max_states=400000, max_events=10):
    """The corollary with an empty object: DRF ⇒ TSO ≡-behaviour SC."""
    semantics = PreemptiveSemantics()
    sc_prog = Program(
        [
            ModuleDecl(X86SC, ge, st.module)
            for st, ge in zip(client_stages, client_genvs)
        ],
        entries,
    )
    tso_prog = Program(
        [
            ModuleDecl(X86TSO, ge, st.module)
            for st, ge in zip(client_stages, client_genvs)
        ],
        entries,
    )
    sc_ctx = GlobalContext(sc_prog)
    if find_race(sc_ctx, semantics, max_states) is not None:
        return GuaranteeResult(True, "not DRF; vacuous")
    sc_b = program_behaviours(sc_ctx, semantics, max_states, max_events)
    tso_b = program_behaviours(
        GlobalContext(tso_prog), semantics, max_states, max_events
    )
    result = refines(tso_b, sc_b, termination_sensitive=False)
    return GuaranteeResult(
        bool(result),
        "TSO ⊑′ SC" if result else "TSO exhibits non-SC behaviour",
    )
