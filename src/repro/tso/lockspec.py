"""γ_lock: the abstract lock specification (Fig. 10a), in CImp.

.. code-block:: none

    lock(){ r := 0; while(r == 0){ <r := [L]; [L] := 0;> } }
    unlock(){ < r := [L]; assert(r == 0); [L] := 1; > }

The lock cell ``L`` holds 1 when free and 0 when held; acquisition
atomically swaps it to 0 (spinning while it already is 0), release
asserts it is held and restores 1. The atomic blocks make every client
program that uses the lock correctly data-race-free.
"""

from repro.common.values import VInt
from repro.lang.module import GlobalEnv, ModuleDecl
from repro.langs.cimp.parser import parse_module
from repro.langs.cimp.semantics import CIMP

#: Default linked address of the lock cell.
DEFAULT_LOCK_ADDR = 8

LOCK_SPEC_SOURCE = """
lock(){ r := 0; while(r == 0){ <r := [L]; [L] := 0;> } }
unlock(){ < r := [L]; assert(r == 0); [L] := 1; > }
"""


def lock_spec(lock_addr=DEFAULT_LOCK_ADDR):
    """Build ``(module, global_env)`` for γ_lock at ``lock_addr``.

    The module *owns* the lock cell (Sec. 7.1 permission partition):
    clients must be linked with ``lock_addr`` in their forbidden set.
    """
    module = parse_module(
        LOCK_SPEC_SOURCE,
        symbols={"L": lock_addr},
        owned={lock_addr},
    )
    ge = GlobalEnv({"L": lock_addr}, {lock_addr: VInt(1)})
    return module, ge


def lock_spec_decl(lock_addr=DEFAULT_LOCK_ADDR):
    """The γ_lock module declaration ready for linking."""
    module, ge = lock_spec(lock_addr)
    return ModuleDecl(CIMP, ge, module)
