"""The extended framework for x86-TSO and confined benign races
(Sec. 7.3, Fig. 3): the lock specification γ_lock, the racy TTAS
implementation π_lock, the contextual object simulation ``≼ᵒ`` and the
strengthened DRF-guarantee theorem (Lem. 16)."""

from repro.tso.lockspec import (
    DEFAULT_LOCK_ADDR,
    LOCK_SPEC_SOURCE,
    lock_spec,
    lock_spec_decl,
)
from repro.tso.lockimpl import lock_impl, lock_impl_decl
from repro.tso.counterobj import (
    DEFAULT_COUNTER_ADDR,
    counter_impl,
    counter_impl_decl,
    counter_spec,
    counter_spec_decl,
)
from repro.tso.objectsim import (
    ObjectSimResult,
    check_object_refinement,
    sc_program,
    tso_program,
)
from repro.tso.drf_guarantee import (
    GuaranteeResult,
    check_plain_drf_guarantee,
    check_strengthened_drf_guarantee,
)

__all__ = [
    "DEFAULT_LOCK_ADDR",
    "LOCK_SPEC_SOURCE",
    "lock_spec",
    "lock_spec_decl",
    "lock_impl",
    "lock_impl_decl",
    "DEFAULT_COUNTER_ADDR",
    "counter_spec",
    "counter_spec_decl",
    "counter_impl",
    "counter_impl_decl",
    "ObjectSimResult",
    "check_object_refinement",
    "sc_program",
    "tso_program",
    "GuaranteeResult",
    "check_plain_drf_guarantee",
    "check_strengthened_drf_guarantee",
]
