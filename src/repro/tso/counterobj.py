"""A second synchronization object: an atomic fetch-and-increment
counter.

The paper notes (Sec. 2.4) that the extended framework is not specific
to locks: "π_o could be the Treiber stack implementation, and then γ_o
could be an atomic abstract stack" — any racy implementation with a
race-free atomic abstraction. This module instantiates that claim with
the simplest such object:

* γ_counter — the CImp specification: ``fetch_inc`` atomically reads
  and increments the cell, returning the old value;
* π_counter — the x86-TSO implementation: the classic optimistic
  ``cmpxchg`` retry loop, whose *plain* initial read races with other
  threads' committed increments (the benign race), retried until the
  compare-exchange commits.

Used by the object-refinement and DRF-guarantee checkers exactly like
the lock.
"""

from repro.common.values import VInt
from repro.lang.module import GlobalEnv, ModuleDecl
from repro.langs.cimp.parser import parse_module
from repro.langs.cimp.semantics import CIMP
from repro.langs.ir.base import IRModule
from repro.langs.x86 import ast as x86
from repro.langs.x86.ast import X86Function
from repro.langs.x86.tso import X86TSO

#: Default linked address of the counter cell.
DEFAULT_COUNTER_ADDR = 9

COUNTER_SPEC_SOURCE = """
fetch_inc(){ <v := [K]; [K] := v + 1;> return v; }
read_counter(){ <v := [K];> return v; }
"""


def counter_spec(counter_addr=DEFAULT_COUNTER_ADDR):
    """Build ``(module, global_env)`` for γ_counter."""
    module = parse_module(
        COUNTER_SPEC_SOURCE,
        symbols={"K": counter_addr},
        owned={counter_addr},
    )
    ge = GlobalEnv({"K": counter_addr}, {counter_addr: VInt(0)})
    return module, ge


def counter_impl(counter_addr=DEFAULT_COUNTER_ADDR):
    """Build ``(module, global_env)`` for π_counter.

    ``fetch_inc``'s optimistic read (``mov (%ecx), %eax``) is not
    lock-prefixed — it races with concurrent committed increments,
    exactly the confined benign race pattern of the TTAS lock.
    """
    fetch_inc = X86Function(
        "fetch_inc",
        0,
        [
            x86.Plea("ecx", ("global", "K")),
            x86.Plabel("retry"),
            x86.Pmov_rm("eax", ("base", "ecx", 0)),   # optimistic read
            x86.Pmov_rr("edx", "eax"),
            x86.Parith_ri("+", "edx", 1),
            x86.Plock_cmpxchg(("base", "ecx", 0), "edx"),
            x86.Pjcc("ne", "retry"),
            # On success eax still holds the observed old value.
            x86.Pret(),
        ],
    )
    read_counter = X86Function(
        "read_counter",
        0,
        [
            x86.Plea("ecx", ("global", "K")),
            x86.Pmov_rm("eax", ("base", "ecx", 0)),
            x86.Pret(),
        ],
    )
    module = IRModule(
        {"fetch_inc": fetch_inc, "read_counter": read_counter},
        {"K": counter_addr},
        owned={counter_addr},
    )
    ge = GlobalEnv({"K": counter_addr}, {counter_addr: VInt(0)})
    return module, ge


def counter_spec_decl(counter_addr=DEFAULT_COUNTER_ADDR):
    module, ge = counter_spec(counter_addr)
    return ModuleDecl(CIMP, ge, module)


def counter_impl_decl(counter_addr=DEFAULT_COUNTER_ADDR, lang=X86TSO):
    module, ge = counter_impl(counter_addr)
    return ModuleDecl(lang, ge, module)
