"""Pass 9 — Linearize: LTL → Linear.

Orders the CFG nodes into a straight-line instruction sequence. Every
CFG node gets a label named after its pc; control transfers become
gotos/conditional branches, except when the successor is the next
instruction in the chosen order — then the code falls through. The
ordering is a depth-first traversal preferring the fall-through
successor, which already removes most gotos; CleanupLabels then deletes
the labels nothing jumps to.
"""

from repro.common.errors import CompileError
from repro.langs.ir import linear as ln
from repro.langs.ir import ltl


def _successors(instr):
    if isinstance(instr, ltl.Lcond):
        return (instr.iffalse, instr.iftrue)
    if isinstance(instr, (ltl.Lreturn, ltl.Ltailcall)):
        return ()
    return (instr.next,)


def _order(func):
    """DFS order preferring fall-through successors."""
    order = []
    seen = set()
    stack = [func.entry]
    while stack:
        pc = stack.pop()
        if pc in seen:
            continue
        seen.add(pc)
        order.append(pc)
        instr = func.code.get(pc)
        if instr is None:
            raise CompileError(
                "dangling CFG edge to {} in {}".format(pc, func.name)
            )
        succs = _successors(instr)
        # Push in reverse so the first (preferred fall-through)
        # successor is visited immediately after this node.
        for succ in reversed(succs):
            stack.append(succ)
    return order


def _basic(instr):
    """Translate a non-control LTL instruction to Linear."""
    if isinstance(instr, ltl.Lconst):
        return ln.LinConst(instr.n, instr.dst)
    if isinstance(instr, ltl.Laddrglobal):
        return ln.LinAddrGlobal(instr.name, instr.dst)
    if isinstance(instr, ltl.Laddrstack):
        return ln.LinAddrStack(instr.ofs, instr.dst)
    if isinstance(instr, ltl.Lop):
        return ln.LinOp(instr.op, instr.args, instr.dst)
    if isinstance(instr, ltl.Lload):
        return ln.LinLoad(instr.addr, instr.dst)
    if isinstance(instr, ltl.Lstore):
        return ln.LinStore(instr.addr, instr.src)
    if isinstance(instr, ltl.Lcall):
        return ln.LinCall(instr.fname, instr.arity, instr.external)
    if isinstance(instr, ltl.Lprint):
        return ln.LinPrint(instr.src)
    if isinstance(instr, ltl.Lspawn):
        return ln.LinSpawn(instr.fname)
    return None


def transf_function(func):
    """Linearize one function."""
    order = _order(func)
    position = {pc: i for i, pc in enumerate(order)}
    code = []
    for i, pc in enumerate(order):
        instr = func.code[pc]
        code.append(ln.LinLabel(pc))
        basic = _basic(instr)
        if basic is not None:
            code.append(basic)
            nxt = instr.next
            if position.get(nxt) != i + 1:
                code.append(ln.LinGoto(nxt))
            continue
        if isinstance(instr, ltl.Lnop):
            if position.get(instr.next) != i + 1:
                code.append(ln.LinGoto(instr.next))
            continue
        if isinstance(instr, ltl.Lcond):
            code.append(
                ln.LinCond(instr.op, instr.args, instr.iftrue)
            )
            if position.get(instr.iffalse) != i + 1:
                code.append(ln.LinGoto(instr.iffalse))
            continue
        if isinstance(instr, ltl.Lreturn):
            code.append(ln.LinReturn())
            continue
        if isinstance(instr, ltl.Ltailcall):
            code.append(ln.LinTailcall(instr.fname, instr.arity))
            continue
        raise CompileError(
            "cannot linearize instruction {!r}".format(instr)
        )
    return ln.LinearFunction(
        func.name,
        func.nparams,
        func.stacksize,
        func.numslots,
        code,
    )


def linearize(module):
    """Linearize every function."""
    functions = {
        name: transf_function(func)
        for name, func in module.functions.items()
    }
    return module.with_functions(functions)
