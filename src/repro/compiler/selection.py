"""Pass 3 — Selection: Cminor → CminorSel (instruction selection).

Algebraic rewrites toward machine-friendly operators, mirroring
CompCert's SelectOp smart constructors:

* constant folding of arithmetic whose result is defined (division and
  modulo by constants are folded only when the divisor is non-zero and
  the INT_MIN/-1 overflow case cannot arise);
* neutral-element simplifications ``x+0``, ``0+x``, ``x-0``, ``x*1``,
  ``1*x``;
* strength reduction of multiplications by powers of two into shifts.

All rewrites preserve footprints exactly (only pure operator structure
changes; loads are untouched) and preserve abort behaviour: no rewrite
discards a subexpression.
"""

from repro.common.values import BINOPS, UNOPS, VInt
from repro.common.errors import CompileError
from repro.langs.ir import cminor as cm
from repro.langs.ir import cminorsel as sel


def _power_of_two(n):
    if n > 0 and (n & (n - 1)) == 0:
        return n.bit_length() - 1
    return None


def _fold_binop(op, left, right):
    """Constant-fold when both sides are literals and the result is
    defined for *all* inputs (no division)."""
    if not (isinstance(left, cm.EConst) and isinstance(right, cm.EConst)):
        return None
    if op in ("/", "%"):
        # Folding would erase the runtime abort on division by zero
        # only if the divisor were zero; folding a *defined* division
        # is fine.
        if right.n == 0:
            return None
    result = BINOPS[op](VInt(left.n), VInt(right.n))
    if not isinstance(result, VInt):
        return None
    return cm.EConst(result.n)


def select_expr(e):
    """Recursively select an expression."""
    if isinstance(e, (cm.EConst, cm.ETemp, cm.EAddrStack)):
        return e
    if isinstance(e, cm.EAddrGlobal):
        return e
    if isinstance(e, cm.ELoad):
        return cm.ELoad(select_expr(e.addr))
    if isinstance(e, cm.EUnop):
        arg = select_expr(e.arg)
        if isinstance(arg, cm.EConst):
            result = UNOPS[e.op](VInt(arg.n))
            if isinstance(result, VInt):
                return cm.EConst(result.n)
        return cm.EUnop(e.op, arg)
    if isinstance(e, cm.EBinop):
        left = select_expr(e.left)
        right = select_expr(e.right)
        folded = _fold_binop(e.op, left, right)
        if folded is not None:
            return folded
        # Neutral elements.
        if e.op == "+" and isinstance(right, cm.EConst) and right.n == 0:
            return left
        if e.op == "+" and isinstance(left, cm.EConst) and left.n == 0:
            return right
        if e.op == "-" and isinstance(right, cm.EConst) and right.n == 0:
            return left
        if e.op == "*" and isinstance(right, cm.EConst) and right.n == 1:
            return left
        if e.op == "*" and isinstance(left, cm.EConst) and left.n == 1:
            return right
        # Strength reduction: multiply by a power of two.
        if e.op == "*" and isinstance(right, cm.EConst):
            k = _power_of_two(right.n)
            if k is not None:
                return cm.EBinop("<<", left, cm.EConst(k))
        if e.op == "*" and isinstance(left, cm.EConst):
            k = _power_of_two(left.n)
            if k is not None:
                return cm.EBinop("<<", right, cm.EConst(k))
        return cm.EBinop(e.op, left, right)
    raise CompileError("cannot select expression {!r}".format(e))


def select_stmt(s):
    if isinstance(s, cm.SSkip):
        return s
    if isinstance(s, cm.SSet):
        return cm.SSet(s.temp, select_expr(s.expr))
    if isinstance(s, cm.SStore):
        return cm.SStore(select_expr(s.addr), select_expr(s.expr))
    if isinstance(s, cm.SCall):
        return cm.SCall(
            s.dst,
            s.fname,
            [select_expr(a) for a in s.args],
            s.external,
        )
    if isinstance(s, cm.SPrint):
        return cm.SPrint(select_expr(s.expr))
    if isinstance(s, cm.SSeq):
        return cm.SSeq([select_stmt(x) for x in s.stmts])
    if isinstance(s, cm.SIf):
        return cm.SIf(
            select_expr(s.cond), select_stmt(s.then), select_stmt(s.els)
        )
    if isinstance(s, cm.SWhile):
        return cm.SWhile(select_expr(s.cond), select_stmt(s.body))
    if isinstance(s, cm.SSpawn):
        return s
    if isinstance(s, cm.SReturn):
        expr = select_expr(s.expr) if s.expr is not None else None
        return cm.SReturn(expr)
    raise CompileError("cannot select statement {!r}".format(s))


def selection(module):
    """Translate a Cminor module to CminorSel."""
    functions = {
        name: sel.CmFunction(
            func.name,
            func.nparams,
            func.stacksize,
            select_stmt(func.body),
        )
        for name, func in module.functions.items()
    }
    return module.with_functions(functions)
