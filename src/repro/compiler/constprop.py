"""Extension pass — ConstProp: RTL constant propagation and folding.

One of the CompCert optimization passes the paper leaves as future work
("proving other optimization passes would be similar"). A forward
dataflow analysis over the lattice ``⊥ < const n < ⊤`` per virtual
register computes the registers with statically known values; the
rewrite then

* folds ``Iop`` whose operands are all known into ``Iconst`` (only
  when the result is *defined* — folding an undefined operation would
  erase an abort);
* resolves ``Icond`` with a known outcome into an ``Inop`` to the
  taken branch.

Memory operations are never touched, so source footprints only shrink
(condition evaluation disappears), which ``FPmatch`` permits.
"""

from repro.common.values import BINOPS, UNOPS, VInt
from repro.langs.ir import rtl

#: Lattice top: statically unknown.
TOP = "top"


def _transfer(instr, env):
    """The abstract post-state of one instruction."""
    env = dict(env)
    if isinstance(instr, rtl.Iconst):
        env[instr.dst] = instr.n
    elif isinstance(instr, rtl.Iop):
        value = _eval_op(instr, env)
        env[instr.dst] = value
    elif isinstance(instr, (rtl.Iaddrglobal, rtl.Iaddrstack,
                            rtl.Iload)):
        env[instr.dst] = TOP
    elif isinstance(instr, rtl.Icall) and instr.dst is not None:
        env[instr.dst] = TOP
    return env


def _eval_op(instr, env):
    if instr.op == "move":
        return env.get(instr.args[0], TOP)
    values = [env.get(r, TOP) for r in instr.args]
    if any(v is TOP for v in values):
        return TOP
    if len(values) == 1:
        result = UNOPS[instr.op](VInt(values[0]))
    else:
        result = BINOPS[instr.op](VInt(values[0]), VInt(values[1]))
    if not isinstance(result, VInt):
        return TOP  # undefined: keep the runtime behaviour
    return result.n


def _join(a, b):
    """Pointwise lattice join of two environments."""
    if a is None:
        return dict(b)
    out = {}
    for reg in set(a) | set(b):
        va = a.get(reg, TOP)
        vb = b.get(reg, TOP)
        out[reg] = va if va == vb else TOP
    return out


def _successors(instr):
    if isinstance(instr, rtl.Icond):
        return (instr.iftrue, instr.iffalse)
    if isinstance(instr, (rtl.Ireturn, rtl.Itailcall)):
        return ()
    return (instr.next,)


def analyze(func):
    """``pc -> env`` mapping at the entry of each node."""
    in_env = {func.entry: {}}
    worklist = [func.entry]
    while worklist:
        pc = worklist.pop()
        instr = func.code[pc]
        out = _transfer(instr, in_env.get(pc, {}))
        for succ in _successors(instr):
            joined = (
                dict(out)
                if succ not in in_env
                else _join(in_env[succ], out)
            )
            if joined != in_env.get(succ):
                in_env[succ] = joined
                worklist.append(succ)
    return in_env


def _rewrite(pc, instr, env):
    if isinstance(instr, rtl.Iop) and instr.op != "move":
        value = _eval_op(instr, env)
        if value is not TOP:
            return rtl.Iconst(value, instr.dst, instr.next)
    if isinstance(instr, rtl.Icond):
        values = [env.get(r, TOP) for r in instr.args]
        if all(v is not TOP for v in values):
            result = BINOPS[instr.op](
                VInt(values[0]), VInt(values[1])
            )
            if isinstance(result, VInt):
                target = (
                    instr.iftrue if result.n else instr.iffalse
                )
                return rtl.Inop(target)
    return instr


def transf_function(func):
    """Constant-propagate one function."""
    in_env = analyze(func)
    code = {
        pc: _rewrite(pc, instr, in_env.get(pc, {}))
        for pc, instr in func.code.items()
    }
    return rtl.RTLFunction(
        func.name, func.params, func.stacksize, func.entry, code
    )


def constprop(module):
    """Constant-propagate every function."""
    functions = {
        name: transf_function(func)
        for name, func in module.functions.items()
    }
    return module.with_functions(functions)
