"""Pass 10 — CleanupLabels: Linear → Linear.

Removes the labels no goto or conditional branch references. Purely
syntactic, yet it changes the instruction stream (labels are steps in
our semantics), so it exercises the stuttering case of the simulation:
source label steps correspond to zero target steps.
"""

from repro.langs.ir import linear as ln


def referenced_labels(code):
    """Labels used by any branch in an instruction sequence."""
    used = set()
    for instr in code:
        if isinstance(instr, (ln.LinGoto, ln.LinCond)):
            used.add(instr.lbl)
    return used


def transf_function(func):
    """Drop unreferenced labels from one function."""
    used = referenced_labels(func.code)
    code = [
        instr
        for instr in func.code
        if not (isinstance(instr, ln.LinLabel) and instr.lbl not in used)
    ]
    return ln.LinearFunction(
        func.name,
        func.nparams,
        func.stacksize,
        func.numslots,
        code,
    )


def cleanuplabels(module):
    """Clean up labels in every function."""
    functions = {
        name: transf_function(func)
        for name, func in module.functions.items()
    }
    return module.with_functions(functions)
