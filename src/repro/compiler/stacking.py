"""Pass 11 — Stacking: Linear → Mach frame layout.

The abstract slot locations of Linear become concrete frame memory:

* frame size = ``numslots + stacksize`` words;
* slot ``i`` lives at frame offset ``i``;
* the Cminor stack data begins at offset ``numslots`` — every
  ``LinAddrStack(ofs)`` becomes ``MAddrStack(numslots + ofs)``;
* moves involving slots become explicit ``MGetstack``/``MSetstack``
  memory instructions — from here down, spill traffic is visible in
  footprints (in the local region, which ``FPmatch`` ignores).

Relies on the Allocation invariant that slots appear only in moves;
anything else is a :class:`CompileError`.
"""

from repro.common.errors import CompileError
from repro.langs.ir import linear as ln
from repro.langs.ir import mach as mh
from repro.langs.x86.regs import is_reg, is_slot


def _transf_instr(instr, numslots):
    if isinstance(instr, ln.LinLabel):
        return [mh.MLabel(instr.lbl)]
    if isinstance(instr, ln.LinConst):
        if not is_reg(instr.dst):
            raise CompileError("LinConst writes a slot")
        return [mh.MConst(instr.n, instr.dst)]
    if isinstance(instr, ln.LinAddrGlobal):
        if not is_reg(instr.dst):
            raise CompileError("LinAddrGlobal writes a slot")
        return [mh.MAddrGlobal(instr.name, instr.dst)]
    if isinstance(instr, ln.LinAddrStack):
        if not is_reg(instr.dst):
            raise CompileError("LinAddrStack writes a slot")
        return [mh.MAddrStack(numslots + instr.ofs, instr.dst)]
    if isinstance(instr, ln.LinOp):
        if instr.op == "move":
            src = instr.args[0]
            dst = instr.dst
            if is_reg(src) and is_reg(dst):
                return [mh.MOp("move", (src,), dst)]
            if is_slot(src) and is_reg(dst):
                return [mh.MGetstack(src[1], dst)]
            if is_reg(src) and is_slot(dst):
                return [mh.MSetstack(src, dst[1])]
            raise CompileError("slot-to-slot move reached Stacking")
        bad = [
            l for l in tuple(instr.args) + (instr.dst,) if not is_reg(l)
        ]
        if bad:
            raise CompileError(
                "slot operand {!r} in computing op".format(bad[0])
            )
        return [mh.MOp(instr.op, instr.args, instr.dst)]
    if isinstance(instr, ln.LinLoad):
        if not (is_reg(instr.addr) and is_reg(instr.dst)):
            raise CompileError("LinLoad with slot operand")
        return [mh.MLoad(instr.addr, instr.dst)]
    if isinstance(instr, ln.LinStore):
        if not (is_reg(instr.addr) and is_reg(instr.src)):
            raise CompileError("LinStore with slot operand")
        return [mh.MStore(instr.addr, instr.src)]
    if isinstance(instr, ln.LinCall):
        return [mh.MCall(instr.fname, instr.arity, instr.external)]
    if isinstance(instr, ln.LinTailcall):
        return [mh.MTailcall(instr.fname, instr.arity)]
    if isinstance(instr, ln.LinGoto):
        return [mh.MGoto(instr.lbl)]
    if isinstance(instr, ln.LinCond):
        bad = [l for l in instr.args if not is_reg(l)]
        if bad:
            raise CompileError("slot operand in condition")
        return [mh.MCond(instr.op, instr.args, instr.lbl)]
    if isinstance(instr, ln.LinReturn):
        return [mh.MReturn()]
    if isinstance(instr, ln.LinSpawn):
        return [mh.MSpawn(instr.fname)]
    if isinstance(instr, ln.LinPrint):
        if not is_reg(instr.src):
            raise CompileError("LinPrint with slot operand")
        return [mh.MPrint(instr.src)]
    raise CompileError("cannot stack instruction {!r}".format(instr))


def transf_function(func):
    """Lay out one function's frame."""
    code = []
    for instr in func.code:
        code.extend(_transf_instr(instr, func.numslots))
    return mh.MachFunction(
        func.name,
        func.nparams,
        func.numslots + func.stacksize,
        code,
    )


def stacking(module):
    """Lay out every function."""
    functions = {
        name: transf_function(func)
        for name, func in module.functions.items()
    }
    return module.with_functions(functions)
