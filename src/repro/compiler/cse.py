"""Extension pass — CSE: local value numbering on RTL.

Per-basic-block classic LVN: every definition gets a value number;
pure computations (constants, address computations, operators) and
loads are keyed by operator + operand value numbers, so two loads of
the same global through *different* address registers are still
recognized. A later recomputation of an available value becomes a
``move`` from the register that holds it.

Loads are invalidated by stores and calls (memory may have changed);
eliminating a repeated load removes a read from the footprint — the
paper's footprint-consistency direction (``δ`` may be smaller than
``Δ``), which is exactly why CASCompCert's criterion admits CSE while
CompCertTSO's stricter same-memory-events simulation restricts it
(Sec. 8 related work).
"""

from repro.langs.ir import rtl


def _successors(instr):
    if isinstance(instr, rtl.Icond):
        return (instr.iftrue, instr.iffalse)
    if isinstance(instr, (rtl.Ireturn, rtl.Itailcall)):
        return ()
    return (instr.next,)


def _block_leaders(func):
    """Entry, branch targets, and join points start basic blocks."""
    preds = {pc: 0 for pc in func.code}
    branch_targets = set()
    for pc, instr in func.code.items():
        succs = _successors(instr)
        for succ in succs:
            preds[succ] += 1
        if isinstance(instr, rtl.Icond):
            branch_targets.update(succs)
    leaders = {func.entry} | branch_targets
    leaders |= {pc for pc, n in preds.items() if n != 1}
    return leaders


class _ValueNumbering:
    """Classic local value numbering state for one basic block."""

    def __init__(self):
        self._next = 0
        self.reg_vn = {}      # reg -> value number
        self.available = {}   # key -> (value number, holding reg)

    def fresh(self):
        self._next += 1
        return self._next

    def vn_of(self, reg):
        """The value number a register currently holds."""
        if reg not in self.reg_vn:
            self.reg_vn[reg] = self.fresh()
        return self.reg_vn[reg]

    def define(self, reg, vn):
        """Register ``reg`` now holds ``vn``; drop stale table entries
        whose *holding register* was overwritten."""
        self.reg_vn[reg] = vn
        self.available = {
            key: (v, holder)
            for key, (v, holder) in self.available.items()
            if holder != reg
        }

    def lookup(self, key):
        hit = self.available.get(key)
        if hit is None:
            return None
        return hit[1]

    def publish(self, key, reg):
        vn = self.fresh()
        self.define(reg, vn)
        self.available[key] = (vn, reg)
        return vn

    def kill_loads(self):
        self.available = {
            key: v
            for key, v in self.available.items()
            if key[0] != "load"
        }


def _key_of(instr, vn):
    """The LVN key of a pure instruction (None when not keyable)."""
    if isinstance(instr, rtl.Iconst):
        return ("const", instr.n)
    if isinstance(instr, rtl.Iaddrglobal):
        return ("addrglobal", instr.name)
    if isinstance(instr, rtl.Iaddrstack):
        return ("addrstack", instr.ofs)
    if isinstance(instr, rtl.Iop) and instr.op != "move":
        return ("op", instr.op) + tuple(
            vn.vn_of(r) for r in instr.args
        )
    if isinstance(instr, rtl.Iload):
        return ("load", vn.vn_of(instr.addr))
    return None


def transf_function(func):
    """Value-number one function, block by block."""
    leaders = _block_leaders(func)
    code = dict(func.code)
    for leader in sorted(leaders):
        if leader not in code:
            continue
        vn = _ValueNumbering()
        pc = leader
        while True:
            instr = code[pc]
            key = _key_of(instr, vn)
            if key is not None:
                holder = vn.lookup(key)
                if holder is not None and holder != instr.dst:
                    code[pc] = rtl.Iop(
                        "move", (holder,), instr.dst, instr.next
                    )
                    vn.define(instr.dst, vn.vn_of(holder))
                else:
                    vn.publish(key, instr.dst)
            elif isinstance(instr, rtl.Iop):  # a move
                vn.define(instr.dst, vn.vn_of(instr.args[0]))
            elif isinstance(instr, rtl.Istore):
                vn.kill_loads()
            elif isinstance(instr, rtl.Icall):
                vn.kill_loads()
                if instr.dst is not None:
                    vn.define(instr.dst, vn.fresh())
            elif isinstance(instr, (rtl.Iprint, rtl.Ispawn)):
                # Observable events and spawns are switch points of the
                # non-preemptive semantics: the environment may rewrite
                # shared memory there, so cached loads die. (Keeping a
                # load live across a print was a real miscompilation
                # the footprint-preserving validator caught during this
                # pass's development — the Rely continuation rewrites
                # shared cells between segments and the stale value
                # surfaces in the next event.)
                vn.kill_loads()

            succs = _successors(code[pc])
            if len(succs) != 1 or succs[0] in leaders:
                break
            pc = succs[0]
    return rtl.RTLFunction(
        func.name, func.params, func.stacksize, func.entry, code
    )


def cse(module):
    """Value-number every function."""
    functions = {
        name: transf_function(func)
        for name, func in module.functions.items()
    }
    return module.with_functions(functions)
