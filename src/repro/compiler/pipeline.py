"""The CASCompCert pipeline driver.

Chains the twelve verified passes of Fig. 11 over the IR chain
Clight → C#minor → Cminor → CminorSel → RTL → LTL → Linear → Mach →
x86, keeping every intermediate module so that translation validation
can check the footprint-preserving simulation across each adjacent
pair. ``IdTrans`` is the identity transformation the paper applies to
the CImp object module.
"""

from repro import obs
from repro.obs.nodecount import count_nodes
from repro.langs.ir import (
    CMINOR,
    CMINORSEL,
    CSHARPMINOR,
    LINEAR,
    LTL,
    MACH,
    RTL,
)
from repro.langs.minic.semantics import MINIC
from repro.langs.x86 import X86SC
from repro.compiler.constprop import constprop
from repro.compiler.cse import cse
from repro.compiler.cshmgen import cshmgen
from repro.compiler.deadcode import deadcode
from repro.compiler.cminorgen import cminorgen
from repro.compiler.selection import selection
from repro.compiler.rtlgen import rtlgen
from repro.compiler.tailcall import tailcall
from repro.compiler.renumber import renumber
from repro.compiler.allocation import allocation
from repro.compiler.tunneling import tunneling
from repro.compiler.linearize import linearize
from repro.compiler.cleanuplabels import cleanuplabels
from repro.compiler.stacking import stacking
from repro.compiler.asmgen import asmgen

#: Optional RTL optimization passes — the paper's future work
#: ("proving other optimization passes would be similar"): inserted
#: after Renumber when compiling with ``optimize=True``.
EXTRA_PASSES = (
    ("ConstProp", constprop, RTL),
    ("CSE", cse, RTL),
    ("Deadcode", deadcode, RTL),
)

#: The pass table: (name, transformation, output language). The output
#: language of pass i is the input language of pass i+1.
PASSES = (
    ("Cshmgen", cshmgen, CSHARPMINOR),
    ("Cminorgen", cminorgen, CMINOR),
    ("Selection", selection, CMINORSEL),
    ("RTLgen", rtlgen, RTL),
    ("Tailcall", tailcall, RTL),
    ("Renumber", renumber, RTL),
    ("Allocation", allocation, LTL),
    ("Tunneling", tunneling, LTL),
    ("Linearize", linearize, LINEAR),
    ("CleanupLabels", cleanuplabels, LINEAR),
    ("Stacking", stacking, MACH),
    ("Asmgen", asmgen, X86SC),
)


class Stage:
    """One point of the pipeline: pass name, language, module."""

    __slots__ = ("name", "lang", "module")

    def __init__(self, name, lang, module):
        self.name = name
        self.lang = lang
        self.module = module

    def __repr__(self):
        return "Stage({}, {})".format(self.name, self.lang.name)


class CompilationResult:
    """All pipeline stages of one module, source first, x86 last."""

    def __init__(self, stages):
        self.stages = list(stages)

    @property
    def source(self):
        return self.stages[0]

    @property
    def target(self):
        return self.stages[-1]

    def adjacent_pairs(self):
        """(pass name, source stage, target stage) for each pass."""
        return [
            (self.stages[i + 1].name, self.stages[i], self.stages[i + 1])
            for i in range(len(self.stages) - 1)
        ]

    def stage(self, name):
        for st in self.stages:
            if st.name == name:
                return st
        raise KeyError(name)


def compile_minic(module, upto=None, optimize=False):
    """Run the pipeline on a typechecked, linked MiniC module.

    ``upto`` optionally names the last pass to run; ``optimize=True``
    inserts the extension optimization passes (ConstProp, CSE,
    Deadcode) after Renumber. Returns a :class:`CompilationResult`
    whose first stage is the source.
    """
    passes = []
    for entry in PASSES:
        passes.append(entry)
        if optimize and entry[0] == "Renumber":
            passes.extend(EXTRA_PASSES)
    stages = [Stage("source", MINIC, module)]
    current = module
    track = obs.enabled
    with obs.span("compile", optimize=optimize, passes=len(passes)):
        for name, transf, lang in passes:
            if track:
                with obs.span("compile.pass", pass_name=name) as sp:
                    nodes_in = count_nodes(current)
                    current = transf(current)
                    nodes_out = count_nodes(current)
                    sp.set(
                        lang=lang.name,
                        nodes_in=nodes_in,
                        nodes_out=nodes_out,
                    )
                obs.inc("compile.passes")
                obs.observe("compile.nodes_out", nodes_out)
            else:
                current = transf(current)
            stages.append(Stage(name, lang, current))
            if upto is not None and name == upto:
                break
    return CompilationResult(stages)


def id_trans(module):
    """``IdTrans``: the identity transformation for object modules."""
    return module
