"""Pass 8 — Tunneling: LTL → LTL branch tunneling.

Edges pointing at chains of ``Lnop`` nodes are redirected to the end of
the chain (CompCert's Tunneling collapses single-target branch chains
the same way). The nop nodes themselves become unreachable and are
dropped.
"""

from repro.langs.ir import ltl


def _resolve(code, pc, cache):
    """Follow Lnop chains from ``pc`` to a non-nop target."""
    seen = []
    cur = pc
    while cur not in cache and isinstance(code.get(cur), ltl.Lnop):
        if cur in seen:
            # A nop cycle (an empty infinite loop): keep one node as
            # the landing pad rather than diverging.
            break
        seen.append(cur)
        cur = code[cur].next
    target = cache.get(cur, cur)
    for node in seen:
        cache[node] = target
    return target


def _retarget(instr, resolve):
    if isinstance(instr, ltl.Lcond):
        return instr.replace(
            iftrue=resolve(instr.iftrue), iffalse=resolve(instr.iffalse)
        )
    if isinstance(instr, (ltl.Lreturn, ltl.Ltailcall)):
        return instr
    return instr.replace(next=resolve(instr.next))


def transf_function(func):
    """Tunnel one function."""
    cache = {}

    def resolve(pc):
        return _resolve(func.code, pc, cache)

    entry = resolve(func.entry)
    code = {}
    for pc, instr in func.code.items():
        if isinstance(instr, ltl.Lnop) and resolve(pc) != pc:
            continue  # tunneled away
        code[pc] = _retarget(instr, resolve)
    return ltl.LTLFunction(
        func.name,
        func.nparams,
        func.stacksize,
        func.numslots,
        entry,
        code,
    )


def tunneling(module):
    """Tunnel every function."""
    functions = {
        name: transf_function(func)
        for name, func in module.functions.items()
    }
    return module.with_functions(functions)
