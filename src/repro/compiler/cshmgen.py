"""Pass 1 — Cshmgen: MiniC (Clight) → Csharpminor.

What the pass does (mirroring CompCert's Cshmgen + SimplLocals):

* locals whose address is never taken are *promoted to temporaries* —
  their reads/writes leave memory (and footprints) entirely;
* address-taken locals remain stack-allocated (``stack_locals``);
* global variable accesses become explicit loads/stores through
  ``EAddrGlobal``;
* the non-short-circuit boolean operators are lowered to arithmetic
  (``a && b`` → ``(a != 0) * (b != 0)``), so no late IR needs them;
* call results targeting memory locations go through a fresh temp.
"""

from repro.common.errors import CompileError
from repro.langs.ir import csharpminor as csm
from repro.langs.ir.base import IRModule
from repro.langs.minic import ast as mc


def _collect_addr_taken(node, acc):
    """Names of locals whose address is taken anywhere in a function."""
    if isinstance(node, mc.AddrOf) and node.scope == "local":
        acc.add(node.name)
    for field in getattr(node, "_fields", ()):
        value = getattr(node, field)
        if isinstance(value, mc.Node):
            _collect_addr_taken(value, acc)
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, mc.Node):
                    _collect_addr_taken(item, acc)


class _FunctionTranslator:
    def __init__(self, func):
        self.func = func
        addr_taken = set()
        _collect_addr_taken(func.body, addr_taken)
        self.stack_locals = [
            name for name, _ty in func.locals_ if name in addr_taken
        ]
        self.promoted = {
            name for name, _ty in func.locals_ if name not in addr_taken
        }
        self._fresh = 0

    def fresh_temp(self):
        self._fresh += 1
        return "$t{}".format(self._fresh)

    # ----- expressions ----------------------------------------------------

    def expr(self, e):
        if isinstance(e, mc.IntLit):
            return csm.EConst(e.n)
        if isinstance(e, mc.VarExpr):
            if e.scope == "local":
                if e.name in self.promoted:
                    return csm.ETemp(e.name)
                return csm.ELoad(csm.EAddrLocal(e.name))
            return csm.ELoad(csm.EAddrGlobal(e.name))
        if isinstance(e, mc.AddrOf):
            if e.scope == "local":
                if e.name in self.promoted:
                    raise CompileError(
                        "address-taken local {!r} was promoted".format(
                            e.name
                        )
                    )
                return csm.EAddrLocal(e.name)
            return csm.EAddrGlobal(e.name)
        if isinstance(e, mc.Deref):
            return csm.ELoad(self.expr(e.arg))
        if isinstance(e, mc.Unop):
            return csm.EUnop(e.op, self.expr(e.arg))
        if isinstance(e, mc.Binop):
            left = self.expr(e.left)
            right = self.expr(e.right)
            if e.op == "&&":
                return csm.EBinop(
                    "*",
                    csm.EBinop("!=", left, csm.EConst(0)),
                    csm.EBinop("!=", right, csm.EConst(0)),
                )
            if e.op == "||":
                return csm.EBinop(
                    "!=",
                    csm.EBinop(
                        "+",
                        csm.EBinop("!=", left, csm.EConst(0)),
                        csm.EBinop("!=", right, csm.EConst(0)),
                    ),
                    csm.EConst(0),
                )
            return csm.EBinop(e.op, left, right)
        raise CompileError("cannot translate expression {!r}".format(e))

    # ----- statements -------------------------------------------------------

    def assign(self, lhs, rhs_expr):
        """Translate an assignment of an already-translated RHS."""
        if isinstance(lhs, mc.LhsVar):
            if lhs.scope == "local" and lhs.name in self.promoted:
                return [csm.SSet(lhs.name, rhs_expr)]
            if lhs.scope == "local":
                return [csm.SStore(csm.EAddrLocal(lhs.name), rhs_expr)]
            return [csm.SStore(csm.EAddrGlobal(lhs.name), rhs_expr)]
        if isinstance(lhs, mc.LhsDeref):
            return [csm.SStore(self.expr(lhs.arg), rhs_expr)]
        raise CompileError("cannot translate lhs {!r}".format(lhs))

    def stmt(self, s):
        if isinstance(s, mc.SSkip):
            return []
        if isinstance(s, mc.SDecl):
            if s.init is None:
                return []
            return self.assign(
                mc.LhsVar(s.name, "local", s.ty), self.expr(s.init)
            )
        if isinstance(s, mc.SAssign):
            return self.assign(s.lhs, self.expr(s.expr))
        if isinstance(s, mc.SCallStmt):
            args = [self.expr(a) for a in s.call.args]
            if s.dst is None:
                return [
                    csm.SCall(None, s.call.fname, args, s.call.external)
                ]
            if (
                isinstance(s.dst, mc.LhsVar)
                and s.dst.scope == "local"
                and s.dst.name in self.promoted
            ):
                return [
                    csm.SCall(
                        s.dst.name, s.call.fname, args, s.call.external
                    )
                ]
            # Result goes to memory: route it through a fresh temp.
            tmp = self.fresh_temp()
            call = csm.SCall(tmp, s.call.fname, args, s.call.external)
            return [call] + self.assign(s.dst, csm.ETemp(tmp))
        if isinstance(s, mc.SPrint):
            return [csm.SPrint(self.expr(s.expr))]
        if isinstance(s, mc.SIf):
            return [
                csm.SIf(
                    self.expr(s.cond),
                    csm.SSeq(self.stmt_list(s.then)),
                    csm.SSeq(self.stmt_list(s.els)),
                )
            ]
        if isinstance(s, mc.SWhile):
            return [
                csm.SWhile(
                    self.expr(s.cond), csm.SSeq(self.stmt_list(s.body))
                )
            ]
        if isinstance(s, mc.SBlock):
            return self.stmt_list(s)
        if isinstance(s, mc.SSpawn):
            return [csm.SSpawn(s.fname)]
        if isinstance(s, mc.SReturn):
            expr = self.expr(s.expr) if s.expr is not None else None
            return [csm.SReturn(expr)]
        raise CompileError("cannot translate statement {!r}".format(s))

    def stmt_list(self, s):
        if isinstance(s, mc.SBlock):
            out = []
            for sub in s.stmts:
                out.extend(self.stmt(sub))
            return out
        return self.stmt(s)

    def translate(self):
        params = []
        prologue = []
        for name, _ty in self.func.params:
            if name in self.promoted:
                params.append(name)
            else:
                # Address-taken parameter: arrives in a temp, is copied
                # into its stack slot at entry.
                tmp = "$p_" + name
                params.append(tmp)
                prologue.append(
                    csm.SStore(csm.EAddrLocal(name), csm.ETemp(tmp))
                )
        body = prologue + self.stmt_list(self.func.body)
        return csm.CshmFunction(
            self.func.name,
            params,
            self.stack_locals,
            csm.SSeq(body),
        )


def cshmgen(module):
    """Translate a typechecked MiniC module to Csharpminor."""
    functions = {
        name: _FunctionTranslator(func).translate()
        for name, func in module.functions.items()
    }
    externs = {
        name: len(sig[1]) for name, sig in module.externs.items()
    }
    return IRModule(
        functions, module.symbols, externs, module.forbidden
    )
