"""CASCompCert: the mini-CompCert pipeline (the 12 passes of Fig. 11)."""

from repro.compiler.pipeline import (
    EXTRA_PASSES,
    PASSES,
    CompilationResult,
    Stage,
    compile_minic,
    id_trans,
)

__all__ = [
    "PASSES",
    "EXTRA_PASSES",
    "Stage",
    "CompilationResult",
    "compile_minic",
    "id_trans",
]
