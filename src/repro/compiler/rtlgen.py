"""Pass 4 — RTLgen: CminorSel → RTL.

Classic CFG construction: statements are translated backwards against a
continuation node, expressions are flattened into three-address code
over fresh virtual registers. Cminor temps map to virtual registers of
the same index; intermediate results get fresh registers above them.

Conditions compare two registers directly when the source condition is
a comparison (``Icond(op, (r1, r2), ...)``); any other condition is
normalized to ``!= 0``. Loops go through an ``Inop`` header node so the
back edge has a stable target — which also gives the Tunneling pass its
raw material.
"""

from repro.common.errors import CompileError
from repro.langs.ir import cminor as cm
from repro.langs.ir import rtl

_COMPARISONS = ("==", "!=", "<", "<=", ">", ">=")


def _max_temp(node, best):
    if isinstance(node, cm.ETemp):
        best = max(best, node.name)
    if isinstance(node, cm.SSet):
        best = max(best, node.temp)
    if isinstance(node, cm.SCall) and node.dst is not None:
        best = max(best, node.dst)
    for field in getattr(node, "_fields", ()):
        value = getattr(node, field)
        if isinstance(value, cm.Node):
            best = _max_temp(value, best)
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, cm.Node):
                    best = _max_temp(item, best)
    return best


class _RTLBuilder:
    def __init__(self, func):
        self.func = func
        self.code = {}
        self._next_pc = 0
        self._next_reg = max(_max_temp(func.body, func.nparams - 1), -1) + 1

    def fresh_reg(self):
        reg = self._next_reg
        self._next_reg += 1
        return reg

    def node(self, instr):
        pc = self._next_pc
        self._next_pc += 1
        self.code[pc] = instr
        return pc

    def reserve(self):
        pc = self._next_pc
        self._next_pc += 1
        return pc

    # ----- expressions ----------------------------------------------------

    def expr(self, e, dst, ncont):
        """Code computing ``e`` into register ``dst``, then ``ncont``."""
        if isinstance(e, cm.EConst):
            return self.node(rtl.Iconst(e.n, dst, ncont))
        if isinstance(e, cm.ETemp):
            return self.node(rtl.Iop("move", (e.name,), dst, ncont))
        if isinstance(e, cm.EAddrStack):
            return self.node(rtl.Iaddrstack(e.ofs, dst, ncont))
        if isinstance(e, cm.EAddrGlobal):
            return self.node(rtl.Iaddrglobal(e.name, dst, ncont))
        if isinstance(e, cm.ELoad):
            addr_reg = self.fresh_reg()
            load = self.node(rtl.Iload(addr_reg, dst, ncont))
            return self.expr(e.addr, addr_reg, load)
        if isinstance(e, cm.EUnop):
            arg_reg = self.fresh_reg()
            op = self.node(rtl.Iop(e.op, (arg_reg,), dst, ncont))
            return self.expr(e.arg, arg_reg, op)
        if isinstance(e, cm.EBinop):
            left_reg = self.fresh_reg()
            right_reg = self.fresh_reg()
            op = self.node(
                rtl.Iop(e.op, (left_reg, right_reg), dst, ncont)
            )
            right_entry = self.expr(e.right, right_reg, op)
            return self.expr(e.left, left_reg, right_entry)
        raise CompileError("cannot translate expression {!r}".format(e))

    def condition(self, cond, iftrue, iffalse):
        """Code evaluating a condition and branching."""
        if isinstance(cond, cm.EBinop) and cond.op in _COMPARISONS:
            left_reg = self.fresh_reg()
            right_reg = self.fresh_reg()
            branch = self.node(
                rtl.Icond(
                    cond.op, (left_reg, right_reg), iftrue, iffalse
                )
            )
            right_entry = self.expr(cond.right, right_reg, branch)
            return self.expr(cond.left, left_reg, right_entry)
        value_reg = self.fresh_reg()
        zero_reg = self.fresh_reg()
        branch = self.node(
            rtl.Icond("!=", (value_reg, zero_reg), iftrue, iffalse)
        )
        zero = self.node(rtl.Iconst(0, zero_reg, branch))
        return self.expr(cond, value_reg, zero)

    # ----- statements -------------------------------------------------------

    def stmt(self, s, ncont):
        if isinstance(s, cm.SSkip):
            return ncont
        if isinstance(s, cm.SSet):
            return self.expr(s.expr, s.temp, ncont)
        if isinstance(s, cm.SStore):
            addr_reg = self.fresh_reg()
            val_reg = self.fresh_reg()
            store = self.node(rtl.Istore(addr_reg, val_reg, ncont))
            val_entry = self.expr(s.expr, val_reg, store)
            return self.expr(s.addr, addr_reg, val_entry)
        if isinstance(s, cm.SCall):
            arg_regs = [self.fresh_reg() for _ in s.args]
            call = self.node(
                rtl.Icall(
                    s.fname, tuple(arg_regs), s.dst, ncont, s.external
                )
            )
            entry = call
            for arg, reg in reversed(list(zip(s.args, arg_regs))):
                entry = self.expr(arg, reg, entry)
            return entry
        if isinstance(s, cm.SPrint):
            reg = self.fresh_reg()
            out = self.node(rtl.Iprint(reg, ncont))
            return self.expr(s.expr, reg, out)
        if isinstance(s, cm.SSeq):
            entry = ncont
            for sub in reversed(s.stmts):
                entry = self.stmt(sub, entry)
            return entry
        if isinstance(s, cm.SIf):
            then_entry = self.stmt(s.then, ncont)
            else_entry = self.stmt(s.els, ncont)
            return self.condition(s.cond, then_entry, else_entry)
        if isinstance(s, cm.SWhile):
            header = self.reserve()
            body_entry = self.stmt(s.body, header)
            cond_entry = self.condition(s.cond, body_entry, ncont)
            self.code[header] = rtl.Inop(cond_entry)
            return header
        if isinstance(s, cm.SSpawn):
            return self.node(rtl.Ispawn(s.fname, ncont))
        if isinstance(s, cm.SReturn):
            if s.expr is None:
                return self.node(rtl.Ireturn(None))
            reg = self.fresh_reg()
            ret = self.node(rtl.Ireturn(reg))
            return self.expr(s.expr, reg, ret)
        raise CompileError("cannot translate statement {!r}".format(s))

    def translate(self):
        implicit_ret = self.node(rtl.Ireturn(None))
        entry = self.stmt(self.func.body, implicit_ret)
        return rtl.RTLFunction(
            self.func.name,
            tuple(range(self.func.nparams)),
            self.func.stacksize,
            entry,
            self.code,
        )


def rtlgen(module):
    """Translate a CminorSel module to RTL."""
    functions = {
        name: _RTLBuilder(func).translate()
        for name, func in module.functions.items()
    }
    return module.with_functions(functions)
