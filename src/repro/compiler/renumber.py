"""Pass 6 — Renumber: RTL → RTL CFG node renumbering.

Reachable nodes are renumbered contiguously in depth-first order from
the entry (CompCert's postorder renumbering, which later passes rely on
for efficient fixpoints); unreachable nodes are dropped.
"""

from repro.common.errors import CompileError
from repro.langs.ir import rtl


def _successors(instr):
    if isinstance(instr, rtl.Icond):
        return (instr.iftrue, instr.iffalse)
    if isinstance(instr, (rtl.Ireturn, rtl.Itailcall)):
        return ()
    return (instr.next,)


def _retarget(instr, mapping):
    if isinstance(instr, rtl.Icond):
        return instr.replace(
            iftrue=mapping[instr.iftrue], iffalse=mapping[instr.iffalse]
        )
    if isinstance(instr, (rtl.Ireturn, rtl.Itailcall)):
        return instr
    return instr.replace(next=mapping[instr.next])


def transf_function(func):
    """Renumber one function's CFG."""
    order = []
    seen = set()
    stack = [func.entry]
    while stack:
        pc = stack.pop()
        if pc in seen:
            continue
        seen.add(pc)
        order.append(pc)
        instr = func.code.get(pc)
        if instr is None:
            raise CompileError(
                "dangling CFG edge to {} in {}".format(pc, func.name)
            )
        for succ in reversed(_successors(instr)):
            stack.append(succ)
    mapping = {old: new for new, old in enumerate(order)}
    code = {
        mapping[pc]: _retarget(func.code[pc], mapping) for pc in order
    }
    return rtl.RTLFunction(
        func.name,
        func.params,
        func.stacksize,
        mapping[func.entry],
        code,
    )


def renumber(module):
    """Renumber every function."""
    functions = {
        name: transf_function(func)
        for name, func in module.functions.items()
    }
    return module.with_functions(functions)
