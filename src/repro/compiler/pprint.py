"""Pretty-printers for every pipeline stage.

Renders the module of any stage as readable text — used by the CLI
(``python -m repro``), the dump example, and debugging sessions.
"""

from repro.langs.ir import cminor as cm
from repro.langs.ir import csharpminor as csm
from repro.langs.ir import linear as ln
from repro.langs.ir import ltl
from repro.langs.ir import mach as mh
from repro.langs.ir import rtl
from repro.langs.minic import ast as mc
from repro.langs.minic.ast import MiniCModule
from repro.langs.x86 import ast as x86
from repro.langs.x86.ast import X86Function


def _indent(lines, by="  "):
    return [by + line for line in lines]


# ----- MiniC ------------------------------------------------------------------


def _mc_expr(e):
    if isinstance(e, mc.IntLit):
        return str(e.n)
    if isinstance(e, mc.VarExpr):
        return e.name
    if isinstance(e, mc.AddrOf):
        return "&" + e.name
    if isinstance(e, mc.Deref):
        return "*" + _mc_expr(e.arg)
    if isinstance(e, mc.Unop):
        return "({}{})".format(e.op, _mc_expr(e.arg))
    if isinstance(e, mc.Binop):
        return "({} {} {})".format(
            _mc_expr(e.left), e.op, _mc_expr(e.right)
        )
    if isinstance(e, mc.Call):
        return "{}({})".format(
            e.fname, ", ".join(_mc_expr(a) for a in e.args)
        )
    return repr(e)


def _mc_lhs(lhs):
    if isinstance(lhs, mc.LhsVar):
        return lhs.name
    return "*" + _mc_expr(lhs.arg)


def _mc_stmt(s):
    if isinstance(s, mc.SSkip):
        return ["skip;"]
    if isinstance(s, mc.SDecl):
        if s.init is None:
            return ["int {};".format(s.name)]
        return ["int {} = {};".format(s.name, _mc_expr(s.init))]
    if isinstance(s, mc.SAssign):
        return ["{} = {};".format(_mc_lhs(s.lhs), _mc_expr(s.expr))]
    if isinstance(s, mc.SCallStmt):
        call = _mc_expr(s.call)
        if s.dst is None:
            return [call + ";"]
        return ["{} = {};".format(_mc_lhs(s.dst), call)]
    if isinstance(s, mc.SPrint):
        return ["print({});".format(_mc_expr(s.expr))]
    if isinstance(s, mc.SSpawn):
        return ["spawn {};".format(s.fname)]
    if isinstance(s, mc.SIf):
        lines = ["if ({}) {{".format(_mc_expr(s.cond))]
        lines += _indent(_mc_stmt(s.then))
        lines.append("} else {")
        lines += _indent(_mc_stmt(s.els))
        lines.append("}")
        return lines
    if isinstance(s, mc.SWhile):
        lines = ["while ({}) {{".format(_mc_expr(s.cond))]
        lines += _indent(_mc_stmt(s.body))
        lines.append("}")
        return lines
    if isinstance(s, mc.SBlock):
        out = []
        for sub in s.stmts:
            out += _mc_stmt(sub)
        return out
    if isinstance(s, mc.SReturn):
        if s.expr is None:
            return ["return;"]
        return ["return {};".format(_mc_expr(s.expr))]
    return [repr(s)]


def _pp_minic(module):
    lines = []
    for name, addr in sorted(module.symbols.items()):
        lines.append("// global {} @ {}".format(name, addr))
    for name, func in sorted(module.functions.items()):
        params = ", ".join(
            "{} {}".format(
                "int*" if ty == mc.PTR else "int", pname
            )
            for pname, ty in func.params
        )
        lines.append("{}({}) {{".format(name, params))
        lines += _indent(_mc_stmt(func.body))
        lines.append("}")
        lines.append("")
    return lines


# ----- structured IRs ----------------------------------------------------------


def _csm_expr(e):
    if isinstance(e, csm.EConst):
        return str(e.n)
    if isinstance(e, csm.ETemp):
        return "${}".format(e.name)
    if isinstance(e, csm.EAddrLocal):
        return "&local:{}".format(e.name)
    if isinstance(e, csm.EAddrGlobal):
        return "&{}".format(e.name)
    if isinstance(e, cm.EAddrStack):
        return "&stack[{}]".format(e.ofs)
    if isinstance(e, csm.ELoad):
        return "[{}]".format(_csm_expr(e.addr))
    if isinstance(e, csm.EUnop):
        return "({}{})".format(e.op, _csm_expr(e.arg))
    if isinstance(e, csm.EBinop):
        return "({} {} {})".format(
            _csm_expr(e.left), e.op, _csm_expr(e.right)
        )
    return repr(e)


def _csm_stmt(s):
    if isinstance(s, csm.SSkip):
        return ["skip;"]
    if isinstance(s, csm.SSet):
        return ["${} := {};".format(s.temp, _csm_expr(s.expr))]
    if isinstance(s, csm.SStore):
        return ["[{}] := {};".format(
            _csm_expr(s.addr), _csm_expr(s.expr))]
    if isinstance(s, csm.SCall):
        call = "{}({}){}".format(
            s.fname,
            ", ".join(_csm_expr(a) for a in s.args),
            " /*ext*/" if s.external else "",
        )
        if s.dst is None:
            return [call + ";"]
        return ["${} := {};".format(s.dst, call)]
    if isinstance(s, csm.SPrint):
        return ["print({});".format(_csm_expr(s.expr))]
    if isinstance(s, csm.SSpawn):
        return ["spawn {};".format(s.fname)]
    if isinstance(s, csm.SSeq):
        out = []
        for sub in s.stmts:
            out += _csm_stmt(sub)
        return out
    if isinstance(s, csm.SIf):
        lines = ["if ({}) {{".format(_csm_expr(s.cond))]
        lines += _indent(_csm_stmt(s.then))
        lines.append("} else {")
        lines += _indent(_csm_stmt(s.els))
        lines.append("}")
        return lines
    if isinstance(s, csm.SWhile):
        lines = ["while ({}) {{".format(_csm_expr(s.cond))]
        lines += _indent(_csm_stmt(s.body))
        lines.append("}")
        return lines
    if isinstance(s, csm.SReturn):
        if s.expr is None:
            return ["return;"]
        return ["return {};".format(_csm_expr(s.expr))]
    return [repr(s)]


def _pp_structured(module):
    lines = []
    for name, func in sorted(module.functions.items()):
        if isinstance(func, csm.CshmFunction):
            header = "{}({}) /* stack: {} */".format(
                name, ", ".join(func.params),
                list(func.stack_locals),
            )
        else:
            header = "{}(#params={}) /* stacksize: {} */".format(
                name, func.nparams, func.stacksize
            )
        lines.append(header + " {")
        lines += _indent(_csm_stmt(func.body))
        lines.append("}")
        lines.append("")
    return lines


# ----- CFG IRs -----------------------------------------------------------------


def _pp_cfg(module, header_fn):
    lines = []
    for name, func in sorted(module.functions.items()):
        lines.append(header_fn(func))
        for pc in sorted(func.code):
            lines.append("  {:4d}: {!r}".format(pc, func.code[pc]))
        lines.append("")
    return lines


def _pp_listing(module, header_fn):
    lines = []
    for name, func in sorted(module.functions.items()):
        lines.append(header_fn(func))
        for idx, instr in enumerate(func.code):
            lines.append("  {:4d}: {!r}".format(idx, instr))
        lines.append("")
    return lines


def pp_module(module):
    """Render any pipeline stage's module as a list of text lines."""
    if isinstance(module, MiniCModule):
        return _pp_minic(module)
    sample = next(iter(module.functions.values()), None)
    if sample is None:
        return ["(empty module)"]
    if isinstance(sample, (csm.CshmFunction, cm.CmFunction)):
        return _pp_structured(module)
    if isinstance(sample, rtl.RTLFunction):
        return _pp_cfg(
            module,
            lambda f: "{} (params={}, stacksize={}, entry={}):".format(
                f.name, list(f.params), f.stacksize, f.entry
            ),
        )
    if isinstance(sample, ltl.LTLFunction):
        return _pp_cfg(
            module,
            lambda f: "{} (slots={}, stacksize={}, entry={}):".format(
                f.name, f.numslots, f.stacksize, f.entry
            ),
        )
    if isinstance(sample, ln.LinearFunction):
        return _pp_listing(
            module,
            lambda f: "{} (slots={}, stacksize={}):".format(
                f.name, f.numslots, f.stacksize
            ),
        )
    if isinstance(sample, mh.MachFunction):
        return _pp_listing(
            module,
            lambda f: "{} (framesize={}):".format(f.name, f.framesize),
        )
    if isinstance(sample, X86Function):
        return _pp_listing(module, lambda f: "{}:".format(f.name))
    return [repr(module)]


def dump_stage(stage):
    """Render one :class:`~repro.compiler.pipeline.Stage` as text."""
    title = "==== {} ({}) ====".format(stage.name, stage.lang.name)
    return "\n".join([title] + pp_module(stage.module))


def dump_pipeline(result):
    """Render a whole :class:`CompilationResult`."""
    return "\n".join(dump_stage(stage) for stage in result.stages)
