"""Pass 12 — Asmgen: Mach → mini-x86.

Nearly one-to-one, handling the impedance mismatches of a real ISA:

* explicit ``Pallocframe``/``Pfreeframe`` with a back-link word at
  frame offset 0, shifting every stack offset by one;
* two-address arithmetic (``dst := dst op src``), using the reserved
  assembler scratch register ``ebp`` when the destination collides
  with the second operand of a non-commutative operator;
* comparisons materialized through ``cmp`` + ``setcc`` and branches
  through ``cmp`` + ``jcc``;
* tail calls become ``freeframe; call; ret`` (the abstract return
  stack grows, but the memory frame is released first — the
  observable behaviour is identical).
"""

from repro.common.errors import CompileError
from repro.langs.ir import mach as mh
from repro.langs.x86 import ast as x86

#: Assembler-reserved scratch register (never produced by Allocation).
ASM_SCRATCH = "ebp"

_CONDS = {
    "==": "e",
    "!=": "ne",
    "<": "l",
    "<=": "le",
    ">": "g",
    ">=": "ge",
}

_ARITH = ("+", "-", "*", "<<", ">>")
_COMMUTATIVE = ("+", "*")


def _slot_mode(idx):
    return ("base", "esp", 1 + idx)


def _two_address(op_ctor, op, dst, a1, a2):
    """Emit ``dst := a1 op a2`` with two-address instructions."""
    if dst == a1:
        return [op_ctor(op, dst, a2)]
    if dst == a2:
        if op in _COMMUTATIVE:
            return [op_ctor(op, dst, a1)]
        return [
            x86.Pmov_rr(ASM_SCRATCH, a1),
            op_ctor(op, ASM_SCRATCH, a2),
            x86.Pmov_rr(dst, ASM_SCRATCH),
        ]
    return [x86.Pmov_rr(dst, a1), op_ctor(op, dst, a2)]


def _arith(op, dst, a1, a2):
    return _two_address(
        lambda o, d, s: x86.Parith_rr(o, d, s), op, dst, a1, a2
    )


def _div_like(ctor, dst, a1, a2):
    return _two_address(
        lambda _o, d, s: ctor(d, s), "/", dst, a1, a2
    )


def _transf_op(instr):
    op = instr.op
    args = instr.args
    dst = instr.dst
    if op == "move":
        return [x86.Pmov_rr(dst, args[0])]
    if op == "-" and len(args) == 1:
        seq = []
        if dst != args[0]:
            seq.append(x86.Pmov_rr(dst, args[0]))
        seq.append(x86.Pneg(dst))
        return seq
    if op in _ARITH:
        return _arith(op, dst, args[0], args[1])
    if op == "/":
        return _div_like(x86.Pdivs, dst, args[0], args[1])
    if op == "%":
        return _div_like(x86.Pmods, dst, args[0], args[1])
    if op in _CONDS:
        return [
            x86.Pcmp_rr(args[0], args[1]),
            x86.Psetcc(_CONDS[op], dst),
        ]
    if op == "!":
        return [
            x86.Pcmp_ri(args[0], 0),
            x86.Psetcc("e", dst),
        ]
    raise CompileError("cannot select x86 for op {!r}".format(op))


def _transf_instr(instr, framesize):
    if isinstance(instr, mh.MLabel):
        return [x86.Plabel(instr.lbl)]
    if isinstance(instr, mh.MConst):
        return [x86.Pmov_ri(instr.dst, instr.n)]
    if isinstance(instr, mh.MAddrGlobal):
        return [x86.Plea(instr.dst, ("global", instr.name))]
    if isinstance(instr, mh.MAddrStack):
        return [x86.Plea(instr.dst, ("base", "esp", 1 + instr.ofs))]
    if isinstance(instr, mh.MGetstack):
        return [x86.Pmov_rm(instr.dst, _slot_mode(instr.idx))]
    if isinstance(instr, mh.MSetstack):
        return [x86.Pmov_mr(_slot_mode(instr.idx), instr.src)]
    if isinstance(instr, mh.MOp):
        return _transf_op(instr)
    if isinstance(instr, mh.MLoad):
        return [x86.Pmov_rm(instr.dst, ("base", instr.addr, 0))]
    if isinstance(instr, mh.MStore):
        return [x86.Pmov_mr(("base", instr.addr, 0), instr.src)]
    if isinstance(instr, mh.MCall):
        return [x86.Pcall(instr.fname, instr.arity, instr.external)]
    if isinstance(instr, mh.MTailcall):
        seq = []
        if framesize > 0:
            seq.append(x86.Pfreeframe(framesize + 1))
        seq.append(x86.Pcall(instr.fname, instr.arity, False))
        seq.append(x86.Pret())
        return seq
    if isinstance(instr, mh.MGoto):
        return [x86.Pjmp(instr.lbl)]
    if isinstance(instr, mh.MCond):
        if instr.op not in _CONDS:
            raise CompileError(
                "non-comparison condition {!r}".format(instr.op)
            )
        return [
            x86.Pcmp_rr(instr.args[0], instr.args[1]),
            x86.Pjcc(_CONDS[instr.op], instr.lbl),
        ]
    if isinstance(instr, mh.MReturn):
        seq = []
        if framesize > 0:
            seq.append(x86.Pfreeframe(framesize + 1))
        seq.append(x86.Pret())
        return seq
    if isinstance(instr, mh.MSpawn):
        return [x86.Pspawn(instr.fname)]
    if isinstance(instr, mh.MPrint):
        return [x86.Pprint(instr.src)]
    raise CompileError("cannot select x86 for {!r}".format(instr))


def transf_function(func):
    """Emit one function's x86 code."""
    code = []
    if func.framesize > 0:
        code.append(x86.Pallocframe(func.framesize + 1))
    for instr in func.code:
        code.extend(_transf_instr(instr, func.framesize))
    return x86.X86Function(func.name, func.nparams, code)


def asmgen(module):
    """Translate a Mach module to mini-x86."""
    functions = {
        name: transf_function(func)
        for name, func in module.functions.items()
    }
    return module.with_functions(functions)
